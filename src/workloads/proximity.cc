#include "workloads/proximity.hh"

namespace memsense::workloads
{

ProximityWorkload::ProximityWorkload(const ProximityConfig &config)
    : Workload("proximity", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    dataset = arena.allocate("dataset", cfg.datasetBytes);
    windowLines = cfg.windowBytes / 64;
}

bool
ProximityWorkload::generateBatch()
{
    // One batch is one pruned query: touch a handful of lines inside
    // the hot window, decompress, compare.
    for (std::uint32_t i = 0; i < cfg.linesPerQuery; ++i) {
        std::uint64_t line =
            (windowStart + rng.nextBounded(windowLines)) %
            dataset.lines();
        bool write = rng.chance(cfg.dirtyFraction);
        if (write)
            pushStore(dataset.lineAddr(line), kWindowStream);
        else
            pushLoad(dataset.lineAddr(line), false, kWindowStream);
        pushCompute(cfg.decompressInstrPerLine);
        pushBubble(cfg.compareBubblePerLine);
    }

    // The proximity interval drifts slowly through the dataset.
    slideDebt += cfg.windowSlidePerQuery;
    while (slideDebt >= 1.0) {
        windowStart = (windowStart + 1) % dataset.lines();
        // Touch the newly exposed line (a genuine cold miss) and
        // flush the finalized output line leaving the window.
        std::uint64_t newest =
            (windowStart + windowLines - 1) % dataset.lines();
        pushLoad(dataset.lineAddr(newest), false, 0);
        if (rng.chance(cfg.dirtyFraction)) {
            std::uint64_t oldest =
                (windowStart + dataset.lines() - 1) % dataset.lines();
            pushNtStore(dataset.lineAddr(oldest));
        }
        slideDebt -= 1.0;
    }
    return true;
}

} // namespace memsense::workloads
