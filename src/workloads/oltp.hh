/**
 * @file
 * OLTP (brokerage transaction processing) workload (paper Sec. III.B.1).
 *
 * Models a client/server relational DBMS under a TPC-E-like mix:
 * B+-tree index traversals whose upper levels stay cache resident
 * (their dependent hits inflate CPI_cache) while leaf and row accesses
 * are dependent random misses over a large buffer pool; concurrency
 * control and query logic add heavy branch/bubble overhead; log
 * appends stream sequential stores; a light DMA stream models the
 * paper's moderate SSD I/O.
 *
 * Tuning targets (inferred Table 4): CPI_cache 1.55, BF 0.40,
 * MPKI 7.0, WBR 30%.
 */

#ifndef MEMSENSE_WORKLOADS_OLTP_HH
#define MEMSENSE_WORKLOADS_OLTP_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the OLTP generator. */
struct OltpConfig
{
    std::uint64_t seed = 5;
    std::uint64_t bufferPoolBytes = 4ULL << 30; ///< rows + leaf pages
    std::uint64_t innerNodeBytes = 1536ULL << 10; ///< hot inner levels
    std::uint64_t logBytes = 512ULL << 20;      ///< redo log
    std::uint32_t treeLevels = 4;        ///< index depth (incl. leaf)
    std::uint32_t lookupsPerTxn = 4;     ///< index probes per txn
    std::uint32_t rowsPerTxn = 2;        ///< row accesses per txn
    std::uint32_t rowUpdatesPerTxn = 2;  ///< dirtied rows per txn
    std::uint32_t logLinesPerTxn = 2;    ///< sequential log appends
    std::uint32_t instrPerLookup = 360;  ///< predicate + plan work
    std::uint32_t lockBubblePerTxn = 2100; ///< latching/branch stalls
    double dependentAccessFraction = 0.30; ///< truly serialized probes
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{4} << 42);
};

/** Transaction-processing generator. */
class OltpWorkload : public Workload
{
  public:
    explicit OltpWorkload(const OltpConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    OltpConfig cfg;
    Region bufferPool;
    Region innerNodes;
    Region log;
    std::uint64_t logCursor = 0;

    static constexpr std::uint16_t kLogStream = 6;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_OLTP_HH
