#include "workloads/column_store.hh"

namespace memsense::workloads
{

ColumnStoreWorkload::ColumnStoreWorkload(const ColumnStoreConfig &config)
    : Workload("column_store", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    column = arena.allocate("column", cfg.columnBytes);
    dictionary = arena.allocate("dictionary", cfg.dictionaryBytes);
    aggTable = arena.allocate("agg_table", cfg.aggTableBytes);
}

bool
ColumnStoreWorkload::generateBatch()
{
    // One batch processes one 64 B line of packed column values.
    const sim::Addr line_base = column.lineAddr(scanLine);
    scanLine = (scanLine + 1) % column.lines();

    for (std::uint32_t v = 0; v < kValuesPerLine; ++v) {
        pushLoad(line_base + v * 4, false, kScanStream);
        pushCompute(cfg.decodeInstrPerValue);
        pushBubble(cfg.decodeBubblePerValue);

        if (rng.chance(cfg.dictProbePerValue)) {
            // Dictionary probe: data-dependent lookup of an infrequent
            // code; skewed so hot entries stay LLC resident.
            std::uint64_t entry =
                rng.nextZipf(dictionary.lines(), cfg.dictZipf);
            pushLoad(dictionary.lineAddr(entry), true, 0);
            pushCompute(4);
        }
        if (rng.chance(cfg.aggStorePerValue)) {
            // Group-by bucket update: read-modify-write of a random
            // bucket in a table larger than the LLC.
            std::uint64_t bucket = rng.nextBounded(aggTable.lines());
            pushStore(aggTable.lineAddr(bucket));
            pushCompute(6);
        }
    }
    return true;
}

} // namespace memsense::workloads
