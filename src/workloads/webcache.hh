/**
 * @file
 * Web-tier caching workload (paper Sec. III.B.4, modified memcached).
 *
 * Models GET-dominated traffic against a memory-resident object store:
 * key hashing (compute), a dependent hash-bucket probe and object read
 * over a slab region far larger than the LLC (the paper used 64 B
 * objects randomly distributed), LRU list maintenance stores, and
 * network-stack bubble overhead. Only half the virtual processors run
 * the application in the paper's configuration, so the generator halts
 * ~half the time.
 *
 * Tuning targets (inferred Table 4): CPI_cache 1.60, BF 0.46,
 * MPKI 5.4, WBR 20%, CPU util ~50%.
 */

#ifndef MEMSENSE_WORKLOADS_WEBCACHE_HH
#define MEMSENSE_WORKLOADS_WEBCACHE_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the web caching generator. */
struct WebCacheConfig
{
    std::uint64_t seed = 8;
    std::uint64_t slabBytes = 6ULL << 30;   ///< object store
    std::uint64_t bucketBytes = 192ULL << 20; ///< hash bucket array
    std::uint32_t instrPerGet = 420;     ///< parse + hash + respond
    std::uint32_t stackBubblePerGet = 560; ///< network stack stalls
    double chainSecondHopFraction = 0.30; ///< bucket collision chains
    double bucketZipf = 0.60;            ///< hot-bucket skew
    double lruUpdateFraction = 0.45;     ///< recency-list store per GET
    double setFraction = 0.10;           ///< SETs among requests
    std::uint32_t requestsPerIdle = 4;   ///< halting cadence
    std::uint32_t idleCyclesPerGap = 3000; ///< idle poll gap
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{7} << 42);
};

/** memcached-like GET/SET generator. */
class WebCacheWorkload : public Workload
{
  public:
    explicit WebCacheWorkload(const WebCacheConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    WebCacheConfig cfg;
    Region slabs;
    Region buckets;
    std::uint64_t requestCount = 0;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_WEBCACHE_HH
