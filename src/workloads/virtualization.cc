#include "workloads/virtualization.hh"

#include "util/string_util.hh"

namespace memsense::workloads
{

VirtualizationWorkload::VirtualizationWorkload(
    const VirtualizationConfig &config)
    : Workload("virtualization", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    guestRegions.reserve(cfg.guests);
    for (std::uint32_t g = 0; g < cfg.guests; ++g) {
        guestRegions.push_back(
            arena.allocate(strformat("guest%u", g), cfg.guestBytes));
    }
}

bool
VirtualizationWorkload::generateBatch()
{
    // One batch is one hypervisor time slice of one guest.
    const Region &guest = guestRegions[currentGuest];
    for (std::uint32_t i = 0; i < cfg.accessesPerSlice; ++i) {
        std::uint64_t line = rng.nextZipf(guest.lines(), cfg.guestZipf);
        if (rng.chance(cfg.storeFraction)) {
            pushStore(guest.lineAddr(line));
        } else {
            bool dep = rng.chance(cfg.dependentFraction);
            pushLoad(guest.lineAddr(line), dep, 0);
        }
        pushCompute(cfg.instrPerAccess);
        pushBubble(cfg.guestBubblePerAccess);
    }

    // World switch to the next guest.
    pushBubble(cfg.vmExitBubble);
    currentGuest = (currentGuest + 1) % cfg.guests;
    return true;
}

} // namespace memsense::workloads
