#include "workloads/workload.hh"

#include <algorithm>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::workloads
{

Workload::Workload(std::string name, std::uint64_t seed)
    : rng(seed), _name(std::move(name))
{
}

bool
Workload::next(sim::MicroOp &op)
{
    while (pos >= buf.size()) {
        if (ended)
            return false;
        buf.clear();
        pos = 0;
        if (!generateBatch()) {
            ended = true;
            if (buf.empty())
                return false;
        }
        MS_INVARIANT(ended || !buf.empty(),
                     _name, ": generateBatch produced no ops");
    }
    op = buf[pos++];
    return true;
}

std::size_t
Workload::acquireRun(const sim::MicroOp **run)
{
    // Same refill protocol as next(): a false generateBatch() may
    // still have pushed a final partial batch.
    while (pos >= buf.size()) {
        if (ended)
            return 0;
        buf.clear();
        pos = 0;
        if (!generateBatch()) {
            ended = true;
            if (buf.empty())
                return 0;
        }
        MS_INVARIANT(ended || !buf.empty(),
                     _name, ": generateBatch produced no ops");
    }
    *run = buf.data() + pos;
    const std::size_t n = buf.size() - pos;
    pos = buf.size();
    return n;
}

void
Workload::pushCompute(std::uint32_t instructions)
{
    if (instructions == 0)
        return;
    sim::MicroOp op;
    op.kind = sim::OpKind::Compute;
    op.count = instructions;
    buf.push_back(op);
}

void
Workload::pushBubble(std::uint32_t cycles)
{
    if (cycles == 0)
        return;
    sim::MicroOp op;
    op.kind = sim::OpKind::Bubble;
    op.count = cycles;
    buf.push_back(op);
}

void
Workload::pushIdle(std::uint32_t cycles)
{
    if (cycles == 0)
        return;
    sim::MicroOp op;
    op.kind = sim::OpKind::Idle;
    op.count = cycles;
    buf.push_back(op);
}

void
Workload::pushLoad(sim::Addr addr, bool dependent, std::uint16_t stream)
{
    sim::MicroOp op;
    op.kind = sim::OpKind::Load;
    op.addr = addr;
    op.dependent = dependent;
    op.stream = stream;
    buf.push_back(op);
}

void
Workload::pushStore(sim::Addr addr, std::uint16_t stream)
{
    sim::MicroOp op;
    op.kind = sim::OpKind::Store;
    op.addr = addr;
    op.stream = stream;
    buf.push_back(op);
}

void
Workload::pushNtStore(sim::Addr addr)
{
    sim::MicroOp op;
    op.kind = sim::OpKind::NtStore;
    op.addr = addr;
    buf.push_back(op);
}

} // namespace memsense::workloads
