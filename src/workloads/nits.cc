#include "workloads/nits.hh"

namespace memsense::workloads
{

NitsWorkload::NitsWorkload(const NitsConfig &config)
    : Workload("nits", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    dataset = arena.allocate("dataset", cfg.datasetBytes);
    filter = arena.allocate("bloom_filter", cfg.filterBytes);
    results = arena.allocate("results", cfg.resultBytes);
}

bool
NitsWorkload::generateBatch()
{
    // One batch scans one record (recordLines consecutive lines).
    double fetches_this_batch = 0.0;
    for (std::uint32_t l = 0; l < cfg.recordLines; ++l) {
        pushLoad(dataset.lineAddr(scanLine), false, kScanStream);
        scanLine = (scanLine + 1) % dataset.lines();
        pushCompute(cfg.parseInstrPerLine);
        pushBubble(cfg.systemBubblePerLine);
        fetches_this_batch += 1.0;
    }

    if (rng.chance(cfg.filterProbePerRecord)) {
        // Membership check: hash-addressed, data dependent.
        std::uint64_t slot = rng.nextBounded(filter.lines());
        pushLoad(filter.lineAddr(slot), true, 0);
        pushCompute(8);
        fetches_this_batch += 1.0;
    }

    // Result/index building with non-temporal stores; these do not
    // fetch, so they push WBR above 100% of misses.
    ntDebt += fetches_this_batch * cfg.ntStoresPerFetch;
    while (ntDebt >= 1.0) {
        pushNtStore(results.lineAddr(resultLine));
        resultLine = (resultLine + 1) % results.lines();
        pushCompute(2);
        ntDebt -= 1.0;
    }
    return true;
}

} // namespace memsense::workloads
