/**
 * @file
 * Proximity (dense) search workload (paper Sec. III.A.3).
 *
 * The proximity metric prunes the search space, so queries touch only
 * a small, LLC-resident window of the dataset and spend their time
 * decompressing and comparing — the workload is strongly core bound.
 * The window slides slowly, producing the paper's order-of-magnitude
 * lower MPKI; half of the slid-out lines are dirty (decompression
 * output), giving a moderate WBR on a tiny miss base.
 *
 * Tuning targets (Table 2): CPI_cache 0.93, BF 0.03, MPKI 0.5,
 * WBR 47%.
 */

#ifndef MEMSENSE_WORKLOADS_PROXIMITY_HH
#define MEMSENSE_WORKLOADS_PROXIMITY_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the proximity search generator. */
struct ProximityConfig
{
    std::uint64_t seed = 3;
    std::uint64_t datasetBytes = 4ULL << 30; ///< full (mostly untouched)
    std::uint64_t windowBytes = 1536ULL << 10; ///< hot search window
    std::uint32_t linesPerQuery = 8;     ///< window lines per query
    std::uint32_t decompressInstrPerLine = 70; ///< heavy compute
    std::uint32_t compareBubblePerLine = 52;   ///< branchy comparisons
    double windowSlidePerQuery = 0.30;   ///< expected new lines/query
    double dirtyFraction = 0.47;         ///< output lines made dirty
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{2} << 42);
};

/** Core-bound windowed search generator. */
class ProximityWorkload : public Workload
{
  public:
    explicit ProximityWorkload(const ProximityConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    ProximityConfig cfg;
    Region dataset;
    std::uint64_t windowLines;
    std::uint64_t windowStart = 0; ///< line index of the hot window
    double slideDebt = 0.0;

    static constexpr std::uint16_t kWindowStream = 3;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_PROXIMITY_HH
