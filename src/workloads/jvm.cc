#include "workloads/jvm.hh"

namespace memsense::workloads
{

JvmWorkload::JvmWorkload(const JvmConfig &config)
    : Workload("jvm", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    heap = arena.allocate("heap", cfg.heapBytes);
    youngGen = arena.allocate("young_gen", cfg.youngGenBytes);
}

void
JvmWorkload::garbageCollect()
{
    // Mark: pointer chase across live objects.
    for (std::uint32_t i = 0; i < cfg.gcMarkHops; ++i) {
        std::uint64_t obj = rng.nextZipf(heap.lines(), cfg.heapZipf);
        pushLoad(heap.lineAddr(obj), true, 0);
        pushCompute(6);
    }
    // Copy: streaming evacuation of survivors.
    for (std::uint32_t i = 0; i < cfg.gcCopyLines; ++i) {
        pushLoad(youngGen.lineAddr(allocCursor), false, kGcStream);
        std::uint64_t dst = rng.nextBounded(heap.lines());
        pushStore(heap.lineAddr(dst));
        allocCursor = (allocCursor + 1) % youngGen.lines();
        pushCompute(10);
    }
}

bool
JvmWorkload::generateBatch()
{
    // One batch is one middle-tier request.
    for (std::uint32_t d = 0; d < cfg.derefsPerRequest; ++d) {
        std::uint64_t obj = rng.nextZipf(heap.lines(), cfg.heapZipf);
        bool dep = rng.chance(cfg.dependentDerefFraction);
        pushLoad(heap.lineAddr(obj), dep, 0);
        pushCompute(cfg.instrPerRequest / cfg.derefsPerRequest);
    }

    // Bump-pointer allocation: sequential nursery stores.
    for (std::uint32_t i = 0; i < cfg.allocLinesPerRequest; ++i) {
        pushStore(youngGen.lineAddr(allocCursor), kAllocStream);
        allocCursor = (allocCursor + 1) % youngGen.lines();
        pushCompute(8);
    }

    pushBubble(cfg.vmBubblePerRequest);

    if (++requestCount % cfg.requestsPerGc == 0)
        garbageCollect();
    return true;
}

} // namespace memsense::workloads
