/**
 * @file
 * Needle-In-The-hayStack (NITS) unstructured search workload (paper
 * Sec. III.A.2).
 *
 * Models a commercial search engine scanning nearly the whole dataset
 * per query: a streaming record scan, bloom-filter membership probes
 * that reduce the search space (dependent random loads into a filter
 * larger than the LLC), heavy system-time overhead (bubbles), and
 * non-temporal stores building result/index buffers — the reason the
 * paper's NITS writeback rate exceeds 100% of misses. The factory
 * pairs this generator with a ~2 GB/s DMA injection, matching the
 * paper's SSD RAID I/O observation.
 *
 * Tuning targets (Table 2): CPI_cache 0.96, BF 0.18, MPKI 5.0,
 * WBR ~117%.
 */

#ifndef MEMSENSE_WORKLOADS_NITS_HH
#define MEMSENSE_WORKLOADS_NITS_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the NITS generator. */
struct NitsConfig
{
    std::uint64_t seed = 2;
    std::uint64_t datasetBytes = 2ULL << 30;   ///< scanned records
    std::uint64_t filterBytes = 384ULL << 20;  ///< bloom filter
    std::uint64_t resultBytes = 256ULL << 20;  ///< NT result buffer
    std::uint32_t recordLines = 4;      ///< record size in lines
    std::uint32_t parseInstrPerLine = 245; ///< tokenize/compare work
    std::uint32_t systemBubblePerLine = 165; ///< syscall/IO-stack stalls
    double filterProbePerRecord = 0.95; ///< dependent filter probes
    double ntStoresPerFetch = 1.18;     ///< result-building NT stores
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{1} << 42);
};

/** Streaming scan + bloom probe + NT result writing. */
class NitsWorkload : public Workload
{
  public:
    explicit NitsWorkload(const NitsConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    NitsConfig cfg;
    Region dataset;
    Region filter;
    Region results;
    std::uint64_t scanLine = 0;
    std::uint64_t resultLine = 0;
    double ntDebt = 0.0; ///< fractional NT stores carried over

    static constexpr std::uint16_t kScanStream = 2;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_NITS_HH
