/**
 * @file
 * Workload catalog and factory.
 *
 * The catalog lists the paper's twelve workloads with their class
 * labels, published (or inferred) parameter targets, machine-level
 * I/O configuration, and the core count the paper used for the
 * frequency-scaling characterization (HPC components ran three cores
 * per socket; the rest used more). The factory builds per-core
 * generator instances with disjoint address arenas.
 */

#ifndef MEMSENSE_WORKLOADS_FACTORY_HH
#define MEMSENSE_WORKLOADS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "model/params.hh"
#include "sim/io.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Catalog entry for one workload. */
struct WorkloadInfo
{
    std::string id;       ///< factory key ("column_store", ...)
    std::string display;  ///< paper name ("Structured Data", ...)
    model::WorkloadClass cls = model::WorkloadClass::BigData;
    model::WorkloadParams paperTarget; ///< published/inferred values
    sim::IoConfig io;     ///< DMA stream (rate 0 when none)
    int characterizationCores = 4; ///< cores for scaling runs
};

/** All twelve workloads in paper order (big data, enterprise, HPC). */
const std::vector<WorkloadInfo> &workloadCatalog();

/** Catalog lookup; throws ConfigError for unknown ids. */
const WorkloadInfo &workloadInfo(const std::string &id);

/**
 * Build the generator for @p id on core @p core_idx.
 *
 * Each core receives a disjoint virtual arena so per-core footprints
 * match the paper's rate-style / partitioned execution.
 *
 * @param id       catalog id
 * @param core_idx core the stream will be bound to
 * @param seed     run seed (combined with the core index)
 */
std::unique_ptr<Workload> makeWorkload(const std::string &id, int core_idx,
                                       std::uint64_t seed);

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_FACTORY_HH
