/**
 * @file
 * Virtualized server-consolidation workload (paper Sec. III.B.3).
 *
 * Models a hypervisor time-slicing consolidated mail/app/web guests:
 * each slice runs one guest's access profile (random dependent reads
 * over that guest's footprint plus guest-specific store/compute mix),
 * and slice boundaries pay VM-exit/entry bubbles and re-touch cold
 * guest state. Cache interference between guests and the poor
 * prefetchability of the mixed access streams give this profile the
 * enterprise class's high blocking factor.
 *
 * Tuning targets (inferred Table 4): CPI_cache 1.40, BF 0.44,
 * MPKI 7.6, WBR 25%.
 */

#ifndef MEMSENSE_WORKLOADS_VIRTUALIZATION_HH
#define MEMSENSE_WORKLOADS_VIRTUALIZATION_HH

#include <vector>

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the virtualization generator. */
struct VirtualizationConfig
{
    std::uint64_t seed = 7;
    std::uint32_t guests = 6;             ///< consolidated VMs
    std::uint64_t guestBytes = 768ULL << 20; ///< per-guest footprint
    std::uint32_t accessesPerSlice = 180; ///< memory ops per time slice
    std::uint32_t instrPerAccess = 125;   ///< guest work per access
    std::uint32_t guestBubblePerAccess = 96; ///< guest kernel stalls
    std::uint32_t vmExitBubble = 9000;    ///< world-switch cost
    double dependentFraction = 0.50;      ///< serialized guest loads
    double storeFraction = 0.22;          ///< stores among accesses
    double guestZipf = 0.50;              ///< per-guest access skew
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{6} << 42);
};

/** Hypervisor slice-round-robin generator. */
class VirtualizationWorkload : public Workload
{
  public:
    explicit VirtualizationWorkload(const VirtualizationConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    VirtualizationConfig cfg;
    std::vector<Region> guestRegions;
    std::uint32_t currentGuest = 0;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_VIRTUALIZATION_HH
