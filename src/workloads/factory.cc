#include "workloads/factory.hh"

#include "model/paper_data.hh"
#include "util/error.hh"
#include "workloads/column_store.hh"
#include "workloads/hpc.hh"
#include "workloads/jvm.hh"
#include "workloads/nits.hh"
#include "workloads/oltp.hh"
#include "workloads/proximity.hh"
#include "workloads/spark.hh"
#include "workloads/virtualization.hh"
#include "workloads/webcache.hh"

namespace memsense::workloads
{

namespace
{

/** Per-core arena stride: 4 TB keeps any two cores' regions apart. */
constexpr sim::Addr kCoreArenaStride = sim::Addr{1} << 42;
/** Workload arenas start above the I/O injector's region. */
constexpr sim::Addr kArenaBase = sim::Addr{1} << 44;

sim::Addr
coreArena(int core_idx)
{
    return kArenaBase +
           static_cast<sim::Addr>(core_idx) * kCoreArenaStride;
}

model::WorkloadParams
findTarget(const std::string &display)
{
    for (const auto &p : model::paper::allWorkloadParams()) {
        if (p.name == display)
            return p;
    }
    throw LogicError("no paper target named " + display);
}

WorkloadInfo
entry(const std::string &id, const std::string &display,
      model::WorkloadClass cls, int cores, double io_bytes_per_sec = 0.0,
      double io_read_fraction = 0.5)
{
    WorkloadInfo info;
    info.id = id;
    info.display = display;
    info.cls = cls;
    info.paperTarget = findTarget(display);
    info.characterizationCores = cores;
    info.io.bytesPerSecond = io_bytes_per_sec;
    info.io.readFraction = io_read_fraction;
    return info;
}

std::vector<WorkloadInfo>
buildCatalog()
{
    using model::WorkloadClass;
    std::vector<WorkloadInfo> cat;
    cat.push_back(entry("column_store", "Structured Data",
                        WorkloadClass::BigData, 4));
    // NITS drove >2 GB/s from the SSD RAID (paper Sec. V.D).
    cat.push_back(entry("nits", "NITS", WorkloadClass::BigData, 4,
                        2.2e9, 0.85));
    cat.push_back(entry("proximity", "Proximity",
                        WorkloadClass::BigData, 4));
    cat.push_back(entry("spark", "Spark", WorkloadClass::BigData, 4));
    // OLTP runs with 56 SSDs at moderate I/O rates (Sec. V.J).
    cat.push_back(entry("oltp", "OLTP", WorkloadClass::Enterprise, 4,
                        0.6e9, 0.6));
    cat.push_back(entry("jvm", "JVM", WorkloadClass::Enterprise, 4));
    cat.push_back(entry("virtualization", "Virtualization",
                        WorkloadClass::Enterprise, 4));
    cat.push_back(entry("web_caching", "Web Caching",
                        WorkloadClass::Enterprise, 4));
    // SPECfp rate components used three cores per socket (Sec. V.N).
    cat.push_back(entry("bwaves", "bwaves", WorkloadClass::Hpc, 3));
    cat.push_back(entry("milc", "milc", WorkloadClass::Hpc, 3));
    cat.push_back(entry("soplex", "soplex", WorkloadClass::Hpc, 3));
    cat.push_back(entry("wrf", "wrf", WorkloadClass::Hpc, 3));
    return cat;
}

} // anonymous namespace

const std::vector<WorkloadInfo> &
workloadCatalog()
{
    static const std::vector<WorkloadInfo> catalog = buildCatalog();
    return catalog;
}

const WorkloadInfo &
workloadInfo(const std::string &id)
{
    for (const auto &info : workloadCatalog()) {
        if (info.id == id)
            return info;
    }
    throw ConfigError("unknown workload id: " + id);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &id, int core_idx, std::uint64_t seed)
{
    requireConfig(core_idx >= 0, "core index must be non-negative");
    const sim::Addr arena = coreArena(core_idx);
    const std::uint64_t s =
        seed * 1000003 + static_cast<std::uint64_t>(core_idx) + 1;

    if (id == "column_store") {
        ColumnStoreConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<ColumnStoreWorkload>(c);
    }
    if (id == "nits") {
        NitsConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<NitsWorkload>(c);
    }
    if (id == "proximity") {
        ProximityConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<ProximityWorkload>(c);
    }
    if (id == "spark") {
        SparkConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<SparkWorkload>(c);
    }
    if (id == "oltp") {
        OltpConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<OltpWorkload>(c);
    }
    if (id == "jvm") {
        JvmConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<JvmWorkload>(c);
    }
    if (id == "virtualization") {
        VirtualizationConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<VirtualizationWorkload>(c);
    }
    if (id == "web_caching") {
        WebCacheConfig c;
        c.seed = s;
        c.arenaBase = arena;
        return std::make_unique<WebCacheWorkload>(c);
    }
    if (id == "bwaves" || id == "milc" || id == "soplex" || id == "wrf") {
        HpcKernelConfig c;
        if (id == "bwaves")
            c = bwavesConfig(s);
        else if (id == "milc")
            c = milcConfig(s);
        else if (id == "soplex")
            c = soplexConfig(s);
        else
            c = wrfConfig(s);
        c.arenaBase = arena;
        return std::make_unique<HpcKernelWorkload>(c);
    }
    throw ConfigError("unknown workload id: " + id);
}

} // namespace memsense::workloads
