/**
 * @file
 * Virtual address-space layout for synthetic workloads.
 *
 * Workload generators operate on virtual addresses that are never
 * backed by host memory — the simulator only keeps cache tags. The
 * AddressSpace allocator hands out disjoint, page-aligned regions so
 * that a workload's data structures (column segments, hash tables,
 * heaps) occupy realistic, non-overlapping footprints.
 */

#ifndef MEMSENSE_WORKLOADS_LAYOUT_HH
#define MEMSENSE_WORKLOADS_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/microop.hh"
#include "util/contract.hh"

namespace memsense::workloads
{

/** A contiguous virtual region. */
struct Region
{
    std::string name;        ///< what lives here (diagnostics)
    sim::Addr base = 0;      ///< starting byte address
    std::uint64_t bytes = 0; ///< size

    /** Number of cache lines covered. */
    std::uint64_t lines() const { return bytes / 64; }

    /** Byte address of @p offset into the region (bounds-checked).
     *
     * Inline, with the diagnostic built only on failure: every
     * generated memory op runs through here, and the out-of-line
     * version used to concatenate its message string per call —
     * a malloc/free pair on the generator hot path.
     */
    sim::Addr at(std::uint64_t offset) const
    {
        MS_REQUIRE(offset < bytes, name, ": offset out of region");
        return base + offset;
    }

    /** Line-aligned address of line @p idx (bounds-checked). */
    sim::Addr lineAddr(std::uint64_t idx) const
    {
        MS_REQUIRE(idx < lines(), name, ": line index out of region");
        return base + idx * 64;
    }
};

/** Simple bump allocator over a big virtual arena. */
class AddressSpace
{
  public:
    /** @param base arena start (distinct per workload to avoid overlap
     *              with the I/O injector's region) */
    explicit AddressSpace(sim::Addr base = sim::Addr{1} << 44);

    /** Allocate @p bytes (rounded up to 2 MB) under @p name. */
    Region allocate(const std::string &name, std::uint64_t bytes);

    /** All allocations so far. */
    const std::vector<Region> &regions() const { return allocated; }

  private:
    sim::Addr cursor;
    std::vector<Region> allocated;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_LAYOUT_HH
