/**
 * @file
 * Base class for synthetic workload generators.
 *
 * A Workload is an OpStream that produces micro-ops in batches: the
 * subclass's generateBatch() emits one unit of work (a vector chunk, a
 * transaction, a graph super-step) into the buffer, and next() drains
 * it. All randomness flows through the protected Rng, so a (workload,
 * seed) pair is fully deterministic.
 */

#ifndef MEMSENSE_WORKLOADS_WORKLOAD_HH
#define MEMSENSE_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/microop.hh"
#include "util/rng.hh"

namespace memsense::workloads
{

/** Buffered op-stream base for generators. */
class Workload : public sim::OpStream
{
  public:
    /**
     * @param name workload id for diagnostics
     * @param seed determinism seed (vary per core)
     */
    Workload(std::string name, std::uint64_t seed);

    /** Pop the next op, refilling from generateBatch() as needed. */
    bool next(sim::MicroOp &op) final;

    /**
     * Zero-copy run handout: points @p run into the batch buffer
     * (refilled from generateBatch() as needed) — same sequence
     * next() would produce, without a virtual call or copy per op.
     */
    std::size_t acquireRun(const sim::MicroOp **run) final;

    /** Workload id. */
    const std::string &name() const { return _name; }

  protected:
    /**
     * Emit one unit of work via the push helpers. Return false to end
     * the stream (most workloads run forever and return true).
     */
    virtual bool generateBatch() = 0;

    /** @{ Push helpers appending to the batch buffer. */
    void pushCompute(std::uint32_t instructions);
    void pushBubble(std::uint32_t cycles);
    void pushIdle(std::uint32_t cycles);
    void pushLoad(sim::Addr addr, bool dependent, std::uint16_t stream);
    void pushStore(sim::Addr addr, std::uint16_t stream = 0);
    void pushNtStore(sim::Addr addr);
    /** @} */

    Rng rng; ///< deterministic randomness for the generator

  private:
    std::string _name;
    std::vector<sim::MicroOp> buf;
    std::size_t pos = 0;
    bool ended = false;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_WORKLOAD_HH
