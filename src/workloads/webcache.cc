#include "workloads/webcache.hh"

namespace memsense::workloads
{

WebCacheWorkload::WebCacheWorkload(const WebCacheConfig &config)
    : Workload("web_caching", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    slabs = arena.allocate("slabs", cfg.slabBytes);
    buckets = arena.allocate("buckets", cfg.bucketBytes);
}

bool
WebCacheWorkload::generateBatch()
{
    // One batch is one request (GET, occasionally SET).
    pushCompute(cfg.instrPerGet / 2); // parse + key hash
    pushBubble(cfg.stackBubblePerGet / 2);

    // Bucket probe: hash-addressed, so independent of prior loads;
    // collision-chain hops dereference the bucket and are dependent.
    std::uint64_t bucket = rng.nextZipf(buckets.lines(), cfg.bucketZipf);
    pushLoad(buckets.lineAddr(bucket), false, 0);
    if (rng.chance(cfg.chainSecondHopFraction)) {
        std::uint64_t next = rng.nextZipf(buckets.lines(), cfg.bucketZipf);
        pushLoad(buckets.lineAddr(next), true, 0);
    }

    // Object access: 64 B objects randomly distributed (paper setup);
    // the object pointer comes from the bucket, so this is dependent.
    std::uint64_t obj = rng.nextBounded(slabs.lines());
    if (rng.chance(cfg.setFraction))
        pushStore(slabs.lineAddr(obj));
    else
        pushLoad(slabs.lineAddr(obj), true, 0);
    // LRU recency update dirties the object's line.
    if (rng.chance(cfg.lruUpdateFraction))
        pushStore(slabs.lineAddr(obj));

    pushCompute(cfg.instrPerGet - cfg.instrPerGet / 2); // respond
    pushBubble(cfg.stackBubblePerGet - cfg.stackBubblePerGet / 2);

    // Half the virtual processors were reserved for packet processing
    // and not fully used: halt between request groups.
    if (++requestCount % cfg.requestsPerIdle == 0)
        pushIdle(cfg.idleCyclesPerGap);
    return true;
}

} // namespace memsense::workloads
