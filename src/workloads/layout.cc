#include "workloads/layout.hh"

#include "util/error.hh"

namespace memsense::workloads
{

AddressSpace::AddressSpace(sim::Addr base)
    : cursor(base)
{
}

Region
AddressSpace::allocate(const std::string &name, std::uint64_t bytes)
{
    requireConfig(bytes > 0, name + ": empty region");
    constexpr std::uint64_t kAlign = 2ULL * 1024 * 1024;
    std::uint64_t rounded = (bytes + kAlign - 1) / kAlign * kAlign;
    Region r{name, cursor, rounded};
    cursor += rounded;
    allocated.push_back(r);
    return r;
}

} // namespace memsense::workloads
