#include "workloads/oltp.hh"

namespace memsense::workloads
{

OltpWorkload::OltpWorkload(const OltpConfig &config)
    : Workload("oltp", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    bufferPool = arena.allocate("buffer_pool", cfg.bufferPoolBytes);
    innerNodes = arena.allocate("inner_nodes", cfg.innerNodeBytes);
    log = arena.allocate("redo_log", cfg.logBytes);
}

bool
OltpWorkload::generateBatch()
{
    // One batch is one transaction.
    for (std::uint32_t l = 0; l < cfg.lookupsPerTxn; ++l) {
        // Inner levels: dependent pointer walk through cache-resident
        // nodes (cheap but serialized — raises CPI_cache).
        for (std::uint32_t lvl = 0; lvl + 1 < cfg.treeLevels; ++lvl) {
            std::uint64_t node = rng.nextBounded(innerNodes.lines());
            pushLoad(innerNodes.lineAddr(node), true, 0);
            pushCompute(10);
        }
        // Leaf page: random over the buffer pool, usually a miss.
        bool dep = rng.chance(cfg.dependentAccessFraction);
        std::uint64_t leaf = rng.nextBounded(bufferPool.lines());
        pushLoad(bufferPool.lineAddr(leaf), dep, 0);
        pushCompute(cfg.instrPerLookup);
    }

    for (std::uint32_t r = 0; r < cfg.rowsPerTxn; ++r) {
        bool dep = rng.chance(cfg.dependentAccessFraction);
        std::uint64_t row = rng.nextBounded(bufferPool.lines());
        pushLoad(bufferPool.lineAddr(row), dep, 0);
        pushCompute(60);
    }

    for (std::uint32_t u = 0; u < cfg.rowUpdatesPerTxn; ++u) {
        std::uint64_t row = rng.nextBounded(bufferPool.lines());
        pushStore(bufferPool.lineAddr(row));
        pushCompute(30);
    }

    // Redo log append: sequential, prefetch-friendly stores.
    for (std::uint32_t i = 0; i < cfg.logLinesPerTxn; ++i) {
        pushStore(log.lineAddr(logCursor), kLogStream);
        logCursor = (logCursor + 1) % log.lines();
        pushCompute(12);
    }

    // Concurrency control, plan dispatch, branch-heavy txn logic.
    pushBubble(cfg.lockBubblePerTxn);
    return true;
}

} // namespace memsense::workloads
