#include "workloads/hpc.hh"

#include "util/string_util.hh"

namespace memsense::workloads
{

HpcKernelWorkload::HpcKernelWorkload(const HpcKernelConfig &config)
    : Workload(config.kernelName, config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    for (std::uint32_t s = 0; s < cfg.readStreams; ++s) {
        readRegions.push_back(
            arena.allocate(strformat("in%u", s), cfg.streamBytes));
    }
    for (std::uint32_t s = 0; s < cfg.writeStreams; ++s) {
        writeRegions.push_back(
            arena.allocate(strformat("out%u", s), cfg.streamBytes));
    }
    if (cfg.gatherPerLine > 0.0)
        gatherRegion = arena.allocate("gather", cfg.gatherBytes);
}

bool
HpcKernelWorkload::generateBatch()
{
    // One batch consumes one line position from every stream.
    const std::uint64_t stream_lines =
        readRegions.front().lines() / cfg.strideLines;
    const std::uint64_t line = (cursor % stream_lines) * cfg.strideLines;
    ++cursor;

    std::uint16_t stream_id = kFirstStream;
    for (const Region &r : readRegions) {
        pushLoad(r.lineAddr(line % r.lines()), false, stream_id++);
        pushCompute(cfg.instrPerLine / (cfg.readStreams + 1));
    }

    if (cfg.gatherPerLine > 0.0) {
        double g = cfg.gatherPerLine;
        while (g > 0.0) {
            if (g >= 1.0 || rng.chance(g)) {
                std::uint64_t target =
                    rng.nextBounded(gatherRegion.lines());
                bool dep = rng.chance(cfg.gatherDependentFraction);
                pushLoad(gatherRegion.lineAddr(target), dep, 0);
                pushCompute(6);
            }
            g -= 1.0;
        }
    }

    for (const Region &r : writeRegions) {
        pushStore(r.lineAddr(line % r.lines()), stream_id++);
        pushCompute(cfg.instrPerLine / (cfg.readStreams + 1));
    }

    pushBubble(cfg.loopBubblePerLine);
    return true;
}

HpcKernelConfig
bwavesConfig(std::uint64_t seed)
{
    HpcKernelConfig c;
    c.kernelName = "bwaves";
    c.seed = seed;
    c.readStreams = 3;
    c.writeStreams = 1;
    c.strideLines = 1;
    c.instrPerLine = 130;
    c.loopBubblePerLine = 40;
    // Small boundary-condition gathers give bwaves its residual
    // latency sensitivity (paper BF 0.04).
    c.gatherPerLine = 0.18;
    c.gatherDependentFraction = 1.0;
    return c;
}

HpcKernelConfig
milcConfig(std::uint64_t seed)
{
    HpcKernelConfig c;
    c.kernelName = "milc";
    c.seed = seed;
    c.readStreams = 3;
    c.writeStreams = 1;
    c.strideLines = 2; // lattice sub-plane access
    c.writeStreams = 2;
    c.instrPerLine = 180;
    c.loopBubblePerLine = 95;
    c.gatherPerLine = 0.80; // SU(3) link indirection
    c.gatherDependentFraction = 1.0;
    return c;
}

HpcKernelConfig
soplexConfig(std::uint64_t seed)
{
    HpcKernelConfig c;
    c.kernelName = "soplex";
    c.seed = seed;
    c.readStreams = 2; // row index + value arrays
    c.writeStreams = 1;
    c.strideLines = 1;
    c.instrPerLine = 135;
    c.loopBubblePerLine = 85;
    c.gatherPerLine = 0.6; // sparse column gathers
    c.gatherDependentFraction = 0.52;
    return c;
}

HpcKernelConfig
wrfConfig(std::uint64_t seed)
{
    HpcKernelConfig c;
    c.kernelName = "wrf";
    c.seed = seed;
    c.readStreams = 4; // wide stencil
    c.writeStreams = 1;
    c.strideLines = 1;
    c.instrPerLine = 210;
    c.loopBubblePerLine = 118;
    c.gatherPerLine = 0.27;
    c.gatherDependentFraction = 1.0;
    return c;
}

} // namespace memsense::workloads
