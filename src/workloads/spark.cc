#include "workloads/spark.hh"

namespace memsense::workloads
{

SparkWorkload::SparkWorkload(const SparkConfig &config)
    : Workload("spark", config.seed), cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    edges = arena.allocate("edges", cfg.edgeBytes);
    properties = arena.allocate("properties", cfg.propertyBytes);
    accumulators = arena.allocate("accumulators", cfg.accumBytes);
    shuffle = arena.allocate("shuffle", cfg.shuffleBytes);
}

void
SparkWorkload::mapVertex()
{
    // Degree varies; a skewed graph has a heavy tail. The zipf rank is
    // integral and bounded by 2 * meanDegree, so the narrowing is safe.
    const std::uint64_t zipf_rank = rng.nextZipf(2ULL * cfg.meanDegree, 0.4);
    std::uint32_t degree = 1 + static_cast<std::uint32_t>(zipf_rank);
    for (std::uint32_t e = 0; e < degree; ++e) {
        // Edge-list read: sequential CSR traversal; several 16 B edge
        // entries share one line.
        pushLoad(edges.lineAddr(edgeCursor), false, kEdgeStream);
        if (++edgeSubCursor >= cfg.edgesPerLine) {
            edgeSubCursor = 0;
            edgeCursor = (edgeCursor + 1) % edges.lines();
        }

        // Neighbor property gather: popularity-skewed; object
        // dereferencing makes a fraction truly dependent.
        std::uint64_t prop =
            rng.nextZipf(properties.lines(), cfg.propertyZipf);
        bool dep = rng.chance(cfg.dependentGatherFraction);
        pushLoad(properties.lineAddr(prop), dep, 0);

        pushCompute(cfg.instrPerEdge);
        pushBubble(cfg.jvmBubblePerEdge);
    }

    // Accumulator read-modify-writes.
    double stores = cfg.accumStoresPerVertex;
    while (stores > 0.0) {
        if (stores >= 1.0 || rng.chance(stores)) {
            std::uint64_t slot = rng.nextBounded(accumulators.lines());
            pushStore(accumulators.lineAddr(slot));
            pushCompute(8);
        }
        stores -= 1.0;
    }
}

void
SparkWorkload::shuffleVertex()
{
    // Bulk serialization into shuffle buffers: sequential writes plus
    // serialization compute; lighter on gathers, so the phase's CPI
    // profile differs visibly from the map phase (paper Fig. 2).
    for (std::uint32_t i = 0; i < cfg.shuffleLinesPerVertex; ++i) {
        pushStore(shuffle.lineAddr(shuffleCursor), kShuffleStream);
        shuffleCursor = (shuffleCursor + 1) % shuffle.lines();
        pushCompute(cfg.instrPerEdge);
        pushBubble(cfg.jvmBubblePerEdge / 2);
    }
}

bool
SparkWorkload::generateBatch()
{
    if (inShufflePhase)
        shuffleVertex();
    else
        mapVertex();

    ++vertexCount;
    if (vertexCount % cfg.verticesPerPhase == 0)
        inShufflePhase = !inShufflePhase;

    // Dynamic thread-level parallelism: scheduling gaps halt the core.
    if (vertexCount % cfg.verticesPerTask == 0)
        pushIdle(cfg.taskGapCycles);
    return true;
}

} // namespace memsense::workloads
