/**
 * @file
 * Java middle-tier workload (paper Sec. III.B.2, "JVM").
 *
 * Models SPECjbb-like XML/BigDecimal request processing on a managed
 * runtime: object-graph walks with dependent dereferences over a heap
 * larger than the LLC, bump-pointer allocation streaming stores into a
 * rotating young generation, JIT/dispatch bubbles, and periodic
 * stop-the-world-ish GC phases that mark (pointer chase) and copy
 * (streams) — little I/O, modest capacity sensitivity.
 *
 * Tuning targets (inferred Table 4): CPI_cache 1.33, BF 0.34,
 * MPKI 6.8, WBR 33%.
 */

#ifndef MEMSENSE_WORKLOADS_JVM_HH
#define MEMSENSE_WORKLOADS_JVM_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the JVM generator. */
struct JvmConfig
{
    std::uint64_t seed = 6;
    std::uint64_t heapBytes = 2ULL << 30;     ///< tenured heap
    std::uint64_t youngGenBytes = 512ULL << 20; ///< allocation nursery
    std::uint32_t derefsPerRequest = 5;  ///< object-graph hops
    double heapZipf = 0.75;              ///< hot-object skew
    double dependentDerefFraction = 0.55;///< pointer-chase hops
    std::uint32_t allocLinesPerRequest = 2; ///< nursery bump stores
    std::uint32_t instrPerRequest = 1150; ///< XML/BigDecimal work
    std::uint32_t vmBubblePerRequest = 1150; ///< dispatch/JIT stalls
    std::uint32_t requestsPerGc = 600;   ///< GC cadence
    std::uint32_t gcMarkHops = 220;      ///< dependent marking walk
    std::uint32_t gcCopyLines = 380;     ///< evacuation streaming
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{5} << 42);
};

/** Managed-runtime request processing generator. */
class JvmWorkload : public Workload
{
  public:
    explicit JvmWorkload(const JvmConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    /** Emit one young-GC pause (mark + copy). */
    void garbageCollect();

    JvmConfig cfg;
    Region heap;
    Region youngGen;
    std::uint64_t allocCursor = 0;
    std::uint64_t requestCount = 0;

    static constexpr std::uint16_t kAllocStream = 7;
    static constexpr std::uint16_t kGcStream = 8;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_JVM_HH
