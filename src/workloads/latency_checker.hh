/**
 * @file
 * Memory Latency Checker clone (paper Sec. III.D and VI.C.1, Fig. 7).
 *
 * Reproduces Intel MLC's loaded-latency methodology on the simulator:
 * bandwidth-generator streams issue independent memory traffic at a
 * configurable injection rate and read/write mix, while a latency
 * probe performs a dependent pointer chase through a large region.
 * Sweeping the injection delay traces out (bandwidth utilization,
 * loaded latency) points; subtracting the unloaded latency gives the
 * queuing-delay curves the model composites.
 */

#ifndef MEMSENSE_WORKLOADS_LATENCY_CHECKER_HH
#define MEMSENSE_WORKLOADS_LATENCY_CHECKER_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Roles an MLC agent can play. */
enum class MlcRole
{
    LatencyProbe, ///< dependent pointer chase, one access at a time
    BandwidthGen, ///< independent traffic at the injection rate
};

/** Tuning knobs for one MLC agent. */
struct LatencyCheckerConfig
{
    MlcRole role = MlcRole::BandwidthGen;
    std::uint64_t seed = 10;
    std::uint64_t regionBytes = 1ULL << 30; ///< traffic target region
    double readFraction = 1.0;   ///< generator read/write mix
    std::uint32_t delayCycles = 0; ///< injected delay between accesses
    /** Distinct arenas keep probe and generator traffic apart. */
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{9} << 42);
};

/** One MLC agent (bind one per core). */
class LatencyCheckerWorkload : public Workload
{
  public:
    explicit LatencyCheckerWorkload(const LatencyCheckerConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    LatencyCheckerConfig cfg;
    Region region;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_LATENCY_CHECKER_HH
