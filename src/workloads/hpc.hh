/**
 * @file
 * HPC proxy kernels (paper Sec. III.C): bwaves, milc, soplex, wrf from
 * SPEC CPU2006 floating point, run rate-style (independent copies).
 *
 * All four share a streaming-kernel skeleton — several concurrent
 * read streams, a write stream, and per-element floating point work —
 * differentiated by stride, gather irregularity, and compute density.
 * Regular strides make the stride prefetcher highly effective, which
 * is exactly why the paper measures low HPC blocking factors; soplex's
 * sparse gathers and milc's lattice indirection add the residual
 * latency sensitivity that separates them from bwaves/wrf.
 *
 * Tuning targets (inferred Table 5, class mean 0.75/0.07/26.7/27%):
 *   bwaves: CPI_cache 0.55, BF 0.04, MPKI 30.0, WBR 30%
 *   milc:   CPI_cache 0.80, BF 0.10, MPKI 28.0, WBR 35%
 *   soplex: CPI_cache 0.85, BF 0.09, MPKI 25.0, WBR 25%
 *   wrf:    CPI_cache 0.80, BF 0.05, MPKI 23.8, WBR 18%
 */

#ifndef MEMSENSE_WORKLOADS_HPC_HH
#define MEMSENSE_WORKLOADS_HPC_HH

#include <vector>

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Parameterization of one streaming HPC kernel. */
struct HpcKernelConfig
{
    std::string kernelName = "bwaves";
    std::uint64_t seed = 9;
    std::uint32_t readStreams = 3;      ///< concurrent input arrays
    std::uint32_t writeStreams = 1;     ///< output arrays
    std::uint64_t streamBytes = 512ULL << 20; ///< per-array footprint
    std::uint32_t strideLines = 1;      ///< stream stride in lines
    std::uint32_t instrPerLine = 90;    ///< FP work per line consumed
    std::uint32_t loopBubblePerLine = 10; ///< loop/addr-gen overhead
    double gatherPerLine = 0.0;         ///< irregular gathers per line
    double gatherDependentFraction = 0.5; ///< serialized gathers
    std::uint64_t gatherBytes = 512ULL << 20; ///< gather target region
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{8} << 42);
};

/** Streaming stencil/gather kernel generator. */
class HpcKernelWorkload : public Workload
{
  public:
    explicit HpcKernelWorkload(const HpcKernelConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    HpcKernelConfig cfg;
    std::vector<Region> readRegions;
    std::vector<Region> writeRegions;
    Region gatherRegion;
    std::uint64_t cursor = 0; ///< logical line position in the sweep

    static constexpr std::uint16_t kFirstStream = 16;
};

/** @{ Preset configurations for the paper's four components. */
HpcKernelConfig bwavesConfig(std::uint64_t seed);
HpcKernelConfig milcConfig(std::uint64_t seed);
HpcKernelConfig soplexConfig(std::uint64_t seed);
HpcKernelConfig wrfConfig(std::uint64_t seed);
/** @} */

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_HPC_HH
