/**
 * @file
 * In-memory column store analytics workload (paper Sec. III.A.1,
 * "Structured Data").
 *
 * Models decision-support queries over a dictionary-compressed
 * columnar table: a sequential scan over column segments (prefetch
 * friendly), per-value dictionary decode (compute + branchy bubbles),
 * occasional dependent probes into a dictionary that exceeds the LLC,
 * and aggregation stores into a group-by hash table. Tuning targets
 * (paper Table 2): CPI_cache 0.89, BF 0.20, MPKI 5.6, WBR 32%.
 */

#ifndef MEMSENSE_WORKLOADS_COLUMN_STORE_HH
#define MEMSENSE_WORKLOADS_COLUMN_STORE_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the column store generator. */
struct ColumnStoreConfig
{
    std::uint64_t seed = 1;
    std::uint64_t columnBytes = 1ULL << 30;     ///< scanned segment
    std::uint64_t dictionaryBytes = 96ULL << 20;///< decode dictionary
    std::uint64_t aggTableBytes = 192ULL << 20; ///< group-by table
    std::uint32_t decodeInstrPerValue = 24;  ///< decode work
    std::uint32_t decodeBubblePerValue = 17; ///< branchy decode stalls
    double dictProbePerValue = 0.034;  ///< dependent dictionary probes
    double dictZipf = 0.6;             ///< dictionary access skew
    double aggStorePerValue = 0.058;    ///< group-by stores per value
    sim::Addr arenaBase = sim::Addr{1} << 44; ///< address-space base
};

/** Column store scan + decode + aggregate generator. */
class ColumnStoreWorkload : public Workload
{
  public:
    explicit ColumnStoreWorkload(const ColumnStoreConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    ColumnStoreConfig cfg;
    Region column;
    Region dictionary;
    Region aggTable;
    std::uint64_t scanLine = 0;

    static constexpr std::uint32_t kValuesPerLine = 16;
    static constexpr std::uint16_t kScanStream = 1;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_COLUMN_STORE_HH
