#include "workloads/latency_checker.hh"

namespace memsense::workloads
{

LatencyCheckerWorkload::LatencyCheckerWorkload(
    const LatencyCheckerConfig &config)
    : Workload(config.role == MlcRole::LatencyProbe ? "mlc_probe"
                                                    : "mlc_bwgen",
               config.seed),
      cfg(config)
{
    AddressSpace arena(cfg.arenaBase);
    region = arena.allocate("mlc_region", cfg.regionBytes);
}

bool
LatencyCheckerWorkload::generateBatch()
{
    std::uint64_t line = rng.nextBounded(region.lines());
    if (cfg.role == MlcRole::LatencyProbe) {
        // Pointer chase: strictly one outstanding dependent load.
        pushLoad(region.lineAddr(line), true, 0);
        pushCompute(2); // pointer arithmetic
        return true;
    }

    // Bandwidth generator: independent accesses; random addresses so
    // the stride prefetcher cannot multiply the injected traffic.
    if (rng.chance(cfg.readFraction))
        pushLoad(region.lineAddr(line), false, 0);
    else
        pushNtStore(region.lineAddr(line));
    pushCompute(1);
    if (cfg.delayCycles > 0)
        pushBubble(cfg.delayCycles);
    return true;
}

} // namespace memsense::workloads
