/**
 * @file
 * Spark in-memory graph analytics workload (paper Sec. III.A.4).
 *
 * Models one job of an iterative graph-parallel computation (n-hop
 * association): a vertex-centric loop reading CSR edge lists
 * (streaming), gathering neighbor properties (skewed random; partly
 * dependent because of object dereferencing in the JVM), accumulator
 * updates (stores), and a periodic shuffle phase with bulk sequential
 * writes. Task-scheduling gaps insert halted cycles, reproducing the
 * paper's ~70% CPU utilization and visibly variable CPI.
 *
 * Tuning targets (Table 2): CPI_cache 0.90, BF 0.25, MPKI 6.0,
 * WBR 64%, CPU util ~70%.
 */

#ifndef MEMSENSE_WORKLOADS_SPARK_HH
#define MEMSENSE_WORKLOADS_SPARK_HH

#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace memsense::workloads
{

/** Tuning knobs for the Spark graph generator. */
struct SparkConfig
{
    std::uint64_t seed = 4;
    std::uint64_t edgeBytes = 2ULL << 30;      ///< CSR edge arrays
    std::uint64_t propertyBytes = 192ULL << 20;///< vertex properties
    std::uint64_t accumBytes = 256ULL << 20;   ///< accumulators
    std::uint64_t shuffleBytes = 1ULL << 30;   ///< shuffle buffers
    std::uint32_t meanDegree = 6;        ///< edges per vertex
    std::uint32_t edgesPerLine = 4;      ///< 16 B CSR entries per line
    std::uint32_t instrPerEdge = 155;     ///< deserialization + compute
    std::uint32_t jvmBubblePerEdge = 105; ///< JIT/GC/dispatch stalls
    double propertyZipf = 1.0;          ///< property popularity skew
    double dependentGatherFraction = 0.75; ///< pointer-ish gathers
    double accumStoresPerVertex = 2.0;   ///< RMW accumulator lines
    std::uint32_t verticesPerTask = 32;  ///< vertices between gaps
    std::uint32_t taskGapCycles = 15000; ///< scheduler gap (halted)
    std::uint32_t verticesPerPhase = 120; ///< map<->shuffle cadence
    std::uint32_t shuffleLinesPerVertex = 2; ///< bulk shuffle writes
    sim::Addr arenaBase = (sim::Addr{1} << 44) + (sim::Addr{3} << 42);
};

/** Vertex-centric graph job with map and shuffle phases. */
class SparkWorkload : public Workload
{
  public:
    explicit SparkWorkload(const SparkConfig &cfg);

  protected:
    bool generateBatch() override;

  private:
    /** Emit the map-phase work of one vertex. */
    void mapVertex();

    /** Emit the shuffle-phase work of one vertex. */
    void shuffleVertex();

    SparkConfig cfg;
    Region edges;
    Region properties;
    Region accumulators;
    Region shuffle;
    std::uint64_t edgeCursor = 0;
    std::uint32_t edgeSubCursor = 0;
    std::uint64_t shuffleCursor = 0;
    std::uint64_t vertexCount = 0;
    bool inShufflePhase = false;

    static constexpr std::uint16_t kEdgeStream = 4;
    static constexpr std::uint16_t kShuffleStream = 5;
};

} // namespace memsense::workloads

#endif // MEMSENSE_WORKLOADS_SPARK_HH
