#include "model/trends.hh"

#include <cmath>

#include "util/error.hh"

namespace memsense::model
{

std::vector<TrendPoint>
scalingTrends(int base_year, int years, const TrendRates &rates)
{
    requireConfig(years >= 1, "need at least one year");
    requireConfig(rates.coreGrowth > -1.0 && rates.densityGrowth > -1.0 &&
                      rates.channelBwGrowth > -1.0 &&
                      rates.latencyImprovementFrac < 1.0,
                  "growth rates out of domain");

    std::vector<TrendPoint> out;
    out.reserve(static_cast<std::size_t>(years));
    for (int i = 0; i < years; ++i) {
        TrendPoint t;
        t.year = base_year + i;
        t.relativeCores = std::pow(1.0 + rates.coreGrowth, i);
        t.relativeDramDensity = std::pow(1.0 + rates.densityGrowth, i);
        t.relativeChannelBw = std::pow(1.0 + rates.channelBwGrowth, i);
        t.relativeLatency = std::pow(1.0 - rates.latencyImprovementFrac, i);
        t.computeToCapacityGap = t.relativeCores / t.relativeDramDensity;
        out.push_back(t);
    }
    return out;
}

} // namespace memsense::model
