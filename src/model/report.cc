#include "model/report.hh"

#include <cmath>
#include <sstream>

#include "util/string_util.hh"

namespace memsense::model
{

namespace
{

std::string
recommend(const SensitivityReport &r)
{
    std::ostringstream out;
    if (r.baseline.bandwidthBound) {
        out << "The workload is BANDWIDTH BOUND on this platform: "
               "Eq. 4 caps its CPI and latency changes buy nothing "
               "(the Table 7 latency equivalence is unbounded). "
               "Provide more channels or faster DIMMs before any "
               "latency optimization (paper Sec. VI.D).";
        return out.str();
    }
    if (r.tradeoff.perfGainLatencyPct < 0.5 &&
        r.tradeoff.perfGainBandwidthPct < 0.5) {
        out << "The workload is CORE BOUND: neither memory latency "
            << "nor bandwidth moves its CPI by more than 0.5%. Spend "
            << "the design budget on the cores.";
        return out.str();
    }
    out << strformat(
        "The workload is LATENCY LIMITED: -10 ns of compulsory "
        "latency is worth %+.1f%% performance versus %+.1f%% for "
        "+1 GB/s/core of bandwidth",
        r.tradeoff.perfGainLatencyPct, r.tradeoff.perfGainBandwidthPct);
    if (std::isfinite(r.tradeoff.bandwidthEquivalentGBps) &&
        r.tradeoff.bandwidthEquivalentGBps > 0.0) {
        out << strformat("; matching the 10 ns via bandwidth would "
                         "take %.1f GB/s",
                         r.tradeoff.bandwidthEquivalentGBps);
    }
    out << ". Optimize latency first, but keep utilization below the "
           "queuing knee (paper Sec. VI.D).";
    return out.str();
}

} // anonymous namespace

SensitivityReport
buildReport(const SolveEngine &engine, const WorkloadParams &workload,
            const Platform &platform)
{
    SensitivityReport r;
    r.workload = workload;
    r.platform = platform;
    r.baseline = engine.solve(workload, platform);

    SensitivityAnalyzer an(engine, platform);
    r.latencySweep = an.latencySweep(workload, 60.0, 10.0);
    r.bandwidthSweep = an.bandwidthSweep(
        workload,
        SensitivityAnalyzer::standardBandwidthVariants(platform.memory));

    EquivalenceAnalyzer eq(engine, platform);
    r.tradeoff = eq.summarize(workload);
    r.recommendation = recommend(r);
    return r;
}

std::string
SensitivityReport::toMarkdown() const
{
    std::ostringstream md;
    md << "# Memory sensitivity report: " << workload.name << "\n\n";
    md << "Platform: " << platform.describe() << "\n\n";
    md << strformat(
        "Workload parameters: CPI_cache %.2f, BF %.2f, MPKI %.1f, "
        "WBR %.0f%%\n\n",
        workload.cpiCache, workload.bf, workload.mpki,
        workload.wbr * 100.0);

    md << "## Operating point\n\n";
    md << strformat("| CPI | loaded latency | queuing | bandwidth | "
                    "utilization | regime |\n|---|---|---|---|---|---|\n"
                    "| %.3f | %.1f ns | %.1f ns | %.1f GB/s | %.0f%% | "
                    "%s |\n\n",
                    baseline.cpiEff, baseline.missPenaltyNs,
                    baseline.queuingDelayNs,
                    baseline.bandwidthTotalBps / 1e9,
                    baseline.utilization * 100.0,
                    baseline.bandwidthBound ? "bandwidth bound"
                                            : "latency limited");

    md << "## Latency sensitivity (Fig. 10)\n\n"
          "| compulsory (ns) | CPI | increase |\n|---|---|---|\n";
    for (const auto &pt : latencySweep) {
        md << strformat("| %.0f | %.3f | %+.1f%% |\n", pt.compulsoryNs,
                        pt.op.cpiEff, pt.cpiIncreaseFrac * 100.0);
    }

    md << "\n## Bandwidth sensitivity (Fig. 8)\n\n"
          "| GB/s per core | CPI | increase | regime |\n"
          "|---|---|---|---|\n";
    for (const auto &pt : bandwidthSweep) {
        md << strformat("| %.2f | %.3f | %+.1f%% | %s |\n",
                        pt.bwPerCoreGBps, pt.op.cpiEff,
                        pt.cpiIncreaseFrac * 100.0,
                        pt.op.bandwidthBound ? "BW bound" : "latency");
    }

    md << "\n## Design tradeoff (Table 7)\n\n";
    md << strformat("* +1 GB/s/core of bandwidth: %+.2f%%\n",
                    tradeoff.perfGainBandwidthPct);
    md << strformat("* -10 ns of compulsory latency: %+.2f%%\n",
                    tradeoff.perfGainLatencyPct);
    if (std::isinf(tradeoff.bandwidthEquivalentGBps)) {
        md << "* no finite bandwidth matches a 10 ns improvement\n";
    } else {
        md << strformat("* 10 ns is equivalent to %.1f GB/s of "
                        "bandwidth\n",
                        tradeoff.bandwidthEquivalentGBps);
    }
    if (std::isinf(tradeoff.latencyEquivalentNs)) {
        md << "* no latency reduction matches +1 GB/s/core\n";
    } else {
        md << strformat("* +1 GB/s/core is equivalent to %.1f ns of "
                        "latency\n",
                        tradeoff.latencyEquivalentNs);
    }

    md << "\n## Recommendation\n\n" << recommendation << "\n";
    return md.str();
}

} // namespace memsense::model
