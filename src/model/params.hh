/**
 * @file
 * Workload model parameters (the components of Eq. 1 and Eq. 4).
 *
 * A WorkloadParams bundle is everything the paper's model needs to know
 * about a workload: the infinite-LLC CPI, the blocking factor, the LLC
 * miss rate, the dirty-writeback rate, and (for I/O-heavy workloads)
 * the I/O traffic per instruction. Parameters are obtained either from
 * the fitting pipeline (measure::FreqScalingExperiment on the
 * simulator) or from the paper's published tables (model::paper_data).
 */

#ifndef MEMSENSE_MODEL_PARAMS_HH
#define MEMSENSE_MODEL_PARAMS_HH

#include <string>
#include <vector>

namespace memsense::model
{

/** Cache line size used throughout the model, in bytes. */
constexpr double kLineSizeBytes = 64.0;

/** Workload classes used in the paper's Fig. 6 / Table 6. */
enum class WorkloadClass
{
    BigData,
    Enterprise,
    Hpc,
    CoreBound, ///< near-origin cluster (Proximity, some SPEC components)
};

/** Human-readable name of a workload class. */
std::string className(WorkloadClass cls);

/**
 * Model parameters of one workload (or one workload-class mean).
 *
 * Units: cpiCache in cycles/instruction; bf dimensionless in [0, 1];
 * mpki in LLC misses per 1000 instructions; wbr as a fraction of
 * misses (may exceed 1 with non-temporal stores); iopi in I/O events
 * per instruction; ioBytes in bytes of memory traffic per I/O event.
 */
struct WorkloadParams
{
    std::string name;          ///< workload identifier
    WorkloadClass cls = WorkloadClass::BigData; ///< class label
    double cpiCache = 1.0;     ///< CPI_cache: CPI with an infinite LLC
    double bf = 0.2;           ///< blocking factor (Eq. 1 slope)
    double mpki = 5.0;         ///< LLC misses per kilo-instruction
    double wbr = 0.3;          ///< writebacks per miss (fraction)
    double iopi = 0.0;         ///< I/O events per instruction
    double ioBytes = 0.0;      ///< memory bytes per I/O event

    /** Misses per instruction (MPI in the paper's equations). */
    double mpi() const { return mpki / 1000.0; }

    /**
     * Memory-traffic bytes per instruction:
     * MPI*(1+WBR)*LS + IOPI*IOSZ (the numerator of Eq. 4 without CPS).
     */
    double bytesPerInstruction() const;

    /**
     * Intrinsic memory references (reads + writebacks) per cycle at
     * CPI_eff = CPI_cache; the paper's Fig. 6 y-axis.
     */
    double refsPerCycle() const;

    /** Validate ranges; throws ConfigError when out of domain. */
    void validate() const;
};

/** Average the parameters of several workloads (class mean, Table 6). */
WorkloadParams classMean(const std::string &name, WorkloadClass cls,
                         const std::vector<WorkloadParams> &members);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_PARAMS_HH
