#include "model/equivalence.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::model
{

namespace
{
constexpr double kInf = std::numeric_limits<double>::infinity();
} // anonymous namespace

EquivalenceAnalyzer::EquivalenceAnalyzer(Solver solver_in, Platform baseline)
    : solver(std::move(solver_in)), base(std::move(baseline))
{
    base.validate();
}

EquivalenceAnalyzer::EquivalenceAnalyzer(const SolveEngine &engine_in,
                                         Platform baseline)
    : engine(&engine_in), base(std::move(baseline))
{
    base.validate();
}

Platform
EquivalenceAnalyzer::withExtraBandwidth(double extra_gbps_total) const
{
    // Scale efficiency so that effectiveBandwidth grows by exactly the
    // requested amount; the analytic model only consumes the effective
    // bandwidth, so this is equivalent to adding channels fractionally.
    Platform plat = base;
    double eff_bw = base.memory.effectiveBandwidth();
    MS_REQUIRE(eff_bw > 0.0, "baseline effective bandwidth ", eff_bw,
               " must be positive to scale it");
    double target = eff_bw + extra_gbps_total * 1e9;
    double scale = target / eff_bw;
    double new_eff = base.memory.efficiency * scale;
    if (new_eff > 1.0) {
        // Grow the channel rate instead once efficiency saturates.
        plat.memory = base.memory.withEfficiency(1.0).withSpeed(
            base.memory.megaTransfers * new_eff);
    } else {
        plat.memory = base.memory.withEfficiency(new_eff);
    }
    return plat;
}

Platform
EquivalenceAnalyzer::withReducedLatency(double delta_ns) const
{
    Platform plat = base;
    double ns = std::max(1.0, base.memory.compulsoryNs - delta_ns);
    plat.memory = base.memory.withCompulsoryNs(ns);
    return plat;
}

double
EquivalenceAnalyzer::perfGainFromBandwidth(const WorkloadParams &p,
                                           double gbps_per_core) const
{
    requireConfig(gbps_per_core >= 0.0, "bandwidth delta must be >= 0");
    double base_cpi = eng().solve(p, base).cpiEff;
    Platform plat = withExtraBandwidth(
        gbps_per_core * static_cast<double>(base.cores));
    double new_cpi = eng().solve(p, plat).cpiEff;
    MS_REQUIRE(new_cpi > 0.0, "solved CPI ", new_cpi,
               " must be positive to express a relative gain");
    return (base_cpi / new_cpi - 1.0) * 100.0;
}

double
EquivalenceAnalyzer::perfGainFromLatency(const WorkloadParams &p,
                                         double delta_ns) const
{
    requireConfig(delta_ns >= 0.0, "latency delta must be >= 0");
    double base_cpi = eng().solve(p, base).cpiEff;
    double new_cpi = eng().solve(p, withReducedLatency(delta_ns)).cpiEff;
    MS_REQUIRE(new_cpi > 0.0, "solved CPI ", new_cpi,
               " must be positive to express a relative gain");
    return (base_cpi / new_cpi - 1.0) * 100.0;
}

double
EquivalenceAnalyzer::bandwidthEquivalentOfLatency(const WorkloadParams &p,
                                                  double delta_ns,
                                                  double negligible) const
{
    MS_REQUIRE(negligible >= 0.0, "negligible threshold ", negligible,
               " must be non-negative");
    double base_cpi = eng().solve(p, base).cpiEff;
    double target_cpi = eng().solve(p, withReducedLatency(delta_ns)).cpiEff;
    if (base_cpi - target_cpi <= negligible * base_cpi)
        return 0.0; // latency gives (almost) nothing: zero BW matches it

    // CPI is non-increasing in bandwidth; bisect for the extra GB/s
    // whose CPI matches target_cpi.
    double lo = 0.0;
    double hi = 1.0;
    auto cpi_at = [&](double extra) {
        return eng().solve(p, withExtraBandwidth(extra)).cpiEff;
    };
    const double hi_cap = 100000.0; // 100 TB/s: effectively unreachable
    while (cpi_at(hi) > target_cpi) {
        hi *= 2.0;
        if (hi > hi_cap)
            return kInf;
    }
    for (int i = 0; i < 80; ++i) {
        double mid = 0.5 * (lo + hi);
        if (cpi_at(mid) > target_cpi)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
EquivalenceAnalyzer::latencyEquivalentOfBandwidth(const WorkloadParams &p,
                                                  double gbps_per_core,
                                                  double negligible) const
{
    MS_REQUIRE(negligible >= 0.0, "negligible threshold ", negligible,
               " must be non-negative");
    double base_cpi = eng().solve(p, base).cpiEff;
    Platform plat = withExtraBandwidth(
        gbps_per_core * static_cast<double>(base.cores));
    double target_cpi = eng().solve(p, plat).cpiEff;
    if (base_cpi - target_cpi <= negligible * base_cpi)
        return 0.0; // bandwidth gives (almost) nothing

    auto cpi_at = [&](double dns) {
        return eng().solve(p, withReducedLatency(dns)).cpiEff;
    };
    // The compulsory latency cannot drop below 1 ns; if even that is
    // not enough, no latency reduction matches the bandwidth gain.
    // A baseline already at or below 1 ns has no room at all — the
    // old `compulsoryNs - 1.0` bracket went negative there and the
    // bisection converged onto nonsense negative "equivalents".
    double max_dns = base.memory.compulsoryNs - 1.0;
    if (max_dns <= 0.0 || cpi_at(max_dns) > target_cpi)
        return kInf;
    double lo = 0.0;
    double hi = max_dns;
    for (int i = 0; i < 80; ++i) {
        double mid = 0.5 * (lo + hi);
        if (cpi_at(mid) > target_cpi)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

TradeoffSummary
EquivalenceAnalyzer::summarize(const WorkloadParams &p) const
{
    TradeoffSummary s;
    s.name = p.name;
    s.baselineCpi = eng().solve(p, base).cpiEff;
    s.perfGainBandwidthPct = perfGainFromBandwidth(p);
    s.perfGainLatencyPct = perfGainFromLatency(p);
    s.bandwidthEquivalentGBps = bandwidthEquivalentOfLatency(p);
    s.latencyEquivalentNs = latencyEquivalentOfBandwidth(p);
    return s;
}

} // namespace memsense::model
