/**
 * @file
 * Memory subsystem configuration for the analytic model.
 *
 * Describes the platform's memory side the way the paper's Sec. VI does:
 * a number of DDR channels at a given transfer rate, an achievable
 * efficiency (peak-to-sustained ratio, ~70% observed), and a compulsory
 * (unloaded) latency.
 */

#ifndef MEMSENSE_MODEL_MEMORY_CONFIG_HH
#define MEMSENSE_MODEL_MEMORY_CONFIG_HH

#include <string>

namespace memsense::model
{

/** Common DDR3 transfer rates, in mega-transfers per second. */
namespace ddr
{
constexpr double kDdr3_1067 = 1066.7;
constexpr double kDdr3_1333 = 1333.3;
constexpr double kDdr3_1600 = 1600.0;
constexpr double kDdr3_1867 = 1866.7;
constexpr double kDdr4_2400 = 2400.0;
} // namespace ddr

/** Bytes transferred per DDR beat (64-bit channel). */
constexpr double kBytesPerTransfer = 8.0;

/** Memory-side platform description. */
struct MemoryConfig
{
    int channels = 4;                ///< DDR channels per socket
    double megaTransfers = ddr::kDdr3_1867; ///< channel rate in MT/s
    double efficiency = 0.70;        ///< sustainable fraction of peak
    double compulsoryNs = 75.0;      ///< unloaded (compulsory) latency

    /** Peak bandwidth across all channels, bytes/second. */
    double peakBandwidth() const;

    /** Sustainable (effective) bandwidth: peak * efficiency. */
    double effectiveBandwidth() const;

    /** Effective bandwidth in GB/s (decimal) for reporting. */
    double effectiveBandwidthGBps() const;

    /** Short human-readable description ("4ch DDR3-1867 @70%"). */
    std::string describe() const;

    /** Validate ranges; throws ConfigError when out of domain. */
    void validate() const;

    /** Copy with a different channel count. */
    MemoryConfig withChannels(int n) const;

    /** Copy with a different transfer rate. */
    MemoryConfig withSpeed(double mt_per_s) const;

    /** Copy with a different efficiency. */
    MemoryConfig withEfficiency(double eff) const;

    /** Copy with a different compulsory latency. */
    MemoryConfig withCompulsoryNs(double ns) const;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_MEMORY_CONFIG_HH
