#include "model/hierarchy.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace memsense::model
{

double
hierarchicalCpi(double cpi_cache, double bf,
                const std::vector<TierAccess> &tiers)
{
    requireConfig(cpi_cache > 0.0, "CPI_cache must be positive");
    requireConfig(bf >= 0.0 && bf <= 1.0, "BF must be in [0, 1]");
    double latency_cycles_per_inst = 0.0;
    for (const auto &t : tiers) {
        requireConfig(t.mpi >= 0.0 && t.mpCycles >= 0.0,
                      t.name + ": negative tier term");
        latency_cycles_per_inst += t.mpi * t.mpCycles;
    }
    return cpi_cache + latency_cycles_per_inst * bf;
}

TieredMemoryModel::TieredMemoryModel(MemoryTier near_tier,
                                     MemoryTier far_tier,
                                     double footprint_gb, double theta_in)
    : near(std::move(near_tier)), far(std::move(far_tier)),
      footprintGB(footprint_gb), theta(theta_in)
{
    requireConfig(footprintGB > 0.0, "footprint must be positive");
    requireConfig(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
    requireConfig(near.capacityGB >= 0.0, "near capacity must be >= 0");
    requireConfig(near.latencyNs > 0.0 && far.latencyNs > 0.0,
                  "tier latencies must be positive");
    requireConfig(near.bandwidthGBps > 0.0 && far.bandwidthGBps > 0.0,
                  "tier bandwidths must be positive");
}

double
TieredMemoryModel::hitFraction() const
{
    if (near.capacityGB >= footprintGB)
        return 1.0;
    if (near.capacityGB <= 0.0)
        return 0.0;
    return std::pow(near.capacityGB / footprintGB, theta);
}

namespace
{

/** M/D/1 queuing delay with a stability clamp, in ns. */
double
tierQueuingDelayNs(double util, double service_ns, double max_util = 0.95)
{
    double u = std::clamp(util, 0.0, max_util);
    return service_ns * u / (2.0 * (1.0 - u));
}

} // anonymous namespace

TieredResult
TieredMemoryModel::evaluate(const WorkloadParams &p, double ghz,
                            int cores) const
{
    p.validate();
    requireConfig(ghz > 0.0, "core frequency must be positive");
    requireConfig(cores >= 1, "need at least one core");

    TieredResult res;
    res.hitFraction = hitFraction();
    const double hit = res.hitFraction;
    const double bytes_per_inst = p.bytesPerInstruction();
    const double cps = ghz * 1e9;
    const double near_bw = near.bandwidthGBps * 1e9;
    const double far_bw = far.bandwidthGBps * 1e9;
    // Per-line service time scale for each tier's queue.
    const double near_service_ns =
        kLineSizeBytes / near_bw * 1e9 * static_cast<double>(cores);
    const double far_service_ns =
        kLineSizeBytes / far_bw * 1e9 * static_cast<double>(cores);

    double near_util = 0.0;
    double far_util = 0.0;
    double cpi = p.cpiCache;
    for (int iter = 0; iter < 200; ++iter) {
        double near_mp_ns =
            near.latencyNs + tierQueuingDelayNs(near_util, near_service_ns);
        double far_mp_ns =
            far.latencyNs + tierQueuingDelayNs(far_util, far_service_ns);
        std::vector<TierAccess> tiers = {
            {near.name, p.mpi() * hit, near_mp_ns * ghz},
            {far.name, p.mpi() * (1.0 - hit), far_mp_ns * ghz},
        };
        double next_cpi = hierarchicalCpi(p.cpiCache, p.bf, tiers);

        double inst_rate =
            cps / next_cpi * static_cast<double>(cores);
        double near_demand = bytes_per_inst * hit * inst_rate;
        double far_demand = bytes_per_inst * (1.0 - hit) * inst_rate;
        double next_near_util = near_demand / near_bw;
        double next_far_util = far_demand / far_bw;

        near_util += 0.5 * (next_near_util - near_util);
        far_util += 0.5 * (next_far_util - far_util);
        if (std::abs(next_cpi - cpi) < 1e-9) {
            cpi = next_cpi;
            break;
        }
        cpi = next_cpi;
    }

    // Far-tier bandwidth cap: if the converged demand exceeds the far
    // tier's supply, the CPI floor is set by the far tier (Eq. 4
    // inverted on the far-tier share of traffic).
    double inst_rate = cps / cpi * static_cast<double>(cores);
    double far_demand = bytes_per_inst * (1.0 - hit) * inst_rate;
    if (far_demand > far_bw * 0.95) {
        res.farBandwidthBound = true;
        double bw_cpi = bytes_per_inst * (1.0 - hit) * cps /
                        (far_bw * 0.95 / static_cast<double>(cores));
        cpi = std::max(cpi, bw_cpi);
    }

    res.cpiEff = cpi;
    inst_rate = cps / cpi * static_cast<double>(cores);
    res.nearUtilization = bytes_per_inst * hit * inst_rate / near_bw;
    res.farUtilization = bytes_per_inst * (1.0 - hit) * inst_rate / far_bw;
    return res;
}

std::vector<TieredResult>
TieredMemoryModel::capacitySweep(const WorkloadParams &p, double ghz,
                                 int cores,
                                 const std::vector<double> &capacities) const
{
    std::vector<TieredResult> out;
    out.reserve(capacities.size());
    for (double cap : capacities) {
        TieredMemoryModel m = *this;
        m.near.capacityGB = cap;
        out.push_back(m.evaluate(p, ghz, cores));
    }
    return out;
}

} // namespace memsense::model
