/**
 * @file
 * The paper's bandwidth equation (Eq. 4) in both directions.
 *
 * Forward: given CPI_eff, the memory bandwidth a core demands.
 * Inverse: given an available bandwidth, the bandwidth-limited CPI —
 * the CPI floor imposed when the memory system can move no more bytes.
 */

#ifndef MEMSENSE_MODEL_BANDWIDTH_MODEL_HH
#define MEMSENSE_MODEL_BANDWIDTH_MODEL_HH

#include "model/params.hh"

namespace memsense::model
{

/**
 * Eq. 4: per-core bandwidth demand in bytes/second.
 *
 * BW = (MPI*(1+WBR)*LS + IOPI*IOSZ) * CPS / CPI_eff
 *
 * @param p        workload parameters
 * @param cpi_eff  effective CPI at which the core is running
 * @param cps      core speed in cycles per second
 */
double bandwidthDemandPerCore(const WorkloadParams &p, double cpi_eff,
                              double cps);

/** Eq. 4 scaled by core count: system bandwidth demand, bytes/s. */
double bandwidthDemandTotal(const WorkloadParams &p, double cpi_eff,
                            double cps, int cores);

/**
 * Eq. 4 inverted: the CPI when each core is granted
 * @p bw_per_core bytes/second of memory bandwidth and is limited by it.
 */
double bandwidthLimitedCpi(const WorkloadParams &p, double bw_per_core,
                           double cps);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_BANDWIDTH_MODEL_HH
