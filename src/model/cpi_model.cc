#include "model/cpi_model.hh"

#include <limits>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::model
{

double
effectiveCpi(const WorkloadParams &p, double mp_cycles)
{
    requireConfig(mp_cycles >= 0.0, "miss penalty must be non-negative");
    double cpi = p.cpiCache + p.mpi() * mp_cycles * p.bf;
    MS_ENSURE(cpi >= p.cpiCache,
              "Eq. 1 CPI ", cpi, " below CPI_cache ", p.cpiCache);
    return cpi;
}

double
missPenaltyForCpi(const WorkloadParams &p, double cpi_eff)
{
    requireConfig(p.bf > 0.0 && p.mpi() > 0.0,
                  "inverting Eq. 1 needs BF > 0 and MPI > 0");
    requireConfig(cpi_eff >= p.cpiCache,
                  "effective CPI below CPI_cache is not representable");
    double mp = (cpi_eff - p.cpiCache) / (p.mpi() * p.bf);
    MS_ENSURE(mp >= 0.0, "inverted miss penalty ", mp, " is negative");
    return mp;
}

double
chouEffectiveCpi(const ChouInputs &in)
{
    requireConfig(in.mlp >= 1.0, "MLP must be at least 1");
    requireConfig(in.overlapCm >= 0.0 && in.overlapCm <= 1.0,
                  "Overlap_cm must be in [0, 1]");
    double cpi = in.cpiCache * (1.0 - in.overlapCm) +
                 in.mpi * in.mpCycles / in.mlp;
    MS_ENSURE(cpi >= 0.0, "Chou CPI ", cpi, " is negative");
    return cpi;
}

double
blockingFactorFromChou(const ChouInputs &in)
{
    requireConfig(in.mlp >= 1.0, "MLP must be at least 1");
    requireConfig(in.mpi > 0.0 && in.mpCycles > 0.0,
                  "Eq. 3 needs MPI > 0 and MP > 0");
    double bf = 1.0 / in.mlp -
                in.cpiCache * in.overlapCm / (in.mpi * in.mpCycles);
    MS_ENSURE(bf <= 1.0, "blocking factor ", bf, " exceeds 1");
    return bf;
}

double
impliedMlp(double bf)
{
    requireConfig(bf >= 0.0, "blocking factor must be non-negative");
    // memsense-lint: allow(float-equal): exact zero means infinite MLP
    if (bf == 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / bf;
}

} // namespace memsense::model
