#include "model/cpi_model.hh"

#include <limits>

#include "util/error.hh"

namespace memsense::model
{

double
effectiveCpi(const WorkloadParams &p, double mp_cycles)
{
    requireConfig(mp_cycles >= 0.0, "miss penalty must be non-negative");
    return p.cpiCache + p.mpi() * mp_cycles * p.bf;
}

double
missPenaltyForCpi(const WorkloadParams &p, double cpi_eff)
{
    requireConfig(p.bf > 0.0 && p.mpi() > 0.0,
                  "inverting Eq. 1 needs BF > 0 and MPI > 0");
    requireConfig(cpi_eff >= p.cpiCache,
                  "effective CPI below CPI_cache is not representable");
    return (cpi_eff - p.cpiCache) / (p.mpi() * p.bf);
}

double
chouEffectiveCpi(const ChouInputs &in)
{
    requireConfig(in.mlp >= 1.0, "MLP must be at least 1");
    requireConfig(in.overlapCm >= 0.0 && in.overlapCm <= 1.0,
                  "Overlap_cm must be in [0, 1]");
    return in.cpiCache * (1.0 - in.overlapCm) +
           in.mpi * in.mpCycles / in.mlp;
}

double
blockingFactorFromChou(const ChouInputs &in)
{
    requireConfig(in.mlp >= 1.0, "MLP must be at least 1");
    requireConfig(in.mpi > 0.0 && in.mpCycles > 0.0,
                  "Eq. 3 needs MPI > 0 and MP > 0");
    return 1.0 / in.mlp -
           in.cpiCache * in.overlapCm / (in.mpi * in.mpCycles);
}

double
impliedMlp(double bf)
{
    requireConfig(bf >= 0.0, "blocking factor must be non-negative");
    if (bf == 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / bf;
}

} // namespace memsense::model
