/**
 * @file
 * Memory-subsystem sensitivity sweeps (paper Sec. VI.C.2-3, Figs 8-11).
 *
 * Starting from a baseline platform, vary either the available memory
 * bandwidth (channel count, channel speed, efficiency — Fig. 8/9) or
 * the compulsory latency (+10 ns steps — Fig. 10/11) and record the
 * resulting CPI for a workload or workload class. The derivative
 * helpers compute the paper's "performance impact per GB/s" (Fig. 9)
 * and "CPI impact per 10 ns" (Fig. 11) series.
 */

#ifndef MEMSENSE_MODEL_SENSITIVITY_HH
#define MEMSENSE_MODEL_SENSITIVITY_HH

#include <vector>

#include "model/solver.hh"

namespace memsense::model
{

/** One point of a bandwidth sweep (Fig. 8). */
struct BandwidthSweepPoint
{
    MemoryConfig memory;          ///< variant configuration
    double bwPerCoreGBps = 0.0;   ///< available GB/s per core
    double bwDeltaPerCoreGBps = 0.0; ///< change vs. baseline (negative
                                  ///< = reduction)
    OperatingPoint op;            ///< solved operating point
    double cpiIncreaseFrac = 0.0;     ///< cpi / baseline_cpi - 1
};

/** One point of a compulsory-latency sweep (Fig. 10). */
struct LatencySweepPoint
{
    double compulsoryNs = 0.0;    ///< compulsory latency of the variant
    double deltaNs = 0.0;         ///< change vs. baseline
    OperatingPoint op;            ///< solved operating point
    double cpiIncreaseFrac = 0.0;     ///< cpi / baseline_cpi - 1
};

/** A derivative sample (Fig. 9 / Fig. 11). */
struct DerivativePoint
{
    double x = 0.0;  ///< Fig. 9: GB/s per core available;
                     ///< Fig. 11: compulsory latency (ns)
    double dCpiPct = 0.0; ///< % CPI change per unit (GB/s or 10 ns)
};

/** Sensitivity sweep driver bound to a solver and baseline platform. */
class SensitivityAnalyzer
{
  public:
    /**
     * @param solver   performance solver (owns the queuing model)
     * @param baseline platform all sweeps are measured against
     */
    SensitivityAnalyzer(Solver solver, Platform baseline);

    /**
     * Sweep through an external engine (e.g. the serving layer's
     * memoizing serve::Evaluator) instead of an owned Solver. The
     * engine must outlive the analyzer.
     */
    SensitivityAnalyzer(const SolveEngine &engine, Platform baseline);

    /** The baseline platform. */
    const Platform &baseline() const { return base; }

    /** Solve the workload on the unmodified baseline. */
    OperatingPoint baselinePoint(const WorkloadParams &p) const;

    /**
     * Fig. 8: solve @p p on each memory variant; points are returned
     * sorted by descending per-core bandwidth (baseline first).
     */
    std::vector<BandwidthSweepPoint>
    bandwidthSweep(const WorkloadParams &p,
                   const std::vector<MemoryConfig> &variants) const;

    /**
     * Fig. 10: sweep compulsory latency from the baseline value up to
     * baseline + @p max_extra_ns in steps of @p step_ns.
     */
    std::vector<LatencySweepPoint>
    latencySweep(const WorkloadParams &p, double max_extra_ns = 60.0,
                 double step_ns = 10.0) const;

    /**
     * Fig. 9: discrete derivative of a bandwidth sweep — % CPI change
     * per GB/s/core between consecutive points, plotted against the
     * (smaller) available bandwidth per core.
     */
    static std::vector<DerivativePoint>
    bandwidthDerivative(const std::vector<BandwidthSweepPoint> &sweep);

    /**
     * Fig. 11: % CPI change per step between consecutive latency
     * points, plotted against the (larger) compulsory latency.
     */
    static std::vector<DerivativePoint>
    latencyDerivative(const std::vector<LatencySweepPoint> &sweep);

    /**
     * The paper's Fig. 8 variant list: the baseline plus reduced
     * channel counts and channel speeds spanning roughly 0 to
     * -4.3 GB/s/core vs. the 4ch DDR3-1867 baseline.
     */
    static std::vector<MemoryConfig>
    standardBandwidthVariants(const MemoryConfig &baseline);

  private:
    /** The engine every sweep point is solved with. */
    const SolveEngine &eng() const { return engine ? *engine : solver; }

    Solver solver;
    const SolveEngine *engine = nullptr; ///< non-owning; set by ref ctor
    Platform base;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_SENSITIVITY_HH
