#include "model/solver.hh"

#include <algorithm>
#include <cmath>

#include "model/bandwidth_model.hh"
#include "model/cpi_model.hh"
#include "util/contract.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/trace.hh"

namespace memsense::model
{

Solver::Solver()
    : queuingModel(QueuingModel::analyticDefault())
{
}

Solver::Solver(QueuingModel queuing_model, SolverOptions options)
    : queuingModel(std::move(queuing_model)), opts(options)
{
    requireConfig(opts.maxIterations >= 1, "need at least one iteration");
    requireConfig(opts.tolerance > 0.0, "tolerance must be positive");
    requireConfig(opts.damping > 0.0 && opts.damping <= 1.0,
                  "damping must be in (0, 1]");
}

OperatingPoint
Solver::solve(const WorkloadParams &p, const Platform &plat) const
{
    return solve(p, plat, CancelCheck{});
}

OperatingPoint
Solver::solve(const WorkloadParams &p, const Platform &plat,
              const CancelCheck &cancel) const
{
    MS_FAULT_POINT("solver.solve");
    MS_TRACE_SPAN("solver.solve");
    MS_METRIC_COUNT("solver.solves");
    p.validate();
    plat.validate();

    const double cps = plat.cyclesPerSecond();
    const double avail = plat.memory.effectiveBandwidth();
    const double max_util = queuingModel.maxStableUtilization();
    const int threads = plat.hardwareThreads();

    OperatingPoint op;

    // A workload with no memory traffic never touches the queue. Every
    // field is set explicitly: the operating point of this path is part
    // of the serving contract (it gets cached and journaled), so it must
    // not depend on what the struct defaults happen to be.
    // memsense-lint: allow(float-equal): exact-zero traffic short-circuit
    if (p.bytesPerInstruction() == 0.0) {
        op.cpiEff = p.cpiCache;
        op.missPenaltyNs = plat.memory.compulsoryNs;
        op.queuingDelayNs = 0.0;
        op.bandwidthPerCoreBps = 0.0;
        op.bandwidthTotalBps = 0.0;
        op.utilization = 0.0;
        op.bandwidthBound = false;
        op.iterations = 0;
        return op;
    }

    // Latency regime: the utilization implied by running at
    // utilization u is
    //   g(u) = demand(Eq1(compulsory + qdelay(u))) / available,
    // which is non-increasing in u (more queuing -> higher CPI ->
    // less demand), so it crosses the identity at most once below the
    // stable cap. Bisect for that point — the paper's "iterative
    // calculation to find a stable solution for queuing delay vs.
    // bandwidth demand" made robust near saturation. When g stays
    // above the identity everywhere (demand exceeds supply even at
    // the saturated queue), the bisection converges to the cap and
    // the latency-regime CPI becomes the saturated-queue Eq. 1 value.
    auto implied_util = [&](double u) {
        double mp = plat.memory.compulsoryNs + queuingModel.delayNs(u);
        double c = effectiveCpi(p, plat.nsToCycles(mp));
        return bandwidthDemandTotal(p, c, cps, threads) / avail;
    };

    double lo = 0.0;
    double hi = max_util;
    int iter = 0;
    while (hi - lo > opts.tolerance && iter < opts.maxIterations) {
        // Cooperative cancellation: polled between iterations only, so
        // an abandoned solve leaves no partially-updated bracket state
        // behind (the serving layer's per-request deadlines hang off
        // this hook).
        if (cancel && cancel()) {
            MS_METRIC_COUNT("solver.cancelled");
            throw SolveCancelled(iter);
        }
        double mid = 0.5 * (lo + hi);
        if (implied_util(mid) > mid)
            lo = mid;
        else
            hi = mid;
        ++iter;
    }
    // Report exhaustion as a structured, retryable error instead of
    // silently using the widest bracket midpoint: the resilience layer
    // quarantines the job with the diagnostics attached, and nothing
    // downstream ever consumes a spuriously "converged" point.
    MS_METRIC_COUNT_N("solver.iterations", iter);
    MS_METRIC_OBSERVE("solver.iterations_per_solve", iter);
    if (hi - lo > opts.tolerance) {
        MS_METRIC_COUNT("solver.convergence_failures");
        throw SolverConvergenceError(iter, hi - lo, opts.tolerance);
    }
    const double util = 0.5 * (lo + hi);
    op.iterations = iter;

    const double qdelay_ns = queuingModel.delayNs(util);
    const double mp_ns = plat.memory.compulsoryNs + qdelay_ns;
    const double lat_cpi = effectiveCpi(p, plat.nsToCycles(mp_ns));

    // Bandwidth regime (paper Sec. VI.C.2): Eq. 4 inverted with the
    // denominator pinned to the available supply gives the CPI floor
    // the memory system can sustain. The effective CPI is whichever
    // limiter binds; when Eq. 4 wins, the compulsory latency drops
    // out entirely ("no amount of latency reduction can compensate
    // for bandwidth constraints"). Both limiters are monotone in
    // latency and in supply, so the combined CPI is too, and the two
    // curves meet continuously at the regime boundary.
    const double bw_cpi = bandwidthLimitedCpi(
        p, avail / static_cast<double>(threads), cps);
    op.bandwidthBound = bw_cpi >= lat_cpi;
    op.cpiEff = std::max(lat_cpi, bw_cpi);
    if (op.bandwidthBound) {
        // Bandwidth regime: the reported delay must be the saturated
        // queue consistent with the Eq. 4 CPI, not the bisection's
        // near-cap midpoint. The bisection converges to the stable cap
        // from below, so its delay undershoots maxStableDelayNs() by
        // O(tolerance * curve slope) — invisible at the default 1e-9
        // tolerance, nanoseconds at looser ones, and always bitwise
        // wrong for the cached/journaled point the serving layer
        // replays (paper Sec. VI.C: "no amount of latency reduction
        // can compensate for bandwidth constraints").
        op.queuingDelayNs = queuingModel.maxStableDelayNs();
        op.missPenaltyNs = plat.memory.compulsoryNs + op.queuingDelayNs;
    } else {
        op.queuingDelayNs = qdelay_ns;
        op.missPenaltyNs = mp_ns;
    }

    const double demand =
        bandwidthDemandTotal(p, op.cpiEff, cps, threads);
    op.bandwidthTotalBps = std::min(demand, avail);
    op.bandwidthPerCoreBps =
        op.bandwidthTotalBps / static_cast<double>(plat.cores);
    op.utilization = op.bandwidthTotalBps / avail;

    MS_ENSURE(op.cpiEff >= p.cpiCache,
              "solved CPI ", op.cpiEff, " below CPI_cache ", p.cpiCache);
    MS_ENSURE(op.iterations <= opts.maxIterations,
              "bisection ran ", op.iterations, " iterations, cap ",
              opts.maxIterations);
    MS_ENSURE(op.missPenaltyNs >= plat.memory.compulsoryNs,
              "miss penalty ", op.missPenaltyNs,
              " ns below compulsory latency ", plat.memory.compulsoryNs);
    // The reported point must be internally consistent: in the latency
    // regime the CPI is exactly Eq. 1 of the reported miss penalty; in
    // the bandwidth regime the penalty is pinned at the saturated queue.
    MS_ENSURE(op.bandwidthBound ||
                  std::abs(effectiveCpi(p, plat.nsToCycles(
                               op.missPenaltyNs)) -
                           op.cpiEff) <= 1e-12 * op.cpiEff,
              "latency-regime CPI ", op.cpiEff,
              " inconsistent with reported miss penalty ",
              op.missPenaltyNs, " ns");
    MS_ENSURE(!op.bandwidthBound ||
                  op.missPenaltyNs ==
                      plat.memory.compulsoryNs +
                          queuingModel.maxStableDelayNs(),
              "bandwidth-regime miss penalty ", op.missPenaltyNs,
              " ns not pinned at compulsory + saturated queuing delay");
    MS_ENSURE(op.bandwidthTotalBps >= 0.0 &&
                  op.bandwidthTotalBps <= avail,
              "consumed bandwidth ", op.bandwidthTotalBps,
              " outside [0, ", avail, "]");
    MS_ENSURE(op.utilization >= 0.0 && op.utilization <= 1.0,
              "utilization ", op.utilization, " outside [0, 1]");
    return op;
}

double
Solver::relativeCpi(const WorkloadParams &p, const Platform &plat,
                    double reference_cpi) const
{
    requireConfig(reference_cpi > 0.0, "reference CPI must be positive");
    return solve(p, plat).cpiEff / reference_cpi;
}

} // namespace memsense::model
