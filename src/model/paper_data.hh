/**
 * @file
 * Published reference values from the paper, used by the benches to
 * print paper-vs-measured comparisons (EXPERIMENTS.md).
 *
 * Tables 2 and 6 are transcribed from the paper; Table 3's structured-
 * data measurement grid likewise. The per-workload values of Tables 4
 * and 5 are *inferred*: the paper's text gives the class means
 * (Table 6) and qualitative descriptions, but the per-row values were
 * not recoverable from the available copy, so we chose per-workload
 * values consistent with the published class means. They are marked
 * `inferred` and serve only as tuning targets for the synthetic
 * workload generators.
 */

#ifndef MEMSENSE_MODEL_PAPER_DATA_HH
#define MEMSENSE_MODEL_PAPER_DATA_HH

#include <vector>

#include "model/fitter.hh"
#include "model/params.hh"

namespace memsense::model::paper
{

/** Table 2: big data workload parameters (as published). */
std::vector<WorkloadParams> bigDataParams();

/** Tables 4 (enterprise): per-workload values inferred from Table 6. */
std::vector<WorkloadParams> enterpriseParams();

/** Table 5 (HPC): per-workload values inferred from Table 6. */
std::vector<WorkloadParams> hpcParams();

/** All twelve workloads (Tables 2 + 4 + 5). */
std::vector<WorkloadParams> allWorkloadParams();

/** Table 6: workload class means (as published). */
std::vector<WorkloadParams> classParams();

/** Table 6 row for one class. */
WorkloadParams classParams(WorkloadClass cls);

/**
 * Table 3: the paper's measured grid for Structured Data — core speed,
 * MPI, MP (core cycles) and measured CPI for eight runs (two per core
 * speed). Used by bench/tab3 to validate our fitted model against the
 * same kind of grid.
 */
std::vector<FitObservation> table3StructuredDataRuns();

/** Table 7 headline numbers for comparison printing. */
struct Table7Row
{
    WorkloadClass cls;
    double perfGainBandwidthPct; ///< +1 GB/s/core
    double perfGainLatencyPct;   ///< -10 ns
    double bandwidthEquivalentGBps; ///< == 10 ns (system GB/s)
    double latencyEquivalentNs;  ///< == +8 GB/s/socket
};

/** Table 7 as published (HPC equivalences are "none"/0). */
std::vector<Table7Row> table7();

} // namespace memsense::model::paper

#endif // MEMSENSE_MODEL_PAPER_DATA_HH
