/**
 * @file
 * Latency <-> bandwidth design-tradeoff equivalence (paper Sec. VI.D,
 * Table 7).
 *
 * For a workload class on a baseline platform, compute (a) the
 * performance benefit of adding 1 GB/s/core of bandwidth, (b) the
 * benefit of shaving 10 ns of compulsory latency, and (c) the
 * equivalences: how much extra bandwidth matches a 10 ns latency
 * improvement, and how much latency reduction matches an extra
 * 1 GB/s/core. The paper's headline: ~39.7 GB/s == 10 ns for
 * enterprise, ~27.1 GB/s == 10 ns for big data, and no amount of
 * latency reduction compensates bandwidth for the HPC mix.
 */

#ifndef MEMSENSE_MODEL_EQUIVALENCE_HH
#define MEMSENSE_MODEL_EQUIVALENCE_HH

#include "model/solver.hh"

namespace memsense::model
{

/** Table 7 row for one workload class. */
struct TradeoffSummary
{
    std::string name;              ///< workload (class) name
    double baselineCpi = 0.0;      ///< CPI on the baseline
    double perfGainBandwidthPct = 0.0; ///< % perf gain from +1 GB/s/core
    double perfGainLatencyPct = 0.0;   ///< % perf gain from -10 ns
    /** Total GB/s matching a 10 ns latency improvement; +inf when no
     *  finite amount of bandwidth reproduces the latency benefit; 0
     *  when the latency benefit itself is (near) zero. */
    double bandwidthEquivalentGBps = 0.0;
    /** ns of latency reduction matching +1 GB/s/core; +inf when no
     *  finite latency reduction reproduces the bandwidth benefit; 0
     *  when the bandwidth benefit itself is (near) zero. */
    double latencyEquivalentNs = 0.0;
};

/** Computes Table 7 rows. */
class EquivalenceAnalyzer
{
  public:
    /**
     * @param solver   performance solver
     * @param baseline baseline platform (paper: Platform::paperBaseline)
     */
    EquivalenceAnalyzer(Solver solver, Platform baseline);

    /**
     * Analyze through an external engine (e.g. the serving layer's
     * memoizing serve::Evaluator) instead of an owned Solver — the
     * equivalence bisections revisit the same operating points many
     * times, so a caching engine pays off here. The engine must
     * outlive the analyzer.
     */
    EquivalenceAnalyzer(const SolveEngine &engine, Platform baseline);

    /** Percent performance gain from adding @p gbps_per_core GB/s/core. */
    double perfGainFromBandwidth(const WorkloadParams &p,
                                 double gbps_per_core = 1.0) const;

    /** Percent performance gain from reducing compulsory latency. */
    double perfGainFromLatency(const WorkloadParams &p,
                               double delta_ns = 10.0) const;

    /**
     * Total extra bandwidth (GB/s, system-wide) equivalent to a
     * @p delta_ns compulsory-latency reduction. Bisection on the
     * bandwidth axis; returns +inf when unreachable, 0 when the
     * latency benefit is below @p negligible (relative CPI change).
     */
    double bandwidthEquivalentOfLatency(const WorkloadParams &p,
                                        double delta_ns = 10.0,
                                        double negligible = 1e-6) const;

    /**
     * Compulsory-latency reduction (ns) equivalent to adding
     * @p gbps_per_core GB/s/core. Returns +inf when unreachable, 0
     * when the bandwidth benefit is below @p negligible.
     */
    double latencyEquivalentOfBandwidth(const WorkloadParams &p,
                                        double gbps_per_core = 1.0,
                                        double negligible = 1e-6) const;

    /** Compute the full Table 7 row for a workload class. */
    TradeoffSummary summarize(const WorkloadParams &p) const;

  private:
    /** Platform with extra system bandwidth grafted on via efficiency. */
    Platform withExtraBandwidth(double extra_gbps_total) const;

    /** Platform with reduced compulsory latency (floored at 1 ns). */
    Platform withReducedLatency(double delta_ns) const;

    /** The engine every operating point is solved with. */
    const SolveEngine &eng() const { return engine ? *engine : solver; }

    Solver solver;
    const SolveEngine *engine = nullptr; ///< non-owning; set by ref ctor
    Platform base;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_EQUIVALENCE_HH
