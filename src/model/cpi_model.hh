/**
 * @file
 * The paper's CPI equations (Eq. 1-3).
 *
 * Eq. 1:  CPI_eff = CPI_cache + MPI * MP * BF
 * Eq. 2:  CPI_eff = CPI_cache * (1 - Overlap_cm) + MPI * MP / MLP  (Chou)
 * Eq. 3:  BF = 1/MLP - CPI_cache * Overlap_cm / (MPI * MP)
 *
 * MP is measured in core cycles here; callers convert ns -> cycles via
 * Platform::nsToCycles. All functions are pure.
 */

#ifndef MEMSENSE_MODEL_CPI_MODEL_HH
#define MEMSENSE_MODEL_CPI_MODEL_HH

#include "model/params.hh"

namespace memsense::model
{

/**
 * Eq. 1: effective CPI from miss penalty.
 *
 * @param p         workload parameters (CPI_cache, BF, MPKI)
 * @param mp_cycles average LLC miss penalty in core cycles
 */
double effectiveCpi(const WorkloadParams &p, double mp_cycles);

/**
 * Invert Eq. 1: the miss penalty (core cycles) that would produce the
 * given effective CPI. Requires BF > 0 and MPI > 0.
 */
double missPenaltyForCpi(const WorkloadParams &p, double cpi_eff);

/** Inputs of Chou's model (Eq. 2). */
struct ChouInputs
{
    double cpiCache = 1.0;  ///< infinite-cache CPI
    double overlapCm = 0.0; ///< overlap of core execution with misses
    double mlp = 1.0;       ///< memory-level parallelism (>= 1)
    double mpi = 0.005;     ///< misses per instruction
    double mpCycles = 200;  ///< miss penalty in core cycles
};

/** Eq. 2: Chou's effective CPI with explicit MLP and overlap. */
double chouEffectiveCpi(const ChouInputs &in);

/**
 * Eq. 3: the blocking factor implied by Chou's model components.
 * As MP grows the second term vanishes and BF tends to 1/MLP.
 */
double blockingFactorFromChou(const ChouInputs &in);

/**
 * The MLP a measured blocking factor implies under the constant-BF
 * approximation (BF ~= 1/MLP); returns +inf when bf == 0.
 */
double impliedMlp(double bf);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_CPI_MODEL_HH
