/**
 * @file
 * Canonical fingerprints of model evaluation requests.
 *
 * The serving layer (src/serve) memoizes solver results keyed on the
 * exact inputs that determine an operating point: the workload's
 * numeric parameters, the platform, the queuing curve, and the solver
 * tuning knobs. This file defines the canonical encoding of those
 * inputs — every double contributes its IEEE-754 bit pattern, so two
 * requests share a key iff they are bit-identical inputs to the
 * solver — and the 64-bit FNV-1a fingerprint over it.
 *
 * Deliberately excluded: WorkloadParams::name and ::cls. They label a
 * request but do not enter Eq. 1/Eq. 4, so two differently-named
 * requests with identical numbers share one cache entry.
 *
 * FNV-1a is not collision-free; consumers that cannot tolerate a
 * collision must compare canonicalRequestKey() text before trusting a
 * fingerprint match (the serve cache does exactly that).
 */

#ifndef MEMSENSE_MODEL_FINGERPRINT_HH
#define MEMSENSE_MODEL_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "model/params.hh"
#include "model/platform.hh"
#include "model/queuing.hh"
#include "model/solver.hh"

namespace memsense::model
{

/** Canonical encoding of the numeric workload parameters. */
std::string canonicalKey(const WorkloadParams &p);

/** Canonical encoding of the platform (cores, clock, memory). */
std::string canonicalKey(const Platform &plat);

/** Canonical encoding of a queuing model (knots, cap, origin). */
std::string canonicalKey(const QueuingModel &qm);

/** Canonical encoding of the solver tuning knobs. */
std::string canonicalKey(const SolverOptions &opts);

/**
 * Canonical encoding of one full evaluation request:
 * workload | platform fields, in fixed documented order. The solver
 * configuration is not included — append solverFingerprint() (or keep
 * one cache per solver) when caching across solver configurations.
 */
std::string canonicalRequestKey(const WorkloadParams &p,
                                const Platform &plat);

/**
 * Append canonicalRequestKey(@p p, @p plat) to @p out. The solve-cache
 * probe path clears and refills one per-thread buffer with this,
 * making a warm cache hit allocation-free.
 */
void appendCanonicalRequestKey(std::string &out, const WorkloadParams &p,
                               const Platform &plat);

/**
 * FNV-1a fingerprint of the request, mixed with @p seed. Hashes the
 * same fields in the same order as canonicalRequestKey(), but over
 * their raw bit patterns rather than the hex text — it identifies the
 * same equivalence classes, cheaper. Not collision-free: pair it with
 * canonicalRequestKey() text wherever a collision would be wrong.
 */
std::uint64_t requestFingerprint(const WorkloadParams &p,
                                 const Platform &plat,
                                 std::uint64_t seed = 0);

/**
 * Fingerprint of everything about a Solver that affects its results:
 * the queuing curve and the tuning knobs. Use it as the @p seed of
 * requestFingerprint() so one cache never mixes solvers.
 */
std::uint64_t solverFingerprint(const Solver &solver);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_FINGERPRINT_HH
