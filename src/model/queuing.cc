#include "model/queuing.hh"

#include <algorithm>

#include "util/contract.hh"
#include "util/error.hh"
#include "util/trace.hh"

namespace memsense::model
{

QueuingModel::QueuingModel(stats::PiecewiseCurve curve,
                           double max_stable_util, bool from_measurement)
    : pw(std::move(curve)), maxUtil(max_stable_util),
      measured(from_measurement)
{
    requireConfig(maxUtil > 0.0 && maxUtil < 1.0,
                  "max stable utilization must be in (0, 1)");
    requireConfig(!pw.empty(), "queuing curve must have knots");
    requireConfig(pw.isMonotoneNonDecreasing(),
                  "queuing delay must be non-decreasing in utilization; "
                  "apply monotoneEnvelope() to measured curves first");
}

QueuingModel
QueuingModel::analyticDefault(double linear_ns, double service_ns,
                              double max_stable_util)
{
    requireConfig(linear_ns >= 0.0, "linear delay must be non-negative");
    requireConfig(service_ns > 0.0, "service time must be positive");
    // Sample the curve densely; the piecewise representation keeps the
    // solver independent of the curve's origin (analytic or measured).
    std::vector<stats::CurvePoint> knots;
    const int n = 96;
    for (int i = 0; i <= n; ++i) {
        double u = max_stable_util * static_cast<double>(i) /
                   static_cast<double>(n);
        double d = linear_ns * u + service_ns * u / (2.0 * (1.0 - u));
        knots.push_back({u, d});
    }
    return QueuingModel(stats::PiecewiseCurve(std::move(knots)),
                        max_stable_util, false);
}

QueuingModel
QueuingModel::fromCurve(stats::PiecewiseCurve curve, double max_stable_util)
{
    return QueuingModel(std::move(curve), max_stable_util, true);
}

double
QueuingModel::delayNs(double utilization) const
{
    MS_METRIC_COUNT("queuing.delay_lookups");
    double u = std::clamp(utilization, 0.0, maxUtil);
    double delay_ns = std::max(0.0, pw.at(u));
    MS_ENSURE(delay_ns >= 0.0,
              "queuing delay ", delay_ns, " ns is negative");
    return delay_ns;
}

double
QueuingModel::maxStableDelayNs() const
{
    return delayNs(maxUtil);
}

} // namespace memsense::model
