/**
 * @file
 * Umbrella header for the memsense analytic model: include this to get
 * the full public model API (Eq. 1-5, solver, fitter, classification,
 * sensitivity and equivalence analyses).
 */

#ifndef MEMSENSE_MODEL_MEMSENSE_HH
#define MEMSENSE_MODEL_MEMSENSE_HH

#include "model/bandwidth_model.hh"
#include "model/classify.hh"
#include "model/cpi_model.hh"
#include "model/equivalence.hh"
#include "model/fitter.hh"
#include "model/hierarchy.hh"
#include "model/memory_config.hh"
#include "model/multisocket.hh"
#include "model/paper_data.hh"
#include "model/params.hh"
#include "model/phases.hh"
#include "model/platform.hh"
#include "model/queuing.hh"
#include "model/report.hh"
#include "model/sensitivity.hh"
#include "model/solver.hh"
#include "model/trends.hh"

#endif // MEMSENSE_MODEL_MEMSENSE_HH
