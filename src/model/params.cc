#include "model/params.hh"

#include "util/error.hh"

namespace memsense::model
{

std::string
className(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::BigData:
        return "Big Data";
      case WorkloadClass::Enterprise:
        return "Enterprise";
      case WorkloadClass::Hpc:
        return "HPC";
      case WorkloadClass::CoreBound:
        return "Core Bound";
    }
    throw LogicError("unknown workload class");
}

double
WorkloadParams::bytesPerInstruction() const
{
    return mpi() * (1.0 + wbr) * kLineSizeBytes + iopi * ioBytes;
}

double
WorkloadParams::refsPerCycle() const
{
    return mpi() * (1.0 + wbr) / cpiCache;
}

void
WorkloadParams::validate() const
{
    requireConfig(cpiCache > 0.0, name + ": CPI_cache must be positive");
    requireConfig(bf >= 0.0 && bf <= 1.0,
                  name + ": blocking factor must be in [0, 1]");
    requireConfig(mpki >= 0.0, name + ": MPKI must be non-negative");
    requireConfig(wbr >= 0.0 && wbr <= 2.0,
                  name + ": WBR must be in [0, 2] (non-temporal stores can "
                         "push it above 1, but not above 2)");
    requireConfig(iopi >= 0.0, name + ": IOPI must be non-negative");
    requireConfig(ioBytes >= 0.0, name + ": IOSZ must be non-negative");
}

WorkloadParams
classMean(const std::string &name, WorkloadClass cls,
          const std::vector<WorkloadParams> &members)
{
    requireConfig(!members.empty(), "class mean over zero workloads");
    WorkloadParams mean;
    mean.name = name;
    mean.cls = cls;
    mean.cpiCache = 0.0;
    mean.bf = 0.0;
    mean.mpki = 0.0;
    mean.wbr = 0.0;
    mean.iopi = 0.0;
    mean.ioBytes = 0.0;
    for (const auto &m : members) {
        mean.cpiCache += m.cpiCache;
        mean.bf += m.bf;
        mean.mpki += m.mpki;
        mean.wbr += m.wbr;
        mean.iopi += m.iopi;
        mean.ioBytes += m.ioBytes;
    }
    auto n = static_cast<double>(members.size());
    mean.cpiCache /= n;
    mean.bf /= n;
    mean.mpki /= n;
    mean.wbr /= n;
    mean.iopi /= n;
    mean.ioBytes /= n;
    return mean;
}

} // namespace memsense::model
