/**
 * @file
 * One-call sensitivity report: everything the paper's methodology can
 * say about a workload on a platform, rendered as markdown.
 *
 * Combines the operating point (Eq. 1 + Eq. 4), latency and bandwidth
 * sweeps (Figs 8/10), the tradeoff equivalence (Table 7), and a
 * plain-language recommendation (the paper's Sec. VI.D guidance:
 * provide bandwidth first where it binds, otherwise optimize latency).
 */

#ifndef MEMSENSE_MODEL_REPORT_HH
#define MEMSENSE_MODEL_REPORT_HH

#include <string>

#include "model/equivalence.hh"
#include "model/sensitivity.hh"

namespace memsense::model
{

/** Everything the report needs, precomputed. */
struct SensitivityReport
{
    WorkloadParams workload;   ///< inputs
    Platform platform;         ///< inputs
    OperatingPoint baseline;   ///< solved baseline
    TradeoffSummary tradeoff;  ///< Table 7 row
    std::vector<LatencySweepPoint> latencySweep;    ///< Fig. 10 data
    std::vector<BandwidthSweepPoint> bandwidthSweep;///< Fig. 8 data
    std::string recommendation; ///< Sec. VI.D-style advice

    /** Render the full report as markdown. */
    std::string toMarkdown() const;
};

/**
 * Build the report for @p workload on @p platform.
 *
 * Accepts any SolveEngine: the analytic Solver, or the serving layer's
 * memoizing serve::Evaluator — the report's sweeps and equivalence
 * bisections revisit many operating points, so a caching engine cuts
 * the cost sharply.
 *
 * @param engine   performance solve engine
 * @param workload workload parameters
 * @param platform baseline platform
 */
SensitivityReport buildReport(const SolveEngine &engine,
                              const WorkloadParams &workload,
                              const Platform &platform);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_REPORT_HH
