/**
 * @file
 * Workload classification (paper Sec. VI.B, Fig. 6, Table 6).
 *
 * Each workload is a point in (blocking factor, memory references per
 * cycle) space: x measures latency sensitivity, y measures intrinsic
 * bandwidth demand. The paper computes per-class means (Table 6) and
 * observes that the classes form distinct clusters; core-bound
 * workloads (Proximity, some SPEC components) cluster near the origin
 * and are excluded from the class means.
 */

#ifndef MEMSENSE_MODEL_CLASSIFY_HH
#define MEMSENSE_MODEL_CLASSIFY_HH

#include <vector>

#include "model/params.hh"
#include "stats/kmeans.hh"

namespace memsense::model
{

/** A workload's position in the Fig. 6 scatter. */
struct ScatterPoint
{
    std::string name;          ///< workload name
    WorkloadClass cls;         ///< class label
    double bf = 0.0;           ///< x: latency sensitivity
    double refsPerCycle = 0.0; ///< y: bandwidth demand proxy
    bool coreBound = false;    ///< near-origin cluster member
};

/** Criteria for the near-origin (core-bound) cluster. */
struct CoreBoundCriteria
{
    double maxBf = 0.05;           ///< BF at or below this, and
    double maxRefsPerCycle = 0.002;///< refs/cycle at or below this
};

/** Classification output. */
struct Classification
{
    std::vector<ScatterPoint> points;   ///< one per input workload
    std::vector<WorkloadParams> means;  ///< per-class means (Table 6),
                                        ///< core-bound points excluded
    stats::KMeansResult clusters;       ///< unsupervised check (k-means)
    double clusterAgreement = 0.0;      ///< fraction of non-core-bound
                                        ///< points whose k-means cluster
                                        ///< matches their class label
};

/** Map a parameter bundle onto the Fig. 6 scatter. */
ScatterPoint toScatterPoint(const WorkloadParams &p,
                            const CoreBoundCriteria &crit = {});

/**
 * Classify a set of workloads: compute scatter points, per-class means
 * over the non-core-bound members, and verify cluster separation with
 * k-means (k = number of distinct non-core-bound classes present).
 */
Classification classify(const std::vector<WorkloadParams> &workloads,
                        const CoreBoundCriteria &crit = {});

} // namespace memsense::model

#endif // MEMSENSE_MODEL_CLASSIFY_HH
