/**
 * @file
 * Whole-platform description for the analytic model: cores plus the
 * memory subsystem. The paper's baseline (Sec. VI.C) is a single socket
 * with eight cores at 2.7 GHz, 75 ns compulsory latency, and four
 * channels of DDR3-1867 at ~70% efficiency (~42 GB/s, 5.25 GB/s/core).
 */

#ifndef MEMSENSE_MODEL_PLATFORM_HH
#define MEMSENSE_MODEL_PLATFORM_HH

#include <string>

#include "model/memory_config.hh"
#include "util/contract.hh"

namespace memsense::model
{

/** Core + memory platform description. */
struct Platform
{
    int cores = 8;        ///< physical cores
    int smt = 2;          ///< hardware threads per core (paper: HT on,
                          ///< "creating 16 hardware threads")
    double ghz = 2.7;     ///< core frequency
    MemoryConfig memory;  ///< memory subsystem

    /** Logical processors generating memory traffic. The model's CPI
     *  and MPI values are per-thread measurements, so Eq. 4 demand
     *  scales with this count (paper Sec. IV.C). */
    int hardwareThreads() const { return cores * smt; }

    /** Core speed in cycles per second (CPS in Eq. 4). */
    double cyclesPerSecond() const { return ghz * 1e9; }

    /** Effective memory bandwidth available per core, bytes/s. */
    double bandwidthPerCoreBps() const;

    /** Convert a duration in ns into core cycles. */
    double nsToCycles(double ns) const
    {
        MS_REQUIRE(ghz > 0.0, "frequency must be positive, got ", ghz);
        return ns * ghz;
    }

    /** Convert core cycles into ns. */
    double cyclesToNs(double cycles) const
    {
        MS_REQUIRE(ghz > 0.0, "frequency must be positive, got ", ghz);
        return cycles / ghz;
    }

    /** Validate ranges; throws ConfigError when out of domain. */
    void validate() const;

    /** Short description for table footers. */
    std::string describe() const;

    /** The paper's Sec. VI baseline platform. */
    static Platform paperBaseline();
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_PLATFORM_HH
