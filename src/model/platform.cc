#include "model/platform.hh"

#include "util/error.hh"
#include "util/string_util.hh"

namespace memsense::model
{

double
Platform::bandwidthPerCoreBps() const
{
    return memory.effectiveBandwidth() / static_cast<double>(cores);
}

void
Platform::validate() const
{
    requireConfig(cores >= 1 && cores <= 1024,
                  "core count must be in [1, 1024]");
    requireConfig(smt >= 1 && smt <= 8,
                  "SMT width must be in [1, 8]");
    requireConfig(ghz > 0.0 && ghz <= 10.0,
                  "core frequency must be in (0, 10] GHz");
    memory.validate();
}

std::string
Platform::describe() const
{
    return strformat("%d cores @ %.1f GHz, %s (%.1f GB/s effective)", cores,
                     ghz, memory.describe().c_str(),
                     memory.effectiveBandwidthGBps());
}

Platform
Platform::paperBaseline()
{
    Platform p;
    p.cores = 8;
    p.ghz = 2.7;
    p.memory.channels = 4;
    p.memory.megaTransfers = ddr::kDdr3_1867;
    p.memory.efficiency = 0.70;
    p.memory.compulsoryNs = 75.0;
    return p;
}

} // namespace memsense::model
