#include "model/paper_data.hh"

#include <limits>

#include "util/error.hh"

namespace memsense::model::paper
{

namespace
{

WorkloadParams
make(const std::string &name, WorkloadClass cls, double cpi_cache,
     double bf, double mpki, double wbr, double iopi = 0.0,
     double io_bytes = 0.0)
{
    WorkloadParams p;
    p.name = name;
    p.cls = cls;
    p.cpiCache = cpi_cache;
    p.bf = bf;
    p.mpki = mpki;
    p.wbr = wbr;
    p.iopi = iopi;
    p.ioBytes = io_bytes;
    p.validate();
    return p;
}

} // anonymous namespace

std::vector<WorkloadParams>
bigDataParams()
{
    // Table 2 as published. NITS WBR: the table prints "17%" in the
    // available copy, but the text states the NITS percentage exceeds
    // 100% due to non-temporal writes; we take 117% as the intended
    // value. NITS also carries the paper's ~2 GB/s I/O stream,
    // expressed here as IOPI * IOSZ (~0.65 B of I/O per instruction at
    // the observed instruction rate).
    return {
        make("Structured Data", WorkloadClass::BigData, 0.89, 0.20, 5.6,
             0.32),
        make("NITS", WorkloadClass::BigData, 0.96, 0.18, 5.0, 1.17,
             1.0 / 8192.0, 4096.0),
        make("Spark", WorkloadClass::BigData, 0.90, 0.25, 6.0, 0.64),
        make("Proximity", WorkloadClass::BigData, 0.93, 0.03, 0.5, 0.47),
    };
}

std::vector<WorkloadParams>
enterpriseParams()
{
    // Inferred per-workload values consistent with the Table 6 class
    // mean (1.47, 0.41, 6.7, 27%); see file comment.
    return {
        make("Virtualization", WorkloadClass::Enterprise, 1.40, 0.44, 7.6,
             0.25),
        make("Web Caching", WorkloadClass::Enterprise, 1.60, 0.46, 5.4,
             0.20),
        make("OLTP", WorkloadClass::Enterprise, 1.55, 0.40, 7.0, 0.30,
             1.0 / 20000.0, 8192.0),
        make("JVM", WorkloadClass::Enterprise, 1.33, 0.34, 6.8, 0.33),
    };
}

std::vector<WorkloadParams>
hpcParams()
{
    // Inferred per-workload values consistent with the Table 6 class
    // mean (0.75, 0.07, 26.7, 27%); see file comment.
    return {
        make("bwaves", WorkloadClass::Hpc, 0.55, 0.04, 30.0, 0.30),
        make("milc", WorkloadClass::Hpc, 0.80, 0.10, 28.0, 0.35),
        make("soplex", WorkloadClass::Hpc, 0.85, 0.09, 25.0, 0.25),
        make("wrf", WorkloadClass::Hpc, 0.80, 0.05, 23.8, 0.18),
    };
}

std::vector<WorkloadParams>
allWorkloadParams()
{
    std::vector<WorkloadParams> all = bigDataParams();
    auto ent = enterpriseParams();
    auto hpc = hpcParams();
    all.insert(all.end(), ent.begin(), ent.end());
    all.insert(all.end(), hpc.begin(), hpc.end());
    return all;
}

std::vector<WorkloadParams>
classParams()
{
    // Table 6 as published.
    return {
        make("Enterprise", WorkloadClass::Enterprise, 1.47, 0.41, 6.7,
             0.27),
        make("Big Data", WorkloadClass::BigData, 0.91, 0.21, 5.5, 0.92),
        make("HPC", WorkloadClass::Hpc, 0.75, 0.07, 26.7, 0.27),
    };
}

WorkloadParams
classParams(WorkloadClass cls)
{
    for (const auto &p : classParams()) {
        if (p.cls == cls)
            return p;
    }
    throw ConfigError("no published class parameters for " +
                      className(cls));
}

std::vector<FitObservation>
table3StructuredDataRuns()
{
    // Table 3 as published: two independent runs at each of four core
    // speeds, DDR speed fixed; MPI and MP (core cycles) measured per
    // run. CPI (measured) is the bottom comparison row.
    auto obs = [](double ghz, double mpi, double mp_cycles,
                  double cpi_measured) {
        FitObservation o;
        o.coreGhz = ghz;
        o.memMtPerSec = 1866.7;
        o.mpi = mpi;
        o.mpCycles = mp_cycles;
        o.cpiEff = cpi_measured;
        o.mpki = mpi * 1000.0;
        o.wbr = 0.32;
        o.instructions = 1.0;
        return o;
    };
    return {
        obs(2.1, 0.0056, 402, 1.32),
        obs(2.4, 0.0056, 462, 1.38),
        obs(2.7, 0.0059, 543, 1.47),
        obs(3.1, 0.0057, 631, 1.60),
        obs(2.1, 0.0056, 383, 1.32),
        obs(2.4, 0.0056, 448, 1.39),
        obs(2.7, 0.0055, 502, 1.44),
        obs(3.1, 0.0055, 598, 1.57),
    };
}

std::vector<Table7Row>
table7()
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {
        // class, +1GB/s/core gain, -10ns gain, GB/s == 10ns, ns == 8GB/s
        {WorkloadClass::Enterprise, 0.5, 3.5, 39.7, 2.0},
        {WorkloadClass::BigData, 0.9, 2.5, 27.1, 2.9},
        {WorkloadClass::Hpc, 24.0, 0.0, 0.0, inf},
    };
}

} // namespace memsense::model::paper
