/**
 * @file
 * Hierarchical (tiered) memory extension of Eq. 1 (paper Sec. VII,
 * Eq. 5):
 *
 *   CPI_eff = CPI_cache + (MPI_i * MP_i + MPI_ii * MP_ii + ...) * BF
 *
 * where MPI_k / MP_k are the miss count and penalty for requests
 * satisfied by the k-th level of the memory hierarchy. This models
 * emerging memory technologies fronted by a fast DRAM tier: the near
 * tier serves a hit fraction at DRAM-like latency, the far tier serves
 * the rest at higher latency and lower bandwidth.
 */

#ifndef MEMSENSE_MODEL_HIERARCHY_HH
#define MEMSENSE_MODEL_HIERARCHY_HH

#include <string>
#include <vector>

#include "model/params.hh"
#include "model/platform.hh"
#include "model/queuing.hh"

namespace memsense::model
{

/** One level of the memory hierarchy as seen by Eq. 5. */
struct TierAccess
{
    std::string name;     ///< tier label ("DRAM", "NVM", ...)
    double mpi = 0.0;     ///< misses per instruction served by this tier
    double mpCycles = 0.0;///< penalty for those misses, core cycles
};

/**
 * Eq. 5: effective CPI with per-tier miss counts and penalties.
 *
 * @param cpi_cache infinite-cache CPI
 * @param bf        blocking factor (shared across tiers, per Eq. 5)
 * @param tiers     per-tier access terms
 */
double hierarchicalCpi(double cpi_cache, double bf,
                       const std::vector<TierAccess> &tiers);

/** A physical memory tier for the two-level solver. */
struct MemoryTier
{
    std::string name;          ///< tier label
    double latencyNs = 75.0;   ///< compulsory latency of the tier
    double bandwidthGBps = 40; ///< effective bandwidth of the tier
    double capacityGB = 16.0;  ///< capacity (drives the hit fraction)
};

/** Result of a two-tier evaluation. */
struct TieredResult
{
    double hitFraction = 0.0;  ///< fraction of misses served near
    double cpiEff = 0.0;       ///< Eq. 5 CPI
    double nearUtilization = 0.0; ///< near-tier bandwidth utilization
    double farUtilization = 0.0;  ///< far-tier bandwidth utilization
    bool farBandwidthBound = false; ///< far tier ran out of bandwidth
};

/**
 * Two-tier memory model: a near (fast, small) tier backed by a far
 * (slow, large) tier, as sketched in Sec. VII.
 *
 * The near-tier hit fraction follows a concave working-set curve
 * hit = min(1, (near_capacity / footprint)^theta) with theta in (0, 1]
 * capturing access locality (theta = 1: uniform random over the
 * footprint; smaller theta: more skew, earlier saturation).
 */
class TieredMemoryModel
{
  public:
    /**
     * @param near      fast tier (e.g. DRAM cache)
     * @param far       capacity tier (e.g. NVM)
     * @param footprintGB workload's resident data footprint
     * @param theta     locality exponent in (0, 1]
     */
    TieredMemoryModel(MemoryTier near, MemoryTier far, double footprintGB,
                      double theta = 0.5);

    /** Near-tier hit fraction implied by the capacity/locality model. */
    double hitFraction() const;

    /**
     * Evaluate a workload at core speed @p ghz on @p cores cores.
     * Queuing on each tier uses an analytic M/D/1 model scaled by the
     * tier's bandwidth.
     */
    TieredResult evaluate(const WorkloadParams &p, double ghz,
                          int cores) const;

    /**
     * Sweep the near-tier capacity across @p capacities and return the
     * CPI at each point (the bench's tiering curve).
     */
    std::vector<TieredResult>
    capacitySweep(const WorkloadParams &p, double ghz, int cores,
                  const std::vector<double> &capacitiesGB) const;

  private:
    MemoryTier near;
    MemoryTier far;
    double footprintGB;
    double theta;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_HIERARCHY_HH
