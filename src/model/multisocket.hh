/**
 * @file
 * Multi-socket extension of the model (paper Sec. VIII: "can be
 * extended in a straightforward way to model additional memory
 * architectures such as multi-socket").
 *
 * On a multi-socket system a fraction of LLC misses is served by a
 * remote socket's memory over the coherent interconnect, paying an
 * extra latency and consuming interconnect bandwidth. Eq. 1's miss
 * penalty becomes a local/remote mixture (the same decomposition as
 * Eq. 5 with the remote path as the second "tier"), and Eq. 4 demand
 * splits between the local channels and the remote path.
 */

#ifndef MEMSENSE_MODEL_MULTISOCKET_HH
#define MEMSENSE_MODEL_MULTISOCKET_HH

#include <vector>

#include "model/platform.hh"
#include "model/queuing.hh"
#include "model/solver.hh"

namespace memsense::model
{

/** Multi-socket platform description. */
struct MultiSocketPlatform
{
    Platform socket;            ///< one socket (cores + local memory)
    int sockets = 2;            ///< socket count
    /** Fraction of misses served remotely. 0 = perfect NUMA pinning;
     *  1/sockets = fully interleaved allocation. */
    double remoteFraction = 0.25;
    double remoteExtraNs = 65.0;   ///< extra latency of a remote hop
    double interconnectGBps = 32.0;///< QPI-like link bandwidth/socket

    void validate() const;

    /** Remote fraction implied by fully interleaved pages. */
    double interleavedRemoteFraction() const
    {
        return 1.0 - 1.0 / static_cast<double>(sockets);
    }
};

/** Converged multi-socket operating point. */
struct MultiSocketPoint
{
    double cpiEff = 0.0;
    double localMpNs = 0.0;     ///< loaded local miss penalty
    double remoteMpNs = 0.0;    ///< loaded remote miss penalty
    double localUtilization = 0.0;  ///< local channels, per socket
    double interconnectUtilization = 0.0;
    bool bandwidthBound = false;///< local channels saturated
    bool interconnectBound = false; ///< link saturated
};

/**
 * Multi-socket solver: Eq. 1 with a local/remote miss-penalty mixture,
 * Eq. 4 demand split across local memory and the interconnect, and
 * queuing on both resources.
 */
class MultiSocketSolver
{
  public:
    /** Use the analytic default queuing model for both resources. */
    MultiSocketSolver();

    /** Supply a queuing model (applied to both resources). */
    explicit MultiSocketSolver(QueuingModel queuing);

    /** Solve one socket's operating point (sockets are symmetric). */
    MultiSocketPoint solve(const WorkloadParams &p,
                           const MultiSocketPlatform &plat) const;

    /**
     * Sweep the remote fraction (NUMA placement quality) and return
     * the CPI at each point — quantifies what page placement is worth
     * in the model's terms.
     */
    std::vector<MultiSocketPoint>
    remoteFractionSweep(const WorkloadParams &p,
                        MultiSocketPlatform plat,
                        const std::vector<double> &fractions) const;

  private:
    QueuingModel queuing;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_MULTISOCKET_HH
