#include "model/memory_config.hh"

#include "util/error.hh"
#include "util/string_util.hh"

namespace memsense::model
{

double
MemoryConfig::peakBandwidth() const
{
    return static_cast<double>(channels) * megaTransfers * 1e6 *
           kBytesPerTransfer;
}

double
MemoryConfig::effectiveBandwidth() const
{
    return peakBandwidth() * efficiency;
}

double
MemoryConfig::effectiveBandwidthGBps() const
{
    return effectiveBandwidth() / 1e9;
}

std::string
MemoryConfig::describe() const
{
    return strformat("%dch DDR-%.0f @%.0f%% eff, %.0f ns compulsory",
                     channels, megaTransfers, efficiency * 100.0,
                     compulsoryNs);
}

void
MemoryConfig::validate() const
{
    requireConfig(channels >= 1 && channels <= 16,
                  "channel count must be in [1, 16]");
    requireConfig(megaTransfers > 0.0, "transfer rate must be positive");
    requireConfig(efficiency > 0.0 && efficiency <= 1.0,
                  "efficiency must be in (0, 1]");
    requireConfig(compulsoryNs > 0.0, "compulsory latency must be positive");
}

MemoryConfig
MemoryConfig::withChannels(int n) const
{
    MemoryConfig c = *this;
    c.channels = n;
    return c;
}

MemoryConfig
MemoryConfig::withSpeed(double mt_per_s) const
{
    requireConfig(mt_per_s > 0.0, "transfer rate must be positive");
    MemoryConfig c = *this;
    c.megaTransfers = mt_per_s;
    return c;
}

MemoryConfig
MemoryConfig::withEfficiency(double eff) const
{
    requireConfig(eff > 0.0 && eff <= 1.0,
                  "efficiency must be in (0, 1]");
    MemoryConfig c = *this;
    c.efficiency = eff;
    return c;
}

MemoryConfig
MemoryConfig::withCompulsoryNs(double ns) const
{
    requireConfig(ns > 0.0, "compulsory latency must be positive");
    MemoryConfig c = *this;
    c.compulsoryNs = ns;
    return c;
}

} // namespace memsense::model
