/**
 * @file
 * Queuing-delay vs. bandwidth-utilization model (paper Sec. VI.C.1,
 * Fig. 7).
 *
 * The miss penalty decomposes into compulsory (unloaded) latency plus a
 * queuing delay that grows with bandwidth utilization. The paper
 * measures this relationship with Intel MLC at two DDR speeds and two
 * read/write mixes, observes that the curves coincide up to ~95%
 * utilization when the x-axis is normalized to each configuration's
 * achievable bandwidth, and averages them into one composite curve.
 *
 * QueuingModel holds such a curve — either the built-in analytic
 * default or a composite built from measured (utilization, delay)
 * samples produced by measure::LoadedLatencySweep on the simulator.
 */

#ifndef MEMSENSE_MODEL_QUEUING_HH
#define MEMSENSE_MODEL_QUEUING_HH

#include <vector>

#include "stats/curve.hh"

namespace memsense::model
{

/** Queuing delay as a function of bandwidth utilization. */
class QueuingModel
{
  public:
    /**
     * Analytic default:
     *   d(u) = linear_ns * u  +  service_ns * u / (2 * (1 - u))
     * clipped at the stable limit. The linear term models bank
     * conflicts and arrival burstiness that grow with traffic long
     * before the bus saturates (clearly visible in the measured
     * composite of bench/fig07: ~20 ns of delay at 30%% utilization);
     * the M/D/1 term supplies the blow-up near saturation.
     *
     * @param linear_ns        contention delay at 100%% utilization
     * @param service_ns       M/D/1 service-time scale
     * @param max_stable_util  utilization beyond which no stable
     *                         queuing solution exists (paper: ~0.95)
     */
    static QueuingModel analyticDefault(double linear_ns = 80.0,
                                        double service_ns = 7.0,
                                        double max_stable_util = 0.95);

    /**
     * Build from a measured composite curve. The curve maps utilization
     * in [0, 1] to queuing delay in ns and must be non-decreasing
     * after envelope cleanup.
     */
    static QueuingModel fromCurve(stats::PiecewiseCurve curve,
                                  double max_stable_util = 0.95);

    /**
     * Queuing delay in ns at @p utilization (fraction of achievable
     * bandwidth). Utilization is clamped to [0, maxStableUtilization].
     */
    double delayNs(double utilization) const;

    /** Delay at the maximum stable utilization (the paper's cap). */
    double maxStableDelayNs() const;

    /** The utilization cap. */
    double maxStableUtilization() const { return maxUtil; }

    /** True when this model came from measured samples. */
    bool isMeasured() const { return measured; }

    /** Access the underlying curve (for plotting / tests). */
    const stats::PiecewiseCurve &curve() const { return pw; }

  private:
    QueuingModel(stats::PiecewiseCurve curve, double max_stable_util,
                 bool from_measurement);

    stats::PiecewiseCurve pw;
    double maxUtil;
    bool measured;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_QUEUING_HH
