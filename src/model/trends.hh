/**
 * @file
 * CPU vs. DRAM scaling-trend data (paper Fig. 1, motivation).
 *
 * Fig. 1 plots the widening gap between processor compute scaling and
 * DRAM density/bandwidth scaling. It is industry trend data, not a
 * measurement; we reproduce it as a generated series from the growth
 * rates the paper cites (server core counts growing 33-50% per year,
 * DDR channel bandwidth growing far slower, latency roughly flat).
 */

#ifndef MEMSENSE_MODEL_TRENDS_HH
#define MEMSENSE_MODEL_TRENDS_HH

#include <vector>

namespace memsense::model
{

/** One year of the Fig. 1 trend series, normalized to the base year. */
struct TrendPoint
{
    int year = 0;
    double relativeCores = 1.0;     ///< core count vs. base year
    double relativeDramDensity = 1.0; ///< DRAM Gb/die vs. base year
    double relativeChannelBw = 1.0; ///< per-channel GB/s vs. base year
    double relativeLatency = 1.0;   ///< DRAM latency vs. base year
    double computeToCapacityGap = 1.0; ///< cores / density ratio
};

/** Growth-rate assumptions for the trend generator. */
struct TrendRates
{
    double coreGrowth = 0.40;      ///< paper: 33-50% per year
    double densityGrowth = 0.20;   ///< DRAM density lags badly
    double channelBwGrowth = 0.12; ///< DDR3->DDR4 cadence
    double latencyImprovementFrac = 0.01; ///< nearly flat
};

/** Generate the Fig. 1 series for @p years starting at @p base_year. */
std::vector<TrendPoint> scalingTrends(int base_year = 2012, int years = 9,
                                      const TrendRates &rates = {});

} // namespace memsense::model

#endif // MEMSENSE_MODEL_TRENDS_HH
