/**
 * @file
 * Phase-weighted application of the model (paper Sec. IV.D: "we can
 * apply our model to multiple program phases independently ...
 * provided we are able to apply a weight to each phase based on the
 * relative number of instructions contained in that phase").
 *
 * A PhasedWorkload is a set of (weight, parameters) pairs — e.g. a
 * Spark job's map and shuffle phases, or an OLTP day/night mix. The
 * combined CPI over a run is the instruction-weighted mean of the
 * per-phase CPIs; throughput-style metrics combine harmonically.
 */

#ifndef MEMSENSE_MODEL_PHASES_HH
#define MEMSENSE_MODEL_PHASES_HH

#include <string>
#include <vector>

#include "model/solver.hh"

namespace memsense::model
{

/** One program phase. */
struct Phase
{
    std::string name;       ///< phase label
    double weight = 1.0;    ///< relative instruction count
    WorkloadParams params;  ///< the phase's model parameters
};

/** Result of evaluating a phased workload on a platform. */
struct PhasedPoint
{
    double cpiEff = 0.0;            ///< instruction-weighted CPI
    double bandwidthTotalBps = 0.0;    ///< time-weighted bandwidth
    std::vector<OperatingPoint> perPhase; ///< each phase's solution
};

/** A workload made of weighted phases. */
class PhasedWorkload
{
  public:
    /** @param phases phases with positive weights (at least one) */
    explicit PhasedWorkload(std::vector<Phase> phases);

    /** The phases. */
    const std::vector<Phase> &phases() const { return list; }

    /**
     * Evaluate on @p plat with @p solver: each phase is solved
     * independently (the paper's per-phase application), then
     * combined by instruction weight.
     */
    PhasedPoint evaluate(const Solver &solver,
                         const Platform &plat) const;

    /**
     * Instruction-weighted average parameters — the single-phase
     * approximation of this workload. Comparing evaluate() against
     * solving these averaged parameters quantifies the error of
     * ignoring phase behavior (Jensen's inequality makes the
     * single-phase CPI differ whenever phases straddle a
     * nonlinearity such as the bandwidth knee).
     */
    WorkloadParams averagedParams(const std::string &name) const;

  private:
    std::vector<Phase> list;
    double totalWeight;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_PHASES_HH
