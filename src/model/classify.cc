#include "model/classify.hh"

#include <algorithm>
#include <map>

#include "util/error.hh"

namespace memsense::model
{

ScatterPoint
toScatterPoint(const WorkloadParams &p, const CoreBoundCriteria &crit)
{
    ScatterPoint sp;
    sp.name = p.name;
    sp.cls = p.cls;
    sp.bf = p.bf;
    sp.refsPerCycle = p.refsPerCycle();
    sp.coreBound = p.bf <= crit.maxBf &&
                   sp.refsPerCycle <= crit.maxRefsPerCycle;
    return sp;
}

Classification
classify(const std::vector<WorkloadParams> &workloads,
         const CoreBoundCriteria &crit)
{
    requireConfig(!workloads.empty(), "classify needs workloads");

    Classification out;
    out.points.reserve(workloads.size());
    std::map<WorkloadClass, std::vector<WorkloadParams>> by_class;
    for (const auto &w : workloads) {
        ScatterPoint sp = toScatterPoint(w, crit);
        out.points.push_back(sp);
        if (!sp.coreBound && w.cls != WorkloadClass::CoreBound)
            by_class[w.cls].push_back(w);
    }

    for (const auto &[cls, members] : by_class)
        out.means.push_back(classMean(className(cls), cls, members));

    // Unsupervised sanity check: k-means on normalized coordinates with
    // k = number of classes should recover the labeled grouping.
    std::vector<stats::Point> pts;
    std::vector<WorkloadClass> labels;
    double max_y = 0.0;
    double max_x = 0.0;
    for (const auto &sp : out.points) {
        if (sp.coreBound)
            continue;
        max_x = std::max(max_x, sp.bf);
        max_y = std::max(max_y, sp.refsPerCycle);
    }
    for (const auto &sp : out.points) {
        if (sp.coreBound)
            continue;
        pts.push_back({max_x > 0 ? sp.bf / max_x : 0.0,
                       max_y > 0 ? sp.refsPerCycle / max_y : 0.0});
        labels.push_back(sp.cls);
    }

    if (pts.size() >= by_class.size() && by_class.size() >= 1) {
        stats::KMeansConfig cfg;
        cfg.k = by_class.size();
        cfg.restarts = 16;
        out.clusters = stats::kMeans(pts, cfg);

        // Map each k-means cluster to its majority class and count
        // agreement.
        std::map<std::size_t, std::map<WorkloadClass, std::size_t>> votes;
        for (std::size_t i = 0; i < pts.size(); ++i)
            ++votes[out.clusters.assignment[i]][labels[i]];
        std::map<std::size_t, WorkloadClass> majority;
        for (const auto &[c, tally] : votes) {
            auto best = std::max_element(
                tally.begin(), tally.end(),
                [](const auto &a, const auto &b) {
                    return a.second < b.second;
                });
            majority[c] = best->first;
        }
        std::size_t agree = 0;
        for (std::size_t i = 0; i < pts.size(); ++i)
            if (majority[out.clusters.assignment[i]] == labels[i])
                ++agree;
        out.clusterAgreement =
            static_cast<double>(agree) / static_cast<double>(pts.size());
    }

    return out;
}

} // namespace memsense::model
