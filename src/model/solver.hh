/**
 * @file
 * Fixed-point performance solver (paper Sec. VI.C).
 *
 * Couples Eq. 1 (CPI from miss penalty) and Eq. 4 (bandwidth demand
 * from CPI) through the queuing model: the miss penalty is the
 * compulsory latency plus a queuing delay that depends on bandwidth
 * utilization, which depends on CPI, which depends on the miss penalty.
 * The paper uses "an iterative calculation to find a stable solution
 * for queuing delay vs. bandwidth demand"; this is that calculation.
 *
 * When no stable solution exists below the maximum stable utilization,
 * the workload is bandwidth bound and the CPI is the bandwidth-limited
 * CPI (Eq. 4 inverted with BW set to the system-available bandwidth),
 * with the loaded latency pinned at compulsory + maximum stable
 * queuing delay.
 */

#ifndef MEMSENSE_MODEL_SOLVER_HH
#define MEMSENSE_MODEL_SOLVER_HH

#include <functional>
#include <string>

#include "model/params.hh"
#include "model/platform.hh"
#include "model/queuing.hh"
#include "util/error.hh"

namespace memsense::model
{

/**
 * Cooperative cancellation hook for long-running solves. The solver
 * polls it between fixed-point iterations (never mid-iteration, so no
 * partial state escapes) and abandons the solve with SolveCancelled
 * when it returns true. An empty function means "never cancel". The
 * serving layer binds per-request deadlines to this: the hook compares
 * an injectable clock against the request's deadline, mirroring the
 * cooperative job deadlines of measure/resilience.hh.
 */
using CancelCheck = std::function<bool()>;

/**
 * Raised when a CancelCheck asked the solver to abandon its work
 * between iterations. Retryable by taxonomy (the inputs are fine; a
 * later attempt with a fresh budget may finish), though the serving
 * layer maps it to a `deadline_exceeded` reply instead of retrying.
 */
class SolveCancelled : public TransientError
{
  public:
    explicit SolveCancelled(int iterations_done)
        : TransientError("solve cancelled cooperatively after " +
                         std::to_string(iterations_done) +
                         " iterations"),
          iterations(iterations_done)
    {}

    const char *kind() const override { return "SolveCancelled"; }

    int iterations; ///< iterations completed before the hook fired
};

/**
 * Raised when the fixed-point iteration exhausts its budget before the
 * bracket narrows to tolerance.
 *
 * This is a *retryable* error (TransientError): the sweep layer's
 * quarantine/retry machinery handles it like any other transient job
 * failure, and the carried diagnostics (iterations spent, residual
 * bracket width, configured tolerance) tell the operator whether to
 * raise the iteration cap or loosen the tolerance.
 */
class SolverConvergenceError : public TransientError
{
  public:
    SolverConvergenceError(int iterations_used, double residual_width,
                           double tolerance_cfg)
        : TransientError(
              "fixed-point solver failed to converge: " +
              std::to_string(iterations_used) +
              " iterations left residual " +
              std::to_string(residual_width) + " above tolerance " +
              std::to_string(tolerance_cfg)),
          iterations(iterations_used), residual(residual_width),
          tolerance(tolerance_cfg)
    {}

    const char *kind() const override
    {
        return "SolverConvergenceError";
    }

    int iterations;   ///< iterations spent before giving up
    double residual;  ///< bracket width at the iteration cap
    double tolerance; ///< the tolerance that was not reached
};

/** Converged operating point of a workload on a platform. */
struct OperatingPoint
{
    double cpiEff = 0.0;        ///< effective CPI (Eq. 1 or BW-limited)
    double missPenaltyNs = 0.0; ///< loaded latency (compulsory + queuing)
    double queuingDelayNs = 0.0;///< queuing component of the above
    double bandwidthPerCoreBps = 0.0; ///< consumed bytes/s per core
    double bandwidthTotalBps = 0.0;///< consumed bytes/s, all cores
    double utilization = 0.0;   ///< consumed / effective available
    bool bandwidthBound = false;///< true when demand hit the supply cap
    int iterations = 0;         ///< fixed-point iterations used

    /** Instruction throughput per core, instructions/second. */
    double ipsPerCore(double cps) const { return cps / cpiEff; }
};

/** Tuning knobs for the fixed-point iteration. */
struct SolverOptions
{
    int maxIterations = 200;   ///< iteration cap before declaring failure
    double tolerance = 1e-9;   ///< |delta CPI| convergence threshold
    double damping = 0.5;      ///< utilization update damping in (0, 1]
};

/**
 * Anything that can map a (workload, platform) pair to its operating
 * point. The analytic Solver is the reference implementation; the
 * serving layer's memoizing serve::Evaluator is a drop-in — the
 * sensitivity/equivalence analyzers and report builder accept either,
 * so sweeps that revisit operating points get caching for free.
 *
 * Implementations must be safe for concurrent read-only use and
 * deterministic: the same inputs always yield the bit-identical point.
 */
class SolveEngine
{
  public:
    virtual ~SolveEngine() = default;

    /** Solve for the stable operating point (Eq. 1 + Eq. 4). */
    virtual OperatingPoint solve(const WorkloadParams &p,
                                 const Platform &plat) const = 0;
};

/**
 * Performance solver for (workload, platform) pairs.
 *
 * Stateless apart from the queuing model; safe to share across threads
 * for read-only use.
 */
class Solver : public SolveEngine
{
  public:
    /** Use the analytic default queuing model. */
    Solver();

    /** Use a caller-supplied (typically measured) queuing model. */
    explicit Solver(QueuingModel queuing, SolverOptions opts = {});

    /** Solve for the stable operating point. */
    OperatingPoint solve(const WorkloadParams &p,
                         const Platform &plat) const override;

    /**
     * Solve with a cooperative cancellation hook: @p cancel is polled
     * between fixed-point iterations and, when it returns true, the
     * solve is abandoned with SolveCancelled. An empty @p cancel is
     * exactly solve(p, plat).
     */
    OperatingPoint solve(const WorkloadParams &p, const Platform &plat,
                         const CancelCheck &cancel) const;

    /**
     * CPI relative to a reference operating point:
     * solve(p, plat).cpiEff / reference. Convenience for sweeps.
     */
    double relativeCpi(const WorkloadParams &p, const Platform &plat,
                       double reference_cpi) const;

    /** The queuing model in use. */
    const QueuingModel &queuing() const { return queuingModel; }

    /** The fixed-point tuning knobs in use (for fingerprinting). */
    const SolverOptions &options() const { return opts; }

  private:
    QueuingModel queuingModel;
    SolverOptions opts;
};

} // namespace memsense::model

#endif // MEMSENSE_MODEL_SOLVER_HH
