#include "model/sensitivity.hh"

#include <algorithm>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::model
{

SensitivityAnalyzer::SensitivityAnalyzer(Solver solver_in,
                                         Platform baseline)
    : solver(std::move(solver_in)), base(std::move(baseline))
{
    base.validate();
}

SensitivityAnalyzer::SensitivityAnalyzer(const SolveEngine &engine_in,
                                         Platform baseline)
    : engine(&engine_in), base(std::move(baseline))
{
    base.validate();
}

OperatingPoint
SensitivityAnalyzer::baselinePoint(const WorkloadParams &p) const
{
    return eng().solve(p, base);
}

std::vector<BandwidthSweepPoint>
SensitivityAnalyzer::bandwidthSweep(
    const WorkloadParams &p,
    const std::vector<MemoryConfig> &variants) const
{
    requireConfig(!variants.empty(), "bandwidth sweep needs variants");
    const double base_cpi = baselinePoint(p).cpiEff;
    // Every sweep point is normalized against these two; a zero would
    // turn the whole Fig. 8 series into NaN/inf. The Solver guarantees
    // both by contract, but an external SolveEngine is only promised to
    // be deterministic — re-check at the division site.
    MS_REQUIRE(base_cpi > 0.0, "baseline CPI ", base_cpi,
               " must be positive for a bandwidth sweep");
    MS_REQUIRE(base.cores >= 1, "baseline platform reports ", base.cores,
               " cores");
    const double base_per_core =
        base.memory.effectiveBandwidth() /
        static_cast<double>(base.cores) / 1e9;

    std::vector<BandwidthSweepPoint> sweep;
    sweep.reserve(variants.size());
    for (const auto &mem : variants) {
        Platform plat = base;
        plat.memory = mem;
        BandwidthSweepPoint pt;
        pt.memory = mem;
        pt.bwPerCoreGBps = mem.effectiveBandwidth() /
                           static_cast<double>(plat.cores) / 1e9;
        pt.bwDeltaPerCoreGBps = pt.bwPerCoreGBps - base_per_core;
        pt.op = eng().solve(p, plat);
        pt.cpiIncreaseFrac = pt.op.cpiEff / base_cpi - 1.0;
        sweep.push_back(pt);
    }
    std::sort(sweep.begin(), sweep.end(),
              [](const BandwidthSweepPoint &a, const BandwidthSweepPoint &b) {
                  return a.bwPerCoreGBps > b.bwPerCoreGBps;
              });
    return sweep;
}

std::vector<LatencySweepPoint>
SensitivityAnalyzer::latencySweep(const WorkloadParams &p,
                                  double max_extra_ns, double step_ns) const
{
    requireConfig(step_ns > 0.0, "latency step must be positive");
    requireConfig(max_extra_ns >= 0.0, "latency range must be non-negative");
    const double base_cpi = baselinePoint(p).cpiEff;
    MS_REQUIRE(base_cpi > 0.0, "baseline CPI ", base_cpi,
               " must be positive for a latency sweep");

    std::vector<LatencySweepPoint> sweep;
    for (double extra = 0.0; extra <= max_extra_ns + 1e-9;
         extra += step_ns) {
        Platform plat = base;
        plat.memory =
            base.memory.withCompulsoryNs(base.memory.compulsoryNs + extra);
        LatencySweepPoint pt;
        pt.compulsoryNs = plat.memory.compulsoryNs;
        pt.deltaNs = extra;
        pt.op = eng().solve(p, plat);
        pt.cpiIncreaseFrac = pt.op.cpiEff / base_cpi - 1.0;
        sweep.push_back(pt);
    }
    return sweep;
}

std::vector<DerivativePoint>
SensitivityAnalyzer::bandwidthDerivative(
    const std::vector<BandwidthSweepPoint> &sweep)
{
    std::vector<DerivativePoint> out;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        const auto &hi = sweep[i - 1]; // more bandwidth
        const auto &lo = sweep[i];     // less bandwidth
        double dbw = hi.bwPerCoreGBps - lo.bwPerCoreGBps;
        if (dbw <= 0.0)
            continue;
        MS_REQUIRE(hi.op.cpiEff > 0.0, "sweep point ", i - 1,
                   " has non-positive CPI ", hi.op.cpiEff);
        DerivativePoint d;
        d.x = lo.bwPerCoreGBps;
        d.dCpiPct =
            (lo.op.cpiEff / hi.op.cpiEff - 1.0) * 100.0 / dbw;
        out.push_back(d);
    }
    return out;
}

std::vector<DerivativePoint>
SensitivityAnalyzer::latencyDerivative(
    const std::vector<LatencySweepPoint> &sweep)
{
    std::vector<DerivativePoint> out;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        const auto &lo = sweep[i - 1]; // lower latency
        const auto &hi = sweep[i];     // higher latency
        double dns = hi.compulsoryNs - lo.compulsoryNs;
        if (dns <= 0.0)
            continue;
        MS_REQUIRE(lo.op.cpiEff > 0.0, "sweep point ", i - 1,
                   " has non-positive CPI ", lo.op.cpiEff);
        DerivativePoint d;
        d.x = hi.compulsoryNs;
        // Normalized to a 10 ns step, as the paper reports.
        d.dCpiPct =
            (hi.op.cpiEff / lo.op.cpiEff - 1.0) * 100.0 * (10.0 / dns);
        out.push_back(d);
    }
    return out;
}

std::vector<MemoryConfig>
SensitivityAnalyzer::standardBandwidthVariants(const MemoryConfig &baseline)
{
    const double speeds[] = {ddr::kDdr3_1867, ddr::kDdr3_1600,
                             ddr::kDdr3_1333, ddr::kDdr3_1067};
    std::vector<MemoryConfig> variants;
    variants.push_back(baseline);
    for (int ch = baseline.channels; ch >= 1; --ch) {
        for (double sp : speeds) {
            // memsense-lint: allow(float-equal): exact grid-point identity
            if (ch == baseline.channels && sp == baseline.megaTransfers)
                continue;
            variants.push_back(
                baseline.withChannels(ch).withSpeed(sp));
        }
    }
    return variants;
}

} // namespace memsense::model
