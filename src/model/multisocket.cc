#include "model/multisocket.hh"

#include <algorithm>
#include <cmath>

#include "model/bandwidth_model.hh"
#include "model/cpi_model.hh"
#include "model/hierarchy.hh"
#include "util/error.hh"

namespace memsense::model
{

void
MultiSocketPlatform::validate() const
{
    socket.validate();
    requireConfig(sockets >= 1 && sockets <= 16,
                  "socket count must be in [1, 16]");
    requireConfig(remoteFraction >= 0.0 && remoteFraction <= 1.0,
                  "remote fraction must be in [0, 1]");
    requireConfig(remoteExtraNs >= 0.0,
                  "remote extra latency must be non-negative");
    requireConfig(interconnectGBps > 0.0,
                  "interconnect bandwidth must be positive");
}

MultiSocketSolver::MultiSocketSolver()
    : queuing(QueuingModel::analyticDefault())
{
}

MultiSocketSolver::MultiSocketSolver(QueuingModel queuing_model)
    : queuing(std::move(queuing_model))
{
}

MultiSocketPoint
MultiSocketSolver::solve(const WorkloadParams &p,
                         const MultiSocketPlatform &plat) const
{
    p.validate();
    plat.validate();

    const Platform &s = plat.socket;
    const double cps = s.cyclesPerSecond();
    const int threads = s.hardwareThreads();
    // Sockets are symmetric: each socket's local channels serve its own
    // local misses plus the other sockets' remote misses; with a
    // uniform remote spread that totals exactly one socket's traffic,
    // so the local-channel utilization uses one socket's full demand.
    const double local_avail = s.memory.effectiveBandwidth();
    const double link_avail = plat.interconnectGBps * 1e9;
    const double rf = plat.remoteFraction;
    const double max_util = queuing.maxStableUtilization();

    // Bisection on the local-channel utilization (the dominant
    // resource); interconnect queuing is slaved to the remote share.
    auto solve_cpi = [&](double u_local) {
        double local_mp =
            s.memory.compulsoryNs + queuing.delayNs(u_local);
        // Remote misses traverse the link and then the remote socket's
        // channels (same utilization by symmetry).
        double demand_guess = u_local * local_avail;
        double u_link =
            std::min(max_util, demand_guess * rf / link_avail);
        double remote_mp = local_mp + plat.remoteExtraNs +
                           queuing.delayNs(u_link);
        std::vector<TierAccess> tiers = {
            {"local", p.mpi() * (1.0 - rf),
             s.nsToCycles(local_mp)},
            {"remote", p.mpi() * rf, s.nsToCycles(remote_mp)},
        };
        return hierarchicalCpi(p.cpiCache, p.bf, tiers);
    };
    auto implied_util = [&](double u) {
        double c = solve_cpi(u);
        return bandwidthDemandTotal(p, c, cps, threads) / local_avail;
    };

    double lo = 0.0;
    double hi = max_util;
    for (int i = 0; i < 100; ++i) {
        double mid = 0.5 * (lo + hi);
        if (implied_util(mid) > mid)
            lo = mid;
        else
            hi = mid;
    }
    double u_local = 0.5 * (lo + hi);
    double lat_cpi = solve_cpi(u_local);

    // Bandwidth floors: local channels and the interconnect.
    double bw_cpi_local = bandwidthLimitedCpi(
        p, local_avail / static_cast<double>(threads), cps);
    double bw_cpi_link =
        rf > 0.0 ? p.bytesPerInstruction() * rf * cps /
                       (link_avail / static_cast<double>(threads))
                 : 0.0;

    MultiSocketPoint pt;
    pt.cpiEff = std::max({lat_cpi, bw_cpi_local, bw_cpi_link});
    pt.bandwidthBound = bw_cpi_local >= lat_cpi;
    pt.interconnectBound =
        bw_cpi_link >= lat_cpi && bw_cpi_link >= bw_cpi_local;

    double demand =
        bandwidthDemandTotal(p, pt.cpiEff, cps, threads);
    pt.localUtilization = std::min(1.0, demand / local_avail);
    pt.interconnectUtilization =
        std::min(1.0, demand * rf / link_avail);
    pt.localMpNs =
        s.memory.compulsoryNs + queuing.delayNs(pt.localUtilization);
    pt.remoteMpNs = pt.localMpNs + plat.remoteExtraNs +
                    queuing.delayNs(pt.interconnectUtilization);
    return pt;
}

std::vector<MultiSocketPoint>
MultiSocketSolver::remoteFractionSweep(
    const WorkloadParams &p, MultiSocketPlatform plat,
    const std::vector<double> &fractions) const
{
    std::vector<MultiSocketPoint> out;
    out.reserve(fractions.size());
    for (double f : fractions) {
        plat.remoteFraction = f;
        out.push_back(solve(p, plat));
    }
    return out;
}

} // namespace memsense::model
