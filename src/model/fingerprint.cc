#include "model/fingerprint.hh"

#include <bit>
#include <charconv>

#include "util/hash.hh"

namespace memsense::model
{

namespace
{

/** Append the bit-exact double encoding: 16 hex IEEE-754 digits. */
void
appendBits(std::string &out, double v)
{
    appendHex64(out, std::bit_cast<std::uint64_t>(v));
}

/** Append a ";name=" label followed by a bit-exact double. */
void
appendField(std::string &out, const char *label, double v)
{
    out += label;
    appendBits(out, v);
}

/** Append a label followed by a base-10 integer, allocation-free. */
void
appendInt(std::string &out, const char *label, int v)
{
    out += label;
    char buf[16];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

/** Body of canonicalKey(WorkloadParams), in append style. */
void
appendWorkloadKey(std::string &out, const WorkloadParams &p)
{
    appendField(out, "w:cpi=", p.cpiCache);
    appendField(out, ";bf=", p.bf);
    appendField(out, ";mpki=", p.mpki);
    appendField(out, ";wbr=", p.wbr);
    appendField(out, ";iopi=", p.iopi);
    appendField(out, ";iob=", p.ioBytes);
}

/** Body of canonicalKey(Platform), in append style. */
void
appendPlatformKey(std::string &out, const Platform &plat)
{
    appendInt(out, "p:cores=", plat.cores);
    appendInt(out, ";smt=", plat.smt);
    appendField(out, ";ghz=", plat.ghz);
    appendInt(out, ";ch=", plat.memory.channels);
    appendField(out, ";mt=", plat.memory.megaTransfers);
    appendField(out, ";eff=", plat.memory.efficiency);
    appendField(out, ";lat=", plat.memory.compulsoryNs);
}

} // anonymous namespace

std::string
canonicalKey(const WorkloadParams &p)
{
    // Built with append (no operator+ temporaries): this runs on the
    // solve-cache hit path, once per lookup.
    std::string key;
    key.reserve(128);
    appendWorkloadKey(key, p);
    return key;
}

std::string
canonicalKey(const Platform &plat)
{
    std::string key;
    key.reserve(160);
    appendPlatformKey(key, plat);
    return key;
}

std::string
canonicalKey(const QueuingModel &qm)
{
    std::string key;
    appendField(key, "q:max=", qm.maxStableUtilization());
    key += ";meas=";
    key += qm.isMeasured() ? '1' : '0';
    key += ";knots=";
    const stats::PiecewiseCurve &curve = qm.curve();
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const stats::CurvePoint &k = curve.knot(i);
        appendBits(key, k.x);
        key += ',';
        appendBits(key, k.y);
        key += ';';
    }
    return key;
}

std::string
canonicalKey(const SolverOptions &opts)
{
    std::string key = "s:iter=";
    key += std::to_string(opts.maxIterations);
    appendField(key, ";tol=", opts.tolerance);
    appendField(key, ";damp=", opts.damping);
    return key;
}

std::string
canonicalRequestKey(const WorkloadParams &p, const Platform &plat)
{
    std::string key;
    appendCanonicalRequestKey(key, p, plat);
    return key;
}

void
appendCanonicalRequestKey(std::string &out, const WorkloadParams &p,
                          const Platform &plat)
{
    out.reserve(out.size() + 320);
    appendWorkloadKey(out, p);
    out += '|';
    appendPlatformKey(out, plat);
}

std::uint64_t
requestFingerprint(const WorkloadParams &p, const Platform &plat,
                   std::uint64_t seed)
{
    // Hashes the same fields, in the same order, as
    // canonicalRequestKey() — but over the raw bit patterns instead of
    // the hex text, pushing ~3x fewer bytes through the FNV loop on
    // the solve-cache probe path. The canonical text stays the
    // collision-proof identity; this is only the bucket index.
    Fnv1a h;
    h.add(seed);
    h.add(p.cpiCache).add(p.bf).add(p.mpki);
    h.add(p.wbr).add(p.iopi).add(p.ioBytes);
    h.add(plat.cores).add(plat.smt).add(plat.ghz);
    h.add(plat.memory.channels).add(plat.memory.megaTransfers);
    h.add(plat.memory.efficiency).add(plat.memory.compulsoryNs);
    return h.value();
}

std::uint64_t
solverFingerprint(const Solver &solver)
{
    Fnv1a h;
    h.add(canonicalKey(solver.queuing()));
    h.add(std::string("|"));
    h.add(canonicalKey(solver.options()));
    return h.value();
}

} // namespace memsense::model
