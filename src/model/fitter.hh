/**
 * @file
 * Model fitting from measured observations (paper Sec. V.A, Fig. 3).
 *
 * The methodology: run the workload at several core and memory speeds,
 * measure (CPI_eff, MPI, MP) with performance counters at each point,
 * and fit the line CPI_eff = CPI_cache + BF * (MPI * MP). The intercept
 * estimates CPI_cache, the slope estimates the blocking factor, and R^2
 * reports fit quality (the paper reports R^2 = 0.95 for the column
 * store and accepts a poor R^2 for the core-bound Proximity workload
 * because its CPI barely varies).
 */

#ifndef MEMSENSE_MODEL_FITTER_HH
#define MEMSENSE_MODEL_FITTER_HH

#include <string>
#include <vector>

#include "model/params.hh"
#include "stats/regression.hh"

namespace memsense::model
{

/** One counter measurement at a given core/memory speed setting. */
struct FitObservation
{
    double coreGhz = 0.0;     ///< core frequency during the run
    double memMtPerSec = 0.0; ///< DDR transfer rate during the run
    double cpiEff = 0.0;      ///< measured effective CPI
    double mpi = 0.0;         ///< measured LLC misses per instruction
    double mpCycles = 0.0;    ///< measured avg miss penalty, core cycles
    double mpki = 0.0;        ///< misses per kilo-instruction
    double wbr = 0.0;         ///< writebacks per miss
    double instructions = 0.0;///< instructions in the sample (weight)

    /** The regression abscissa: latency-per-instruction MPI * MP. */
    double latencyPerInstruction() const { return mpi * mpCycles; }
};

/** Fitted model with quality metrics. */
struct FittedModel
{
    WorkloadParams params;    ///< cpiCache/bf from the fit, mpki/wbr
                              ///< averaged over observations
    stats::LinearFit fit;     ///< raw regression result
    bool coreBound = false;   ///< BF below threshold: latency-insensitive

    /** Eq. 1 prediction at a given MPI*MP product. */
    double predictCpi(double mpi_times_mp) const
    {
        return fit.at(mpi_times_mp);
    }
};

/** Fitting configuration. */
struct FitOptions
{
    /** BF below this marks the workload core bound (Proximity-like). */
    double coreBoundBfThreshold = 0.05;
    /** Weight observations by instruction count when available. */
    bool weightByInstructions = false;
    /** Clamp negative fitted slopes to zero (physical BF >= 0). */
    bool clampNegativeSlope = true;
};

/**
 * Fit the Eq. 1 line to a set of observations.
 *
 * Requires at least two observations with distinct MPI*MP (vary core
 * or memory speed to obtain the spread, per Sec. V.A).
 *
 * @param name   workload name for the resulting parameter bundle
 * @param cls    class label to attach
 * @param obs    counter observations
 * @param opts   fitting options
 */
FittedModel fitModel(const std::string &name, WorkloadClass cls,
                     const std::vector<FitObservation> &obs,
                     const FitOptions &opts = {});

/**
 * Per-observation relative error of the fitted model, in the order of
 * @p obs (the paper's Table 3 bottom row).
 */
std::vector<double> validationErrors(const FittedModel &model,
                                     const std::vector<FitObservation> &obs);

} // namespace memsense::model

#endif // MEMSENSE_MODEL_FITTER_HH
