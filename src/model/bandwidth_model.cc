#include "model/bandwidth_model.hh"

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::model
{

double
bandwidthDemandPerCore(const WorkloadParams &p, double cpi_eff, double cps)
{
    requireConfig(cpi_eff > 0.0, "CPI must be positive");
    requireConfig(cps > 0.0, "core speed must be positive");
    double demand = p.bytesPerInstruction() * cps / cpi_eff;
    MS_ENSURE(demand >= 0.0, "bandwidth demand ", demand, " is negative");
    return demand;
}

double
bandwidthDemandTotal(const WorkloadParams &p, double cpi_eff, double cps,
                     int cores)
{
    requireConfig(cores >= 1, "need at least one core");
    return bandwidthDemandPerCore(p, cpi_eff, cps) *
           static_cast<double>(cores);
}

double
bandwidthLimitedCpi(const WorkloadParams &p, double bw_per_core, double cps)
{
    requireConfig(bw_per_core > 0.0, "available bandwidth must be positive");
    requireConfig(cps > 0.0, "core speed must be positive");
    double cpi = p.bytesPerInstruction() * cps / bw_per_core;
    MS_ENSURE(cpi >= 0.0, "bandwidth-limited CPI ", cpi, " is negative");
    return cpi;
}

} // namespace memsense::model
