#include "model/phases.hh"

#include "util/error.hh"

namespace memsense::model
{

PhasedWorkload::PhasedWorkload(std::vector<Phase> phases)
    : list(std::move(phases)), totalWeight(0.0)
{
    requireConfig(!list.empty(), "phased workload needs phases");
    for (const auto &ph : list) {
        requireConfig(ph.weight > 0.0,
                      ph.name + ": phase weight must be positive");
        ph.params.validate();
        totalWeight += ph.weight;
    }
}

PhasedPoint
PhasedWorkload::evaluate(const Solver &solver, const Platform &plat) const
{
    PhasedPoint out;
    out.perPhase.reserve(list.size());
    double time_weight_total = 0.0;
    for (const auto &ph : list) {
        OperatingPoint op = solver.solve(ph.params, plat);
        // Instruction-weighted CPI; bandwidth is weighted by the time
        // each phase occupies (weight * CPI).
        out.cpiEff += ph.weight / totalWeight * op.cpiEff;
        double time_weight = ph.weight * op.cpiEff;
        out.bandwidthTotalBps += time_weight * op.bandwidthTotalBps;
        time_weight_total += time_weight;
        out.perPhase.push_back(op);
    }
    out.bandwidthTotalBps /= time_weight_total;
    return out;
}

WorkloadParams
PhasedWorkload::averagedParams(const std::string &name) const
{
    WorkloadParams avg;
    avg.name = name;
    avg.cls = list.front().params.cls;
    avg.cpiCache = 0.0;
    avg.bf = 0.0;
    avg.mpki = 0.0;
    avg.wbr = 0.0;
    avg.iopi = 0.0;
    avg.ioBytes = 0.0;
    double wbr_weight = 0.0;
    for (const auto &ph : list) {
        double w = ph.weight / totalWeight;
        avg.cpiCache += w * ph.params.cpiCache;
        avg.bf += w * ph.params.bf;
        avg.mpki += w * ph.params.mpki;
        // WBR is per-miss: weight by miss count, not instructions.
        avg.wbr += w * ph.params.mpki * ph.params.wbr;
        wbr_weight += w * ph.params.mpki;
        avg.iopi += w * ph.params.iopi;
        avg.ioBytes += w * ph.params.ioBytes;
    }
    if (wbr_weight > 0.0)
        avg.wbr /= wbr_weight;
    return avg;
}

} // namespace memsense::model
