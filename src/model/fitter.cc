#include "model/fitter.hh"

#include <cmath>

#include "util/contract.hh"
#include "util/error.hh"
#include "util/trace.hh"

namespace memsense::model
{

FittedModel
fitModel(const std::string &name, WorkloadClass cls,
         const std::vector<FitObservation> &obs, const FitOptions &opts)
{
    MS_TRACE_SPAN("fitter.fit");
    MS_METRIC_COUNT("fitter.fits");
    requireConfig(obs.size() >= 2,
                  name + ": need at least two observations to fit");

    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<double> ws;
    xs.reserve(obs.size());
    ys.reserve(obs.size());
    double mpki_sum = 0.0;
    double wbr_sum = 0.0;
    for (const auto &o : obs) {
        xs.push_back(o.latencyPerInstruction());
        ys.push_back(o.cpiEff);
        ws.push_back(o.instructions > 0.0 ? o.instructions : 1.0);
        mpki_sum += o.mpki;
        wbr_sum += o.wbr;
    }

    stats::LinearFit fit;
    if (opts.weightByInstructions) {
        fit = stats::weightedLinearFit(xs, ys, ws);
        if (opts.clampNegativeSlope && fit.slope < 0.0)
            fit = stats::nonNegativeSlopeFit(xs, ys);
    } else if (opts.clampNegativeSlope) {
        fit = stats::nonNegativeSlopeFit(xs, ys);
    } else {
        fit = stats::linearFit(xs, ys);
    }

    FittedModel model;
    model.fit = fit;
    model.params.name = name;
    model.params.cls = cls;
    model.params.cpiCache = fit.intercept;
    model.params.bf = fit.slope;
    model.params.mpki = mpki_sum / static_cast<double>(obs.size());
    model.params.wbr = wbr_sum / static_cast<double>(obs.size());
    model.coreBound = fit.slope < opts.coreBoundBfThreshold;
    MS_ENSURE(std::isfinite(model.params.cpiCache) &&
                  std::isfinite(model.params.bf),
              name, ": fitted CPI_cache ", model.params.cpiCache,
              " / BF ", model.params.bf, " not finite");
    MS_ENSURE(!opts.clampNegativeSlope || model.params.bf >= 0.0,
              name, ": clamped fit produced negative BF ",
              model.params.bf);
    return model;
}

std::vector<double>
validationErrors(const FittedModel &model,
                 const std::vector<FitObservation> &obs)
{
    std::vector<double> errs;
    errs.reserve(obs.size());
    for (const auto &o : obs) {
        requireConfig(o.cpiEff > 0.0, "measured CPI must be positive");
        double predicted = model.predictCpi(o.latencyPerInstruction());
        errs.push_back((predicted - o.cpiEff) / o.cpiEff);
    }
    return errs;
}

} // namespace memsense::model
