#include "serve/cache.hh"

#include "util/contract.hh"
#include "util/error.hh"
#include "util/trace.hh"

namespace memsense::serve
{

namespace
{

/** Smallest power of two >= @p n (n clamped to [1, 2^20]). */
std::size_t
roundUpPow2(int n)
{
    std::size_t v = 1;
    std::size_t target = n < 1 ? 1 : static_cast<std::size_t>(n);
    if (target > (1u << 20))
        target = 1u << 20;
    while (v < target)
        v <<= 1;
    return v;
}

} // anonymous namespace

ShardedLruCache::ShardedLruCache(CacheOptions opts)
{
    requireConfig(opts.capacity >= 1, "cache capacity must be >= 1");
    std::size_t count = roundUpPow2(opts.shards);
    // Never spread the capacity so thin that a shard holds nothing.
    while (count > 1 && opts.capacity / count == 0)
        count >>= 1;
    shardsVec.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        // memsense-lint: allow(no-hot-loop-alloc): construction-time
        // loop, reserved to count two lines above
        shardsVec.push_back(std::make_unique<Shard>());
    shardMask = count - 1;
    shardCapacity = opts.capacity / count;
    if (shardCapacity == 0)
        shardCapacity = 1;
    totalCapacity = shardCapacity * count;
}

ShardedLruCache::Shard &
ShardedLruCache::shardFor(std::uint64_t fingerprint)
{
    // The low bits of FNV-1a are well mixed; use them directly.
    return *shardsVec[fingerprint & shardMask];
}

std::optional<model::OperatingPoint>
ShardedLruCache::lookup(std::uint64_t fingerprint, std::string_view key)
{
    Shard &s = shardFor(fingerprint);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(fingerprint);
    if (it == s.index.end()) {
        ++s.misses;
        MS_METRIC_COUNT("serve.cache.misses");
        return std::nullopt;
    }
    if (it->second->key != key) {
        // Same 64-bit fingerprint, different request: never trust it.
        ++s.collisions;
        ++s.misses;
        MS_METRIC_COUNT("serve.cache.collisions");
        MS_METRIC_COUNT("serve.cache.misses");
        return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    ++s.hits;
    MS_METRIC_COUNT("serve.cache.hits");
    return it->second->op;
}

void
ShardedLruCache::insert(std::uint64_t fingerprint, std::string key,
                        const model::OperatingPoint &op)
{
    Shard &s = shardFor(fingerprint);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(fingerprint);
    if (it != s.index.end()) {
        if (it->second->key != key) {
            // Collision with the incumbent: keep it, drop the insert.
            ++s.collisions;
            MS_METRIC_COUNT("serve.cache.collisions");
            return;
        }
        it->second->op = op;
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
    }
    if (s.lru.size() >= shardCapacity) {
        const Entry &victim = s.lru.back();
        s.index.erase(victim.fingerprint);
        s.lru.pop_back();
        ++s.evictions;
        MS_METRIC_COUNT("serve.cache.evictions");
    }
    s.lru.push_front(Entry{fingerprint, std::move(key), op});
    s.index.emplace(fingerprint, s.lru.begin());
    ++s.inserts;
    MS_METRIC_COUNT("serve.cache.inserts");
    MS_INVARIANT(s.lru.size() == s.index.size(),
                 "cache shard list/index diverged: ", s.lru.size(),
                 " vs ", s.index.size());
}

CacheStats
ShardedLruCache::stats() const
{
    CacheStats out;
    for (const auto &sp : shardsVec) {
        std::lock_guard<std::mutex> lock(sp->mu);
        out.hits += sp->hits;
        out.misses += sp->misses;
        out.collisions += sp->collisions;
        out.evictions += sp->evictions;
        out.inserts += sp->inserts;
        out.size += sp->lru.size();
    }
    return out;
}

void
ShardedLruCache::clear()
{
    for (const auto &sp : shardsVec) {
        std::lock_guard<std::mutex> lock(sp->mu);
        sp->lru.clear();
        sp->index.clear();
    }
}

} // namespace memsense::serve
