#include "serve/transport.hh"

#include <atomic>
#include <chrono>
#include <unistd.h>
#include <utility>

#include "util/error.hh"
#include "util/fault_injection.hh"

namespace memsense::serve
{

namespace
{

/**
 * LineStream over file descriptors. Owns read_fd (and write_fd when
 * distinct) unless constructed unowned (stdio). A shutdown pipe wakes
 * the blocked reader without racing the descriptor's close.
 */
class FdLineStream : public LineStream
{
  public:
    FdLineStream(net::FdHandle read_fd, net::FdHandle write_fd,
                 StreamLimits limits_in, std::string peer_label,
                 int raw_read_fd, int raw_write_fd)
        : ownedRead(std::move(read_fd)), ownedWrite(std::move(write_fd)),
          readFd(raw_read_fd), writeFd(raw_write_fd),
          limits(limits_in), peerLabel(std::move(peer_label)),
          wake(net::makePipe())
    {}

    Read
    readLine(std::string &out, int timeout_ms) override
    {
        out.clear();
        for (;;) {
            // Serve a complete line already buffered before touching
            // the descriptor again. The byte cap applies to complete
            // lines too — a hostile line that fits in one read chunk
            // must not bypass it.
            const std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                if (nl > limits.maxLineBytes) {
                    buffer.erase(0, nl + 1);
                    return Read::TooLong;
                }
                out.assign(buffer, 0, nl);
                if (!out.empty() && out.back() == '\r')
                    out.pop_back();
                buffer.erase(0, nl + 1);
                return Read::Line;
            }
            if (buffer.size() > limits.maxLineBytes) {
                buffer.clear();
                return Read::TooLong;
            }
            if (down.load(std::memory_order_acquire))
                return Read::Eof;

            const net::IoWait w = net::waitReadable2(
                readFd, wake.readEnd.get(), timeout_ms);
            if (down.load(std::memory_order_acquire))
                return Read::Eof;
            if (w == net::IoWait::Timeout)
                return Read::Idle;
            if (w == net::IoWait::Hangup)
                return drainTail(out);

            char chunk[4096];
            long n;
            try {
                MS_FAULT_POINT("server.read");
                n = net::readSome(readFd, chunk, sizeof(chunk));
            } catch (const std::exception &) {
                return Read::Error;
            }
            if (n == 0)
                return drainTail(out);
            if (n > 0)
                buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

    bool
    writeLine(const std::string &line) override
    {
        std::lock_guard<std::mutex> lock(writeMu);
        if (down.load(std::memory_order_acquire))
            return false;
        // One contiguous buffer per reply: interleaving-safe under the
        // lock and exactly one write syscall in the common case.
        std::string framed = line;
        framed.push_back('\n');
        try {
            MS_FAULT_POINT("server.write");
            return net::writeAll(writeFd, framed.data(), framed.size());
        } catch (const std::exception &) {
            return false;
        }
    }

    void
    shutdownStream() override
    {
        down.store(true, std::memory_order_release);
        net::pokePipe(wake.writeEnd.get());
    }

    std::string peer() const override { return peerLabel; }

  private:
    /** EOF with a final unterminated line still counts as that line. */
    Read
    drainTail(std::string &out)
    {
        if (buffer.empty())
            return Read::Eof;
        out = std::move(buffer);
        buffer.clear();
        if (!out.empty() && out.back() == '\r')
            out.pop_back();
        return Read::Line;
    }

    net::FdHandle ownedRead;  ///< may be empty (stdio is unowned)
    net::FdHandle ownedWrite; ///< distinct write end, when owned
    int readFd;
    int writeFd;
    StreamLimits limits;
    std::string peerLabel;
    std::string buffer;
    std::mutex writeMu;
    std::atomic<bool> down{false};
    net::PipePair wake;
};

/** LineStream over an in-process pipe pair (server side). */
class InProcessStream : public LineStream
{
  public:
    InProcessStream(std::shared_ptr<detail::LinePipe> in,
                    std::shared_ptr<detail::LinePipe> out,
                    std::string peer_label)
        : fromPeer(std::move(in)), toPeer(std::move(out)),
          peerLabel(std::move(peer_label))
    {}

    ~InProcessStream() override
    {
        // Closing both pipes on teardown is the in-process analogue of
        // close(fd): a client blocked in recv() sees Eof, not a hang.
        fromPeer->close();
        toPeer->close();
    }

    Read
    readLine(std::string &out, int timeout_ms) override
    {
        try {
            MS_FAULT_POINT("server.read");
        } catch (const std::exception &) {
            return Read::Error;
        }
        return fromPeer->pop(out, timeout_ms);
    }

    bool
    writeLine(const std::string &line) override
    {
        std::lock_guard<std::mutex> lock(writeMu);
        try {
            MS_FAULT_POINT("server.write");
        } catch (const std::exception &) {
            return false;
        }
        {
            std::lock_guard<std::mutex> plock(toPeer->mu);
            if (toPeer->closed)
                return false;
        }
        toPeer->push(line);
        return true;
    }

    void
    shutdownStream() override
    {
        fromPeer->close();
        toPeer->close();
    }

    std::string peer() const override { return peerLabel; }

  private:
    std::shared_ptr<detail::LinePipe> fromPeer;
    std::shared_ptr<detail::LinePipe> toPeer;
    std::string peerLabel;
    std::mutex writeMu;
};

/** Transport over a bound listener with self-pipe shutdown. */
class SocketTransport : public Transport
{
  public:
    SocketTransport(net::Listener listener_in, StreamLimits limits_in)
        : listener(std::move(listener_in)), limits(limits_in),
          wake(net::makePipe())
    {}

    ~SocketTransport() override
    {
        if (!listener.unixPath.empty())
            ::unlink(listener.unixPath.c_str());
    }

    Accept
    accept(std::unique_ptr<LineStream> &out, int timeout_ms) override
    {
        if (down.load(std::memory_order_acquire))
            return Accept::Closed;
        try {
            MS_FAULT_POINT("server.accept");
        } catch (const std::exception &) {
            return Accept::Idle; // injected accept fault: drop the beat
        }
        const net::IoWait w = net::waitReadable2(
            listener.fd.get(), wake.readEnd.get(), timeout_ms);
        if (down.load(std::memory_order_acquire))
            return Accept::Closed;
        if (w == net::IoWait::Timeout)
            return Accept::Idle;
        if (w == net::IoWait::Hangup)
            return Accept::Closed;
        net::FdHandle conn = net::acceptOn(listener.fd.get());
        if (!conn.valid())
            return Accept::Idle;
        const int id = ++acceptCount;
        const std::string label =
            (listener.unixPath.empty() ? "tcp:" : "unix:") +
            std::to_string(id);
        out = makeSocketStream(std::move(conn), limits, label);
        return Accept::Conn;
    }

    void
    shutdownTransport() override
    {
        down.store(true, std::memory_order_release);
        net::pokePipe(wake.writeEnd.get());
    }

    std::string describe() const override { return listener.address; }

  private:
    net::Listener listener;
    StreamLimits limits;
    net::PipePair wake;
    std::atomic<bool> down{false};
    int acceptCount = 0; ///< accessed only by the accept thread
};

} // anonymous namespace

namespace detail
{

void
LinePipe::push(std::string line)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closed)
            return;
        lines.push_back(std::move(line));
    }
    cv.notify_one();
}

void
LinePipe::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
    }
    cv.notify_all();
}

LineStream::Read
LinePipe::pop(std::string &out, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                [this] { return closed || !lines.empty(); });
    if (!lines.empty()) {
        out = std::move(lines.front());
        lines.pop_front();
        return LineStream::Read::Line;
    }
    return closed ? LineStream::Read::Eof : LineStream::Read::Idle;
}

} // namespace detail

std::unique_ptr<LineStream>
makeSocketStream(net::FdHandle fd, const StreamLimits &limits,
                 const std::string &peer_label)
{
    const int raw = fd.get();
    return std::make_unique<FdLineStream>(std::move(fd), net::FdHandle(),
                                          limits, peer_label, raw, raw);
}

std::unique_ptr<LineStream>
makeStdioStream(const StreamLimits &limits)
{
    // Unowned descriptors: never close stdin/stdout on stream teardown.
    return std::make_unique<FdLineStream>(net::FdHandle(), net::FdHandle(),
                                          limits, "stdio", 0, 1);
}

std::unique_ptr<Transport>
makeSocketTransport(net::Listener listener, const StreamLimits &limits)
{
    return std::make_unique<SocketTransport>(std::move(listener), limits);
}

namespace
{

/** One-shot stdin/stdout transport (see header). */
class StdioTransport : public Transport
{
  public:
    explicit StdioTransport(StreamLimits limits_in)
        : limits(limits_in)
    {}

    Accept
    accept(std::unique_ptr<LineStream> &out, int timeout_ms) override
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!handedOut) {
            handedOut = true;
            out = makeStdioStream(limits);
            return Accept::Conn;
        }
        cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return closed; });
        return closed ? Accept::Closed : Accept::Idle;
    }

    void
    shutdownTransport() override
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed = true;
        }
        cv.notify_all();
    }

    std::string describe() const override { return "stdio"; }

  private:
    StreamLimits limits;
    std::mutex mu;
    std::condition_variable cv;
    bool handedOut = false;
    bool closed = false;
};

} // anonymous namespace

std::unique_ptr<Transport>
makeStdioTransport(const StreamLimits &limits)
{
    return std::make_unique<StdioTransport>(limits);
}

Transport::Accept
InProcessTransport::accept(std::unique_ptr<LineStream> &out,
                           int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                [this] { return closed || !pending.empty(); });
    if (!pending.empty()) {
        out = std::move(pending.front());
        pending.pop_front();
        return Accept::Conn;
    }
    return closed ? Accept::Closed : Accept::Idle;
}

void
InProcessTransport::shutdownTransport()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
    }
    cv.notify_all();
}

InProcessClient
InProcessTransport::connect()
{
    auto to_server = std::make_shared<detail::LinePipe>();
    auto to_client = std::make_shared<detail::LinePipe>();
    int id;
    {
        std::lock_guard<std::mutex> lock(mu);
        requireConfig(!closed, "in-process transport already shut down");
        id = ++nextId;
        pending.push_back(std::make_unique<InProcessStream>(
            to_server, to_client, "inproc:" + std::to_string(id)));
    }
    cv.notify_one();
    return InProcessClient(std::move(to_server), std::move(to_client));
}

namespace
{

/** Client-side LineStream over an in-process connection (loadgen). */
class InProcessClientStream : public LineStream
{
  public:
    InProcessClientStream(std::shared_ptr<detail::LinePipe> to_server,
                          std::shared_ptr<detail::LinePipe> to_client)
        : toServer(std::move(to_server)), toClient(std::move(to_client))
    {}

    Read
    readLine(std::string &out, int timeout_ms) override
    {
        return toClient->pop(out, timeout_ms);
    }

    bool
    writeLine(const std::string &line) override
    {
        {
            std::lock_guard<std::mutex> lock(toServer->mu);
            if (toServer->closed)
                return false;
        }
        toServer->push(line);
        return true;
    }

    void
    shutdownStream() override
    {
        toServer->close();
        toClient->close();
    }

    std::string peer() const override { return "inproc-client"; }

  private:
    std::shared_ptr<detail::LinePipe> toServer;
    std::shared_ptr<detail::LinePipe> toClient;
};

} // anonymous namespace

std::unique_ptr<LineStream>
InProcessClient::asStream()
{
    return std::make_unique<InProcessClientStream>(toServer, toClient);
}

} // namespace memsense::serve
