/**
 * @file
 * Load generator for the evaluation server.
 *
 * Replays a set of fixture request lines against a server over N
 * concurrent connections, classifies every reply (ok / degraded /
 * overloaded / deadline_exceeded / other error / transport failure),
 * and reports latency percentiles and the shed rate. This is both the
 * memsense_loadgen CLI's engine and the traffic source of the chaos
 * and soak suites, so it has the same testability seams as the server:
 * the connection factory (Dialer), the clock, and the backoff sleeper
 * are all injectable — tests dial in-process fake servers and record
 * sleeps instead of waiting.
 *
 * Failure behaviour mirrors what a well-behaved client of this server
 * should do: a transport failure (refused dial, dropped connection)
 * triggers a bounded exponential-backoff reconnect (util/retry.hh's
 * deterministic schedule, streamed per connection); when the attempt
 * budget is exhausted the connection gives up and the report says so —
 * the loadgen itself never hangs and never crashes on a flaky server.
 */

#ifndef MEMSENSE_SERVE_LOADGEN_HH
#define MEMSENSE_SERVE_LOADGEN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/transport.hh"
#include "util/retry.hh"

namespace memsense::serve
{

/** Connection factory: dial one new connection to the server (throw
 *  ConfigError on failure — the loadgen retries under its policy). */
using Dialer = std::function<std::unique_ptr<LineStream>()>;

/** Knobs of one load-generation run. */
struct LoadgenOptions
{
    int connections = 1;       ///< concurrent client connections
    std::uint64_t totalRequests = 100; ///< across all connections
    /** Fixture request lines, replayed round-robin. Each gets a fresh
     *  `"id":"lg-<n>"` (and `deadline_ms`, when set) injected, so
     *  replies can be matched and deduplicated. */
    std::vector<std::string> fixtures;
    double deadlineMs = 0.0;   ///< per-request deadline to inject; 0 = none
    double targetRatePerSec = 0.0; ///< open-loop pacing; 0 = closed loop
    /** Fraction of totalRequests driven by connection 0 — "the hot
     *  client". 0 = uniform work stealing across connections. With a
     *  skew, connection 0 replays indices [0, hot) while the others
     *  share [hot, total): a deterministic noisy-neighbor mix for
     *  exercising per-client quotas. */
    double hotClientFraction = 0.0;
    int recvTimeoutMs = 5000;  ///< reply wait budget per request
    RetryPolicy reconnect;     ///< bounded backoff for redials
    std::function<double()> nowMs;      ///< injectable clock
    std::function<void(double)> sleepMs; ///< injectable backoff/pace sleep

    /** Validate the knobs; throws ConfigError on nonsense. */
    void validate() const;
};

/** Outcome of one run. Every sent request lands in exactly one
 *  classification bucket: sent == ok + degraded + overloaded +
 *  deadlineExceeded + otherErrors + transportErrors. */
struct LoadReport
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;         ///< full-fidelity `"ok":true`
    std::uint64_t degraded = 0;   ///< `"ok":true` with `"degraded":true`
    std::uint64_t overloaded = 0;
    std::uint64_t quotaExceeded = 0;   ///< per-client quota sheds
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t otherErrors = 0;     ///< any other `"ok":false`
    std::uint64_t transportErrors = 0; ///< no reply (drop/timeout)
    std::uint64_t reconnects = 0;      ///< successful redials
    std::uint64_t dialFailures = 0;    ///< failed dial attempts
    std::uint64_t hotClientSent = 0;   ///< sent by conn 0 under skew
    /** Replied requests contributing to the percentiles below; 0 means
     *  p50/p99 are the 0.0 placeholder, not a measured latency. */
    std::uint64_t latencySamples = 0;
    double p50Ms = 0.0; ///< nearest-rank median reply latency
    double p99Ms = 0.0; ///< nearest-rank 99th percentile latency

    /** Requests classified (the ledger right-hand side). */
    std::uint64_t classified() const
    {
        return ok + degraded + overloaded + quotaExceeded +
               deadlineExceeded + otherErrors + transportErrors;
    }

    /** Fraction of sent requests shed or degraded by the server. */
    double shedRate() const
    {
        return sent == 0
                   ? 0.0
                   : static_cast<double>(overloaded + degraded) /
                         static_cast<double>(sent);
    }

    /** One human-readable summary line. */
    std::string describe() const;

    /** JSON object (stable key order) for scripted assertions. */
    std::string toJson() const;
};

/** Run the load: dial via @p dial, replay per @p opts, aggregate. */
LoadReport runLoadgen(const Dialer &dial, const LoadgenOptions &opts);

/**
 * Rewrite one fixture line for send @p index: inject the loadgen id
 * (first-key-wins over any fixture id) and, when @p deadline_ms > 0,
 * a deadline. Exposed for tests.
 */
std::string loadgenRequestLine(const std::string &fixture,
                               std::uint64_t index, double deadline_ms);

/**
 * Nearest-rank percentile of @p sorted (ascending) samples: for n
 * samples and p in [0, 1], the value at rank ceil(p * n), clamped to
 * [1, n]; 0.0 when there are no samples. No interpolation — with one
 * sample every percentile IS that sample, and p99 of a full set is the
 * largest sample, never an index past the end. Exposed for tests.
 */
double percentileNearestRank(const std::vector<double> &sorted,
                             double p);

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_LOADGEN_HH
