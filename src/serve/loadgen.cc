#include "serve/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "serve/json.hh"
#include "util/error.hh"
#include "util/string_util.hh"

namespace memsense::serve
{

namespace
{

double
steadyNowMs()
{
    using namespace std::chrono;
    // memsense-lint: allow(no-nondeterminism): the default wall clock
    // of a latency-measuring tool; tests inject LoadgenOptions::nowMs
    const auto since_epoch = steady_clock::now().time_since_epoch();
    return duration<double, std::milli>(since_epoch).count();
}

void
realSleepMs(double delay_ms)
{
    if (delay_ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
}

/** Reply classification buckets (exactly one per sent request). */
enum class ReplyClass
{
    Ok,
    Degraded,
    Overloaded,
    QuotaExceeded,
    DeadlineExceeded,
    OtherError,
};

ReplyClass
classifyReply(const std::string &line)
{
    try {
        JsonValue v = parseJson(line);
        if (v.has("ok") && v.at("ok").kind == JsonValue::Kind::Bool &&
            v.at("ok").boolean) {
            const bool degraded =
                v.has("degraded") &&
                v.at("degraded").kind == JsonValue::Kind::Bool &&
                v.at("degraded").boolean;
            return degraded ? ReplyClass::Degraded : ReplyClass::Ok;
        }
        if (v.has("error") && v.at("error").has("type")) {
            const std::string &type =
                v.at("error").at("type").asString("error.type");
            if (type == "overloaded")
                return ReplyClass::Overloaded;
            if (type == "quota_exceeded")
                return ReplyClass::QuotaExceeded;
            if (type == "deadline_exceeded")
                return ReplyClass::DeadlineExceeded;
        }
    } catch (const ConfigError &) {
        // An unparseable reply still counts: the request got *a*
        // response, just not one we recognize.
    }
    return ReplyClass::OtherError;
}

/** Shared mutable state of one run. */
struct RunState
{
    /** Shared work-stealing cursor. Under a hot-client skew it starts
     *  at hotCount (the cold range); otherwise at 0 (the whole run). */
    std::atomic<std::uint64_t> nextIndex{0};
    /** Connection 0's private cursor over [0, hotCount) under skew. */
    std::atomic<std::uint64_t> hotNext{0};
    std::mutex mu;
    LoadReport report;
    std::vector<double> latenciesMs;
    double startMs = 0.0;
};

} // anonymous namespace

void
LoadgenOptions::validate() const
{
    requireConfig(connections >= 1, "loadgen connections must be >= 1");
    requireConfig(!fixtures.empty(),
                  "loadgen needs at least one fixture line");
    // Checked up front so a bad fixture is a clean ConfigError here,
    // not a throw inside a connection thread (= std::terminate).
    for (const std::string &f : fixtures)
        requireConfig(f.find('{') != std::string::npos,
                      "fixture line is not a JSON object: " + f);
    requireConfig(deadlineMs >= 0.0, "loadgen deadline_ms must be >= 0");
    requireConfig(targetRatePerSec >= 0.0,
                  "loadgen rate must be >= 0");
    requireConfig(hotClientFraction >= 0.0 && hotClientFraction <= 1.0,
                  "loadgen hot-client fraction must be in [0, 1]");
    requireConfig(recvTimeoutMs >= 1,
                  "loadgen recv timeout must be >= 1 ms");
    reconnect.validate();
}

std::string
LoadReport::describe() const
{
    return strformat(
        "%llu sent: %llu ok, %llu degraded, %llu overloaded, %llu "
        "quota, %llu deadline, %llu other-err, %llu transport-err; "
        "%llu reconnects; p50 %.3f ms, p99 %.3f ms (%llu samples), "
        "shed rate %.3f",
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(degraded),
        static_cast<unsigned long long>(overloaded),
        static_cast<unsigned long long>(quotaExceeded),
        static_cast<unsigned long long>(deadlineExceeded),
        static_cast<unsigned long long>(otherErrors),
        static_cast<unsigned long long>(transportErrors),
        static_cast<unsigned long long>(reconnects), p50Ms, p99Ms,
        static_cast<unsigned long long>(latencySamples), shedRate());
}

std::string
LoadReport::toJson() const
{
    auto field = [](const char *name, std::uint64_t v) {
        return "\"" + std::string(name) +
               "\":" + std::to_string(static_cast<unsigned long long>(v));
    };
    return "{" + field("sent", sent) + "," + field("ok", ok) + "," +
           field("degraded", degraded) + "," +
           field("overloaded", overloaded) + "," +
           field("quota_exceeded", quotaExceeded) + "," +
           field("deadline_exceeded", deadlineExceeded) + "," +
           field("other_errors", otherErrors) + "," +
           field("transport_errors", transportErrors) + "," +
           field("reconnects", reconnects) + "," +
           field("dial_failures", dialFailures) + "," +
           field("hot_client_sent", hotClientSent) + "," +
           field("latency_samples", latencySamples) + ",\"p50_ms\":" +
           jsonNumber(p50Ms) + ",\"p99_ms\":" + jsonNumber(p99Ms) +
           ",\"shed_rate\":" + jsonNumber(shedRate()) + "}";
}

std::string
loadgenRequestLine(const std::string &fixture, std::uint64_t index,
                   double deadline_ms)
{
    const std::size_t open = fixture.find('{');
    requireConfig(open != std::string::npos,
                  "fixture line is not a JSON object: " + fixture);
    // First-key-wins in the request parser, so injecting at the front
    // overrides any id/deadline the fixture itself carries.
    std::string injected = "{\"id\":\"lg-" + std::to_string(index) + "\"";
    if (deadline_ms > 0.0)
        injected += ",\"deadline_ms\":" + jsonNumber(deadline_ms);
    const std::string rest = fixture.substr(open + 1);
    // An empty object needs no separating comma.
    const std::size_t body = rest.find_first_not_of(" \t");
    if (body != std::string::npos && rest[body] != '}')
        injected += ",";
    return injected + rest;
}

LoadReport
runLoadgen(const Dialer &dial, const LoadgenOptions &opts)
{
    opts.validate();
    requireConfig(static_cast<bool>(dial), "loadgen needs a dialer");
    const auto now =
        opts.nowMs ? opts.nowMs : std::function<double()>(steadyNowMs);
    const auto sleep = opts.sleepMs
                           ? opts.sleepMs
                           : std::function<void(double)>(realSleepMs);

    RunState state;
    state.startMs = now();
    state.latenciesMs.reserve(opts.totalRequests);
    // Hot-client skew: connection 0 owns the first hotCount indices;
    // the shared cursor starts past them (see RunState).
    const std::uint64_t hotCount = static_cast<std::uint64_t>(
        opts.hotClientFraction *
        static_cast<double>(opts.totalRequests));
    state.nextIndex.store(hotCount);

    auto connectionLoop = [&](int conn_id) {
        const bool is_hot = hotCount > 0 && conn_id == 0;
        std::unique_ptr<LineStream> stream;
        // Dial (and re-dial) under the bounded backoff policy; stream
        // = per-connection id keeps the jitter schedules decorrelated.
        // The attempt budget is per redial sequence (it resets after a
        // successful dial), so one flaky stretch cannot starve the
        // rest of an otherwise healthy run.
        auto redial = [&]() -> bool {
            int dial_attempts = 0;
            while (dial_attempts < opts.reconnect.maxAttempts) {
                ++dial_attempts;
                try {
                    stream = dial();
                    if (stream)
                        return true;
                } catch (const std::exception &) {
                    // fall through to backoff
                }
                {
                    std::lock_guard<std::mutex> lock(state.mu);
                    ++state.report.dialFailures;
                }
                if (dial_attempts < opts.reconnect.maxAttempts)
                    sleep(opts.reconnect.delayMs(
                        dial_attempts + 1,
                        static_cast<std::uint64_t>(conn_id)));
            }
            return false;
        };
        if (!redial())
            return;

        std::string reply;
        for (;;) {
            const std::uint64_t index = is_hot
                                            ? state.hotNext.fetch_add(1)
                                            : state.nextIndex.fetch_add(1);
            if (is_hot ? index >= hotCount : index >= opts.totalRequests)
                return;
            // Open-loop pacing: send k at startMs + k/rate, globally.
            if (opts.targetRatePerSec > 0.0) {
                const double due_ms =
                    state.startMs + 1000.0 *
                                        static_cast<double>(index) /
                                        opts.targetRatePerSec;
                const double wait_ms = due_ms - now();
                if (wait_ms > 0.0)
                    sleep(wait_ms);
            }
            // memsense-lint: allow(no-hot-loop-alloc): one line built
            // per network request; the socket round-trip dominates
            const std::string line = loadgenRequestLine(
                opts.fixtures[index % opts.fixtures.size()], index,
                opts.deadlineMs);

            bool replied = false;
            ReplyClass cls = ReplyClass::OtherError;
            double latency_ms = 0.0;
            const double sent_at = now();
            if (stream->writeLine(line)) {
                const LineStream::Read r =
                    stream->readLine(reply, opts.recvTimeoutMs);
                if (r == LineStream::Read::Line) {
                    replied = true;
                    latency_ms = now() - sent_at;
                    cls = classifyReply(reply);
                }
            }
            {
                std::lock_guard<std::mutex> lock(state.mu);
                ++state.report.sent;
                if (is_hot)
                    ++state.report.hotClientSent;
                if (replied) {
                    // memsense-lint: allow(no-hot-loop-alloc):
                    // reserved to totalRequests before the run
                    state.latenciesMs.push_back(latency_ms);
                    switch (cls) {
                      case ReplyClass::Ok:
                        ++state.report.ok;
                        break;
                      case ReplyClass::Degraded:
                        ++state.report.degraded;
                        break;
                      case ReplyClass::Overloaded:
                        ++state.report.overloaded;
                        break;
                      case ReplyClass::QuotaExceeded:
                        ++state.report.quotaExceeded;
                        break;
                      case ReplyClass::DeadlineExceeded:
                        ++state.report.deadlineExceeded;
                        break;
                      case ReplyClass::OtherError:
                        ++state.report.otherErrors;
                        break;
                    }
                } else {
                    ++state.report.transportErrors;
                }
            }
            if (!replied) {
                // The connection is suspect after a drop or timeout:
                // tear it down and redial under the backoff budget.
                stream->shutdownStream();
                stream.reset();
                if (!redial())
                    return;
                std::lock_guard<std::mutex> lock(state.mu);
                ++state.report.reconnects;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(opts.connections));
    for (int c = 0; c < opts.connections; ++c)
        // memsense-lint: allow(no-hot-loop-alloc): reserved to
        // opts.connections just above
        threads.emplace_back(connectionLoop, c);
    for (auto &t : threads)
        t.join();

    LoadReport report = state.report;
    // Nearest-rank percentiles over the replied requests only. An
    // all-shed/all-timeout run has no samples: the report then says so
    // (latency_samples == 0) instead of presenting 0.0 ms as measured.
    std::sort(state.latenciesMs.begin(), state.latenciesMs.end());
    report.latencySamples = state.latenciesMs.size();
    report.p50Ms = percentileNearestRank(state.latenciesMs, 0.50);
    report.p99Ms = percentileNearestRank(state.latenciesMs, 0.99);
    return report;
}

double
percentileNearestRank(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double n = static_cast<double>(sorted.size());
    // Nearest rank, 1-based: ceil(p * n), clamped so p = 0 still maps
    // to the first sample and rounding noise can never index past the
    // end (the old p * (size-1) truncation underweighted the tail and
    // read garbage ranks for tiny sample counts).
    double rank = std::ceil(p * n);
    if (rank < 1.0)
        rank = 1.0;
    if (rank > n)
        rank = n;
    // memsense-lint: allow(unclamped-double-to-int): clamped to [1, n]
    // just above
    return sorted[static_cast<std::size_t>(rank) - 1];
}

} // namespace memsense::serve
