#include "serve/service.hh"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "util/error.hh"
#include "util/retry.hh"
#include "util/string_util.hh"
#include "util/trace.hh"

namespace memsense::serve
{

std::string
ServiceSummary::describe() const
{
    return strformat("%zu lines: %zu solved, %zu failed, %zu parse "
                     "errors; cache %llu hits / %llu misses / %llu "
                     "evictions (%zu entries)%s",
                     lines, solved, failed, parseErrors,
                     static_cast<unsigned long long>(cache.hits),
                     static_cast<unsigned long long>(cache.misses),
                     static_cast<unsigned long long>(cache.evictions),
                     cache.size,
                     interrupted ? "; interrupted" : "");
}

ServiceSummary
runEvalService(std::istream &in, std::ostream &out,
               const ServiceOptions &opts)
{
    requireConfig(opts.repeat >= 1, "repeat must be >= 1");
    MS_TRACE_SPAN("serve.service");

    // Ingest: one slot per non-empty line, either a parsed request or
    // a pre-rendered parse-error result line.
    struct Slot
    {
        bool parsed = false;
        std::size_t requestIndex = 0; ///< into requests when parsed
        std::string errorLine;        ///< rendered when !parsed
    };
    std::vector<Slot> slots;
    std::vector<EvalRequest> requests;
    std::string line;
    std::size_t line_number = 0;
    ServiceSummary summary;
    const auto stopped = [&opts] {
        return opts.stop != nullptr &&
               opts.stop->load(std::memory_order_relaxed);
    };
    while (!stopped() && std::getline(in, line)) {
        ++line_number;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        }
        if (blank)
            continue;
        ++summary.lines;
        Slot slot;
        try {
            EvalRequest req = parseRequestLine(line, line_number);
            slot.parsed = true;
            slot.requestIndex = requests.size();
            // memsense-lint: allow(no-hot-loop-alloc): once-per-batch
            // input parse (line count unknown until EOF), not the
            // per-request evaluation loop
            requests.push_back(std::move(req));
        } catch (const ConfigError &e) {
            ++summary.parseErrors;
            MS_METRIC_COUNT("serve.parse_errors");
            slot.errorLine = parseErrorLine(line_number, e.what());
        } catch (const std::exception &) {
            // Non-ConfigError parse failures (an injected fault at
            // serve.json.parse, say) still cost the batch exactly one
            // error line in this slot, never the whole run.
            const ExceptionInfo info =
                describeException(std::current_exception());
            ++summary.parseErrors;
            MS_METRIC_COUNT("serve.parse_errors");
            slot.errorLine = parseErrorLine(
                line_number, info.type, info.message,
                classifyException(std::current_exception()) ==
                    ErrorClass::Fatal);
        }
        // memsense-lint: allow(no-hot-loop-alloc): same input parse
        slots.push_back(std::move(slot));
    }

    summary.interrupted = stopped();

    Evaluator evaluator{model::Solver(), opts.eval};
    std::vector<EvalOutcome> outcomes;
    // Pass 0 always runs so every ingested line gets its result even
    // on an interrupted run; the stop flag only cuts warm repeats.
    for (int pass = 0; pass < opts.repeat; ++pass) {
        if (pass > 0 && stopped()) {
            summary.interrupted = true;
            break;
        }
        outcomes = evaluator.evaluateBatch(requests);
    }

    for (const Slot &slot : slots) {
        if (!slot.parsed) {
            out << slot.errorLine << "\n";
            continue;
        }
        const EvalOutcome &o = outcomes[slot.requestIndex];
        if (o.result.ok())
            ++summary.solved;
        else
            ++summary.failed;
        if (o.cacheHit)
            ++summary.cacheHits;
        out << resultLine(o) << "\n";
    }
    summary.cache = evaluator.cacheStats();
    return summary;
}

} // namespace memsense::serve
