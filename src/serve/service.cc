#include "serve/service.hh"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "util/error.hh"
#include "util/string_util.hh"
#include "util/trace.hh"

namespace memsense::serve
{

std::string
ServiceSummary::describe() const
{
    return strformat("%zu lines: %zu solved, %zu failed, %zu parse "
                     "errors; cache %llu hits / %llu misses / %llu "
                     "evictions (%zu entries)",
                     lines, solved, failed, parseErrors,
                     static_cast<unsigned long long>(cache.hits),
                     static_cast<unsigned long long>(cache.misses),
                     static_cast<unsigned long long>(cache.evictions),
                     cache.size);
}

ServiceSummary
runEvalService(std::istream &in, std::ostream &out,
               const ServiceOptions &opts)
{
    requireConfig(opts.repeat >= 1, "repeat must be >= 1");
    MS_TRACE_SPAN("serve.service");

    // Ingest: one slot per non-empty line, either a parsed request or
    // a pre-rendered parse-error result line.
    struct Slot
    {
        bool parsed = false;
        std::size_t requestIndex = 0; ///< into requests when parsed
        std::string errorLine;        ///< rendered when !parsed
    };
    std::vector<Slot> slots;
    std::vector<EvalRequest> requests;
    std::string line;
    std::size_t line_number = 0;
    ServiceSummary summary;
    while (std::getline(in, line)) {
        ++line_number;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        }
        if (blank)
            continue;
        ++summary.lines;
        Slot slot;
        try {
            EvalRequest req = parseRequestLine(line, line_number);
            slot.parsed = true;
            slot.requestIndex = requests.size();
            // memsense-lint: allow(no-hot-loop-alloc): once-per-batch
            // input parse (line count unknown until EOF), not the
            // per-request evaluation loop
            requests.push_back(std::move(req));
        } catch (const ConfigError &e) {
            ++summary.parseErrors;
            MS_METRIC_COUNT("serve.parse_errors");
            slot.errorLine = parseErrorLine(line_number, e.what());
        }
        // memsense-lint: allow(no-hot-loop-alloc): same input parse
        slots.push_back(std::move(slot));
    }

    Evaluator evaluator{model::Solver(), opts.eval};
    std::vector<EvalOutcome> outcomes;
    for (int pass = 0; pass < opts.repeat; ++pass)
        outcomes = evaluator.evaluateBatch(requests);

    for (const Slot &slot : slots) {
        if (!slot.parsed) {
            out << slot.errorLine << "\n";
            continue;
        }
        const EvalOutcome &o = outcomes[slot.requestIndex];
        if (o.result.ok())
            ++summary.solved;
        else
            ++summary.failed;
        if (o.cacheHit)
            ++summary.cacheHits;
        out << resultLine(o) << "\n";
    }
    summary.cache = evaluator.cacheStats();
    return summary;
}

} // namespace memsense::serve
