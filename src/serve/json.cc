#include "serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hh"
#include "util/fault_injection.hh"

namespace memsense::serve
{

namespace
{

/** Recursive-descent parser over one immutable input buffer. */
class Parser
{
  public:
    Parser(std::string_view text, const JsonLimits &limits_in)
        : in(text), limits(limits_in)
    {}

    JsonValue
    parseDocument()
    {
        if (in.size() > limits.maxBytes)
            fail("input of " + std::to_string(in.size()) +
                 " bytes exceeds the " +
                 std::to_string(limits.maxBytes) + "-byte cap");
        JsonValue v = parseValue();
        skipWs();
        if (pos != in.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw ParseError("JSON parse error at byte " +
                         std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= in.size())
            fail("unexpected end of input");
        return in[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (in.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    /** RAII depth guard: every nested object/array level costs one
     *  recursion frame, so the cap is what keeps a hostile
     *  `[[[[[...` line from overflowing the stack. */
    struct DepthGuard
    {
        explicit DepthGuard(Parser &p_in)
            : p(p_in)
        {
            if (++p.depth > p.limits.maxDepth)
                p.fail("nesting deeper than " +
                       std::to_string(p.limits.maxDepth) + " levels");
        }
        ~DepthGuard() { --p.depth; }
        Parser &p;
    };

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.text = parseString();
            return v;
        }
        if (consumeWord("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (consumeWord("null"))
            return JsonValue{};
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
    }

    JsonValue
    parseObject()
    {
        DepthGuard guard(*this);
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            skipWs();
            // memsense-lint: allow(no-hot-loop-alloc): a DOM parser's
            // output IS allocation — each key/member lives in the
            // returned document, bounded by the input's size
            std::string key = parseString();
            skipWs();
            expect(':');
            // memsense-lint: allow(no-hot-loop-alloc): DOM output node
            v.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        DepthGuard guard(*this);
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            // memsense-lint: allow(no-hot-loop-alloc): DOM output node
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= in.size())
                fail("unterminated string");
            char c = in[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) >= 0x80) {
                --pos;
                consumeUtf8(out);
                continue;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= in.size())
                fail("unterminated escape");
            char esc = in[pos++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                // Pass \uXXXX through for ASCII; reject the rest
                // rather than mis-decode (the request schema never
                // needs non-ASCII keys or ids).
                if (pos + 4 > in.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = in[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                break;
            }
            default:
                fail(std::string("bad escape '\\") + esc + "'");
            }
        }
    }

    /**
     * Validate and copy one multi-byte UTF-8 sequence starting at
     * `pos`. Rejects truncated tails, bare continuation bytes,
     * overlong encodings, surrogates, and code points past U+10FFFF —
     * hostile bytes must become a clean ParseError, not mojibake
     * echoed back into a reply stream.
     */
    void
    consumeUtf8(std::string &out)
    {
        const unsigned char lead = static_cast<unsigned char>(in[pos]);
        int extra = 0;
        unsigned code = 0;
        if ((lead & 0xe0) == 0xc0) {
            extra = 1;
            code = lead & 0x1fu;
        } else if ((lead & 0xf0) == 0xe0) {
            extra = 2;
            code = lead & 0x0fu;
        } else if ((lead & 0xf8) == 0xf0) {
            extra = 3;
            code = lead & 0x07u;
        } else {
            fail("invalid UTF-8 lead byte");
        }
        if (pos + 1 + static_cast<std::size_t>(extra) > in.size())
            fail("truncated UTF-8 sequence");
        for (int i = 1; i <= extra; ++i) {
            const unsigned char cont =
                static_cast<unsigned char>(in[pos + static_cast<std::size_t>(i)]);
            if ((cont & 0xc0) != 0x80)
                fail("truncated UTF-8 sequence");
            code = (code << 6) | (cont & 0x3fu);
        }
        static constexpr unsigned kMinForLen[4] = {0, 0x80, 0x800,
                                                   0x10000};
        if (code < kMinForLen[extra])
            fail("overlong UTF-8 encoding");
        if (code >= 0xd800 && code <= 0xdfff)
            fail("UTF-8 encoded surrogate");
        if (code > 0x10ffff)
            fail("UTF-8 code point out of range");
        out.append(in.substr(pos, 1 + static_cast<std::size_t>(extra)));
        pos += 1 + static_cast<std::size_t>(extra);
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < in.size() &&
               ((in[pos] >= '0' && in[pos] <= '9') || in[pos] == '.' ||
                in[pos] == 'e' || in[pos] == 'E' || in[pos] == '+' ||
                in[pos] == '-'))
            ++pos;
        std::string word(in.substr(start, pos - start));
        char *end = nullptr;
        double v = std::strtod(word.c_str(), &end);
        if (end != word.c_str() + word.size() || !std::isfinite(v)) {
            pos = start;
            fail("malformed number '" + word + "'");
        }
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return out;
    }

    std::string_view in;
    JsonLimits limits;
    std::size_t pos = 0;
    int depth = 0;
};

} // anonymous namespace

bool
JsonValue::has(const std::string &key) const
{
    if (kind != Kind::Object)
        return false;
    for (const auto &m : members) {
        if (m.first == key)
            return true;
    }
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    requireConfig(kind == Kind::Object,
                  "JSON value is not an object (looking up '" + key +
                      "')");
    for (const auto &m : members) {
        if (m.first == key)
            return m.second;
    }
    throw ConfigError("missing JSON member '" + key + "'");
}

double
JsonValue::asNumber(const std::string &what) const
{
    requireConfig(kind == Kind::Number, what + " must be a number");
    return number;
}

const std::string &
JsonValue::asString(const std::string &what) const
{
    requireConfig(kind == Kind::String, what + " must be a string");
    return text;
}

int
JsonValue::asInt(const std::string &what) const
{
    double v = asNumber(what);
    requireConfig(v >= -2147483648.0 && v <= 2147483647.0,
                  what + " is out of integer range");
    // memsense-lint: allow(unclamped-double-to-int): range-checked above
    int i = static_cast<int>(v);
    // memsense-lint: allow(float-equal): exact integrality check
    requireConfig(static_cast<double>(i) == v,
                  what + " must be a whole number");
    return i;
}

JsonValue
parseJson(std::string_view text, const JsonLimits &limits)
{
    // Fault site for the serving chaos harness: a throw here must
    // surface as one per-line error reply, never a crashed batch or a
    // dropped request.
    MS_FAULT_POINT("serve.json.parse");
    return Parser(text, limits).parseDocument();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace memsense::serve
