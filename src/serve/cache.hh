/**
 * @file
 * Sharded thread-safe LRU cache for solved operating points.
 *
 * The batch evaluator keys entries on the 64-bit FNV-1a fingerprint of
 * the canonical (workload, platform) request encoding
 * (model/fingerprint.hh). FNV-1a is not collision-free, so every hit is
 * verified against the stored canonical key text before it is trusted;
 * a fingerprint match with different key text is counted as a collision
 * and treated as a miss — the cache never returns a wrong operating
 * point, it only loses a little speed.
 *
 * Sharding: entries are distributed over a power-of-two number of
 * shards by fingerprint bits, each shard guarding its own LRU list and
 * index with its own mutex, so concurrent lookups from the thread-pool
 * workers contend only when they land on the same shard. Capacity is
 * divided evenly across shards; eviction is LRU per shard.
 *
 * Observability: lookups and inserts feed the serve.cache.* counters
 * (hits, misses, evictions, collisions, inserts) and the same tallies
 * are kept internally for CacheStats, so embedding callers get numbers
 * without arming the global metrics registry.
 */

#ifndef MEMSENSE_SERVE_CACHE_HH
#define MEMSENSE_SERVE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/solver.hh"

namespace memsense::serve
{

/** Aggregate counters of one cache instance (monotone, cross-shard). */
struct CacheStats
{
    std::uint64_t hits = 0;       ///< verified fingerprint+key hits
    std::uint64_t misses = 0;     ///< absent fingerprints
    std::uint64_t collisions = 0; ///< fingerprint present, key differed
    std::uint64_t evictions = 0;  ///< entries displaced by capacity
    std::uint64_t inserts = 0;    ///< successful inserts
    std::size_t size = 0;         ///< live entries across all shards
};

/** Options for ShardedLruCache. */
struct CacheOptions
{
    std::size_t capacity = 1 << 16; ///< max entries across all shards
    int shards = 8;                 ///< rounded up to a power of two
};

/** Sharded, verifying LRU map: fingerprint -> OperatingPoint. */
class ShardedLruCache
{
  public:
    explicit ShardedLruCache(CacheOptions opts = {});

    /**
     * Look up @p fingerprint, verifying the canonical @p key before
     * trusting the hit. A verified hit refreshes the entry's recency.
     */
    std::optional<model::OperatingPoint>
    lookup(std::uint64_t fingerprint, std::string_view key);

    /**
     * Insert (or refresh) the entry for @p fingerprint. On a
     * fingerprint collision (same fingerprint, different key text) the
     * incumbent entry is kept and the insert is dropped — dropping is
     * cheaper than chaining and the solve that produced @p op already
     * happened. Evicts the shard's LRU entry when the shard is full.
     */
    void insert(std::uint64_t fingerprint, std::string key,
                const model::OperatingPoint &op);

    /** Monotone counters + current size, aggregated over shards. */
    CacheStats stats() const;

    /** Total entry capacity across all shards. */
    std::size_t capacity() const { return totalCapacity; }

    /** Drop all entries (counters are kept). */
    void clear();

  private:
    struct Entry
    {
        std::uint64_t fingerprint = 0;
        std::string key;
        model::OperatingPoint op;
    };

    /** One shard: LRU list (front = most recent) plus its index.
     *
     * Cache-line aligned so adjacent heap-allocated shards never share
     * a line: each shard's mutex and hit/miss tallies are written by
     * whichever worker lands on it, and a shared line would turn
     * independent shards into one contended line (false sharing).
     */
    struct alignas(64) Shard
    {
        mutable std::mutex mu;
        // memsense-lint: guarded_by(mu)
        std::list<Entry> lru;
        // memsense-lint: guarded_by(mu)
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index;
        // memsense-lint: guarded_by(mu)
        std::uint64_t hits = 0;
        // memsense-lint: guarded_by(mu)
        std::uint64_t misses = 0;
        // memsense-lint: guarded_by(mu)
        std::uint64_t collisions = 0;
        // memsense-lint: guarded_by(mu)
        std::uint64_t evictions = 0;
        // memsense-lint: guarded_by(mu)
        std::uint64_t inserts = 0;
    };

    Shard &shardFor(std::uint64_t fingerprint);

    std::vector<std::unique_ptr<Shard>> shardsVec;
    std::size_t shardCapacity = 0; ///< per-shard entry budget
    std::size_t totalCapacity = 0;
    std::uint64_t shardMask = 0;
};

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_CACHE_HH
