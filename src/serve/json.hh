/**
 * @file
 * Minimal JSON for the serving layer.
 *
 * The batch evaluator speaks JSON-lines: one request object per line
 * in, one result object per line out. This is the tiny strict parser
 * for the inbound side — objects, arrays, strings, numbers, booleans,
 * null; no comments, no trailing commas — plus the string escaper for
 * the outbound side. Deliberately dependency-free and small; it is not
 * a general-purpose JSON library (no unicode escapes beyond pass-through
 * \uXXXX, numbers parsed as double).
 *
 * Malformed input raises ParseError (a ConfigError subclass) with a
 * byte offset, which the service layer converts into a per-line error
 * result instead of aborting the batch.
 *
 * Hostile-input hardening: the parser is the first thing untrusted
 * network bytes hit, so it enforces explicit resource caps (JsonLimits)
 * — a maximum input length and a maximum nesting depth (the recursive
 * descent would otherwise overflow the stack on a `[[[[...` line) —
 * and validates UTF-8 inside string literals, rejecting truncated or
 * overlong sequences instead of passing mojibake through to replies.
 */

#ifndef MEMSENSE_SERVE_JSON_HH
#define MEMSENSE_SERVE_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace memsense::serve
{

/**
 * Raised on malformed or over-limit JSON input. Subclasses ConfigError
 * so every existing "bad input" path (per-line error capture, batch
 * error results) handles it unchanged; the distinct type lets the
 * serving layer and tests tell parse failures from domain failures.
 */
class ParseError : public ConfigError
{
  public:
    explicit ParseError(const std::string &what_arg)
        : ConfigError(what_arg)
    {}
};

/**
 * Resource caps for one parse. Defaults are generous for the request
 * schema (a request line is ~300 bytes, nesting depth 3) while keeping
 * a hostile line from exhausting stack or memory.
 */
struct JsonLimits
{
    std::size_t maxBytes = 1u << 20; ///< longest accepted input
    int maxDepth = 64;               ///< deepest object/array nesting
};

/** One parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;   ///< valid when kind == Bool
    double number = 0.0;    ///< valid when kind == Number
    std::string text;       ///< valid when kind == String
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object
    std::vector<JsonValue> items;                           ///< Array

    /** True when this is an object with member @p key. */
    bool has(const std::string &key) const;

    /** Member @p key; throws ConfigError when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** Number value; throws ConfigError on kind mismatch. */
    double asNumber(const std::string &what) const;

    /** String value; throws ConfigError on kind mismatch. */
    const std::string &asString(const std::string &what) const;

    /** Integer value; throws ConfigError when not a whole number. */
    int asInt(const std::string &what) const;
};

/**
 * Parse one JSON document under @p limits. The whole input must be
 * consumed (trailing whitespace allowed); throws ParseError otherwise.
 */
JsonValue parseJson(std::string_view text, const JsonLimits &limits = {});

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Shortest decimal form of @p v that round-trips to the same bits
 * ("%.17g"), for byte-stable result serialization.
 */
std::string jsonNumber(double v);

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_JSON_HH
