/**
 * @file
 * Request/response schema of the batch evaluation service.
 *
 * One request is one JSON object per line (JSON-lines):
 *
 *     {"id": "r1",
 *      "workload": {"class": "bigdata", "cpi_cache": 0.95, "bf": 0.34,
 *                   "mpki": 10.5, "wbr": 0.4, "iopi": 0, "io_bytes": 0,
 *                   "name": "custom"},
 *      "platform": {"cores": 8, "smt": 2, "ghz": 2.7, "channels": 4,
 *                   "speed_mts": 1866.7, "efficiency": 0.7,
 *                   "latency_ns": 75}}
 *
 * Every field is optional. The workload starts from the paper's class
 * means (`class`: bigdata | enterprise | hpc, default bigdata) and
 * explicit fields override; the platform starts from the paper's
 * Sec. VI baseline. A missing "id" defaults to "line-<n>".
 *
 * One result is one JSON object per line, in request order:
 *
 *     {"id": "r1", "ok": true, "op": {"cpi_eff": ..,
 *      "miss_penalty_ns": .., "queuing_delay_ns": ..,
 *      "bw_per_core_bps": .., "bw_total_bps": .., "utilization": ..,
 *      "bandwidth_bound": false, "iterations": 31}}
 *     {"id": "r2", "ok": false, "error": {"type": "ConfigError",
 *      "message": "...", "fatal": true, "attempts": 1}}
 *
 * Doubles are serialized with "%.17g" (round-trip exact), so a result
 * stream is byte-stable across worker counts and cache temperature;
 * deliberately, no field of a result line depends on cache state.
 */

#ifndef MEMSENSE_SERVE_REQUEST_HH
#define MEMSENSE_SERVE_REQUEST_HH

#include <string>

#include "measure/resilience.hh"
#include "model/solver.hh"

namespace memsense::serve
{

/** One parsed evaluation request. */
struct EvalRequest
{
    std::string id;                ///< echoed into the result line
    model::WorkloadParams workload;
    model::Platform platform;
    /** Optional per-request deadline budget from the moment the server
     *  admits the line ("deadline_ms" field); 0 = none. The batch
     *  service ignores it — deadlines are a serving concern. */
    double deadlineMs = 0.0;
    /** Request opts out of degraded coarse-fingerprint answers under
     *  overload even when the server allows them ("allow_stale":
     *  false); default is to accept whatever the server offers. */
    bool allowStale = true;
};

/** One evaluation outcome, paired with the request id. */
struct EvalOutcome
{
    std::string id;
    measure::JobResult<model::OperatingPoint> result;
    /** Served from cache (diagnostic only — never serialized, so the
     *  result stream stays identical between cold and warm runs). */
    bool cacheHit = false;
    /** Answered from the coarse-fingerprint stale cache under
     *  overload. Serialized as `"degraded":true` only when set, so
     *  the batch path's result lines are byte-identical to before. */
    bool degraded = false;
};

/**
 * Parse one JSON-lines request. @p line_number seeds the default id
 * ("line-<n>", 1-based). Throws ConfigError on malformed input or
 * out-of-domain parameters.
 */
EvalRequest parseRequestLine(const std::string &line,
                             std::size_t line_number);

/** Serialize one outcome as its JSON result line (no newline). */
std::string resultLine(const EvalOutcome &outcome);

/**
 * Build the result line for a request that never parsed: same error
 * shape as a failed solve, with attempts = 0.
 */
std::string parseErrorLine(std::size_t line_number,
                           const std::string &message);

/**
 * Like parseErrorLine, but with an explicit error @p type and
 * retryability — the service uses it to surface non-ConfigError parse
 * failures (e.g. injected faults) as per-line results.
 */
std::string parseErrorLine(std::size_t line_number,
                           const std::string &type,
                           const std::string &message, bool fatal);

/**
 * One typed error reply for the serving path: `{"id":..., "ok":false,
 * "error":{"type":<type>,...}}`. The server's admission/deadline
 * machinery replies with types `overloaded`, `deadline_exceeded`, and
 * `internal` (docs/serving.md); @p fatal says whether a retry of the
 * same request could succeed (false for overload/deadline).
 */
std::string errorReplyLine(const std::string &id, const std::string &type,
                           const std::string &message, bool fatal);

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_REQUEST_HH
