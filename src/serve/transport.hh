/**
 * @file
 * Pluggable line-oriented transports for the evaluation server.
 *
 * The server speaks JSON-lines over any byte stream; this file pins
 * down the two seams it needs:
 *
 *  - LineStream: one connected peer. readLine() is called by exactly
 *    one reader thread with a bounded timeout (so shutdown can always
 *    interrupt it); writeLine() is thread-safe, because worker threads
 *    and the reader thread both reply on the same stream. Oversized
 *    lines surface as Read::TooLong instead of unbounded buffering —
 *    a hostile peer cannot make the server allocate without limit.
 *
 *  - Transport: one listening endpoint producing LineStreams. accept()
 *    also takes a timeout; shutdownTransport() wakes any blocked
 *    accept (self-pipe for sockets, condition variable in-process) so
 *    SIGTERM drains promptly instead of waiting out a poll.
 *
 * Three implementations: SocketTransport (TCP or Unix-domain, built on
 * util/socket.hh), a stdio LineStream over inherited descriptors, and
 * InProcessTransport — a mutex+condvar pipe pair that lets tests and
 * the soak suite drive the full server loop with zero kernel
 * dependencies (no ports, no files, no sandbox assumptions).
 */

#ifndef MEMSENSE_SERVE_TRANSPORT_HH
#define MEMSENSE_SERVE_TRANSPORT_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "util/socket.hh"

namespace memsense::serve
{

/** One connected peer, framed as lines (see file comment). */
class LineStream
{
  public:
    virtual ~LineStream() = default;

    /** Outcome of one bounded readLine() call. */
    enum class Read
    {
        Line,    ///< @p out holds one complete line (no newline)
        Idle,    ///< nothing arrived within the timeout
        Eof,     ///< peer closed cleanly (or stream was shut down)
        TooLong, ///< line exceeded the stream's byte cap (fatal)
        Error,   ///< transport failure (fatal for this stream)
    };

    /**
     * Read the next line, waiting at most @p timeout_ms. Single-reader:
     * only one thread may call readLine on a given stream.
     */
    virtual Read readLine(std::string &out, int timeout_ms) = 0;

    /**
     * Write one reply line (newline appended). Thread-safe. Returns
     * false once the peer is unreachable; callers count, not throw.
     */
    virtual bool writeLine(const std::string &line) = 0;

    /** Unblock any in-flight readLine and fail future I/O. */
    virtual void shutdownStream() = 0;

    /** Peer label for logs ("tcp:4", "inproc:2", "stdio"). */
    virtual std::string peer() const = 0;
};

/** One listening endpoint. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Outcome of one bounded accept() call. */
    enum class Accept
    {
        Conn,   ///< @p out holds a new connection
        Idle,   ///< nothing arrived within the timeout
        Closed, ///< transport shut down; no more connections ever
    };

    /** Wait up to @p timeout_ms for the next connection. */
    virtual Accept accept(std::unique_ptr<LineStream> &out,
                          int timeout_ms) = 0;

    /** Stop accepting and wake any blocked accept(). */
    virtual void shutdownTransport() = 0;

    /** Endpoint label ("tcp:127.0.0.1:8321", "unix:/tmp/s", ...). */
    virtual std::string describe() const = 0;
};

/** Byte cap for one line on fd-backed streams (default 64 KiB). */
struct StreamLimits
{
    std::size_t maxLineBytes = 64u << 10;
};

/**
 * LineStream over a connected socket (one fd) or a descriptor pair
 * (stdio: read from @p read_fd, write to @p write_fd, owning neither
 * when constructed via makeStdioStream).
 */
std::unique_ptr<LineStream> makeSocketStream(net::FdHandle fd,
                                             const StreamLimits &limits,
                                             const std::string &peer_label);

/** Stdio stream over inherited, unowned descriptors (0 and 1). */
std::unique_ptr<LineStream> makeStdioStream(const StreamLimits &limits);

/**
 * One-shot transport over stdin/stdout: the first accept() yields the
 * stdio stream, later ones are Idle until shutdown. Lets the daemon
 * serve a pipe with the same admission/deadline machinery as sockets.
 */
std::unique_ptr<Transport> makeStdioTransport(const StreamLimits &limits);

/** Transport over a bound socket listener (TCP or Unix-domain). */
std::unique_ptr<Transport> makeSocketTransport(net::Listener listener,
                                               const StreamLimits &limits);

// ---------------------------------------------------------------------
// In-process transport (tests, soak suite)

namespace detail
{

/** One direction of an in-process connection: a bounded-ish line
 *  queue with condvar wakeups and explicit close. */
struct LinePipe
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> lines;
    bool closed = false;

    void push(std::string line);
    void close();
    /** Pop with timeout: Line / Idle / Eof semantics of LineStream. */
    LineStream::Read pop(std::string &out, int timeout_ms);
};

} // namespace detail

/** Client handle of one in-process connection (test side). */
class InProcessClient
{
  public:
    InProcessClient(std::shared_ptr<detail::LinePipe> to_server,
                    std::shared_ptr<detail::LinePipe> to_client)
        : toServer(std::move(to_server)), toClient(std::move(to_client))
    {}

    /** Send one request line to the server. */
    void send(const std::string &line) { toServer->push(line); }

    /** Close the client->server direction (server sees EOF). */
    void closeSend() { toServer->close(); }

    /** Receive the next reply line; Idle after @p timeout_ms. */
    LineStream::Read recv(std::string &out, int timeout_ms)
    {
        return toClient->pop(out, timeout_ms);
    }

    /** Wrap this handle as a LineStream (loadgen tests dial these). */
    std::unique_ptr<LineStream> asStream();

  private:
    std::shared_ptr<detail::LinePipe> toServer;
    std::shared_ptr<detail::LinePipe> toClient;
};

/**
 * In-process transport: tests call connect() to get a client handle;
 * the server's accept loop sees the matching LineStream.
 */
class InProcessTransport : public Transport
{
  public:
    InProcessTransport() = default;

    Accept accept(std::unique_ptr<LineStream> &out,
                  int timeout_ms) override;
    void shutdownTransport() override;
    std::string describe() const override { return "inproc"; }

    /** Dial one new connection; pairs with a future accept(). */
    InProcessClient connect();

  private:
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<LineStream>> pending;
    bool closed = false;
    int nextId = 0;
};

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_TRANSPORT_HH
