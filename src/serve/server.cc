#include "serve/server.hh"

#include <chrono>
#include <utility>

#include "serve/json.hh"
#include "serve/request.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/retry.hh"
#include "util/string_util.hh"
#include "util/trace.hh"

namespace memsense::serve
{

namespace
{

double
steadyNowMs()
{
    using namespace std::chrono;
    // memsense-lint: allow(no-nondeterminism): the default deadline
    // clock of a live server; tests inject ServerOptions::nowMs
    const auto since_epoch = steady_clock::now().time_since_epoch();
    return duration<double, std::milli>(since_epoch).count();
}

/**
 * Coarse request key for the stale-answer cache: every numeric knob
 * quantized to 3 significant digits, so "the same experiment re-run
 * with jittered inputs" maps to one slot. Deliberately much coarser
 * than the exact canonical fingerprint — a degraded answer is allowed
 * to be approximately right, and every reply served from this cache is
 * flagged `"degraded":true` so clients can tell.
 */
std::string
coarseKey(const EvalRequest &req)
{
    const model::WorkloadParams &w = req.workload;
    const model::Platform &p = req.platform;
    return strformat("%.3g|%.3g|%.3g|%.3g|%.3g|%.3g|%d|%d|%.3g|%d|%.3g|"
                     "%.3g|%.3g",
                     w.cpiCache, w.bf, w.mpki, w.wbr, w.iopi, w.ioBytes,
                     p.cores, p.smt, p.ghz, p.memory.channels,
                     p.memory.megaTransfers, p.memory.efficiency,
                     p.memory.compulsoryNs);
}

} // anonymous namespace

void
ServerOptions::validate() const
{
    requireConfig(workers >= 1, "server workers must be >= 1");
    requireConfig(maxConnections >= 1,
                  "server maxConnections must be >= 1");
    requireConfig(maxQueueDepth >= 1,
                  "server maxQueueDepth must be >= 1");
    requireConfig(maxInflightBytes >= 1,
                  "server maxInflightBytes must be >= 1");
    requireConfig(maxLineBytes >= 2, "server maxLineBytes must be >= 2");
    requireConfig(defaultDeadlineMs >= 0.0,
                  "server defaultDeadlineMs must be >= 0");
    requireConfig(drainDeadlineMs >= 0.0,
                  "server drainDeadlineMs must be >= 0");
    requireConfig(pollMs >= 1, "server pollMs must be >= 1");
}

std::string
ServerStats::describe() const
{
    return strformat(
        "%llu conns (%llu shed): %llu accepted = %llu ok + %llu err + "
        "%llu write-fail%s; %llu hits, %llu stale, %llu shed, %llu "
        "deadline, %llu solved, %llu drained, %llu parse errors",
        static_cast<unsigned long long>(connections),
        static_cast<unsigned long long>(connectionsShed),
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(repliesOk),
        static_cast<unsigned long long>(repliesError),
        static_cast<unsigned long long>(writeErrors),
        consistent() ? "" : " [LEDGER INCONSISTENT]",
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(staleServed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(deadlineExceeded),
        static_cast<unsigned long long>(solved),
        static_cast<unsigned long long>(drained),
        static_cast<unsigned long long>(parseErrors));
}

std::string
ServerStats::toJson() const
{
    auto field = [](const char *name, std::uint64_t v) {
        return "\"" + std::string(name) +
               "\":" + std::to_string(static_cast<unsigned long long>(v));
    };
    return "{" + field("connections", connections) + "," +
           field("connections_shed", connectionsShed) + "," +
           field("accepted", accepted) + "," +
           field("parse_errors", parseErrors) + "," +
           field("cache_hits", cacheHits) + "," +
           field("stale_served", staleServed) + "," +
           field("shed", shed) + "," +
           field("deadline_exceeded", deadlineExceeded) + "," +
           field("solved", solved) + "," + field("drained", drained) +
           "," + field("replies_ok", repliesOk) + "," +
           field("replies_error", repliesError) + "," +
           field("write_errors", writeErrors) + ",\"consistent\":" +
           (consistent() ? "true" : "false") + "}";
}

Server::Server(ServerOptions opts)
    : options(std::move(opts)), eval(model::Solver(), options.eval)
{
    options.validate();
    if (!options.nowMs)
        options.nowMs = steadyNowMs;
}

Server::~Server()
{
    stop();
}

double
Server::now() const
{
    return options.nowMs();
}

void
Server::addTransport(std::unique_ptr<Transport> transport)
{
    requireConfig(!started.load(), "addTransport must precede start()");
    transports.push_back(std::move(transport));
}

void
Server::start()
{
    requireConfig(!transports.empty(),
                  "server needs at least one transport");
    requireConfig(!started.exchange(true), "server already started");
    workerThreads.reserve(static_cast<std::size_t>(options.workers));
    for (int i = 0; i < options.workers; ++i)
        // memsense-lint: allow(no-hot-loop-alloc): one-time startup,
        // reserved to options.workers just above
        workerThreads.emplace_back([this] { workerLoop(); });
    acceptThreads.reserve(transports.size());
    for (auto &t : transports)
        // memsense-lint: allow(no-hot-loop-alloc): one-time startup,
        // reserved to transports.size() just above
        acceptThreads.emplace_back([this, tp = t.get()] {
            acceptLoop(tp);
        });
}

void
Server::requestStop()
{
    if (stopFlag.exchange(true))
        return;
    for (auto &t : transports)
        t->shutdownTransport();
    queueCv.notify_all();
}

void
Server::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;
    requestStop();
    for (auto &t : acceptThreads)
        if (t.joinable())
            t.join();
    // Readers poll stopFlag between lines (pollMs granularity), so
    // each exits within one poll tick; joining here is bounded.
    for (;;) {
        std::thread reader;
        {
            std::lock_guard<std::mutex> lock(readerMu);
            if (readerThreads.empty())
                break;
            reader = std::move(readerThreads.back());
            readerThreads.pop_back();
        }
        if (reader.joinable())
            reader.join();
    }
    // Drain: give queued work drainDeadlineMs of real time to flow to
    // the workers, then cut them off and flush what remains.
    {
        std::unique_lock<std::mutex> lock(queueMu);
        queueIdleCv.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options.drainDeadlineMs),
            [this] { return queue.empty(); });
        hardStop = true;
    }
    queueCv.notify_all();
    for (auto &t : workerThreads)
        if (t.joinable())
            t.join();
    flushQueueAsDrained();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    return counters;
}

void
Server::acceptLoop(Transport *transport)
{
    while (!stopFlag.load(std::memory_order_acquire)) {
        std::unique_ptr<LineStream> stream;
        const Transport::Accept a =
            transport->accept(stream, options.pollMs);
        if (a == Transport::Accept::Closed)
            return;
        if (a == Transport::Accept::Idle)
            continue;
        std::shared_ptr<LineStream> shared(std::move(stream));
        if (activeConnections.load(std::memory_order_acquire) >=
            options.maxConnections) {
            // Connection-level shedding: refuse with one typed error
            // line, before any request is accepted into the ledger.
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.connectionsShed;
            }
            shared->writeLine(errorReplyLine(
                "", "overloaded", "connection limit reached", false));
            shared->shutdownStream();
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.connections;
        }
        activeConnections.fetch_add(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> lock(readerMu);
        // memsense-lint: allow(no-hot-loop-alloc): one thread per
        // accepted connection — connection churn, not the per-request
        // hot path
        readerThreads.emplace_back(
            [this, shared] { readLoop(shared); });
    }
}

void
Server::readLoop(std::shared_ptr<LineStream> stream)
{
    std::string line;
    std::size_t line_number = 0;
    while (!stopFlag.load(std::memory_order_acquire)) {
        const LineStream::Read r =
            stream->readLine(line, options.pollMs);
        if (r == LineStream::Read::Idle)
            continue;
        if (r == LineStream::Read::Eof ||
            r == LineStream::Read::Error)
            break;
        ++line_number;
        if (r == LineStream::Read::TooLong) {
            // The oversized line was counted and dropped by the
            // stream; reply once, then drop the connection — the
            // framing past an unread tail is unrecoverable.
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.accepted;
                ++counters.parseErrors;
            }
            MS_METRIC_COUNT("serve.server.accepted");
            // Oversized-line error path: fires at most once per
            // connection, so the string building below is cold.
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            std::string cap_id = "line-" + std::to_string(line_number);
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            std::string cap_msg = "request line exceeds ";
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            cap_msg += std::to_string(options.maxLineBytes);
            cap_msg += " bytes";
            sendReply(stream,
                      errorReplyLine(cap_id, "ConfigError", cap_msg,
                                     true),
                      false);
            break;
        }
        bool blank = true;
        for (char c : line)
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        if (blank)
            continue;
        handleLine(stream, line, line_number);
    }
    // Deliberately no shutdownStream() here: queued jobs from this
    // connection still own the stream via shared_ptr and will write
    // their replies (half-closed clients read them); the descriptor
    // closes when the last reference drops.
    activeConnections.fetch_sub(1, std::memory_order_acq_rel);
}

void
Server::handleLine(const std::shared_ptr<LineStream> &stream,
                   const std::string &line, std::size_t line_number)
{
    // From here on this line is "accepted": it appears in the ledger
    // and is owed exactly one reply on every path below.
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++counters.accepted;
    }
    MS_METRIC_COUNT("serve.server.accepted");

    EvalRequest req;
    try {
        MS_FAULT_POINT("server.parse");
        req = parseRequestLine(line, line_number);
    } catch (const std::exception &) {
        const std::exception_ptr ep = std::current_exception();
        const ExceptionInfo info = describeException(ep);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.parseErrors;
        }
        sendReply(stream,
                  errorReplyLine("line-" + std::to_string(line_number),
                                 info.type, info.message,
                                 classifyException(ep) ==
                                     ErrorClass::Fatal),
                  false);
        return;
    }

    // Fast path: a verified cache hit is answered inline on the reader
    // thread and consumes no queue slot — under overload the hot set
    // keeps flowing while cold solves are shed below.
    try {
        if (auto hit = eval.probe(req.workload, req.platform)) {
            EvalOutcome outcome;
            outcome.id = req.id;
            outcome.result.attempts = 1;
            outcome.result.value.emplace(*hit);
            outcome.cacheHit = true;
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.cacheHits;
            }
            sendReply(stream, resultLine(outcome), true);
            return;
        }
    } catch (const std::exception &) {
        const ExceptionInfo info =
            describeException(std::current_exception());
        sendReply(stream,
                  errorReplyLine(req.id, "internal",
                                 info.type + ": " + info.message, false),
                  false);
        return;
    }

    Job job;
    job.stream = stream;
    job.bytes = line.size();
    const double budget_ms =
        req.deadlineMs > 0.0 ? req.deadlineMs : options.defaultDeadlineMs;
    if (budget_ms > 0.0)
        job.deadlineAtMs = now() + budget_ms;
    job.request = std::move(req);

    // Admission control: bound both the queue depth and the bytes it
    // holds, and shed instead of buffering without limit.
    bool admitted = false;
    std::size_t depth = 0;
    std::size_t bytes_inflight = 0;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        depth = queue.size();
        bytes_inflight = inflightBytes;
        if (!hardStop && depth < options.maxQueueDepth &&
            inflightBytes + job.bytes <= options.maxInflightBytes) {
            try {
                MS_FAULT_POINT("server.enqueue");
                inflightBytes += job.bytes;
                // memsense-lint: allow(no-hot-loop-alloc): the bounded
                // admission queue is the load-shedding mechanism; its
                // depth cap (maxQueueDepth) bounds this allocation
                queue.push_back(std::move(job));
                depth = queue.size();
                admitted = true;
            } catch (const std::exception &) {
                // Injected enqueue fault: fall through to the shed
                // path so the request still gets exactly one reply.
                admitted = false;
            }
        }
    }
    if (admitted) {
        MS_METRIC_OBSERVE("serve.server.queue_depth",
                          static_cast<double>(depth));
        queueCv.notify_one();
        return;
    }

    // Shed path: degraded stale answer when both sides allow it,
    // otherwise a typed, explicitly-retryable overload error.
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++counters.shed;
    }
    MS_METRIC_COUNT("serve.server.shed");
    const EvalRequest &request = job.request;
    if (options.allowStale && request.allowStale) {
        if (auto stale = staleLookup(request)) {
            EvalOutcome outcome;
            outcome.id = request.id;
            outcome.result.attempts = 1;
            outcome.result.value.emplace(*stale);
            outcome.degraded = true;
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.staleServed;
            }
            sendReply(stream, resultLine(outcome), true);
            return;
        }
    }
    sendReply(stream,
              errorReplyLine(request.id, "overloaded",
                             strformat("queue full: %zu queued, %zu "
                                       "bytes in flight",
                                       depth, bytes_inflight),
                             false),
              false);
}

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [this] {
                return hardStop || !queue.empty() ||
                       stopFlag.load(std::memory_order_acquire);
            });
            if (hardStop)
                return;
            if (queue.empty()) {
                if (stopFlag.load(std::memory_order_acquire))
                    return; // drained: nothing left to do
                continue;
            }
            job = std::move(queue.front());
            queue.pop_front();
            inflightBytes -= job.bytes;
            if (queue.empty())
                queueIdleCv.notify_all();
        }
        runJob(job);
    }
}

void
Server::runJob(const Job &job)
{
    const EvalRequest &req = job.request;
    // Deadline check at dequeue: a request that expired while queued
    // is answered without burning solver time on it.
    if (job.deadlineAtMs > 0.0 && now() >= job.deadlineAtMs) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.deadlineExceeded;
        }
        MS_METRIC_COUNT("serve.server.deadline_exceeded");
        sendReply(job.stream,
                  errorReplyLine(req.id, "deadline_exceeded",
                                 "deadline expired while queued", false),
                  false);
        return;
    }
    try {
        MS_FAULT_POINT("server.solve");
        model::CancelCheck cancel;
        if (job.deadlineAtMs > 0.0) {
            const double deadline_at = job.deadlineAtMs;
            cancel = [this, deadline_at] {
                return now() >= deadline_at;
            };
        }
        EvalOutcome outcome;
        outcome.id = req.id;
        outcome.result.attempts = 1;
        outcome.result.value.emplace(
            eval.solveCancellable(req.workload, req.platform, cancel));
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.solved;
        }
        sendReply(job.stream, resultLine(outcome), true);
        staleStore(req, *outcome.result.value);
    } catch (const model::SolveCancelled &e) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.deadlineExceeded;
        }
        MS_METRIC_COUNT("serve.server.deadline_exceeded");
        sendReply(job.stream,
                  errorReplyLine(
                      req.id, "deadline_exceeded",
                      strformat("deadline expired mid-solve (%d "
                                "iterations done)",
                                e.iterations),
                      false),
                  false);
    } catch (const std::exception &) {
        const std::exception_ptr ep = std::current_exception();
        const ExceptionInfo info = describeException(ep);
        sendReply(job.stream,
                  errorReplyLine(req.id, "internal",
                                 info.type + ": " + info.message,
                                 classifyException(ep) ==
                                     ErrorClass::Fatal),
                  false);
    }
}

void
Server::flushQueueAsDrained()
{
    std::deque<Job> leftover;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        leftover.swap(queue);
        inflightBytes = 0;
    }
    for (const Job &job : leftover) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.drained;
        }
        MS_METRIC_COUNT("serve.server.drained");
        sendReply(job.stream,
                  errorReplyLine(job.request.id, "overloaded",
                                 "server draining", false),
                  false);
    }
}

void
Server::sendReply(const std::shared_ptr<LineStream> &stream,
                  const std::string &reply_line, bool ok)
{
    bool delivered = false;
    try {
        delivered = stream->writeLine(reply_line);
    } catch (...) { // memsense-lint: allow(no-bare-catch): last-ditch
        // containment — a reply that cannot be rendered or written must
        // become a counted write error, never tear down the worker
        delivered = false;
    }
    std::lock_guard<std::mutex> lock(statsMu);
    if (!delivered)
        ++counters.writeErrors;
    else if (ok)
        ++counters.repliesOk;
    else
        ++counters.repliesError;
}

std::optional<model::OperatingPoint>
Server::staleLookup(const EvalRequest &req) const
{
    std::lock_guard<std::mutex> lock(staleMu);
    auto it = staleCache.find(coarseKey(req));
    if (it == staleCache.end())
        return std::nullopt;
    return it->second;
}

void
Server::staleStore(const EvalRequest &req,
                   const model::OperatingPoint &op)
{
    std::lock_guard<std::mutex> lock(staleMu);
    // Unbounded growth guard: the coarse key space is tiny in practice
    // (3 significant digits per knob), but a hostile workload stream
    // could still inflate it — cap and wholesale-reset, which only
    // costs degraded-answer coverage, never correctness.
    if (staleCache.size() >= 4096)
        staleCache.clear();
    staleCache[coarseKey(req)] = op;
}

} // namespace memsense::serve
