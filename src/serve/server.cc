#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "serve/json.hh"
#include "serve/request.hh"
#include "util/contract.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/retry.hh"
#include "util/string_util.hh"
#include "util/trace.hh"

namespace memsense::serve
{

namespace
{

double
steadyNowMs()
{
    using namespace std::chrono;
    // memsense-lint: allow(no-nondeterminism): the default deadline
    // clock of a live server; tests inject ServerOptions::nowMs
    const auto since_epoch = steady_clock::now().time_since_epoch();
    return duration<double, std::milli>(since_epoch).count();
}

/**
 * One coarse-key field: `%.3g`, canonicalized. `%.3g` alone is not
 * portable at the edges — glibc renders -0.0 as "-0" where other libcs
 * render "0", denormal spellings differ, and NaN may print with a sign
 * or payload — which made which stale slot a request maps to depend on
 * the libc. Collapse all of those edge cases explicitly.
 */
std::string
coarseNumber(double v)
{
    if (std::isnan(v))
        return "nan";
    // Covers +0.0, -0.0 (== compares equal) and denormals: at 3
    // significant digits they are all indistinguishable from zero.
    // memsense-lint: allow(float-equal): exact-zero class sentinel
    if (v == 0.0 || std::fpclassify(v) == FP_SUBNORMAL)
        return "0";
    return strformat("%.3g", v);
}

/** Client records exported via stats(); see the header field comment. */
constexpr std::size_t kMaxClientRecords = 4096;

} // anonymous namespace

/**
 * Coarse request key for the stale-answer cache: every numeric knob
 * quantized to 3 significant digits, so "the same experiment re-run
 * with jittered inputs" maps to one slot. Deliberately much coarser
 * than the exact canonical fingerprint — a degraded answer is allowed
 * to be approximately right, and every reply served from this cache is
 * flagged `"degraded":true` so clients can tell.
 */
std::string
coarseRequestKey(const EvalRequest &req)
{
    const model::WorkloadParams &w = req.workload;
    const model::Platform &p = req.platform;
    return strformat("%s|%s|%s|%s|%s|%s|%d|%d|%s|%d|%s|%s|%s",
                     coarseNumber(w.cpiCache).c_str(),
                     coarseNumber(w.bf).c_str(),
                     coarseNumber(w.mpki).c_str(),
                     coarseNumber(w.wbr).c_str(),
                     coarseNumber(w.iopi).c_str(),
                     coarseNumber(w.ioBytes).c_str(), p.cores, p.smt,
                     coarseNumber(p.ghz).c_str(), p.memory.channels,
                     coarseNumber(p.memory.megaTransfers).c_str(),
                     coarseNumber(p.memory.efficiency).c_str(),
                     coarseNumber(p.memory.compulsoryNs).c_str());
}

void
ServerOptions::validate() const
{
    requireConfig(workers >= 1, "server workers must be >= 1");
    requireConfig(maxConnections >= 1,
                  "server maxConnections must be >= 1");
    requireConfig(maxQueueDepth >= 1,
                  "server maxQueueDepth must be >= 1");
    requireConfig(maxInflightBytes >= 1,
                  "server maxInflightBytes must be >= 1");
    requireConfig(maxLineBytes >= 2, "server maxLineBytes must be >= 2");
    requireConfig(maxBatch >= 1, "server maxBatch must be >= 1");
    requireConfig(batchLingerMs >= 0.0,
                  "server batchLingerMs must be >= 0");
    requireConfig(defaultDeadlineMs >= 0.0,
                  "server defaultDeadlineMs must be >= 0");
    requireConfig(drainDeadlineMs >= 0.0,
                  "server drainDeadlineMs must be >= 0");
    requireConfig(pollMs >= 1, "server pollMs must be >= 1");
}

std::string
ServerStats::describe() const
{
    return strformat(
        "%llu conns (%llu shed): %llu accepted = %llu ok + %llu err + "
        "%llu write-fail%s; %llu hits, %llu stale, %llu shed, %llu "
        "quota-shed, %llu deadline, %llu solved, %llu drained, %llu "
        "batches (%llu reqs, %llu deduped), %llu parse errors",
        static_cast<unsigned long long>(connections),
        static_cast<unsigned long long>(connectionsShed),
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(repliesOk),
        static_cast<unsigned long long>(repliesError),
        static_cast<unsigned long long>(writeErrors),
        consistent() ? "" : " [LEDGER INCONSISTENT]",
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(staleServed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(quotaShed),
        static_cast<unsigned long long>(deadlineExceeded),
        static_cast<unsigned long long>(solved),
        static_cast<unsigned long long>(drained),
        static_cast<unsigned long long>(batches),
        static_cast<unsigned long long>(batchedRequests),
        static_cast<unsigned long long>(batchDeduped),
        static_cast<unsigned long long>(parseErrors));
}

std::string
ClientStats::toJson() const
{
    auto field = [](const char *name, std::uint64_t v) {
        return "\"" + std::string(name) +
               "\":" + std::to_string(v);
    };
    return "{" + field("accepted", accepted) + "," +
           field("cache_hits", cacheHits) + "," +
           field("solved", solved) + "," + field("shed", shed) + "," +
           field("quota_shed", quotaShed) + "," +
           field("replies_ok", repliesOk) + "," +
           field("replies_error", repliesError) + "," +
           field("write_errors", writeErrors) + "}";
}

std::string
ServerStats::toJson() const
{
    auto field = [](const char *name, std::uint64_t v) {
        return "\"" + std::string(name) +
               "\":" + std::to_string(v);
    };
    std::string clients_json = "{";
    for (std::size_t i = 0; i < clients.size(); ++i) {
        if (i > 0)
            clients_json += ",";
        clients_json +=
            "\"" + jsonEscape(clients[i].id) + "\":" + clients[i].toJson();
    }
    clients_json += "}";
    return "{" + field("connections", connections) + "," +
           field("connections_shed", connectionsShed) + "," +
           field("accepted", accepted) + "," +
           field("parse_errors", parseErrors) + "," +
           field("cache_hits", cacheHits) + "," +
           field("stale_served", staleServed) + "," +
           field("shed", shed) + "," + field("quota_shed", quotaShed) +
           "," + field("deadline_exceeded", deadlineExceeded) + "," +
           field("solved", solved) + "," + field("drained", drained) +
           "," + field("batches", batches) + "," +
           field("batched_requests", batchedRequests) + "," +
           field("batch_deduped", batchDeduped) + "," +
           field("replies_ok", repliesOk) + "," +
           field("replies_error", repliesError) + "," +
           field("write_errors", writeErrors) + ",\"consistent\":" +
           (consistent() ? "true" : "false") +
           ",\"clients\":" + clients_json + "}";
}

Server::Server(ServerOptions opts)
    : options(std::move(opts)), eval(model::Solver(), options.eval)
{
    options.validate();
    if (!options.nowMs)
        options.nowMs = steadyNowMs;
}

Server::~Server()
{
    stop();
}

double
Server::now() const
{
    return options.nowMs();
}

void
Server::addTransport(std::unique_ptr<Transport> transport)
{
    requireConfig(!started.load(), "addTransport must precede start()");
    transports.push_back(std::move(transport));
}

void
Server::start()
{
    requireConfig(!transports.empty(),
                  "server needs at least one transport");
    requireConfig(!started.exchange(true), "server already started");
    workerThreads.reserve(static_cast<std::size_t>(options.workers));
    for (int i = 0; i < options.workers; ++i)
        // memsense-lint: allow(no-hot-loop-alloc): one-time startup,
        // reserved to options.workers just above
        workerThreads.emplace_back([this] { workerLoop(); });
    acceptThreads.reserve(transports.size());
    for (auto &t : transports)
        // memsense-lint: allow(no-hot-loop-alloc): one-time startup,
        // reserved to transports.size() just above
        acceptThreads.emplace_back([this, tp = t.get()] {
            acceptLoop(tp);
        });
}

void
Server::requestStop()
{
    if (stopFlag.exchange(true))
        return;
    for (auto &t : transports)
        t->shutdownTransport();
    queueCv.notify_all();
}

void
Server::stop()
{
    if (!started.load() || stopped.exchange(true))
        return;
    requestStop();
    for (auto &t : acceptThreads)
        if (t.joinable())
            t.join();
    // Readers poll stopFlag between lines (pollMs granularity), so
    // each exits within one poll tick; joining here is bounded.
    for (;;) {
        std::thread reader;
        {
            std::lock_guard<std::mutex> lock(readerMu);
            if (readerThreads.empty())
                break;
            reader = std::move(readerThreads.back());
            readerThreads.pop_back();
        }
        if (reader.joinable())
            reader.join();
    }
    // Drain: give queued work drainDeadlineMs of real time to flow to
    // the workers, then cut them off and flush what remains.
    {
        std::unique_lock<std::mutex> lock(queueMu);
        queueIdleCv.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options.drainDeadlineMs),
            [this] { return queue.empty(); });
        hardStop = true;
    }
    queueCv.notify_all();
    for (auto &t : workerThreads)
        if (t.joinable())
            t.join();
    flushQueueAsDrained();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    ServerStats snap = counters;
    snap.clients.reserve(clientStates.size());
    for (const auto &client : clientStates)
        // memsense-lint: allow(no-hot-loop-alloc): reserved to
        // clientStates.size() just above; stats() is a cold snapshot
        snap.clients.push_back(client->counters);
    return snap;
}

std::size_t
Server::inflightBytesNow() const
{
    std::lock_guard<std::mutex> lock(queueMu);
    return inflightBytes;
}

void
Server::acceptLoop(Transport *transport)
{
    while (!stopFlag.load(std::memory_order_acquire)) {
        std::unique_ptr<LineStream> stream;
        const Transport::Accept a =
            transport->accept(stream, options.pollMs);
        if (a == Transport::Accept::Closed)
            return;
        if (a == Transport::Accept::Idle)
            continue;
        std::shared_ptr<LineStream> shared(std::move(stream));
        if (activeConnections.load(std::memory_order_acquire) >=
            options.maxConnections) {
            // Connection-level shedding: refuse with one typed error
            // line, before any request is accepted into the ledger.
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.connectionsShed;
            }
            shared->writeLine(errorReplyLine(
                "", "overloaded", "connection limit reached", false));
            shared->shutdownStream();
            continue;
        }
        // ClientId: peer label + connection serial. The serial keeps
        // ids unique across fd/port reuse, so per-client quotas and
        // counter slices never blend two distinct connections.
        auto client = std::make_shared<ClientState>();
        const std::uint64_t serial = clientSerial.fetch_add(1) + 1;
        // memsense-lint: allow(no-hot-loop-alloc): once per connection
        client->id = shared->peer() + "#" + std::to_string(serial);
        client->counters.id = client->id;
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.connections;
            if (clientStates.size() >= kMaxClientRecords)
                clientStates.erase(clientStates.begin());
            // memsense-lint: allow(no-hot-loop-alloc): one record per
            // accepted connection — connection churn, not the
            // per-request hot path; bounded by kMaxClientRecords
            clientStates.push_back(client);
        }
        MS_METRIC_COUNT("serve.client.connected");
        activeConnections.fetch_add(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> lock(readerMu);
        // memsense-lint: allow(no-hot-loop-alloc): one thread per
        // accepted connection — connection churn, not the per-request
        // hot path
        readerThreads.emplace_back(
            [this, shared, client] { readLoop(shared, client); });
    }
}

void
Server::readLoop(std::shared_ptr<LineStream> stream,
                 std::shared_ptr<ClientState> client)
{
    std::string line;
    std::size_t line_number = 0;
    while (!stopFlag.load(std::memory_order_acquire)) {
        const LineStream::Read r =
            stream->readLine(line, options.pollMs);
        if (r == LineStream::Read::Idle)
            continue;
        if (r == LineStream::Read::Eof ||
            r == LineStream::Read::Error)
            break;
        ++line_number;
        if (r == LineStream::Read::TooLong) {
            // The oversized line was counted and dropped by the
            // stream; reply once, then drop the connection — the
            // framing past an unread tail is unrecoverable.
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.accepted;
                ++counters.parseErrors;
                ++client->counters.accepted;
            }
            MS_METRIC_COUNT("serve.server.accepted");
            // Oversized-line error path: fires at most once per
            // connection, so the string building below is cold.
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            std::string cap_id = "line-" + std::to_string(line_number);
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            std::string cap_msg = "request line exceeds ";
            // memsense-lint: allow(no-hot-loop-alloc): cold error path
            cap_msg += std::to_string(options.maxLineBytes);
            cap_msg += " bytes";
            sendReply(stream, client.get(),
                      errorReplyLine(cap_id, "ConfigError", cap_msg,
                                     true),
                      false);
            break;
        }
        bool blank = true;
        for (char c : line)
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        if (blank)
            continue;
        handleLine(stream, client, line, line_number);
    }
    // Deliberately no shutdownStream() here: queued jobs from this
    // connection still own the stream via shared_ptr and will write
    // their replies (half-closed clients read them); the descriptor
    // closes when the last reference drops.
    activeConnections.fetch_sub(1, std::memory_order_acq_rel);
}

void
Server::handleLine(const std::shared_ptr<LineStream> &stream,
                   const std::shared_ptr<ClientState> &client,
                   const std::string &line, std::size_t line_number)
{
    // From here on this line is "accepted": it appears in the ledger
    // and is owed exactly one reply on every path below.
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++counters.accepted;
        ++client->counters.accepted;
    }
    MS_METRIC_COUNT("serve.server.accepted");

    EvalRequest req;
    try {
        MS_FAULT_POINT("server.parse");
        req = parseRequestLine(line, line_number);
    } catch (const std::exception &) {
        const std::exception_ptr ep = std::current_exception();
        const ExceptionInfo info = describeException(ep);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.parseErrors;
        }
        sendReply(stream, client.get(),
                  errorReplyLine("line-" + std::to_string(line_number),
                                 info.type, info.message,
                                 classifyException(ep) ==
                                     ErrorClass::Fatal),
                  false);
        return;
    }

    // Fast path: a verified cache hit is answered inline on the reader
    // thread and consumes no queue slot — under overload the hot set
    // keeps flowing while cold solves are shed below.
    try {
        if (auto hit = eval.probe(req.workload, req.platform)) {
            EvalOutcome outcome;
            outcome.id = req.id;
            outcome.result.attempts = 1;
            outcome.result.value.emplace(*hit);
            outcome.cacheHit = true;
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.cacheHits;
                ++client->counters.cacheHits;
            }
            sendReply(stream, client.get(), resultLine(outcome), true);
            return;
        }
    } catch (const std::exception &) {
        const ExceptionInfo info =
            describeException(std::current_exception());
        sendReply(stream, client.get(),
                  errorReplyLine(req.id, "internal",
                                 info.type + ": " + info.message, false),
                  false);
        return;
    }

    Job job;
    job.stream = stream;
    job.client = client;
    job.bytes = line.size();
    const double budget_ms =
        req.deadlineMs > 0.0 ? req.deadlineMs : options.defaultDeadlineMs;
    if (budget_ms > 0.0)
        job.deadlineAtMs = now() + budget_ms;
    job.request = std::move(req);

    // Admission control, two tiers under one lock: the client's own
    // quota first — a noisy neighbor is shed with `quota_exceeded`
    // before it can trip global admission for everyone — then the
    // global queue-depth and inflight-bytes bounds.
    bool admitted = false;
    bool quota_shed = false;
    std::size_t depth = 0;
    std::size_t bytes_inflight = 0;
    std::size_t client_depth = 0;
    std::size_t client_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        depth = queue.size();
        bytes_inflight = inflightBytes;
        client_depth = client->queuedJobs;
        client_bytes = client->queuedBytes;
        const bool over_quota =
            (options.maxQueuePerClient > 0 &&
             client->queuedJobs >= options.maxQueuePerClient) ||
            (options.maxInflightBytesPerClient > 0 &&
             client->queuedBytes + job.bytes >
                 options.maxInflightBytesPerClient);
        if (!hardStop && over_quota) {
            quota_shed = true;
        } else if (!hardStop && depth < options.maxQueueDepth &&
                   inflightBytes + job.bytes <=
                       options.maxInflightBytes) {
            try {
                MS_FAULT_POINT("server.enqueue");
                const std::size_t job_bytes = job.bytes;
                // memsense-lint: allow(no-hot-loop-alloc): the bounded
                // admission queue is the load-shedding mechanism; its
                // depth cap (maxQueueDepth) bounds this allocation
                queue.push_back(std::move(job));
                // Accounting strictly after the push (which gives the
                // strong guarantee): a throw leaves all three ledgers
                // untouched, so drain's inflightBytes==0 MS_ENSURE
                // stays provable.
                inflightBytes += job_bytes;
                client->queuedJobs += 1;
                client->queuedBytes += job_bytes;
                depth = queue.size();
                admitted = true;
            } catch (const std::exception &) {
                // Injected enqueue fault: fall through to the shed
                // path so the request still gets exactly one reply.
                admitted = false;
            }
        }
    }
    if (admitted) {
        MS_METRIC_OBSERVE("serve.server.queue_depth",
                          static_cast<double>(depth));
        queueCv.notify_one();
        return;
    }

    if (quota_shed) {
        // A quota shed is the client's own backlog, not server
        // pressure: reply with the distinct type (so well-behaved
        // clients can tell "slow down" from "server full") and never
        // serve it stale — degradation is reserved for capacity sheds.
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.quotaShed;
            ++client->counters.quotaShed;
        }
        MS_METRIC_COUNT("serve.client.quota_shed");
        sendReply(stream, client.get(),
                  errorReplyLine(
                      job.request.id, "quota_exceeded",
                      strformat("client %s over quota: %zu requests / "
                                "%zu bytes already queued",
                                client->id.c_str(), client_depth,
                                client_bytes),
                      false),
                  false);
        return;
    }

    // Shed path: degraded stale answer when both sides allow it,
    // otherwise a typed, explicitly-retryable overload error.
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++counters.shed;
        ++client->counters.shed;
    }
    MS_METRIC_COUNT("serve.server.shed");
    const EvalRequest &request = job.request;
    if (options.allowStale && request.allowStale) {
        if (auto stale = staleLookup(request)) {
            EvalOutcome outcome;
            outcome.id = request.id;
            outcome.result.attempts = 1;
            outcome.result.value.emplace(*stale);
            outcome.degraded = true;
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.staleServed;
            }
            sendReply(stream, client.get(), resultLine(outcome), true);
            return;
        }
    }
    sendReply(stream, client.get(),
              errorReplyLine(request.id, "overloaded",
                             strformat("queue full: %zu queued, %zu "
                                       "bytes in flight",
                                       depth, bytes_inflight),
                             false),
              false);
}

void
Server::workerLoop()
{
    // One reusable batch buffer per worker: cleared, never shrunk, so
    // steady state allocates nothing per pass.
    std::vector<Job> batch;
    batch.reserve(options.maxBatch);
    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [this] {
                return hardStop || !queue.empty() ||
                       stopFlag.load(std::memory_order_acquire);
            });
            if (hardStop)
                return;
            if (queue.empty()) {
                if (stopFlag.load(std::memory_order_acquire))
                    return; // drained: nothing left to do
                continue;
            }
            // Cooperative linger: give a partial batch a bounded
            // window (on the injectable clock) to fill before
            // dispatching — more dedup per pass at a capped latency
            // cost. A frozen test clock lingers until the batch fills,
            // stop begins, or another worker drains the queue.
            if (options.batchLingerMs > 0.0 &&
                queue.size() < options.maxBatch) {
                const double linger_until = now() + options.batchLingerMs;
                while (!hardStop &&
                       !stopFlag.load(std::memory_order_acquire) &&
                       !queue.empty() &&
                       queue.size() < options.maxBatch &&
                       now() < linger_until)
                    queueCv.wait_for(
                        lock, std::chrono::milliseconds(options.pollMs));
                if (hardStop)
                    return;
                if (queue.empty())
                    continue;
            }
            while (!queue.empty() && batch.size() < options.maxBatch) {
                Job &job = queue.front();
                inflightBytes -= job.bytes;
                if (job.client) {
                    job.client->queuedJobs -= 1;
                    job.client->queuedBytes -= job.bytes;
                }
                // memsense-lint: allow(no-hot-loop-alloc): reserved to
                // maxBatch once per worker, outside the loop
                batch.push_back(std::move(job));
                queue.pop_front();
            }
            if (queue.empty())
                queueIdleCv.notify_all();
        }
        // A single-job pass takes the pre-batching path so reply
        // text, counters, and fault-site behaviour stay bit-identical
        // with maxBatch == 1.
        if (batch.size() == 1)
            runJob(batch.front());
        else
            runBatch(batch);
    }
}

void
Server::runJob(const Job &job)
{
    const EvalRequest &req = job.request;
    // Deadline check at dequeue: a request that expired while queued
    // is answered without burning solver time on it.
    if (job.deadlineAtMs > 0.0 && now() >= job.deadlineAtMs) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.deadlineExceeded;
        }
        MS_METRIC_COUNT("serve.server.deadline_exceeded");
        sendReply(job.stream, job.client.get(),
                  errorReplyLine(req.id, "deadline_exceeded",
                                 "deadline expired while queued", false),
                  false);
        return;
    }
    try {
        MS_FAULT_POINT("server.solve");
        model::CancelCheck cancel;
        if (job.deadlineAtMs > 0.0) {
            const double deadline_at = job.deadlineAtMs;
            cancel = [this, deadline_at] {
                return now() >= deadline_at;
            };
        }
        EvalOutcome outcome;
        outcome.id = req.id;
        outcome.result.attempts = 1;
        outcome.result.value.emplace(
            eval.solveCancellable(req.workload, req.platform, cancel));
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.solved;
            if (job.client)
                ++job.client->counters.solved;
        }
        sendReply(job.stream, job.client.get(), resultLine(outcome),
                  true);
        staleStore(req, *outcome.result.value);
    } catch (const model::SolveCancelled &e) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.deadlineExceeded;
        }
        MS_METRIC_COUNT("serve.server.deadline_exceeded");
        sendReply(job.stream, job.client.get(),
                  errorReplyLine(
                      req.id, "deadline_exceeded",
                      strformat("deadline expired mid-solve (%d "
                                "iterations done)",
                                e.iterations),
                      false),
                  false);
    } catch (const std::exception &) {
        const std::exception_ptr ep = std::current_exception();
        const ExceptionInfo info = describeException(ep);
        sendReply(job.stream, job.client.get(),
                  errorReplyLine(req.id, "internal",
                                 info.type + ": " + info.message,
                                 classifyException(ep) ==
                                     ErrorClass::Fatal),
                  false);
    }
}

void
Server::runBatch(std::vector<Job> &batch)
{
    // Triage at dequeue: a request that expired while queued is
    // answered immediately and never joins the evaluator batch.
    // memsense-lint: allow(no-hot-loop-alloc): per-pass scratch,
    // bounded by maxBatch and reserved before every loop below
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Job &job = batch[i];
        if (job.deadlineAtMs > 0.0 && now() >= job.deadlineAtMs) {
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.deadlineExceeded;
            }
            MS_METRIC_COUNT("serve.server.deadline_exceeded");
            sendReply(job.stream, job.client.get(),
                      errorReplyLine(job.request.id, "deadline_exceeded",
                                     "deadline expired while queued",
                                     false),
                      false);
            continue;
        }
        // memsense-lint: allow(no-hot-loop-alloc): reserved to
        // batch.size() above
        live.push_back(i);
    }
    if (live.empty())
        return;
    if (live.size() == 1) {
        runJob(batch[live.front()]);
        return;
    }

    // Group the live jobs by request fingerprint so duplicates share
    // one solve, and derive each group's cancellation deadline: the
    // group is cancelled only when EVERY member's deadline has expired
    // (a member with no deadline pins the group at "never cancel"), so
    // dedup never starves the most patient requester. Fingerprint
    // collisions merely merge two groups' deadlines — harmlessly
    // conservative; the evaluator dedups by full canonical key.
    std::vector<EvalRequest> requests;
    std::vector<model::CancelCheck> cancels;
    std::vector<std::uint64_t> fps;
    std::vector<std::size_t> groupOf;
    std::vector<std::uint64_t> groupFp;
    std::vector<double> groupDeadlineAtMs; // 0 = never cancel
    requests.reserve(live.size());
    cancels.reserve(live.size());
    fps.reserve(live.size());
    groupOf.reserve(live.size());
    groupFp.reserve(live.size());
    groupDeadlineAtMs.reserve(live.size());
    const std::uint64_t solver_fp = eval.solverFingerprint();
    for (std::size_t j = 0; j < live.size(); ++j) {
        const Job &job = batch[live[j]];
        const std::uint64_t fp = model::requestFingerprint(
            job.request.workload, job.request.platform, solver_fp);
        // memsense-lint: allow(no-hot-loop-alloc): reserved above
        fps.push_back(fp);
        // Linear group scan: a batch holds at most maxBatch entries,
        // so this beats a hash map and allocates nothing.
        std::size_t g = groupFp.size();
        for (std::size_t k = 0; k < groupFp.size(); ++k) {
            if (groupFp[k] == fp) {
                g = k;
                break;
            }
        }
        if (g == groupFp.size()) {
            // memsense-lint: allow(no-hot-loop-alloc): reserved above
            groupFp.push_back(fp);
            // memsense-lint: allow(no-hot-loop-alloc): reserved above
            groupDeadlineAtMs.push_back(job.deadlineAtMs);
        } else if (groupDeadlineAtMs[g] > 0.0) {
            groupDeadlineAtMs[g] =
                job.deadlineAtMs > 0.0
                    ? std::max(groupDeadlineAtMs[g], job.deadlineAtMs)
                    : 0.0;
        }
        // memsense-lint: allow(no-hot-loop-alloc): reserved above
        groupOf.push_back(g);
        // memsense-lint: allow(no-hot-loop-alloc): reserved above
        requests.push_back(job.request);
    }
    for (std::size_t j = 0; j < live.size(); ++j) {
        const double group_deadline = groupDeadlineAtMs[groupOf[j]];
        model::CancelCheck cancel;
        if (group_deadline > 0.0)
            cancel = [this, group_deadline] {
                return now() >= group_deadline;
            };
        // memsense-lint: allow(no-hot-loop-alloc): reserved above
        cancels.push_back(std::move(cancel));
    }
    const std::size_t deduped = live.size() - groupFp.size();
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++counters.batches;
        counters.batchedRequests += live.size();
        counters.batchDeduped += deduped;
    }
    MS_METRIC_COUNT("serve.batch.dispatched");
    MS_METRIC_OBSERVE("serve.batch.size",
                      static_cast<double>(live.size()));
    MS_METRIC_COUNT_N("serve.batch.deduped", deduped);

    std::vector<EvalOutcome> outcomes;
    try {
        // The dedicated batch fault site sits between batch assembly
        // and the evaluator call; server.solve fires here too so the
        // chaos solve scenarios cover both dispatch shapes.
        MS_FAULT_POINT("server.batch");
        MS_FAULT_POINT("server.solve");
        outcomes = eval.evaluateBatch(requests, cancels);
    } catch (const std::exception &) {
        // Whole-batch abort (e.g. an injected fault in the serial
        // probe pass): every live job still gets exactly one typed
        // reply — the ledger holds even when the evaluator gives up.
        const std::exception_ptr ep = std::current_exception();
        const ExceptionInfo info = describeException(ep);
        const bool fatal = classifyException(ep) == ErrorClass::Fatal;
        for (std::size_t idx : live) {
            const Job &job = batch[idx];
            sendReply(job.stream, job.client.get(),
                      errorReplyLine(job.request.id, "internal",
                                     info.type + ": " + info.message,
                                     fatal),
                      false);
        }
        return;
    }
    MS_INVARIANT(outcomes.size() == live.size(),
                 "evaluateBatch must return one outcome per request");

    // Fan replies back out. Deadlines are re-checked after the solve:
    // a request whose deadline expired while its batch was in flight
    // still gets `deadline_exceeded`, exactly like the single-job path.
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        const Job &job = batch[live[j]];
        EvalOutcome &outcome = outcomes[j];
        const bool cancelled =
            !outcome.result.ok() && outcome.result.failure &&
            outcome.result.failure->errorType == "SolveCancelled";
        const bool expired =
            job.deadlineAtMs > 0.0 && now() >= job.deadlineAtMs;
        if (cancelled || expired) {
            {
                std::lock_guard<std::mutex> lock(statsMu);
                ++counters.deadlineExceeded;
            }
            MS_METRIC_COUNT("serve.server.deadline_exceeded");
            sendReply(job.stream, job.client.get(),
                      errorReplyLine(job.request.id, "deadline_exceeded",
                                     cancelled
                                         ? "deadline expired mid-solve "
                                           "(batched)"
                                         : "deadline expired mid-batch",
                                     false),
                      false);
            continue;
        }
        if (outcome.result.ok()) {
            {
                std::lock_guard<std::mutex> lock(statsMu);
                if (outcome.cacheHit) {
                    ++counters.cacheHits;
                    if (job.client)
                        ++job.client->counters.cacheHits;
                } else {
                    ++counters.solved;
                    if (job.client)
                        ++job.client->counters.solved;
                }
            }
            sendReply(job.stream, job.client.get(), resultLine(outcome),
                      true);
            if (!outcome.cacheHit)
                staleStore(job.request, *outcome.result.value);
            continue;
        }
        // Quarantined per-request failure: surface the typed record
        // (same shape as the batch CLI's error lines).
        sendReply(job.stream, job.client.get(), resultLine(outcome),
                  false);
    }
}

void
Server::flushQueueAsDrained()
{
    std::deque<Job> leftover;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        leftover.swap(queue);
        // Release per flushed job, NOT a wholesale `inflightBytes = 0`:
        // bytes of jobs a worker already dequeued were released at
        // dequeue, so zeroing here would silently hide any accounting
        // drift (and a worker mid-write is not "drained"). With the
        // per-job decrements, an empty queue provably holds zero bytes.
        for (const Job &job : leftover) {
            MS_ENSURE(inflightBytes >= job.bytes,
                      "drain would release more bytes than are in "
                      "flight");
            inflightBytes -= job.bytes;
            if (job.client) {
                job.client->queuedJobs -= 1;
                job.client->queuedBytes -= job.bytes;
            }
        }
        MS_ENSURE(inflightBytes == 0,
                  "inflight bytes must be zero once the queue is empty");
    }
    for (const Job &job : leftover) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            ++counters.drained;
        }
        MS_METRIC_COUNT("serve.server.drained");
        sendReply(job.stream, job.client.get(),
                  errorReplyLine(job.request.id, "overloaded",
                                 "server draining", false),
                  false);
    }
}

void
Server::sendReply(const std::shared_ptr<LineStream> &stream,
                  ClientState *client, const std::string &reply_line,
                  bool ok)
{
    bool delivered = false;
    try {
        delivered = stream->writeLine(reply_line);
    } catch (...) { // memsense-lint: allow(no-bare-catch): last-ditch
        // containment — a reply that cannot be rendered or written must
        // become a counted write error, never tear down the worker
        delivered = false;
    }
    std::lock_guard<std::mutex> lock(statsMu);
    if (!delivered) {
        ++counters.writeErrors;
        if (client)
            ++client->counters.writeErrors;
    } else if (ok) {
        ++counters.repliesOk;
        if (client)
            ++client->counters.repliesOk;
    } else {
        ++counters.repliesError;
        if (client)
            ++client->counters.repliesError;
    }
}

std::optional<model::OperatingPoint>
Server::staleLookup(const EvalRequest &req) const
{
    std::lock_guard<std::mutex> lock(staleMu);
    auto it = staleCache.find(coarseRequestKey(req));
    if (it == staleCache.end())
        return std::nullopt;
    return it->second;
}

void
Server::staleStore(const EvalRequest &req,
                   const model::OperatingPoint &op)
{
    std::lock_guard<std::mutex> lock(staleMu);
    // Unbounded growth guard: the coarse key space is tiny in practice
    // (3 significant digits per knob), but a hostile workload stream
    // could still inflate it — cap and wholesale-reset, which only
    // costs degraded-answer coverage, never correctness.
    if (staleCache.size() >= 4096)
        staleCache.clear();
    staleCache[coarseRequestKey(req)] = op;
}

} // namespace memsense::serve
