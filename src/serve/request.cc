#include "serve/request.hh"

#include "model/paper_data.hh"
#include "serve/json.hh"
#include "util/error.hh"
#include "util/string_util.hh"

namespace memsense::serve
{

namespace
{

model::WorkloadClass
classFromName(const std::string &cls)
{
    std::string lc = toLower(cls);
    if (lc == "bigdata")
        return model::WorkloadClass::BigData;
    if (lc == "enterprise")
        return model::WorkloadClass::Enterprise;
    if (lc == "hpc")
        return model::WorkloadClass::Hpc;
    throw ConfigError("workload class must be bigdata, enterprise, or "
                      "hpc (got '" +
                      cls + "')");
}

model::WorkloadParams
workloadFrom(const JsonValue &v)
{
    model::WorkloadClass cls = model::WorkloadClass::BigData;
    if (v.has("class"))
        cls = classFromName(v.at("class").asString("workload.class"));
    model::WorkloadParams p = model::paper::classParams(cls);
    if (v.has("name"))
        p.name = v.at("name").asString("workload.name");
    if (v.has("cpi_cache"))
        p.cpiCache = v.at("cpi_cache").asNumber("workload.cpi_cache");
    if (v.has("bf"))
        p.bf = v.at("bf").asNumber("workload.bf");
    if (v.has("mpki"))
        p.mpki = v.at("mpki").asNumber("workload.mpki");
    if (v.has("wbr"))
        p.wbr = v.at("wbr").asNumber("workload.wbr");
    if (v.has("iopi"))
        p.iopi = v.at("iopi").asNumber("workload.iopi");
    if (v.has("io_bytes"))
        p.ioBytes = v.at("io_bytes").asNumber("workload.io_bytes");
    return p;
}

model::Platform
platformFrom(const JsonValue &v)
{
    model::Platform plat; // struct defaults == paper baseline
    if (v.has("cores"))
        plat.cores = v.at("cores").asInt("platform.cores");
    if (v.has("smt"))
        plat.smt = v.at("smt").asInt("platform.smt");
    if (v.has("ghz"))
        plat.ghz = v.at("ghz").asNumber("platform.ghz");
    if (v.has("channels"))
        plat.memory.channels =
            v.at("channels").asInt("platform.channels");
    if (v.has("speed_mts"))
        plat.memory.megaTransfers =
            v.at("speed_mts").asNumber("platform.speed_mts");
    if (v.has("efficiency"))
        plat.memory.efficiency =
            v.at("efficiency").asNumber("platform.efficiency");
    if (v.has("latency_ns"))
        plat.memory.compulsoryNs =
            v.at("latency_ns").asNumber("platform.latency_ns");
    return plat;
}

std::string
errorJson(const std::string &type, const std::string &message,
          bool fatal, int attempts)
{
    return "{\"type\":\"" + jsonEscape(type) + "\",\"message\":\"" +
           jsonEscape(message) + "\",\"fatal\":" +
           (fatal ? "true" : "false") +
           ",\"attempts\":" + std::to_string(attempts) + "}";
}

} // anonymous namespace

EvalRequest
parseRequestLine(const std::string &line, std::size_t line_number)
{
    JsonValue v = parseJson(line);
    requireConfig(v.kind == JsonValue::Kind::Object,
                  "request line must be a JSON object");
    EvalRequest req;
    req.id = v.has("id") ? v.at("id").asString("id")
                         : "line-" + std::to_string(line_number);
    if (v.has("workload"))
        req.workload = workloadFrom(v.at("workload"));
    else
        req.workload =
            model::paper::classParams(model::WorkloadClass::BigData);
    if (v.has("platform"))
        req.platform = platformFrom(v.at("platform"));
    if (v.has("deadline_ms")) {
        req.deadlineMs = v.at("deadline_ms").asNumber("deadline_ms");
        requireConfig(req.deadlineMs >= 0.0,
                      "deadline_ms must be >= 0");
    }
    if (v.has("allow_stale")) {
        const JsonValue &stale = v.at("allow_stale");
        requireConfig(stale.kind == JsonValue::Kind::Bool,
                      "allow_stale must be a boolean");
        req.allowStale = stale.boolean;
    }
    return req;
}

std::string
resultLine(const EvalOutcome &outcome)
{
    std::string out = "{\"id\":\"" + jsonEscape(outcome.id) + "\",";
    if (outcome.result.ok()) {
        const model::OperatingPoint &op = *outcome.result.value;
        if (outcome.degraded)
            out += "\"degraded\":true,";
        out += "\"ok\":true,\"op\":{\"cpi_eff\":" +
               jsonNumber(op.cpiEff) +
               ",\"miss_penalty_ns\":" + jsonNumber(op.missPenaltyNs) +
               ",\"queuing_delay_ns\":" +
               jsonNumber(op.queuingDelayNs) + ",\"bw_per_core_bps\":" +
               jsonNumber(op.bandwidthPerCoreBps) +
               ",\"bw_total_bps\":" + jsonNumber(op.bandwidthTotalBps) +
               ",\"utilization\":" + jsonNumber(op.utilization) +
               ",\"bandwidth_bound\":" +
               (op.bandwidthBound ? "true" : "false") +
               ",\"iterations\":" + std::to_string(op.iterations) + "}}";
        return out;
    }
    const measure::FailureRecord &f = *outcome.result.failure;
    out += "\"ok\":false,\"error\":" +
           errorJson(f.errorType, f.message, f.fatal, f.attempts) + "}";
    return out;
}

std::string
parseErrorLine(std::size_t line_number, const std::string &message)
{
    return parseErrorLine(line_number, "ConfigError", message, true);
}

std::string
parseErrorLine(std::size_t line_number, const std::string &type,
               const std::string &message, bool fatal)
{
    return "{\"id\":\"line-" + std::to_string(line_number) +
           "\",\"ok\":false,\"error\":" +
           errorJson(type, message, fatal, 0) + "}";
}

std::string
errorReplyLine(const std::string &id, const std::string &type,
               const std::string &message, bool fatal)
{
    return "{\"id\":\"" + jsonEscape(id) + "\",\"ok\":false,\"error\":" +
           errorJson(type, message, fatal, 0) + "}";
}

} // namespace memsense::serve
