#include "serve/evaluator.hh"

#include <cstddef>
#include <unordered_map>
#include <utility>

#include "util/arena.hh"
#include "util/contract.hh"
#include "util/fault_injection.hh"
#include "util/trace.hh"

namespace memsense::serve
{

namespace
{

/** Shared "never cancel" hook — keeps the ternary below reference-safe
 *  (no temporary bound to a const reference). */
const model::CancelCheck kNoCancel{};

} // anonymous namespace

Evaluator::Evaluator(model::Solver solver_in, EvaluatorOptions opts)
    : analyticSolver(std::move(solver_in)), options(opts),
      solverFp(model::solverFingerprint(analyticSolver)),
      cache(opts.cache)
{
    options.resilience.retry.validate();
}

model::OperatingPoint
Evaluator::solve(const model::WorkloadParams &p,
                 const model::Platform &plat) const
{
    return solveCancellable(p, plat, model::CancelCheck{});
}

std::optional<model::OperatingPoint>
Evaluator::probe(const model::WorkloadParams &p,
                 const model::Platform &plat) const
{
    MS_FAULT_POINT("evaluator.probe");
    // Per-thread key buffer: a warm hit allocates nothing (the buffer
    // keeps its capacity across calls; the cache copies on insert).
    thread_local std::string key;
    key.clear();
    model::appendCanonicalRequestKey(key, p, plat);
    const std::uint64_t fp = model::requestFingerprint(p, plat, solverFp);
    return cache.lookup(fp, key);
}

model::OperatingPoint
Evaluator::solveCancellable(const model::WorkloadParams &p,
                            const model::Platform &plat,
                            const model::CancelCheck &cancel) const
{
    if (auto hit = probe(p, plat))
        return *hit;
    MS_FAULT_POINT("evaluator.solve");
    model::OperatingPoint op = analyticSolver.solve(p, plat, cancel);
    MS_FAULT_POINT("evaluator.insert");
    thread_local std::string key;
    key.clear();
    model::appendCanonicalRequestKey(key, p, plat);
    const std::uint64_t fp = model::requestFingerprint(p, plat, solverFp);
    cache.insert(fp, key, op);
    return op;
}

std::vector<EvalOutcome>
Evaluator::evaluateBatch(const std::vector<EvalRequest> &requests,
                         const std::vector<model::CancelCheck> &cancels)
    const
{
    MS_TRACE_SPAN("serve.batch");
    MS_METRIC_COUNT_N("serve.batch.requests", requests.size());
    MS_REQUIRE(cancels.empty() || cancels.size() == requests.size(),
               "evaluateBatch cancels must be empty or one per request");

    constexpr std::size_t kNotUnique = static_cast<std::size_t>(-1);

    // Pass 1 (serial, input order): fingerprint, probe the cache, and
    // deduplicate the misses. Serial probing keeps the hit/miss/evict
    // counter sequence — and therefore the metrics artifact — identical
    // for every worker count.
    // Batch-local bump arena backs the index/fingerprint scratch: one
    // block allocation serves the whole pass, and everything is freed
    // wholesale when the batch returns. The outcomes vector stays on
    // the heap because it is handed to the caller.
    util::Arena arena;
    util::ArenaAllocator<std::size_t> idxAlloc(&arena);
    util::ArenaAllocator<std::uint64_t> fpAlloc(&arena);
    std::vector<EvalOutcome> outcomes(requests.size());
    util::ArenaVector<std::size_t> uniqueOf(requests.size(), kNotUnique,
                                            idxAlloc);
    // Plain vector: handed to ParallelExecutor::mapOrderedResilient,
    // whose signature takes std::vector<Job>.
    std::vector<std::size_t> uniqueRequestIndex;
    util::ArenaVector<std::uint64_t> uniqueFp(fpAlloc);
    std::vector<std::string> uniqueKey;
    std::unordered_map<std::string, std::size_t> uniqueByKey;
    // Reused key buffer: on a warm batch every request is a cache hit,
    // and rebuilding the key in place means zero allocations per hit
    // (the map copies the key only for unique misses).
    std::string key;
    // Worst case every request is a unique miss, so reserving the
    // batch size up front makes the pushes below growth-free.
    uniqueRequestIndex.reserve(requests.size());
    uniqueFp.reserve(requests.size());
    uniqueKey.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        outcomes[i].id = requests[i].id;
        // A fault here aborts the whole batch (the probe pass is
        // serial and unprotected by design); the chaos tests assert
        // that the abort is a clean throw, never a crash or a leak.
        MS_FAULT_POINT("evaluator.probe");
        key.clear();
        model::appendCanonicalRequestKey(key, requests[i].workload,
                                         requests[i].platform);
        std::uint64_t fp = model::requestFingerprint(
            requests[i].workload, requests[i].platform, solverFp);
        if (auto hit = cache.lookup(fp, key)) {
            outcomes[i].result.value.emplace(*hit);
            outcomes[i].cacheHit = true;
            continue;
        }
        // Copy (not move) into the map: the copy is paid only for
        // unique misses, and keeps the reused buffer's capacity warm.
        auto [it, inserted] =
            uniqueByKey.emplace(key, uniqueRequestIndex.size());
        if (inserted) {
            // memsense-lint: allow(no-hot-loop-alloc): reserved to
            // requests.size() above the loop
            uniqueRequestIndex.push_back(i);
            // memsense-lint: allow(no-hot-loop-alloc): reserved above
            uniqueFp.push_back(fp);
            // memsense-lint: allow(no-hot-loop-alloc): reserved above
            uniqueKey.push_back(it->first);
        }
        uniqueOf[i] = it->second;
    }
    MS_METRIC_COUNT_N("serve.batch.unique_solves",
                      uniqueRequestIndex.size());

    // Pass 2 (parallel): solve each unique miss once. Failures are
    // quarantined per job, never thrown.
    measure::ParallelExecutor executor(options.jobs);
    auto solved = executor.mapOrderedResilient(
        uniqueRequestIndex,
        [this, &requests, &cancels](std::size_t request_index) {
            const EvalRequest &req = requests[request_index];
            // Inside the resilient wrapper: an injected fault here is
            // retried or quarantined per request, never thrown out.
            MS_FAULT_POINT("evaluator.solve");
            // The unique solve polls the cancellation hook of the
            // request that introduced it (see the header contract).
            const model::CancelCheck &cancel =
                cancels.empty() ? kNoCancel : cancels[request_index];
            return analyticSolver.solve(req.workload, req.platform,
                                        cancel);
        },
        options.resilience);

    // Pass 3 (serial, unique order): cache the successes. Insert order
    // is fixed, so LRU state and eviction counts are deterministic.
    for (std::size_t u = 0; u < solved.size(); ++u) {
        if (solved[u].ok()) {
            MS_FAULT_POINT("evaluator.insert");
            cache.insert(uniqueFp[u], uniqueKey[u], *solved[u].value);
        }
    }

    // Pass 4 (serial, input order): fan results back out to every
    // request that mapped to each unique solve.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (uniqueOf[i] == kNotUnique)
            continue; // already served from cache
        const auto &job = solved[uniqueOf[i]];
        outcomes[i].result.attempts = job.attempts;
        if (job.ok()) {
            outcomes[i].result.value.emplace(*job.value);
        } else {
            MS_INVARIANT(job.failure.has_value(),
                         "failed job carries no failure record");
            measure::FailureRecord rec = *job.failure;
            rec.jobIndex = i;
            rec.context = requests[i].id;
            outcomes[i].result.failure.emplace(std::move(rec));
        }
    }
    return outcomes;
}

} // namespace memsense::serve
