/**
 * @file
 * Fault-tolerant long-running evaluation server.
 *
 * One Server wraps one memoizing serve::Evaluator behind any number of
 * Transports (TCP, Unix-domain, stdio, in-process) and speaks the
 * JSON-lines request/reply schema of serve/request.hh, extended with
 * three serving-only error types: `overloaded`, `deadline_exceeded`,
 * and `internal` (all non-fatal except `internal` when the underlying
 * failure is). The design goals, in priority order:
 *
 *  1. Never crash, never hang, never leak a request: every line read
 *     from an admitted connection gets exactly one reply (or one
 *     counted write failure when the peer is already gone). The
 *     ServerStats ledger makes this checkable:
 *         accepted == repliesOk + repliesError + writeErrors
 *
 *  2. Degrade before collapsing. Admission control bounds both queue
 *     depth and in-flight request bytes; cache hits are answered
 *     inline on the reader thread and consume no queue slot, so under
 *     overload the server keeps serving its hot set and sheds only
 *     cold solves. With `allowStale` enabled (server opt-in AND the
 *     request not opting out) a shed request may instead be answered
 *     from a coarse-fingerprint stale cache, flagged `"degraded":true`.
 *
 *  3. Deadlines are cooperative and injectable. A request's
 *     `deadline_ms` budget starts at admission; workers check it when
 *     dequeuing and the solver polls it between bisection iterations
 *     (model::CancelCheck), so a deadline can cut a solve mid-flight
 *     without threads being killed. The clock is a ServerOptions hook
 *     — tests drive deadlines deterministically with a fake clock.
 *
 *  4. Drain, don't drop, on shutdown. requestStop() stops accepting
 *     and reading; queued work keeps flowing to workers until
 *     `drainDeadlineMs` elapses, after which the remainder is flushed
 *     with `overloaded` ("server draining") replies — still exactly
 *     one reply per accepted request.
 *
 * Fault sites (MS_FAULT_POINT): server.accept, server.read,
 * server.parse, server.enqueue, server.solve, server.write, plus the
 * evaluator.probe/solve/insert sites underneath. The chaos harness
 * (scripts/check_chaos.sh) runs the matrix of these against live
 * traffic and asserts the ledger, clean exits, and ASan silence.
 */

#ifndef MEMSENSE_SERVE_SERVER_HH
#define MEMSENSE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/evaluator.hh"
#include "serve/transport.hh"

namespace memsense::serve
{

/** Tuning knobs of one Server. */
struct ServerOptions
{
    EvaluatorOptions eval;     ///< cache + resilience of the evaluator
    int workers = 2;           ///< solver worker threads (>= 1)
    int maxConnections = 64;   ///< concurrent connections (excess shed)
    std::size_t maxQueueDepth = 256;    ///< queued cold solves
    std::size_t maxInflightBytes = 4u << 20; ///< queued request bytes
    std::size_t maxLineBytes = 64u << 10;    ///< per-line byte cap
    double defaultDeadlineMs = 0.0; ///< applied when a request has none
    double drainDeadlineMs = 2000.0; ///< queue budget after stop
    int pollMs = 50;           ///< accept/read wakeup granularity
    /** Server-side opt-in to degraded stale answers for shed requests
     *  (each request can still opt out with `"allow_stale": false`). */
    bool allowStale = false;
    /**
     * Monotonic clock in milliseconds. Deadlines, drain timing, and
     * latency metrics all read this hook, so tests inject a fake clock
     * and exercise deadline/drain paths deterministically (the same
     * injectable-clock pattern as measure::ResilienceOptions).
     */
    std::function<double()> nowMs;

    /** Validate the knobs; throws ConfigError on nonsense. */
    void validate() const;
};

/** Monotonic counters of one server run (see the ledger invariant). */
struct ServerStats
{
    std::uint64_t connections = 0;     ///< accepted connections
    std::uint64_t connectionsShed = 0; ///< refused at maxConnections
    std::uint64_t accepted = 0;    ///< request lines read + owed a reply
    std::uint64_t parseErrors = 0; ///< accepted but never parsed
    std::uint64_t cacheHits = 0;   ///< answered inline from the cache
    std::uint64_t staleServed = 0; ///< degraded coarse-cache answers
    std::uint64_t shed = 0;        ///< refused by admission control
    std::uint64_t deadlineExceeded = 0; ///< expired before/during solve
    std::uint64_t solved = 0;      ///< full solves that replied ok
    std::uint64_t drained = 0;     ///< flushed at shutdown (overloaded)
    std::uint64_t repliesOk = 0;   ///< `"ok":true` replies written
    std::uint64_t repliesError = 0; ///< `"ok":false` replies written
    std::uint64_t writeErrors = 0; ///< replies the peer never got

    /** The exactly-one-reply ledger. */
    bool
    consistent() const
    {
        return accepted == repliesOk + repliesError + writeErrors;
    }

    /** One human-readable summary line. */
    std::string describe() const;

    /** JSON object (stable key order) for --stats-json artifacts. */
    std::string toJson() const;
};

/**
 * The server (see file comment). Lifecycle: construct, addTransport()
 * one or more times, start(), then stop() — which drains and joins.
 * stop() is idempotent; requestStop() only flips the flag (safe to
 * call from a signal-watching thread, NOT from a signal handler —
 * signal handlers should set an atomic the daemon's main loop polls).
 */
class Server
{
  public:
    explicit Server(ServerOptions opts = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Add a listening endpoint. Must precede start(). */
    void addTransport(std::unique_ptr<Transport> transport);

    /** Spawn accept + worker threads. */
    void start();

    /** Begin shutdown: stop accepting/reading, let the queue drain. */
    void requestStop();

    /** Drain (bounded by drainDeadlineMs), join all threads. */
    void stop();

    /** Snapshot of the counters (thread-safe, any time). */
    ServerStats stats() const;

    /** The wrapped evaluator (cache stats etc.). */
    const Evaluator &evaluator() const { return eval; }

    /** True once requestStop()/stop() began. */
    bool
    stopping() const
    {
        return stopFlag.load(std::memory_order_acquire);
    }

    /** Connections currently being read (daemon idle detection). */
    int
    activeConnectionCount() const
    {
        return activeConnections.load(std::memory_order_acquire);
    }

  private:
    /** One queued cold solve, owing exactly one reply. */
    struct Job
    {
        std::shared_ptr<LineStream> stream;
        EvalRequest request;
        std::size_t bytes = 0;     ///< admission accounting
        double deadlineAtMs = 0.0; ///< absolute, 0 = none
    };

    void acceptLoop(Transport *transport);
    void readLoop(std::shared_ptr<LineStream> stream);
    void workerLoop();
    void handleLine(const std::shared_ptr<LineStream> &stream,
                    const std::string &line, std::size_t line_number);
    void runJob(const Job &job);
    void flushQueueAsDrained();
    /** Write one reply; counts ok/error/writeError per the ledger. */
    void sendReply(const std::shared_ptr<LineStream> &stream,
                   const std::string &reply_line, bool ok);
    double now() const;

    /** Coarse stale-answer cache (see allowStale). */
    std::optional<model::OperatingPoint>
    staleLookup(const EvalRequest &req) const;
    void staleStore(const EvalRequest &req,
                    const model::OperatingPoint &op);

    ServerOptions options;
    Evaluator eval;

    std::vector<std::unique_ptr<Transport>> transports;
    std::vector<std::thread> acceptThreads;
    std::vector<std::thread> workerThreads;
    std::mutex readerMu;
    std::vector<std::thread> readerThreads;

    std::mutex queueMu;
    std::condition_variable queueCv;
    std::condition_variable queueIdleCv; ///< signalled when queue empties
    std::deque<Job> queue;
    std::size_t inflightBytes = 0;
    bool hardStop = false; ///< workers must exit even with queued work

    std::atomic<bool> stopFlag{false};
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};
    std::atomic<int> activeConnections{0};

    mutable std::mutex statsMu;
    ServerStats counters;

    mutable std::mutex staleMu;
    std::unordered_map<std::string, model::OperatingPoint> staleCache;
};

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_SERVER_HH
