/**
 * @file
 * Fault-tolerant long-running evaluation server.
 *
 * One Server wraps one memoizing serve::Evaluator behind any number of
 * Transports (TCP, Unix-domain, stdio, in-process) and speaks the
 * JSON-lines request/reply schema of serve/request.hh, extended with
 * three serving-only error types: `overloaded`, `deadline_exceeded`,
 * and `internal` (all non-fatal except `internal` when the underlying
 * failure is). The design goals, in priority order:
 *
 *  1. Never crash, never hang, never leak a request: every line read
 *     from an admitted connection gets exactly one reply (or one
 *     counted write failure when the peer is already gone). The
 *     ServerStats ledger makes this checkable:
 *         accepted == repliesOk + repliesError + writeErrors
 *
 *  2. Degrade before collapsing. Admission control bounds both queue
 *     depth and in-flight request bytes; cache hits are answered
 *     inline on the reader thread and consume no queue slot, so under
 *     overload the server keeps serving its hot set and sheds only
 *     cold solves. With `allowStale` enabled (server opt-in AND the
 *     request not opting out) a shed request may instead be answered
 *     from a coarse-fingerprint stale cache, flagged `"degraded":true`.
 *     Per-client quotas (`maxQueuePerClient`,
 *     `maxInflightBytesPerClient`) shed a noisy neighbor with a
 *     distinct `quota_exceeded` error *before* it can trip global
 *     admission for everyone else; quota sheds are never answered
 *     stale — the client caused them, so the honest signal is the
 *     typed error.
 *
 *  2b. Batch, then solve. Workers drain up to `maxBatch` queued
 *     requests per pass (after a cooperative `batchLingerMs` wait on
 *     the injectable clock to let a batch fill) into one
 *     Evaluator::evaluateBatch call, which deduplicates identical
 *     fingerprints — N duplicate cold requests cost one solve and N
 *     replies. Per-request deadlines survive batching: a dedup group
 *     is cancelled only when every member's deadline has expired, and
 *     each request is re-checked after the solve so one whose deadline
 *     expired mid-batch still gets `deadline_exceeded`.
 *
 *  3. Deadlines are cooperative and injectable. A request's
 *     `deadline_ms` budget starts at admission; workers check it when
 *     dequeuing and the solver polls it between bisection iterations
 *     (model::CancelCheck), so a deadline can cut a solve mid-flight
 *     without threads being killed. The clock is a ServerOptions hook
 *     — tests drive deadlines deterministically with a fake clock.
 *
 *  4. Drain, don't drop, on shutdown. requestStop() stops accepting
 *     and reading; queued work keeps flowing to workers until
 *     `drainDeadlineMs` elapses, after which the remainder is flushed
 *     with `overloaded` ("server draining") replies — still exactly
 *     one reply per accepted request.
 *
 * Fault sites (MS_FAULT_POINT): server.accept, server.read,
 * server.parse, server.enqueue, server.batch (between batch assembly
 * and the evaluator call), server.solve, server.write, plus the
 * evaluator.probe/solve/insert sites underneath. The chaos harness
 * (scripts/check_chaos.sh) runs the matrix of these against live
 * traffic and asserts the ledger, clean exits, and ASan silence.
 */

#ifndef MEMSENSE_SERVE_SERVER_HH
#define MEMSENSE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/evaluator.hh"
#include "serve/transport.hh"

namespace memsense::serve
{

/** Tuning knobs of one Server. */
struct ServerOptions
{
    EvaluatorOptions eval;     ///< cache + resilience of the evaluator
    int workers = 2;           ///< solver worker threads (>= 1)
    int maxConnections = 64;   ///< concurrent connections (excess shed)
    std::size_t maxQueueDepth = 256;    ///< queued cold solves
    std::size_t maxInflightBytes = 4u << 20; ///< queued request bytes
    std::size_t maxLineBytes = 64u << 10;    ///< per-line byte cap
    /** Requests one worker pass drains into a single
     *  Evaluator::evaluateBatch call (>= 1; 1 = the pre-batching
     *  one-job-per-pass behaviour, bit-identical reply stream). */
    std::size_t maxBatch = 16;
    /** Cooperative wait (injectable clock) for a partial batch to fill
     *  before dispatching; 0 = dispatch whatever is queued. Trades a
     *  bounded latency bump for better dedup/amortization when the
     *  queue trickles. */
    double batchLingerMs = 0.0;
    /** Per-client queue-depth quota; 0 disables. A client at its quota
     *  is shed with `quota_exceeded` before global admission trips. */
    std::size_t maxQueuePerClient = 0;
    /** Per-client queued-bytes quota; 0 disables. */
    std::size_t maxInflightBytesPerClient = 0;
    double defaultDeadlineMs = 0.0; ///< applied when a request has none
    double drainDeadlineMs = 2000.0; ///< queue budget after stop
    int pollMs = 50;           ///< accept/read wakeup granularity
    /** Server-side opt-in to degraded stale answers for shed requests
     *  (each request can still opt out with `"allow_stale": false`). */
    bool allowStale = false;
    /**
     * Monotonic clock in milliseconds. Deadlines, drain timing, and
     * latency metrics all read this hook, so tests inject a fake clock
     * and exercise deadline/drain paths deterministically (the same
     * injectable-clock pattern as measure::ResilienceOptions).
     */
    std::function<double()> nowMs;

    /** Validate the knobs; throws ConfigError on nonsense. */
    void validate() const;
};

/** Per-client slice of the counters, keyed by the connection's
 *  ClientId (peer label + connection serial). Exported under the
 *  `"clients"` object of --stats-json; the same numbers aggregate into
 *  the global ledger, so per-client rows always sum to <= the global
 *  row (global also counts requests with no surviving client record).
 */
struct ClientStats
{
    std::string id;                ///< "<peer>#<serial>"
    std::uint64_t accepted = 0;    ///< lines read on this connection
    std::uint64_t cacheHits = 0;   ///< answered inline from the cache
    std::uint64_t solved = 0;      ///< full solves replied ok
    std::uint64_t shed = 0;        ///< global-admission sheds
    std::uint64_t quotaShed = 0;   ///< per-client quota sheds
    std::uint64_t repliesOk = 0;   ///< `"ok":true` replies written
    std::uint64_t repliesError = 0; ///< `"ok":false` replies written
    std::uint64_t writeErrors = 0; ///< replies this peer never got

    /** JSON object (stable key order) for --stats-json artifacts. */
    std::string toJson() const;
};

/** Monotonic counters of one server run (see the ledger invariant). */
struct ServerStats
{
    std::uint64_t connections = 0;     ///< accepted connections
    std::uint64_t connectionsShed = 0; ///< refused at maxConnections
    std::uint64_t accepted = 0;    ///< request lines read + owed a reply
    std::uint64_t parseErrors = 0; ///< accepted but never parsed
    std::uint64_t cacheHits = 0;   ///< answered inline from the cache
    std::uint64_t staleServed = 0; ///< degraded coarse-cache answers
    std::uint64_t shed = 0;        ///< refused by admission control
    std::uint64_t quotaShed = 0;   ///< refused by a per-client quota
    std::uint64_t deadlineExceeded = 0; ///< expired before/during solve
    std::uint64_t solved = 0;      ///< full solves that replied ok
    std::uint64_t drained = 0;     ///< flushed at shutdown (overloaded)
    std::uint64_t batches = 0;     ///< multi-request worker passes
    std::uint64_t batchedRequests = 0; ///< requests dispatched in them
    std::uint64_t batchDeduped = 0; ///< requests sharing another's solve
    std::uint64_t repliesOk = 0;   ///< `"ok":true` replies written
    std::uint64_t repliesError = 0; ///< `"ok":false` replies written
    std::uint64_t writeErrors = 0; ///< replies the peer never got

    /** Per-client slices, in connection-accept order. */
    std::vector<ClientStats> clients;

    /** The exactly-one-reply ledger. */
    bool
    consistent() const
    {
        return accepted == repliesOk + repliesError + writeErrors;
    }

    /** One human-readable summary line. */
    std::string describe() const;

    /** JSON object (stable key order) for --stats-json artifacts. */
    std::string toJson() const;
};

/**
 * The server (see file comment). Lifecycle: construct, addTransport()
 * one or more times, start(), then stop() — which drains and joins.
 * stop() is idempotent; requestStop() only flips the flag (safe to
 * call from a signal-watching thread, NOT from a signal handler —
 * signal handlers should set an atomic the daemon's main loop polls).
 */
class Server
{
  public:
    explicit Server(ServerOptions opts = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Add a listening endpoint. Must precede start(). */
    void addTransport(std::unique_ptr<Transport> transport);

    /** Spawn accept + worker threads. */
    void start();

    /** Begin shutdown: stop accepting/reading, let the queue drain. */
    void requestStop();

    /** Drain (bounded by drainDeadlineMs), join all threads. */
    void stop();

    /** Snapshot of the counters (thread-safe, any time). */
    ServerStats stats() const;

    /** The wrapped evaluator (cache stats etc.). */
    const Evaluator &evaluator() const { return eval; }

    /** Bytes currently held by queued jobs (thread-safe; tests assert
     *  the drain path returns this to exactly zero). */
    std::size_t inflightBytesNow() const;

    /** True once requestStop()/stop() began. */
    bool
    stopping() const
    {
        return stopFlag.load(std::memory_order_acquire);
    }

    /** Connections currently being read (daemon idle detection). */
    int
    activeConnectionCount() const
    {
        return activeConnections.load(std::memory_order_acquire);
    }

  private:
    /**
     * Per-connection identity and accounting. The id ("<peer>#<serial>")
     * is derived once at accept; the live queue occupancy fields are
     * only touched under queueMu (admission, dequeue, drain) and the
     * counter slice only under statsMu, mirroring the global split.
     */
    struct ClientState
    {
        std::string id;
        std::size_t queuedJobs = 0;  ///< jobs of this client in queue
        std::size_t queuedBytes = 0; ///< their byte footprint
        ClientStats counters;        ///< statsMu-guarded slice
    };

    /** One queued cold solve, owing exactly one reply. */
    struct Job
    {
        std::shared_ptr<LineStream> stream;
        std::shared_ptr<ClientState> client;
        EvalRequest request;
        std::size_t bytes = 0;     ///< admission accounting
        double deadlineAtMs = 0.0; ///< absolute, 0 = none
    };

    void acceptLoop(Transport *transport);
    void readLoop(std::shared_ptr<LineStream> stream,
                  std::shared_ptr<ClientState> client);
    void workerLoop();
    void handleLine(const std::shared_ptr<LineStream> &stream,
                    const std::shared_ptr<ClientState> &client,
                    const std::string &line, std::size_t line_number);
    void runJob(const Job &job);
    /** Solve a worker pass of >= 2 jobs via Evaluator::evaluateBatch
     *  (dedup + shared-group cancellation + per-request deadline
     *  recheck); single-job passes take runJob's unchanged path. */
    void runBatch(std::vector<Job> &batch);
    void flushQueueAsDrained();
    /** Write one reply; counts ok/error/writeError per the ledger,
     *  globally and on @p client when one is attached. */
    void sendReply(const std::shared_ptr<LineStream> &stream,
                   ClientState *client, const std::string &reply_line,
                   bool ok);
    double now() const;

    /** Coarse stale-answer cache (see allowStale). */
    std::optional<model::OperatingPoint>
    staleLookup(const EvalRequest &req) const;
    void staleStore(const EvalRequest &req,
                    const model::OperatingPoint &op);

    ServerOptions options;
    Evaluator eval;

    std::vector<std::unique_ptr<Transport>> transports;
    std::vector<std::thread> acceptThreads;
    std::vector<std::thread> workerThreads;
    std::mutex readerMu;
    std::vector<std::thread> readerThreads;

    mutable std::mutex queueMu;
    std::condition_variable queueCv;
    std::condition_variable queueIdleCv; ///< signalled when queue empties
    std::deque<Job> queue;
    std::size_t inflightBytes = 0;
    bool hardStop = false; ///< workers must exit even with queued work

    std::atomic<bool> stopFlag{false};
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};
    std::atomic<int> activeConnections{0};
    std::atomic<std::uint64_t> clientSerial{0};

    mutable std::mutex statsMu;
    ServerStats counters;
    /** Client records in accept order (statsMu-guarded). Bounded: past
     *  kMaxClientRecords the oldest record is dropped from the export —
     *  its counters stay in the global row, and any in-flight jobs keep
     *  it alive through their shared_ptr. */
    std::vector<std::shared_ptr<ClientState>> clientStates;

    mutable std::mutex staleMu;
    std::unordered_map<std::string, model::OperatingPoint> staleCache;
};

/**
 * Coarse request key of the stale-answer cache: every numeric knob
 * quantized to 3 significant digits. Canonical across platforms and
 * libcs — negative zero renders as "0", denormals collapse to "0"
 * (their %.3g spellings are not portable), and NaN renders as "nan"
 * regardless of sign/payload — so which degraded answer a given
 * request maps to is deterministic. Exposed for fuzz tests.
 */
std::string coarseRequestKey(const EvalRequest &req);

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_SERVER_HH
