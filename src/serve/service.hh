/**
 * @file
 * Stream-level driver of the batch evaluation service.
 *
 * Reads JSON-lines requests from an istream, evaluates them through a
 * memoizing Evaluator, and writes one JSON result line per input line
 * — in input order, malformed lines included (they become ConfigError
 * result lines rather than aborting the batch). The memsense_eval tool
 * is a thin CLI wrapper over runEvalService(); tests drive it directly
 * over stringstreams.
 *
 * `repeat` re-evaluates the same batch N times against the same warm
 * cache and emits only the final pass, so `--repeat 2` output being
 * byte-identical to `--repeat 1` output is exactly the warm-cache
 * determinism guarantee, testable with a diff.
 */

#ifndef MEMSENSE_SERVE_SERVICE_HH
#define MEMSENSE_SERVE_SERVICE_HH

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "serve/evaluator.hh"

namespace memsense::serve
{

/** Knobs of one service run. */
struct ServiceOptions
{
    EvaluatorOptions eval;   ///< cache + worker + resilience knobs
    int repeat = 1;          ///< evaluate the batch this many times
    /**
     * Cooperative shutdown flag (optional): polled between input
     * lines and between repeat passes. When it flips true the run
     * stops reading, evaluates whatever was already ingested exactly
     * once, emits those results, and returns with `interrupted` set —
     * the signal handlers of memsense_eval point this at their flag so
     * Ctrl-C flushes partial results instead of tearing the process.
     */
    const std::atomic<bool> *stop = nullptr;
};

/** What one service run did (for the stderr summary line). */
struct ServiceSummary
{
    std::size_t lines = 0;       ///< non-empty input lines
    std::size_t parseErrors = 0; ///< lines that never became requests
    std::size_t solved = 0;      ///< ok results in the emitted pass
    std::size_t failed = 0;      ///< quarantined results in that pass
    std::size_t cacheHits = 0;   ///< cache hits in that pass
    bool interrupted = false;    ///< stopped early by the stop flag
    CacheStats cache;            ///< final cache counters

    /** One human-readable summary line. */
    std::string describe() const;
};

/**
 * Run the service: read requests from @p in, write result lines to
 * @p out. Blank lines are skipped. Throws ConfigError only on nonsense
 * options; per-line failures are captured in the output stream.
 */
ServiceSummary runEvalService(std::istream &in, std::ostream &out,
                              const ServiceOptions &opts = {});

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_SERVICE_HH
