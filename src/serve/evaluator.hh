/**
 * @file
 * Memoizing batch evaluator: the serving layer's solve engine.
 *
 * An Evaluator owns one analytic Solver and one sharded LRU cache of
 * its operating points, keyed on the canonical request fingerprint
 * (model/fingerprint.hh). It serves two call shapes:
 *
 *  - SolveEngine::solve(): a drop-in for model::Solver anywhere an
 *    analyzer or report builder takes a SolveEngine — repeated
 *    operating points (sweep baselines, bisection probes) come out of
 *    the cache instead of re-running the fixed point.
 *
 *  - evaluateBatch(): many requests at once. Requests are
 *    fingerprinted and deduplicated serially in input order, the
 *    unique misses fan out over the parallel experiment engine
 *    (measure::ParallelExecutor::mapOrderedResilient), and results
 *    are assembled back in input order with per-request error capture
 *    — one bad request quarantines as a FailureRecord, the rest of
 *    the batch completes.
 *
 * Determinism: the cache probe, dedupe, and insert passes are serial
 * and in input order; only the unique solves run concurrently, and the
 * solver is deterministic. The outcome vector and the serve.cache.*
 * counters are therefore identical for any worker count. Failed solves
 * are never cached (a transient fault must not poison later batches).
 *
 * Thread-safety: solve() and evaluateBatch() may both be called
 * concurrently (all mutable state is the shard-locked cache plus
 * locals). Note that concurrent batches interleave their cache-counter
 * updates, so the counter *sequence* is only deterministic for callers
 * that serialize their batches (the batch CLI does; the server's
 * workers deliberately do not).
 */

#ifndef MEMSENSE_SERVE_EVALUATOR_HH
#define MEMSENSE_SERVE_EVALUATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "measure/parallel.hh"
#include "model/fingerprint.hh"
#include "serve/cache.hh"
#include "serve/request.hh"

namespace memsense::serve
{

/** Tuning knobs of one Evaluator. */
struct EvaluatorOptions
{
    CacheOptions cache;      ///< LRU capacity + shard count
    int jobs = 1;            ///< batch worker threads (<=0: hardware)
    /** Per-job retry/timeout policy for batch solves. The analytic
     *  solver is deterministic, so retries only matter under fault
     *  injection; the default single attempt avoids pointless
     *  re-solves of deterministic failures. */
    measure::ResilienceOptions resilience = singleAttempt();

    /** The default resilience policy: one attempt, no deadline. */
    static measure::ResilienceOptions
    singleAttempt()
    {
        measure::ResilienceOptions o;
        o.retry.maxAttempts = 1;
        return o;
    }
};

/** Memoizing solve engine (see file comment). */
class Evaluator : public model::SolveEngine
{
  public:
    explicit Evaluator(model::Solver solver_in = model::Solver(),
                       EvaluatorOptions opts = {});

    /** Cached single solve; throws exactly like Solver::solve. */
    model::OperatingPoint solve(const model::WorkloadParams &p,
                                const model::Platform &plat)
        const override;

    /**
     * Cache probe only: a verified hit (refreshing recency) or
     * nullopt, never a solve. The server's reader threads use this as
     * the admission fast path — a hit is answered inline and consumes
     * no queue slot, which is what "shed cold solves first" means.
     */
    std::optional<model::OperatingPoint>
    probe(const model::WorkloadParams &p,
          const model::Platform &plat) const;

    /**
     * Cached solve with a cooperative cancellation hook (probe, then
     * Solver::solve(p, plat, cancel), then insert). A cancelled or
     * failed solve caches nothing. Throws model::SolveCancelled when
     * @p cancel fires — the server maps that to `deadline_exceeded`.
     */
    model::OperatingPoint
    solveCancellable(const model::WorkloadParams &p,
                     const model::Platform &plat,
                     const model::CancelCheck &cancel) const;

    /**
     * Evaluate a batch (see file comment). Outcomes are returned in
     * request order; failures are captured per request, never thrown.
     *
     * @p cancels is either empty (no cancellation) or exactly one
     * cooperative cancellation hook per request, polled by the solver
     * between bisection iterations. Requests that deduplicate onto one
     * shared solve share the hook of the request that *introduced* the
     * solve, so callers coalescing requests with different deadlines
     * should pass the group's most permissive hook (the server does:
     * a dedup group is cancelled only when every member's deadline has
     * expired). A cancelled solve quarantines as a FailureRecord of
     * type SolveCancelled and caches nothing.
     */
    std::vector<EvalOutcome>
    evaluateBatch(const std::vector<EvalRequest> &requests,
                  const std::vector<model::CancelCheck> &cancels = {})
        const;

    /** Cache counters (hits/misses/evictions/collisions/size). */
    CacheStats cacheStats() const { return cache.stats(); }

    /** The wrapped analytic solver. */
    const model::Solver &solver() const { return analyticSolver; }

    /** Fingerprint of the solver configuration (queuing + options). */
    std::uint64_t solverFingerprint() const { return solverFp; }

  private:
    model::Solver analyticSolver;
    EvaluatorOptions options;
    std::uint64_t solverFp = 0;
    /** mutable: the cache is the memo table of a conceptually const
     *  solve — recency/counters updates do not change any result. */
    mutable ShardedLruCache cache;
};

} // namespace memsense::serve

#endif // MEMSENSE_SERVE_EVALUATOR_HH
