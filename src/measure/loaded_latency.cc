#include "measure/loaded_latency.hh"

#include <algorithm>
#include <memory>

#include "measure/parallel.hh"
#include "sim/machine.hh"
#include "util/error.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "workloads/latency_checker.hh"

namespace memsense::measure
{

namespace
{

/** Measure one (delay, mix, speed) point. */
LoadedLatencyPoint
measurePoint(const LoadedLatencySetup &setup, std::uint32_t delay)
{
    sim::MachineConfig mc;
    mc.cores = setup.cores;
    mc.core.ghz = setup.ghz;
    // MLC's generator threads keep many more requests in flight than
    // a typical workload; deepen the MSHRs so the sweep can reach the
    // platform's achievable bandwidth.
    mc.core.mshrs = 28;
    mc.dram.channels = setup.channels;
    mc.dram.megaTransfers = setup.memMtPerSec;
    mc.seed = setup.seed;

    sim::Machine machine(mc);
    std::vector<std::unique_ptr<workloads::Workload>> streams;
    for (int c = 0; c < setup.cores; ++c) {
        workloads::LatencyCheckerConfig lc;
        lc.role = (c == 0) ? workloads::MlcRole::LatencyProbe
                           : workloads::MlcRole::BandwidthGen;
        lc.seed = setup.seed * 131 + static_cast<std::uint64_t>(c);
        lc.readFraction = setup.readFraction;
        lc.delayCycles = delay;
        lc.arenaBase = (sim::Addr{1} << 44) +
                       static_cast<sim::Addr>(c) * (sim::Addr{1} << 42);
        streams.push_back(
            std::make_unique<workloads::LatencyCheckerWorkload>(lc));
        machine.bind(c, *streams.back());
    }

    machine.runFor(setup.warmup);
    const sim::CoreCounters probe0 = machine.core(0).counters();
    const sim::MachineSnapshot snap0 = machine.snapshot();

    machine.runFor(setup.measure);
    const sim::CoreCounters probe1 = machine.core(0).counters();
    const sim::MachineSnapshot snap1 = machine.snapshot();
    const sim::MachineSnapshot d = snap1 - snap0;

    const std::uint64_t fetches =
        probe1.memoryFetches() - probe0.memoryFetches();
    requireInvariant(fetches > 0, "latency probe made no fetches");
    const Picos lat =
        probe1.dramLatencyTotal - probe0.dramLatencyTotal;

    LoadedLatencyPoint pt;
    pt.delayCycles = delay;
    pt.latencyNs = picosToNs(lat) / static_cast<double>(fetches);
    pt.bandwidthGBps = d.dramBandwidth() / 1e9;
    return pt;
}

} // anonymous namespace

std::vector<stats::CurvePoint>
LoadedLatencyCurve::toQueuingSamples() const
{
    requireConfig(maxBandwidthGBps > 0.0, "curve has no bandwidth points");
    std::vector<stats::CurvePoint> samples;
    samples.reserve(points.size());
    for (const auto &pt : points) {
        stats::CurvePoint s;
        s.x = pt.bandwidthGBps / maxBandwidthGBps;
        s.y = std::max(0.0, pt.latencyNs - unloadedNs);
        samples.push_back(s);
    }
    return samples;
}

LoadedLatencyCurve
sweepLoadedLatency(const LoadedLatencySetup &setup)
{
    requireConfig(setup.cores >= 2,
                  "loaded-latency sweep needs a probe and at least one "
                  "bandwidth generator");
    requireConfig(!setup.delayCycles.empty(), "no delay points");

    LoadedLatencyCurve curve;
    curve.setup = setup;
    ParallelExecutor exec(setup.jobs);
    curve.points = exec.mapOrdered(
        setup.delayCycles, [&setup](const std::uint32_t &delay) {
            LogScope scope(strformat("mlc-%.0f", setup.memMtPerSec));
            LoadedLatencyPoint pt = measurePoint(setup, delay);
            debug(strformat("mlc %g MT/s rf=%.2f delay=%u: %.2f GB/s, "
                            "%.1f ns",
                            setup.memMtPerSec, setup.readFraction, delay,
                            pt.bandwidthGBps, pt.latencyNs));
            return pt;
        });

    curve.unloadedNs = curve.points.front().latencyNs;
    curve.maxBandwidthGBps = 0.0;
    for (const auto &pt : curve.points) {
        curve.unloadedNs = std::min(curve.unloadedNs, pt.latencyNs);
        curve.maxBandwidthGBps =
            std::max(curve.maxBandwidthGBps, pt.bandwidthGBps);
    }
    return curve;
}

std::vector<LoadedLatencySetup>
paperFig7Setups()
{
    std::vector<LoadedLatencySetup> setups;
    for (double mt : {1333.3, 1866.7}) {
        for (double rf : {1.0, 0.67}) {
            LoadedLatencySetup s;
            s.memMtPerSec = mt;
            s.readFraction = rf;
            setups.push_back(s);
        }
    }
    return setups;
}

model::QueuingModel
measureQueuingModel(const std::vector<LoadedLatencySetup> &setups,
                    std::size_t bins, double max_stable_util)
{
    requireConfig(!setups.empty(), "no sweep setups");
    std::vector<stats::PiecewiseCurve> curves;
    for (const auto &setup : setups) {
        inform(strformat("loaded-latency sweep: DDR-%g, %.0f%% reads",
                         setup.memMtPerSec, setup.readFraction * 100.0));
        LoadedLatencyCurve c = sweepLoadedLatency(setup);
        curves.push_back(stats::PiecewiseCurve::fromSamples(
                             c.toQueuingSamples(), bins)
                             .monotoneEnvelope());
    }
    stats::PiecewiseCurve composite =
        stats::PiecewiseCurve::composite(curves, bins).monotoneEnvelope();
    return model::QueuingModel::fromCurve(std::move(composite),
                                          max_stable_util);
}

} // namespace memsense::measure
