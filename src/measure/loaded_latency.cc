#include "measure/loaded_latency.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "measure/checkpoint.hh"
#include "measure/parallel.hh"
#include "sim/machine.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "workloads/latency_checker.hh"

namespace memsense::measure
{

namespace
{

/** Measure one (delay, mix, speed) point. */
LoadedLatencyPoint
measurePoint(const LoadedLatencySetup &setup, std::uint32_t delay)
{
    MS_FAULT_POINT("loaded_latency.point");
    MS_TRACE_SPAN("loaded_latency.point");
    MS_METRIC_COUNT("loaded_latency.points");
    sim::MachineConfig mc;
    mc.cores = setup.cores;
    mc.core.ghz = setup.ghz;
    // MLC's generator threads keep many more requests in flight than
    // a typical workload; deepen the MSHRs so the sweep can reach the
    // platform's achievable bandwidth.
    mc.core.mshrs = 28;
    mc.dram.channels = setup.channels;
    mc.dram.megaTransfers = setup.memMtPerSec;
    mc.seed = setup.seed;

    sim::Machine machine(mc);
    std::vector<std::unique_ptr<workloads::Workload>> streams;
    for (int c = 0; c < setup.cores; ++c) {
        workloads::LatencyCheckerConfig lc;
        lc.role = (c == 0) ? workloads::MlcRole::LatencyProbe
                           : workloads::MlcRole::BandwidthGen;
        lc.seed = setup.seed * 131 + static_cast<std::uint64_t>(c);
        lc.readFraction = setup.readFraction;
        lc.delayCycles = delay;
        lc.arenaBase = (sim::Addr{1} << 44) +
                       static_cast<sim::Addr>(c) * (sim::Addr{1} << 42);
        streams.push_back(
            std::make_unique<workloads::LatencyCheckerWorkload>(lc));
        machine.bind(c, *streams.back());
    }

    machine.runFor(setup.warmup);
    const sim::CoreCounters probe0 = machine.core(0).counters();
    const sim::MachineSnapshot snap0 = machine.snapshot();

    machine.runFor(setup.measure);
    const sim::CoreCounters probe1 = machine.core(0).counters();
    const sim::MachineSnapshot snap1 = machine.snapshot();
    const sim::MachineSnapshot d = snap1 - snap0;

    const std::uint64_t fetches =
        probe1.memoryFetches() - probe0.memoryFetches();
    requireInvariant(fetches > 0, "latency probe made no fetches");
    const Picos lat =
        probe1.dramLatencyTotal - probe0.dramLatencyTotal;

    LoadedLatencyPoint pt;
    pt.delayCycles = delay;
    pt.latencyNs = picosToNs(lat) / static_cast<double>(fetches);
    pt.bandwidthGBps = d.dramBandwidth() / 1e9;
    return pt;
}

/** Measure one point under the sweep's log scope, with debug trace. */
LoadedLatencyPoint
measurePointLogged(const LoadedLatencySetup &setup, std::uint32_t delay)
{
    LogScope scope(strformat("mlc-%.0f", setup.memMtPerSec));
    LoadedLatencyPoint pt = measurePoint(setup, delay);
    debug(strformat("mlc %g MT/s rf=%.2f delay=%u: %.2f GB/s, %.1f ns",
                    setup.memMtPerSec, setup.readFraction, delay,
                    pt.bandwidthGBps, pt.latencyNs));
    return pt;
}

/** Derive unloaded latency and achievable bandwidth from the points. */
void
finalizeCurve(LoadedLatencyCurve &curve)
{
    curve.unloadedNs = curve.points.front().latencyNs;
    curve.maxBandwidthGBps = 0.0;
    for (const auto &pt : curve.points) {
        curve.unloadedNs = std::min(curve.unloadedNs, pt.latencyNs);
        curve.maxBandwidthGBps =
            std::max(curve.maxBandwidthGBps, pt.bandwidthGBps);
    }
}

/** Bit-exact checkpoint codec for a LoadedLatencyPoint. */
CheckpointCodec<LoadedLatencyPoint>
loadedLatencyPointCodec()
{
    CheckpointCodec<LoadedLatencyPoint> codec;
    codec.encode = [](const LoadedLatencyPoint &pt) {
        return encodeDoubles({static_cast<double>(pt.delayCycles),
                              pt.bandwidthGBps, pt.latencyNs});
    };
    codec.decode =
        [](const std::string &payload) -> std::optional<LoadedLatencyPoint> {
        std::optional<std::vector<double>> decoded = decodeDoubles(payload);
        if (!decoded || decoded->size() != 3)
            return std::nullopt;
        const std::vector<double> &v = *decoded;
        LoadedLatencyPoint pt;
        pt.delayCycles = static_cast<std::uint32_t>(v[0]);
        pt.bandwidthGBps = v[1];
        pt.latencyNs = v[2];
        return pt;
    };
    return codec;
}

/** Stable identity of one sweep for checkpoint-journal validation. */
std::string
loadedLatencyRunKey(const LoadedLatencySetup &setup)
{
    std::vector<double> delays;
    delays.reserve(setup.delayCycles.size());
    for (std::uint32_t d : setup.delayCycles)
        delays.push_back(static_cast<double>(d));
    return checkpointRunKey(strformat(
        "mlc mt=%.6g rf=%.6g cores=%d ch=%d ghz=%.6g seed=%llu "
        "warm=%lld meas=%lld delays=%s",
        setup.memMtPerSec, setup.readFraction, setup.cores,
        setup.channels, setup.ghz,
        static_cast<unsigned long long>(setup.seed),
        static_cast<long long>(setup.warmup),
        static_cast<long long>(setup.measure),
        encodeDoubles(delays).c_str()));
}

} // anonymous namespace

std::vector<stats::CurvePoint>
LoadedLatencyCurve::toQueuingSamples() const
{
    requireConfig(maxBandwidthGBps > 0.0, "curve has no bandwidth points");
    std::vector<stats::CurvePoint> samples;
    samples.reserve(points.size());
    for (const auto &pt : points) {
        stats::CurvePoint s;
        s.x = pt.bandwidthGBps / maxBandwidthGBps;
        s.y = std::max(0.0, pt.latencyNs - unloadedNs);
        samples.push_back(s);
    }
    return samples;
}

LoadedLatencyCurve
sweepLoadedLatency(const LoadedLatencySetup &setup)
{
    requireConfig(setup.cores >= 2,
                  "loaded-latency sweep needs a probe and at least one "
                  "bandwidth generator");
    requireConfig(!setup.delayCycles.empty(), "no delay points");

    LoadedLatencyCurve curve;
    curve.setup = setup;
    ParallelExecutor exec(setup.jobs);
    curve.points = exec.mapOrdered(
        setup.delayCycles, [&setup](const std::uint32_t &delay) {
            return measurePointLogged(setup, delay);
        });
    finalizeCurve(curve);
    return curve;
}

ResilientLoadedLatency
sweepLoadedLatencyResilient(const LoadedLatencySetup &setup)
{
    requireConfig(setup.cores >= 2,
                  "loaded-latency sweep needs a probe and at least one "
                  "bandwidth generator");
    requireConfig(!setup.delayCycles.empty(), "no delay points");

    ParallelExecutor exec(setup.jobs);
    std::vector<JobResult<LoadedLatencyPoint>> settled =
        mapOrderedResilientCheckpointed(
            exec, setup.delayCycles,
            [&setup](const std::uint32_t &delay) {
                return measurePointLogged(setup, delay);
            },
            setup.resilience.toOptions(), setup.resilience.checkpointPath,
            loadedLatencyRunKey(setup), loadedLatencyPointCodec());

    ResilientLoadedLatency out;
    out.totalJobs = settled.size();
    out.curve.setup = setup;
    for (std::size_t i = 0; i < settled.size(); ++i) {
        if (settled[i].ok()) {
            out.curve.points.push_back(*settled[i].value);
            continue;
        }
        FailureRecord rec = *settled[i].failure;
        rec.context = strformat("mlc mt=%.6g rf=%.2f delay=%u",
                                setup.memMtPerSec, setup.readFraction,
                                setup.delayCycles[i]);
        out.manifest.failures.push_back(std::move(rec));
    }
    requireConfig(out.curve.points.size() >= 2,
                  strformat("loaded-latency sweep: only %zu of %zu delay "
                            "points survived; need at least 2 for a curve",
                            out.curve.points.size(), settled.size()));
    if (!out.manifest.empty())
        warn(strformat("loaded-latency sweep: %zu of %zu delay points "
                       "quarantined",
                       out.manifest.failures.size(), settled.size()));
    finalizeCurve(out.curve);
    return out;
}

std::vector<LoadedLatencySetup>
paperFig7Setups()
{
    std::vector<LoadedLatencySetup> setups;
    for (double mt : {1333.3, 1866.7}) {
        for (double rf : {1.0, 0.67}) {
            LoadedLatencySetup s;
            s.memMtPerSec = mt;
            s.readFraction = rf;
            setups.push_back(s);
        }
    }
    return setups;
}

model::QueuingModel
measureQueuingModel(const std::vector<LoadedLatencySetup> &setups,
                    std::size_t bins, double max_stable_util)
{
    requireConfig(!setups.empty(), "no sweep setups");
    std::vector<stats::PiecewiseCurve> curves;
    for (const auto &setup : setups) {
        inform(strformat("loaded-latency sweep: DDR-%g, %.0f%% reads",
                         setup.memMtPerSec, setup.readFraction * 100.0));
        LoadedLatencyCurve c = sweepLoadedLatency(setup);
        curves.push_back(stats::PiecewiseCurve::fromSamples(
                             c.toQueuingSamples(), bins)
                             .monotoneEnvelope());
    }
    stats::PiecewiseCurve composite =
        stats::PiecewiseCurve::composite(curves, bins).monotoneEnvelope();
    return model::QueuingModel::fromCurve(std::move(composite),
                                          max_stable_util);
}

model::QueuingModel
measureQueuingModelResilient(const std::vector<LoadedLatencySetup> &setups,
                             const ResilienceConfig &resilience,
                             FailureManifest *manifest, std::size_t bins,
                             double max_stable_util)
{
    requireConfig(!setups.empty(), "no sweep setups");
    std::vector<stats::PiecewiseCurve> curves;
    for (std::size_t i = 0; i < setups.size(); ++i) {
        LoadedLatencySetup setup = setups[i];
        setup.resilience = resilience;
        if (!resilience.checkpointPath.empty())
            setup.resilience.checkpointPath =
                resilience.checkpointPath + ".mlc" + std::to_string(i);
        inform(strformat("loaded-latency sweep: DDR-%g, %.0f%% reads",
                         setup.memMtPerSec, setup.readFraction * 100.0));
        try {
            ResilientLoadedLatency r = sweepLoadedLatencyResilient(setup);
            if (manifest)
                manifest->merge(r.manifest);
            curves.push_back(stats::PiecewiseCurve::fromSamples(
                                 r.curve.toQueuingSamples(), bins)
                                 .monotoneEnvelope());
        } catch (const ConfigError &e) {
            // The whole curve failed (fewer than two surviving
            // points). Quarantine the setup and keep sweeping.
            warn(strformat("skipping DDR-%g rf=%.2f curve: %s",
                           setup.memMtPerSec, setup.readFraction,
                           e.what()));
            if (manifest) {
                FailureRecord rec;
                rec.jobIndex = i;
                rec.context =
                    strformat("mlc setup mt=%.6g rf=%.2f",
                              setup.memMtPerSec, setup.readFraction);
                rec.errorType = "CurveSkipped";
                rec.message = e.what();
                manifest->failures.push_back(std::move(rec));
            }
        }
    }
    requireConfig(!curves.empty(),
                  "every loaded-latency curve was quarantined; cannot "
                  "build a queuing model");
    stats::PiecewiseCurve composite =
        stats::PiecewiseCurve::composite(curves, bins).monotoneEnvelope();
    return model::QueuingModel::fromCurve(std::move(composite),
                                          max_stable_util);
}

} // namespace memsense::measure
