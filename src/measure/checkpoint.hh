/**
 * @file
 * Sweep checkpointing: append-only result journal + resume.
 *
 * A checkpointed sweep streams every settled job to a journal file as
 * it completes; an interrupted run can then resume from the journal
 * and re-run only the missing or failed jobs, producing results
 * bit-identical to an uninterrupted run for any worker count.
 *
 * Journal format (one record per line, crash-tolerant):
 *
 *     memsense-ckpt v1 key=<runKey>
 *     R <index> ok <payload> #<fnv64hex>
 *     R <index> fail <errorType> #<fnv64hex>
 *
 * The header key fingerprints the sweep (grid shape, seeds, workload
 * set); resuming against a journal whose key differs is a ConfigError,
 * not a silent wrong answer. Each record carries an FNV-1a checksum of
 * its own content, and loading skips any line that is torn, corrupt,
 * or out of range — a crash mid-append therefore costs at most the one
 * record being written. Doubles in payloads are encoded as raw IEEE-754
 * bit patterns (hex), so a restored value is the value, bit for bit.
 */

#ifndef MEMSENSE_MEASURE_CHECKPOINT_HH
#define MEMSENSE_MEASURE_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "measure/parallel.hh"
#include "measure/resilience.hh"
#include "util/log.hh"

namespace memsense::measure
{

/** Bit-exact doubles -> space-separated hex words (IEEE-754 bits). */
std::string encodeDoubles(const std::vector<double> &values);

/** Inverse of encodeDoubles(); nullopt on any malformed word. */
std::optional<std::vector<double>> decodeDoubles(const std::string &text);

/** Serialize/deserialize one job result for the journal. */
template <typename T>
struct CheckpointCodec
{
    /** Encode to a single line (must not contain '\n' or '#'). */
    std::function<std::string(const T &)> encode;
    /** Decode; nullopt rejects the record (job re-runs instead). */
    std::function<std::optional<T>(const std::string &)> decode;
};

/** Append-only, crash-tolerant journal of settled sweep jobs. */
class CheckpointJournal
{
  public:
    /** One parsed journal record. */
    struct Record
    {
        std::size_t index = 0;  ///< job input-order index
        bool ok = false;        ///< value record vs quarantine record
        std::string payload;    ///< codec output / error type
    };

    /**
     * Open @p path for appending, creating it (with a header naming
     * @p run_key) when absent. Existing valid records are loaded and
     * available via restored(); a header key mismatch throws
     * ConfigError.
     */
    CheckpointJournal(const std::string &path, const std::string &run_key);

    /**
     * Valid records found at open, deduplicated by index (last record
     * wins, so a re-run may supersede an earlier quarantine).
     */
    const std::map<std::size_t, Record> &restored() const
    {
        return loaded;
    }

    /** Append one settled record and flush it. Thread-safe. */
    void append(std::size_t index, bool ok, const std::string &payload);

    const std::string &path() const { return journalPath; }

  private:
    std::string journalPath;
    std::map<std::size_t, Record> loaded;
    std::mutex mtx;
    std::ofstream out;
};

/**
 * Stable fingerprint of a sweep for the journal header: hashes the
 * caller-supplied descriptor (workload ids, grid shape, seeds, ...).
 */
std::string checkpointRunKey(const std::string &descriptor);

/**
 * Checkpointed resilient map: like mapOrderedResilient(), plus every
 * settled job is streamed to the journal at @p journal_path, and jobs
 * already settled successfully in a previous run are restored instead
 * of re-run (their JobResult reports attempts == 0). Failed or missing
 * jobs re-run with their original retry streams, so the merged result
 * vector is bit-identical to an uninterrupted sweep.
 *
 * With an empty @p journal_path this is exactly mapOrderedResilient().
 */
template <typename Job, typename Fn>
auto
mapOrderedResilientCheckpointed(
    const ParallelExecutor &exec, const std::vector<Job> &inputs, Fn fn,
    const ResilienceOptions &opts, const std::string &journal_path,
    const std::string &run_key,
    const CheckpointCodec<std::invoke_result_t<Fn, const Job &>> &codec)
    -> std::vector<JobResult<std::invoke_result_t<Fn, const Job &>>>
{
    using Result = std::invoke_result_t<Fn, const Job &>;
    if (journal_path.empty())
        return exec.mapOrderedResilient(inputs, fn, opts);

    CheckpointJournal journal(journal_path, run_key);

    std::vector<JobResult<Result>> results(inputs.size());
    std::vector<bool> restored(inputs.size(), false);
    {
        MS_TRACE_SPAN("checkpoint.replay");
        for (const auto &[index, record] : journal.restored()) {
            if (index >= inputs.size() || !record.ok)
                continue;
            std::optional<Result> value = codec.decode(record.payload);
            if (!value)
                continue; // undecodable record: treat as missing, re-run
            results[index].value = std::move(value);
            results[index].attempts = 0;
            restored[index] = true;
            MS_METRIC_COUNT("checkpoint.jobs_restored");
        }
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!restored[i])
            pending.push_back(i);
    }

    auto by_index = [&inputs, &fn](std::size_t i) {
        return fn(inputs[i]);
    };
    auto stream_record = [&journal, &codec](std::size_t index,
                                            const JobResult<Result> &r) {
        try {
            if (r.ok())
                journal.append(index, true, codec.encode(*r.value));
            else
                journal.append(index, false, r.failure->errorType);
        } catch (const std::exception &e) {
            // A journal write failure must not fail the job: the sweep
            // still completes, it just loses resumability for this
            // record.
            warn(std::string("checkpoint append failed: ") + e.what());
        }
    };
    std::vector<JobResult<Result>> fresh =
        exec.mapIndicesResilient<Result>(pending, by_index, opts,
                                         stream_record);
    for (std::size_t k = 0; k < pending.size(); ++k)
        results[pending[k]] = std::move(fresh[k]);
    return results;
}

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_CHECKPOINT_HH
