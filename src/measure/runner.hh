/**
 * @file
 * Workload run harness: builds a machine for a catalog workload at a
 * given core/memory speed, owns the per-core generator instances, and
 * produces counter measurements over warmup/measure windows — the
 * simulator-side equivalent of the paper's perf-counter collection
 * runs.
 */

#ifndef MEMSENSE_MEASURE_RUNNER_HH
#define MEMSENSE_MEASURE_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "model/fitter.hh"
#include "sim/machine.hh"
#include "workloads/factory.hh"

namespace memsense::measure
{

/** One simulator run configuration. */
struct RunConfig
{
    std::string workloadId;   ///< catalog id
    int cores = 4;            ///< cores generating load
    double ghz = 2.7;         ///< core frequency
    double memMtPerSec = 1866.7; ///< DDR transfer rate
    int channels = 4;         ///< DDR channels
    std::uint64_t seed = 1;   ///< run seed
    Picos warmup = nsToPicos(8'000'000.0); ///< minimum warmup window
    Picos measure = nsToPicos(1'000'000.0);///< measurement window
    bool prefetcherEnabled = true; ///< ablation knob
    std::uint32_t mshrs = 10;      ///< ablation knob
    /** Extend warmup until the LLC has turned over once (about 1.3
     *  residence times at the observed fetch rate), so writeback
     *  rates are measured in steady state even for low-MPKI
     *  workloads. */
    bool adaptiveWarmup = true;
    Picos maxWarmup = nsToPicos(40'000'000.0); ///< adaptive cap
    /** LLC replacement policy (ablation knob). */
    sim::ReplacementKind llcReplacement = sim::ReplacementKind::Lru;

    /** The machine configuration this run implies. */
    sim::MachineConfig machineConfig() const;
};

/**
 * A live run: machine plus the generator instances bound to it.
 *
 * Generators must outlive the machine's runs, so the harness owns
 * both.
 */
class WorkloadRun
{
  public:
    explicit WorkloadRun(const RunConfig &cfg);

    /** The machine under test. */
    sim::Machine &machine() { return *mach; }

    /** Run the warmup window (counters then cleared via snapshots). */
    void warmup();

    /**
     * Run the measurement window and return the counter delta over
     * it.
     */
    sim::MachineSnapshot measure();

    /**
     * Run one interval of @p interval and return the delta (for
     * time-series sampling).
     */
    sim::MachineSnapshot sampleInterval(Picos interval);

    /** The run configuration. */
    const RunConfig &config() const { return cfg; }

  private:
    RunConfig cfg;
    std::unique_ptr<sim::Machine> mach;
    std::vector<std::unique_ptr<workloads::Workload>> streams;
    sim::MachineSnapshot last;
};

/**
 * Execute a full run (warmup + measure) and convert the counters into
 * a model fit observation.
 */
model::FitObservation runObservation(const RunConfig &cfg);

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_RUNNER_HH
