/**
 * @file
 * MetricsRegistry: gauges, snapshot assembly, JSON serialization.
 */

#include "metrics.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "util/error.hh"

namespace memsense::measure
{

struct MetricsRegistry::Impl
{
    mutable std::mutex mu;
    // memsense-lint: guarded_by(mu)
    std::map<std::string, double> gauges;
};

MetricsRegistry &
MetricsRegistry::instance()
{
    // memsense-lint: allow(mutable-global-state): the metrics registry
    // is intentionally process-global and mutex-guarded; leaked so
    // atexit flush handlers may use it during teardown.
    static MetricsRegistry *r = new MetricsRegistry;
    return *r;
}

MetricsRegistry::Impl &
MetricsRegistry::impl() const
{
    // memsense-lint: allow(mutable-global-state): see instance()
    static Impl *i = new Impl;
    return *i;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    if (!trace::statsEnabled())
        return;
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    i.gauges[name] = value;
}

void
MetricsRegistry::addGauge(const std::string &name, double delta)
{
    if (!trace::statsEnabled())
        return;
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    i.gauges[name] += delta;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters = trace::counterTotals();
    snap.distributions = trace::valueStats();
    snap.spans = trace::spanStats();
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    snap.gauges = i.gauges;
    return snap;
}

namespace
{

/** %.17g round-trips every double; JSON has no Inf/NaN literals. */
std::string
jsonNumber(double v)
{
    char buf[64];
    if (std::isnan(v)) {
        std::snprintf(buf, sizeof buf, "\"nan\"");
    } else if (std::isinf(v)) {
        std::snprintf(buf, sizeof buf, v > 0 ? "\"inf\"" : "\"-inf\"");
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void
appendCounters(std::ostringstream &out, const MetricsSnapshot &snap)
{
    out << "  \"counters\": {";
    bool first = true;
    for (const auto &kv : snap.counters) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    \"" << jsonEscape(kv.first) << "\": " << kv.second;
    }
    out << (first ? "" : "\n  ") << "}";
}

} // anonymous namespace

std::string
MetricsRegistry::countersJson(const MetricsSnapshot &snap)
{
    std::ostringstream out;
    appendCounters(out, snap);
    return out.str();
}

std::string
MetricsRegistry::toJson(const MetricsSnapshot &snap,
                        const std::string &experiment)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"memsense.metrics.v1\",\n";
    out << "  \"experiment\": \"" << jsonEscape(experiment) << "\",\n";
    appendCounters(out, snap);
    out << ",\n  \"gauges\": {";
    bool first = true;
    for (const auto &kv : snap.gauges) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    \"" << jsonEscape(kv.first)
            << "\": " << jsonNumber(kv.second);
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"distributions\": {";
    first = true;
    for (const auto &kv : snap.distributions) {
        out << (first ? "\n" : ",\n");
        first = false;
        const trace::ValueStat &v = kv.second;
        out << "    \"" << jsonEscape(kv.first) << "\": {"
            << "\"count\": " << v.count << ", \"finite\": " << v.finite
            << ", \"non_bucketed\": " << v.nonBucketed
            << ", \"sum\": " << jsonNumber(v.sum)
            << ", \"min\": " << jsonNumber(v.min)
            << ", \"max\": " << jsonNumber(v.max)
            << ", \"log2_buckets\": {";
        bool firstb = true;
        for (int b = 0; b < trace::kValueBuckets; ++b) {
            if (v.buckets[b] == 0)
                continue;
            if (!firstb)
                out << ", ";
            firstb = false;
            out << "\"" << (b + trace::kValueBucketMinLog2)
                << "\": " << v.buckets[b];
        }
        out << "}}";
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"spans\": {";
    first = true;
    for (const auto &kv : snap.spans) {
        out << (first ? "\n" : ",\n");
        first = false;
        const trace::SpanStat &s = kv.second;
        out << "    \"" << jsonEscape(kv.first) << "\": {"
            << "\"count\": " << s.count
            << ", \"total_ns\": " << s.totalNs
            << ", \"min_ns\": " << s.minNs
            << ", \"max_ns\": " << s.maxNs << "}";
    }
    out << (first ? "" : "\n  ") << "}\n";
    out << "}\n";
    return out.str();
}

std::string
MetricsRegistry::flushToFile(const std::string &path,
                             const std::string &experiment) const
{
    std::string doc = toJson(snapshot(), experiment);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw ConfigError("cannot open metrics file for writing: " +
                              tmp);
        out << doc;
        if (!out.flush())
            throw ConfigError("failed writing metrics file: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw ConfigError("failed to move metrics file into place: " +
                          path);
    return doc;
}

void
MetricsRegistry::resetForTest()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    i.gauges.clear();
}

PhaseTimer::PhaseTimer(const std::string &name)
    : gaugeName("phase." + name + ".wall_ms"),
      span(std::string("phase." + name))
{
    if (trace::statsEnabled()) {
        live = true;
        startNs = trace::detail::nowNs();
    }
}

PhaseTimer::~PhaseTimer()
{
    if (!live)
        return;
    std::uint64_t end = trace::detail::nowNs();
    double ms = static_cast<double>(end - startNs) / 1e6;
    MetricsRegistry::instance().setGauge(gaugeName, ms);
}

} // namespace memsense::measure
