/**
 * @file
 * Deterministic parallel experiment engine.
 *
 * Every sweep in measure/ is a grid of independent, seed-deterministic
 * simulations: each job constructs its own Machine from its own config
 * and seed, so jobs share no mutable state and any execution order
 * yields the same per-job result. ParallelExecutor::mapOrdered()
 * exploits that: it fans the jobs out over a ThreadPool but writes
 * result i to output slot i, so the collected vector is bit-identical
 * to the serial loop regardless of completion order.
 */

#ifndef MEMSENSE_MEASURE_PARALLEL_HH
#define MEMSENSE_MEASURE_PARALLEL_HH

#include <cstddef>
#include <exception>
#include <future>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "measure/resilience.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace memsense::measure
{

/**
 * Resolve a user-facing jobs knob: positive counts pass through,
 * 0 or negative means "one worker per hardware thread".
 */
int resolveJobs(int jobs);

/** Maps job vectors to result vectors in deterministic input order. */
class ParallelExecutor
{
  public:
    /**
     * @param jobs worker count; 1 runs jobs inline on the calling
     *             thread (the serial reference path), <= 0 uses the
     *             hardware concurrency.
     */
    explicit ParallelExecutor(int jobs = 1)
        : jobCount(resolveJobs(jobs))
    {}

    /** Effective worker count. */
    int jobs() const { return jobCount; }

    /**
     * Apply @p fn to every element of @p inputs and return the results
     * in input order.
     *
     * fn must be invocable on each element concurrently — in practice,
     * each call builds and owns its own Machine/RNG state. If any call
     * throws, the exception of the lowest-indexed failing job is
     * rethrown after all jobs finish (workers are never abandoned
     * mid-simulation).
     */
    template <typename Job, typename Fn>
    auto
    mapOrdered(const std::vector<Job> &inputs, Fn fn) const
        -> std::vector<std::invoke_result_t<Fn, const Job &>>
    {
        using Result = std::invoke_result_t<Fn, const Job &>;
        if (jobCount <= 1 || inputs.size() <= 1) {
            std::vector<Result> out;
            out.reserve(inputs.size());
            for (const auto &job : inputs) {
                MS_TRACE_SPAN("measure.job");
                MS_METRIC_COUNT("measure.jobs_run");
                out.push_back(fn(job));
            }
            return out;
        }

        int workers = jobCount;
        if (static_cast<std::size_t>(workers) > inputs.size())
            workers = static_cast<int>(inputs.size());
        ThreadPool pool(workers);
        std::vector<std::future<Result>> futures;
        futures.reserve(inputs.size());
        for (const auto &job : inputs) {
            futures.push_back(pool.submit([&fn, &job]() {
                MS_TRACE_SPAN("measure.job");
                MS_METRIC_COUNT("measure.jobs_run");
                return fn(job);
            }));
        }

        std::vector<std::optional<Result>> slots(inputs.size());
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < futures.size(); ++i) {
            try {
                slots[i].emplace(futures[i].get());
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);

        std::vector<Result> out;
        out.reserve(slots.size());
        for (auto &slot : slots)
            out.push_back(std::move(*slot));
        return out;
    }

    /**
     * Fault-tolerant variant of mapOrdered(): apply @p fn to every
     * input and return one JobResult per input, in input order.
     *
     * A job that throws is retried per @p opts (TransientErrors only,
     * seeded backoff keyed by the job index) and, once fatal, timed
     * out, or out of attempts, quarantined as a FailureRecord instead
     * of aborting the sweep. The call itself never throws on job
     * failure; collect the quarantine set with
     * FailureManifest::collect().
     */
    template <typename Job, typename Fn>
    auto
    mapOrderedResilient(const std::vector<Job> &inputs, Fn fn,
                        const ResilienceOptions &opts = {}) const
        -> std::vector<JobResult<std::invoke_result_t<Fn, const Job &>>>
    {
        std::vector<std::size_t> indices(inputs.size());
        for (std::size_t i = 0; i < indices.size(); ++i)
            indices[i] = i;
        auto by_index = [&inputs, &fn](std::size_t i) {
            return fn(inputs[i]);
        };
        return mapIndicesResilient<decltype(by_index(std::size_t{}))>(
            indices, by_index, opts, [](std::size_t, const auto &) {});
    }

    /**
     * Resilient engine core: run @p fn(index) for each entry of
     * @p indices, returning results ordered like @p indices.
     *
     * The index doubles as the retry-jitter stream, so a checkpoint
     * resume that re-runs a job subset reproduces the uninterrupted
     * run's behaviour exactly. @p on_result fires on the worker thread
     * as soon as each job settles (value or quarantine) with the
     * *original* index — the checkpoint layer streams journal records
     * from it. on_result must be thread-safe for worker counts > 1 and
     * must not throw.
     */
    template <typename Result, typename Fn, typename OnResult>
    std::vector<JobResult<Result>>
    mapIndicesResilient(const std::vector<std::size_t> &indices, Fn fn,
                        const ResilienceOptions &opts,
                        OnResult on_result) const
    {
        opts.retry.validate();
        if (jobCount <= 1 || indices.size() <= 1) {
            std::vector<JobResult<Result>> out;
            out.reserve(indices.size());
            for (std::size_t index : indices) {
                out.push_back(
                    detail::runResilientJob<Result>(fn, index, opts));
                on_result(index, out.back());
            }
            return out;
        }

        int workers = jobCount;
        if (static_cast<std::size_t>(workers) > indices.size())
            workers = static_cast<int>(indices.size());
        ThreadPool pool(workers);
        std::vector<std::future<JobResult<Result>>> futures;
        futures.reserve(indices.size());
        for (std::size_t index : indices) {
            futures.push_back(pool.submit([&fn, &opts, &on_result,
                                           index]() {
                JobResult<Result> r =
                    detail::runResilientJob<Result>(fn, index, opts);
                on_result(index, r);
                return r;
            }));
        }

        std::vector<JobResult<Result>> out;
        out.reserve(indices.size());
        for (auto &fut : futures)
            out.push_back(fut.get());
        return out;
    }

  private:
    int jobCount;
};

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_PARALLEL_HH
