#include "measure/parallel.hh"

namespace memsense::measure
{

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    return ThreadPool::hardwareWorkers();
}

} // namespace memsense::measure
