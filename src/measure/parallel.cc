#include "measure/parallel.hh"

namespace memsense::measure
{

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    // hardwareWorkers() clamps a zero hardware_concurrency() report to
    // 1 itself, but this is the sweep engine's last line of defence on
    // exotic platforms: never hand ThreadPool a non-positive count.
    int workers = ThreadPool::hardwareWorkers();
    return workers >= 1 ? workers : 1;
}

} // namespace memsense::measure
