#include "measure/validate.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "workloads/factory.hh"

namespace memsense::measure
{

double
ValidationResult::meanAbsTestError() const
{
    if (testErrors.empty())
        return 0.0;
    double sum = 0.0;
    for (double e : testErrors)
        sum += std::abs(e);
    return sum / static_cast<double>(testErrors.size());
}

ValidationResult
validateModel(const std::string &workload_id, const ValidationConfig &cfg)
{
    Characterization full = characterize(workload_id, cfg.sweep);

    auto held_out = [&](const model::FitObservation &o) {
        for (double ghz : cfg.holdOutGhz) {
            if (std::abs(o.coreGhz - ghz) < 1e-9)
                return true;
        }
        return false;
    };

    std::vector<model::FitObservation> train;
    std::vector<model::FitObservation> test;
    for (const auto &o : full.observations)
        (held_out(o) ? test : train).push_back(o);
    requireConfig(train.size() >= 2,
                  workload_id + ": holding out " +
                      std::to_string(test.size()) +
                      " observations leaves too few to fit");

    const auto &info = workloads::workloadInfo(workload_id);
    ValidationResult res;
    res.workloadId = workload_id;
    res.model = model::fitModel(info.display, info.cls, train);
    res.trainErrors = model::validationErrors(res.model, train);
    if (!test.empty())
        res.testErrors = model::validationErrors(res.model, test);

    for (double e : res.trainErrors)
        res.worstTrainError = std::max(res.worstTrainError, std::abs(e));
    for (double e : res.testErrors)
        res.worstTestError = std::max(res.worstTestError, std::abs(e));
    return res;
}

} // namespace memsense::measure
