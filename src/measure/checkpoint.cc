#include "measure/checkpoint.hh"

#include <bit>
#include <sstream>

#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/hash.hh"
#include "util/string_util.hh"
#include "util/trace.hh"

namespace memsense::measure
{

namespace
{

constexpr const char *kHeaderPrefix = "memsense-ckpt v1 key=";

/** "R <index> <status> <payload>" — the checksummed record body. */
std::string
recordBody(std::size_t index, bool ok, const std::string &payload)
{
    return "R " + std::to_string(index) + (ok ? " ok " : " fail ") +
           payload;
}

/** Parse one journal line into a Record; nullopt rejects the line. */
std::optional<CheckpointJournal::Record>
parseRecordLine(const std::string &line)
{
    const std::size_t hash_pos = line.rfind(" #");
    if (hash_pos == std::string::npos || line.rfind("R ", 0) != 0)
        return std::nullopt;
    const std::string body = line.substr(0, hash_pos);
    auto checksum = parseHex64(line.substr(hash_pos + 2));
    if (!checksum || *checksum != fnv1a64(body))
        return std::nullopt; // torn or corrupt record

    // body = "R <index> <status> <payload>"
    std::istringstream is(body);
    std::string tag, index_text, status;
    is >> tag >> index_text >> status;
    if (tag != "R" || (status != "ok" && status != "fail"))
        return std::nullopt;
    std::size_t index = 0;
    try {
        index = static_cast<std::size_t>(std::stoull(index_text));
    } catch (const std::exception &) {
        return std::nullopt;
    }
    CheckpointJournal::Record rec;
    rec.index = index;
    rec.ok = status == "ok";
    const std::string prefix =
        "R " + index_text + " " + status + " ";
    rec.payload =
        body.size() > prefix.size() ? body.substr(prefix.size()) : "";
    return rec;
}

} // anonymous namespace

std::string
encodeDoubles(const std::vector<double> &values)
{
    std::string out;
    out.reserve(values.size() * 17);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ' ';
        out += hex64(std::bit_cast<std::uint64_t>(values[i]));
    }
    return out;
}

std::optional<std::vector<double>>
decodeDoubles(const std::string &text)
{
    std::vector<double> out;
    std::istringstream is(text);
    std::string word;
    while (is >> word) {
        auto bits = parseHex64(word);
        if (!bits)
            return std::nullopt;
        out.push_back(std::bit_cast<double>(*bits));
    }
    return out;
}

std::string
checkpointRunKey(const std::string &descriptor)
{
    return hex64(fnv1a64(descriptor));
}

CheckpointJournal::CheckpointJournal(const std::string &path,
                                     const std::string &run_key)
    : journalPath(path)
{
    requireConfig(!path.empty(), "checkpoint journal needs a path");
    requireConfig(run_key.find('\n') == std::string::npos,
                  "checkpoint run key must be single-line");

    bool have_header = false;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::string line;
            if (std::getline(in, line)) {
                requireConfig(
                    line.rfind(kHeaderPrefix, 0) == 0,
                    "file '" + path +
                        "' is not a memsense checkpoint journal");
                const std::string found =
                    line.substr(std::string(kHeaderPrefix).size());
                requireConfig(
                    found == run_key,
                    "checkpoint journal '" + path +
                        "' belongs to a different sweep (journal key " +
                        found + ", this sweep " + run_key +
                        "); delete it or pass a fresh --checkpoint path");
                have_header = true;
            }
            while (std::getline(in, line)) {
                auto rec = parseRecordLine(line);
                if (rec)
                    loaded[rec->index] = *rec; // last record wins
            }
        }
    }

    out.open(path, std::ios::binary | std::ios::app);
    requireConfig(out.good(),
                  "cannot open checkpoint journal '" + path +
                      "' for appending");
    if (!have_header) {
        out << kHeaderPrefix << run_key << "\n";
        out.flush();
    }
}

void
CheckpointJournal::append(std::size_t index, bool ok,
                          const std::string &payload)
{
    MS_FAULT_POINT("checkpoint.append");
    MS_TRACE_SPAN("checkpoint.append");
    MS_METRIC_COUNT("checkpoint.records_appended");
    requireConfig(payload.find('\n') == std::string::npos &&
                      payload.find('#') == std::string::npos,
                  "checkpoint payload must be single-line and '#'-free");
    const std::string body = recordBody(index, ok, payload);
    std::lock_guard<std::mutex> lock(mtx);
    out << body << " #" << hex64(fnv1a64(body)) << "\n";
    out.flush();
    if (!out.good())
        throw TransientError("checkpoint journal write failed ('" +
                             journalPath + "')");
}

} // namespace memsense::measure
