#include "measure/resilience.hh"

#include <chrono>
#include <sstream>

namespace memsense::measure
{

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
}

} // anonymous namespace

void
FailureManifest::merge(const FailureManifest &other)
{
    failures.insert(failures.end(), other.failures.begin(),
                    other.failures.end());
}

std::string
FailureManifest::summary(std::size_t total_jobs) const
{
    if (failures.empty())
        return "all " + std::to_string(total_jobs) + " jobs completed";
    std::size_t fatal = 0;
    std::size_t timed_out = 0;
    for (const auto &f : failures) {
        if (f.fatal)
            ++fatal;
        if (f.timedOut)
            ++timed_out;
    }
    std::ostringstream os;
    os << failures.size() << " of " << total_jobs
       << " jobs quarantined (" << fatal << " fatal, " << timed_out
       << " timed out, " << failures.size() - fatal - timed_out
       << " retries exhausted)";
    return os.str();
}

std::string
FailureManifest::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"quarantined\": " << failures.size()
       << ",\n  \"failures\": [";
    bool first = true;
    for (const auto &f : failures) {
        os << (first ? "" : ",") << "\n    {\"jobIndex\": " << f.jobIndex
           << ", \"context\": \"";
        jsonEscape(os, f.context);
        os << "\", \"errorType\": \"";
        jsonEscape(os, f.errorType);
        os << "\", \"message\": \"";
        jsonEscape(os, f.message);
        os << "\", \"attempts\": " << f.attempts
           << ", \"timedOut\": " << (f.timedOut ? "true" : "false")
           << ", \"fatal\": " << (f.fatal ? "true" : "false") << "}";
        first = false;
    }
    os << (failures.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

ResilienceOptions
ResilienceConfig::toOptions() const
{
    ResilienceOptions opts;
    opts.retry.maxAttempts = maxRetries + 1;
    opts.retry.seed = retrySeed;
    opts.jobTimeoutMs = jobTimeoutMs;
    return opts;
}

namespace detail
{

double
steadyNowMs()
{
    // The resilience deadline is inherently a wall-clock concept: it
    // guards against jobs that hang, not against model nondeterminism.
    // Simulated results never depend on this value; it only bounds how
    // long a failing job may keep retrying.
    // memsense-lint: allow(no-nondeterminism): cooperative wall-clock
    // deadline; injectable via ResilienceOptions::nowMs for tests.
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace detail

} // namespace memsense::measure
