/**
 * @file
 * Model validation driver (the paper's Table 3 exercise, reusable):
 * fit Eq. 1 on a measured grid, predict every observation back, and
 * report the error distribution — optionally holding out part of the
 * grid to test genuine prediction rather than interpolation.
 */

#ifndef MEMSENSE_MEASURE_VALIDATE_HH
#define MEMSENSE_MEASURE_VALIDATE_HH

#include <string>
#include <vector>

#include "measure/freq_scaling.hh"

namespace memsense::measure
{

/** Error summary of a validation run. */
struct ValidationResult
{
    std::string workloadId;
    model::FittedModel model;        ///< the fit under test
    std::vector<double> trainErrors; ///< relative, fitted points
    std::vector<double> testErrors;  ///< relative, held-out points
    double worstTrainError = 0.0;    ///< max |error| over train
    double worstTestError = 0.0;     ///< max |error| over held-out

    /** Mean absolute relative error over the held-out points. */
    double meanAbsTestError() const;
};

/** Validation configuration. */
struct ValidationConfig
{
    FreqScalingConfig sweep;     ///< grid to measure
    /** Core frequencies excluded from the fit and used as the test
     *  set; empty = validate on the training grid (the paper's own
     *  Table 3 procedure). */
    std::vector<double> holdOutGhz;
};

/**
 * Run the validation for one workload.
 *
 * The grid in @p cfg.sweep is measured once; observations whose core
 * frequency is in holdOutGhz are excluded from the fit and predicted
 * afterwards.
 */
ValidationResult validateModel(const std::string &workload_id,
                               const ValidationConfig &cfg);

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_VALIDATE_HH
