#include "measure/timeseries.hh"

#include "measure/parallel.hh"
#include "stats/summary.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace memsense::measure
{

double
TimeSeries::meanCpi() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpi);
    return s.mean();
}

double
TimeSeries::cpiCv() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpi);
    return s.cv();
}

double
TimeSeries::meanBandwidthGBps() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.bandwidthGBps);
    return s.mean();
}

double
TimeSeries::meanCpuUtilization() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpuUtilization);
    return s.mean();
}

TimeSeries
captureTimeSeries(const TimeSeriesConfig &cfg)
{
    requireConfig(cfg.samples >= 1, "need at least one sample");
    requireConfig(cfg.interval > 0, "interval must be positive");

    WorkloadRun run(cfg.run);
    run.warmup();

    TimeSeries ts;
    ts.workloadId = cfg.run.workloadId;
    double t_ms = 0.0;
    for (int i = 0; i < cfg.samples; ++i) {
        sim::MachineSnapshot d = run.sampleInterval(cfg.interval);
        t_ms += picosToNs(cfg.interval) / 1e6;

        IntervalSample s;
        s.timeMs = t_ms;
        s.cpuUtilization = d.cpuUtilization();
        s.cpi = d.cpi(cfg.run.ghz);
        s.bandwidthGBps = d.dramBandwidth() / 1e9;
        double seconds = static_cast<double>(cfg.interval) * 1e-12;
        s.ioGBps = d.ioBytes / seconds / 1e9;
        s.mpki = d.mpki();
        s.missPenaltyNs = d.avgMissPenaltyNs();
        ts.samples.push_back(s);
    }
    return ts;
}

std::vector<TimeSeries>
captureTimeSeriesBatch(const std::vector<TimeSeriesConfig> &cfgs,
                       int jobs)
{
    ParallelExecutor exec(jobs);
    return exec.mapOrdered(cfgs, [](const TimeSeriesConfig &cfg) {
        LogScope scope(cfg.run.workloadId);
        return captureTimeSeries(cfg);
    });
}

} // namespace memsense::measure

