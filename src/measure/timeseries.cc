#include "measure/timeseries.hh"

#include <optional>

#include "measure/checkpoint.hh"
#include "measure/parallel.hh"
#include "stats/summary.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/log.hh"
#include "util/string_util.hh"

namespace memsense::measure
{

namespace
{

/**
 * Bit-exact checkpoint codec for a TimeSeries: the workload id, then
 * the flattened samples (7 doubles each).
 */
CheckpointCodec<TimeSeries>
timeSeriesCodec()
{
    CheckpointCodec<TimeSeries> codec;
    codec.encode = [](const TimeSeries &ts) {
        std::vector<double> flat;
        flat.reserve(ts.samples.size() * 7);
        for (const auto &s : ts.samples) {
            flat.push_back(s.timeMs);
            flat.push_back(s.cpuUtilization);
            flat.push_back(s.cpi);
            flat.push_back(s.bandwidthGBps);
            flat.push_back(s.ioGBps);
            flat.push_back(s.mpki);
            flat.push_back(s.missPenaltyNs);
        }
        return ts.workloadId + " " + encodeDoubles(flat);
    };
    codec.decode =
        [](const std::string &payload) -> std::optional<TimeSeries> {
        const std::size_t sep = payload.find(' ');
        if (sep == std::string::npos || sep == 0)
            return std::nullopt;
        std::optional<std::vector<double>> decoded =
            decodeDoubles(payload.substr(sep + 1));
        if (!decoded || decoded->empty() || decoded->size() % 7 != 0)
            return std::nullopt;
        const std::vector<double> &flat = *decoded;
        TimeSeries ts;
        ts.workloadId = payload.substr(0, sep);
        for (std::size_t i = 0; i < flat.size(); i += 7) {
            IntervalSample s;
            s.timeMs = flat[i];
            s.cpuUtilization = flat[i + 1];
            s.cpi = flat[i + 2];
            s.bandwidthGBps = flat[i + 3];
            s.ioGBps = flat[i + 4];
            s.mpki = flat[i + 5];
            s.missPenaltyNs = flat[i + 6];
            ts.samples.push_back(s);
        }
        return ts;
    };
    return codec;
}

/** Stable identity of one batch for checkpoint-journal validation. */
std::string
timeSeriesRunKey(const std::vector<TimeSeriesConfig> &cfgs)
{
    std::string desc = "timeseries";
    for (const auto &cfg : cfgs)
        desc += strformat(
            " %s:ghz=%.6g:mt=%.6g:cores=%d:seed=%llu:int=%lld:n=%d",
            cfg.run.workloadId.c_str(), cfg.run.ghz, cfg.run.memMtPerSec,
            cfg.run.cores, static_cast<unsigned long long>(cfg.run.seed),
            static_cast<long long>(cfg.interval), cfg.samples);
    return checkpointRunKey(desc);
}

} // anonymous namespace

double
TimeSeries::meanCpi() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpi);
    return s.mean();
}

double
TimeSeries::cpiCv() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpi);
    return s.cv();
}

double
TimeSeries::meanBandwidthGBps() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.bandwidthGBps);
    return s.mean();
}

double
TimeSeries::meanCpuUtilization() const
{
    stats::RunningStats s;
    for (const auto &x : samples)
        s.add(x.cpuUtilization);
    return s.mean();
}

TimeSeries
captureTimeSeries(const TimeSeriesConfig &cfg)
{
    requireConfig(cfg.samples >= 1, "need at least one sample");
    requireConfig(cfg.interval > 0, "interval must be positive");

    MS_FAULT_POINT("timeseries.capture");
    MS_TRACE_SPAN("timeseries.capture");
    MS_METRIC_COUNT("timeseries.captures");
    WorkloadRun run(cfg.run);
    run.warmup();

    TimeSeries ts;
    ts.workloadId = cfg.run.workloadId;
    double t_ms = 0.0;
    for (int i = 0; i < cfg.samples; ++i) {
        sim::MachineSnapshot d = run.sampleInterval(cfg.interval);
        t_ms += picosToNs(cfg.interval) / 1e6;

        IntervalSample s;
        s.timeMs = t_ms;
        s.cpuUtilization = d.cpuUtilization();
        s.cpi = d.cpi(cfg.run.ghz);
        s.bandwidthGBps = d.dramBandwidth() / 1e9;
        double seconds = static_cast<double>(cfg.interval) * 1e-12;
        s.ioGBps = d.ioBytes / seconds / 1e9;
        s.mpki = d.mpki();
        s.missPenaltyNs = d.avgMissPenaltyNs();
        ts.samples.push_back(s);
    }
    return ts;
}

std::vector<TimeSeries>
captureTimeSeriesBatch(const std::vector<TimeSeriesConfig> &cfgs,
                       int jobs)
{
    ParallelExecutor exec(jobs);
    return exec.mapOrdered(cfgs, [](const TimeSeriesConfig &cfg) {
        LogScope scope(cfg.run.workloadId);
        return captureTimeSeries(cfg);
    });
}

ResilientTimeSeriesBatch
captureTimeSeriesBatchResilient(const std::vector<TimeSeriesConfig> &cfgs,
                                int jobs,
                                const ResilienceConfig &resilience)
{
    ParallelExecutor exec(jobs);
    std::vector<JobResult<TimeSeries>> settled =
        mapOrderedResilientCheckpointed(
            exec, cfgs,
            [](const TimeSeriesConfig &cfg) {
                LogScope scope(cfg.run.workloadId);
                return captureTimeSeries(cfg);
            },
            resilience.toOptions(), resilience.checkpointPath,
            timeSeriesRunKey(cfgs), timeSeriesCodec());

    ResilientTimeSeriesBatch out;
    out.totalJobs = settled.size();
    for (std::size_t i = 0; i < settled.size(); ++i) {
        if (settled[i].ok()) {
            out.results.push_back(std::move(*settled[i].value));
            continue;
        }
        FailureRecord rec = *settled[i].failure;
        rec.context = strformat("%s ghz=%.4g mt=%.6g",
                                cfgs[i].run.workloadId.c_str(),
                                cfgs[i].run.ghz, cfgs[i].run.memMtPerSec);
        out.manifest.failures.push_back(std::move(rec));
    }
    if (!out.manifest.empty())
        warn(out.manifest.summary(out.totalJobs));
    return out;
}

} // namespace memsense::measure

