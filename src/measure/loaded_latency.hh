/**
 * @file
 * Loaded-latency sweep (paper Sec. VI.C.1, Fig. 7).
 *
 * Reproduces the Intel MLC methodology on the simulator: one core runs
 * a dependent pointer-chase latency probe while the remaining cores
 * inject independent traffic at a swept injection rate and read/write
 * mix. Each sweep yields (bandwidth, loaded latency) points; after
 * normalizing bandwidth to the configuration's achievable maximum and
 * subtracting the unloaded latency, the curves from different DDR
 * speeds and mixes collapse below ~95% utilization and are averaged
 * into the composite queuing model the solver uses.
 */

#ifndef MEMSENSE_MEASURE_LOADED_LATENCY_HH
#define MEMSENSE_MEASURE_LOADED_LATENCY_HH

#include <cstdint>
#include <vector>

#include "measure/resilience.hh"
#include "model/queuing.hh"
#include "stats/curve.hh"
#include "util/units.hh"

namespace memsense::measure
{

/** One measured point of a loaded-latency sweep. */
struct LoadedLatencyPoint
{
    std::uint32_t delayCycles = 0; ///< injected inter-access delay
    double bandwidthGBps = 0.0;    ///< total DRAM traffic observed
    double latencyNs = 0.0;        ///< probe-observed loaded latency
};

/** Configuration of one sweep (one curve of Fig. 7). */
struct LoadedLatencySetup
{
    double memMtPerSec = 1866.7; ///< DDR speed under test
    double readFraction = 1.0;   ///< generator read/write mix
    int cores = 8;               ///< 1 probe + (cores-1) generators
    int channels = 4;
    double ghz = 2.7;
    std::uint64_t seed = 1;
    /** Injection delays, swept high-to-low traffic. */
    std::vector<std::uint32_t> delayCycles =
        {0,  2,  4,  8,  16, 20,  24,  28,  32,  40,
         48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048};
    Picos warmup = nsToPicos(150'000.0);
    Picos measure = nsToPicos(400'000.0);
    /** Worker threads for the delay points; 1 = serial reference
     *  path, <= 0 = one per hardware thread. Each point owns its
     *  machine and seed, so results are identical for any value. */
    int jobs = 1;
    /** Fault tolerance for the resilient entry points; ignored by
     *  sweepLoadedLatency()/measureQueuingModel(). */
    ResilienceConfig resilience;
};

/** One measured curve. */
struct LoadedLatencyCurve
{
    LoadedLatencySetup setup;
    std::vector<LoadedLatencyPoint> points; ///< by descending traffic
    double unloadedNs = 0.0;        ///< minimum observed latency
    double maxBandwidthGBps = 0.0;  ///< achievable bandwidth

    /**
     * Normalize into (utilization, queuing delay ns) samples, the
     * paper's Fig. 7 axes.
     */
    std::vector<stats::CurvePoint> toQueuingSamples() const;
};

/** Run one sweep. */
LoadedLatencyCurve sweepLoadedLatency(const LoadedLatencySetup &setup);

/** The paper's four Fig. 7 test cases: {1333, 1867} x {100%R, 2:1}. */
std::vector<LoadedLatencySetup> paperFig7Setups();

/**
 * Run several sweeps and build the composite queuing model (average
 * of the normalized curves, monotone envelope applied).
 *
 * @param setups           sweep configurations
 * @param bins             knots in the composite curve
 * @param max_stable_util  stability cap (paper: ~0.95)
 */
model::QueuingModel
measureQueuingModel(const std::vector<LoadedLatencySetup> &setups,
                    std::size_t bins = 24, double max_stable_util = 0.95);

/** Outcome of a fault-tolerant loaded-latency sweep. */
struct ResilientLoadedLatency
{
    LoadedLatencyCurve curve; ///< surviving (non-quarantined) points
    FailureManifest manifest; ///< quarantined delay points
    std::size_t totalJobs = 0;///< delay points attempted
};

/**
 * Fault-tolerant sweepLoadedLatency(): failing delay points are
 * retried per setup.resilience, then dropped from the curve and
 * quarantined in the manifest; completed points stream to
 * setup.resilience.checkpointPath (when set) for resume. Throws
 * ConfigError only when fewer than two points survive (no curve).
 */
ResilientLoadedLatency
sweepLoadedLatencyResilient(const LoadedLatencySetup &setup);

/**
 * Fault-tolerant measureQueuingModel(): each setup sweeps through
 * sweepLoadedLatencyResilient (checkpoint journals get a ".mlc<i>"
 * suffix per setup so one --checkpoint path covers the whole family),
 * curves with fewer than two surviving points are skipped and
 * recorded, and the composite is built from the surviving curves.
 *
 * @param manifest  out-param collecting every quarantined point;
 *                  may be null.
 */
model::QueuingModel
measureQueuingModelResilient(const std::vector<LoadedLatencySetup> &setups,
                             const ResilienceConfig &resilience,
                             FailureManifest *manifest,
                             std::size_t bins = 24,
                             double max_stable_util = 0.95);

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_LOADED_LATENCY_HH
