/**
 * @file
 * Frequency-scaling characterization experiment (paper Sec. V.A/B,
 * Fig. 3, Tables 2-5).
 *
 * Runs a workload at several core frequencies and memory speeds to
 * spread the MPI*MP product, measures (CPI_eff, MPI, MP) with the
 * simulator's counters at each point, and fits Eq. 1 to estimate
 * CPI_cache and the blocking factor.
 *
 * Every grid point is an independent, seed-deterministic simulation,
 * so the sweep runs on the parallel experiment engine: the workload x
 * GHz x MT/s x run grid is flattened into one job list and mapped over
 * `jobs` workers, with results collected in input order — bit-identical
 * to the serial path (see measure/parallel.hh).
 */

#ifndef MEMSENSE_MEASURE_FREQ_SCALING_HH
#define MEMSENSE_MEASURE_FREQ_SCALING_HH

#include <string>
#include <vector>

#include "measure/resilience.hh"
#include "measure/runner.hh"
#include "model/fitter.hh"

namespace memsense::measure
{

/** Grid and window settings for a characterization sweep. */
struct FreqScalingConfig
{
    /** Core frequencies; the paper's grid was 2.1/2.4/2.7/3.1 GHz. */
    std::vector<double> coreGhz = {2.1, 2.4, 2.7, 3.1};
    /** Memory speeds; reducing speed raises MP in core cycles. */
    std::vector<double> memMtPerSec = {1333.3, 1866.7};
    /** Repeat runs per grid point (run-to-run variation; Table 3
     *  measured two per point). */
    int runsPerPoint = 1;
    int channels = 4;
    std::uint64_t seed = 1;
    Picos warmup = nsToPicos(8'000'000.0);
    Picos measure = nsToPicos(1'000'000.0);
    bool prefetcherEnabled = true;
    std::uint32_t mshrs = 10;
    bool adaptiveWarmup = true;
    /** Override the catalog's characterization core count; <= 0 keeps
     *  the catalog value. */
    int coresOverride = 0;
    /** Worker threads for the grid; 1 = serial reference path, <= 0 =
     *  one per hardware thread. Results are identical for any value. */
    int jobs = 1;
    /** Fault tolerance: retry budget, per-job deadline, checkpoint
     *  journal (see docs/robustness.md). Only the resilient entry
     *  points consult this; characterize()/characterizeMany() keep
     *  the strict first-error-aborts contract. */
    ResilienceConfig resilience;
};

/** Result of characterizing one workload. */
struct Characterization
{
    std::string workloadId;
    std::vector<model::FitObservation> observations;
    model::FittedModel model;
};

/**
 * The flattened (GHz x MT/s x run) job list of one workload's sweep,
 * in the canonical (serial) execution order.
 */
std::vector<RunConfig>
characterizationGrid(const std::string &workload_id,
                     const FreqScalingConfig &cfg);

/**
 * Run the sweep for one workload and fit the model.
 *
 * @param workload_id catalog id
 * @param cfg         sweep configuration
 */
Characterization characterize(const std::string &workload_id,
                              const FreqScalingConfig &cfg = {});

/**
 * Characterize several workloads, pooling every grid point of every
 * workload into one job list so cfg.jobs workers stay busy across
 * workload boundaries.
 */
std::vector<Characterization>
characterizeMany(const std::vector<std::string> &ids,
                 const FreqScalingConfig &cfg = {});

/** Characterize every catalog workload (Tables 2 + 4 + 5 pipeline). */
std::vector<Characterization>
characterizeAll(const FreqScalingConfig &cfg = {});

/** Outcome of a fault-tolerant characterization sweep. */
struct ResilientCharacterizations
{
    /** Workloads whose surviving observations supported a fit. */
    std::vector<Characterization> results;
    /** Every quarantined grid point (and any workload whose fit had
     *  to be skipped), machine-readable. Empty = clean sweep. */
    FailureManifest manifest;
    /** Grid points attempted (for manifest summaries). */
    std::size_t totalJobs = 0;
};

/**
 * Fault-tolerant characterizeMany(): grid points that fail are
 * retried per cfg.resilience and then quarantined instead of aborting
 * the sweep, completed points stream to cfg.resilience.checkpointPath
 * (when set) for resume, and the fits are computed from the surviving
 * observations. Identical results to characterizeMany() when nothing
 * fails — for any worker count, interrupted or not.
 */
ResilientCharacterizations
characterizeManyResilient(const std::vector<std::string> &ids,
                          const FreqScalingConfig &cfg = {});

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_FREQ_SCALING_HH
