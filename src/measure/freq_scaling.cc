#include "measure/freq_scaling.hh"

#include <cstddef>

#include "measure/parallel.hh"
#include "util/error.hh"
#include "util/log.hh"
#include "util/string_util.hh"

namespace memsense::measure
{

namespace
{

/** Run one grid point under a log scope naming its workload. */
model::FitObservation
runGridPoint(const RunConfig &rc)
{
    LogScope scope(rc.workloadId);
    return runObservation(rc);
}

/** Fit one workload's model from its measured observations. */
Characterization
fitCharacterization(const std::string &workload_id,
                    std::vector<model::FitObservation> observations)
{
    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(workload_id);
    Characterization out;
    out.workloadId = workload_id;
    out.observations = std::move(observations);
    out.model = model::fitModel(info.display, info.cls, out.observations);
    debug(strformat("%s: CPI_cache=%.3f BF=%.3f R2=%.3f",
                    workload_id.c_str(), out.model.params.cpiCache,
                    out.model.params.bf, out.model.fit.r2));
    return out;
}

} // anonymous namespace

std::vector<RunConfig>
characterizationGrid(const std::string &workload_id,
                     const FreqScalingConfig &cfg)
{
    requireConfig(!cfg.coreGhz.empty() && !cfg.memMtPerSec.empty(),
                  "frequency-scaling sweep needs a non-empty grid");
    requireConfig(cfg.runsPerPoint >= 1, "need at least one run per point");

    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(workload_id);

    std::vector<RunConfig> grid;
    grid.reserve(cfg.coreGhz.size() * cfg.memMtPerSec.size() *
                 static_cast<std::size_t>(cfg.runsPerPoint));
    for (double ghz : cfg.coreGhz) {
        for (double mt : cfg.memMtPerSec) {
            for (int r = 0; r < cfg.runsPerPoint; ++r) {
                RunConfig rc;
                rc.workloadId = workload_id;
                rc.cores = cfg.coresOverride > 0
                               ? cfg.coresOverride
                               : info.characterizationCores;
                rc.ghz = ghz;
                rc.memMtPerSec = mt;
                rc.channels = cfg.channels;
                rc.seed = cfg.seed + static_cast<std::uint64_t>(r);
                rc.warmup = cfg.warmup;
                rc.measure = cfg.measure;
                rc.prefetcherEnabled = cfg.prefetcherEnabled;
                rc.mshrs = cfg.mshrs;
                rc.adaptiveWarmup = cfg.adaptiveWarmup;
                grid.push_back(rc);
            }
        }
    }
    return grid;
}

Characterization
characterize(const std::string &workload_id, const FreqScalingConfig &cfg)
{
    const std::vector<RunConfig> grid =
        characterizationGrid(workload_id, cfg);
    ParallelExecutor exec(cfg.jobs);
    return fitCharacterization(workload_id,
                               exec.mapOrdered(grid, runGridPoint));
}

std::vector<Characterization>
characterizeMany(const std::vector<std::string> &ids,
                 const FreqScalingConfig &cfg)
{
    // Flatten every workload's grid into one job list so workers stay
    // busy across workload boundaries, then slice the ordered results
    // back per workload. All grids have the same size because the
    // sweep settings are shared.
    std::vector<RunConfig> all_jobs;
    for (const auto &id : ids) {
        inform("characterizing " + id + " ...");
        std::vector<RunConfig> grid = characterizationGrid(id, cfg);
        all_jobs.insert(all_jobs.end(), grid.begin(), grid.end());
    }

    ParallelExecutor exec(cfg.jobs);
    std::vector<model::FitObservation> observations =
        exec.mapOrdered(all_jobs, runGridPoint);

    const std::size_t per_workload =
        ids.empty() ? 0 : observations.size() / ids.size();
    std::vector<Characterization> out;
    out.reserve(ids.size());
    for (std::size_t w = 0; w < ids.size(); ++w) {
        auto first = observations.begin() +
                     static_cast<std::ptrdiff_t>(w * per_workload);
        out.push_back(fitCharacterization(
            ids[w], std::vector<model::FitObservation>(
                        first, first + static_cast<std::ptrdiff_t>(
                                           per_workload))));
    }
    return out;
}

std::vector<Characterization>
characterizeAll(const FreqScalingConfig &cfg)
{
    std::vector<std::string> ids;
    for (const auto &info : workloads::workloadCatalog())
        ids.push_back(info.id);
    return characterizeMany(ids, cfg);
}

} // namespace memsense::measure
