#include "measure/freq_scaling.hh"

#include "util/error.hh"
#include "util/log.hh"
#include "util/string_util.hh"

namespace memsense::measure
{

Characterization
characterize(const std::string &workload_id, const FreqScalingConfig &cfg)
{
    requireConfig(!cfg.coreGhz.empty() && !cfg.memMtPerSec.empty(),
                  "frequency-scaling sweep needs a non-empty grid");
    requireConfig(cfg.runsPerPoint >= 1, "need at least one run per point");

    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(workload_id);

    Characterization out;
    out.workloadId = workload_id;
    for (double ghz : cfg.coreGhz) {
        for (double mt : cfg.memMtPerSec) {
            for (int r = 0; r < cfg.runsPerPoint; ++r) {
                RunConfig rc;
                rc.workloadId = workload_id;
                rc.cores = cfg.coresOverride > 0
                               ? cfg.coresOverride
                               : info.characterizationCores;
                rc.ghz = ghz;
                rc.memMtPerSec = mt;
                rc.channels = cfg.channels;
                rc.seed = cfg.seed + static_cast<std::uint64_t>(r);
                rc.warmup = cfg.warmup;
                rc.measure = cfg.measure;
                rc.prefetcherEnabled = cfg.prefetcherEnabled;
                rc.mshrs = cfg.mshrs;
                rc.adaptiveWarmup = cfg.adaptiveWarmup;
                out.observations.push_back(runObservation(rc));
            }
        }
    }

    out.model = model::fitModel(info.display, info.cls, out.observations);
    debug(strformat("%s: CPI_cache=%.3f BF=%.3f R2=%.3f",
                    workload_id.c_str(), out.model.params.cpiCache,
                    out.model.params.bf, out.model.fit.r2));
    return out;
}

std::vector<Characterization>
characterizeAll(const FreqScalingConfig &cfg)
{
    std::vector<Characterization> out;
    for (const auto &info : workloads::workloadCatalog()) {
        inform("characterizing " + info.id + " ...");
        out.push_back(characterize(info.id, cfg));
    }
    return out;
}

} // namespace memsense::measure
