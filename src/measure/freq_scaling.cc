#include "measure/freq_scaling.hh"

#include <cstddef>
#include <optional>

#include "measure/checkpoint.hh"
#include "measure/parallel.hh"
#include "util/error.hh"
#include "util/log.hh"
#include "util/string_util.hh"

namespace memsense::measure
{

namespace
{

/** Run one grid point under a log scope naming its workload. */
model::FitObservation
runGridPoint(const RunConfig &rc)
{
    LogScope scope(rc.workloadId);
    return runObservation(rc);
}

/** Fit one workload's model from its measured observations. */
Characterization
fitCharacterization(const std::string &workload_id,
                    std::vector<model::FitObservation> observations)
{
    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(workload_id);
    Characterization out;
    out.workloadId = workload_id;
    out.observations = std::move(observations);
    out.model = model::fitModel(info.display, info.cls, out.observations);
    debug(strformat("%s: CPI_cache=%.3f BF=%.3f R2=%.3f",
                    workload_id.c_str(), out.model.params.cpiCache,
                    out.model.params.bf, out.model.fit.r2));
    return out;
}

/** Bit-exact checkpoint codec for a FitObservation (8 doubles). */
CheckpointCodec<model::FitObservation>
fitObservationCodec()
{
    CheckpointCodec<model::FitObservation> codec;
    codec.encode = [](const model::FitObservation &o) {
        return encodeDoubles({o.coreGhz, o.memMtPerSec, o.cpiEff, o.mpi,
                              o.mpCycles, o.mpki, o.wbr, o.instructions});
    };
    codec.decode =
        [](const std::string &payload) -> std::optional<model::FitObservation> {
        std::optional<std::vector<double>> decoded = decodeDoubles(payload);
        if (!decoded || decoded->size() != 8)
            return std::nullopt;
        const std::vector<double> &v = *decoded;
        model::FitObservation o;
        o.coreGhz = v[0];
        o.memMtPerSec = v[1];
        o.cpiEff = v[2];
        o.mpi = v[3];
        o.mpCycles = v[4];
        o.mpki = v[5];
        o.wbr = v[6];
        o.instructions = v[7];
        return o;
    };
    return codec;
}

/**
 * A stable identity for one characterization sweep: any change to the
 * workload list or grid shape produces a different key, so a stale
 * checkpoint from a different sweep is rejected instead of replayed.
 */
std::string
characterizationRunKey(const std::vector<std::string> &ids,
                       const FreqScalingConfig &cfg)
{
    std::string desc = "characterize";
    for (const auto &id : ids)
        desc += " " + id;
    desc += " ghz=" + encodeDoubles(cfg.coreGhz);
    desc += " mt=" + encodeDoubles(cfg.memMtPerSec);
    desc += strformat(" runs=%d ch=%d seed=%llu warm=%lld meas=%lld "
                      "pf=%d mshrs=%u aw=%d cores=%d",
                      cfg.runsPerPoint, cfg.channels,
                      static_cast<unsigned long long>(cfg.seed),
                      static_cast<long long>(cfg.warmup),
                      static_cast<long long>(cfg.measure),
                      cfg.prefetcherEnabled ? 1 : 0, cfg.mshrs,
                      cfg.adaptiveWarmup ? 1 : 0, cfg.coresOverride);
    return checkpointRunKey(desc);
}

} // anonymous namespace

std::vector<RunConfig>
characterizationGrid(const std::string &workload_id,
                     const FreqScalingConfig &cfg)
{
    requireConfig(!cfg.coreGhz.empty() && !cfg.memMtPerSec.empty(),
                  "frequency-scaling sweep needs a non-empty grid");
    requireConfig(cfg.runsPerPoint >= 1, "need at least one run per point");

    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(workload_id);

    std::vector<RunConfig> grid;
    grid.reserve(cfg.coreGhz.size() * cfg.memMtPerSec.size() *
                 static_cast<std::size_t>(cfg.runsPerPoint));
    for (double ghz : cfg.coreGhz) {
        for (double mt : cfg.memMtPerSec) {
            for (int r = 0; r < cfg.runsPerPoint; ++r) {
                RunConfig rc;
                rc.workloadId = workload_id;
                rc.cores = cfg.coresOverride > 0
                               ? cfg.coresOverride
                               : info.characterizationCores;
                rc.ghz = ghz;
                rc.memMtPerSec = mt;
                rc.channels = cfg.channels;
                rc.seed = cfg.seed + static_cast<std::uint64_t>(r);
                rc.warmup = cfg.warmup;
                rc.measure = cfg.measure;
                rc.prefetcherEnabled = cfg.prefetcherEnabled;
                rc.mshrs = cfg.mshrs;
                rc.adaptiveWarmup = cfg.adaptiveWarmup;
                grid.push_back(rc);
            }
        }
    }
    return grid;
}

Characterization
characterize(const std::string &workload_id, const FreqScalingConfig &cfg)
{
    const std::vector<RunConfig> grid =
        characterizationGrid(workload_id, cfg);
    ParallelExecutor exec(cfg.jobs);
    return fitCharacterization(workload_id,
                               exec.mapOrdered(grid, runGridPoint));
}

std::vector<Characterization>
characterizeMany(const std::vector<std::string> &ids,
                 const FreqScalingConfig &cfg)
{
    // Flatten every workload's grid into one job list so workers stay
    // busy across workload boundaries, then slice the ordered results
    // back per workload. All grids have the same size because the
    // sweep settings are shared.
    std::vector<RunConfig> all_jobs;
    for (const auto &id : ids) {
        inform("characterizing " + id + " ...");
        std::vector<RunConfig> grid = characterizationGrid(id, cfg);
        all_jobs.insert(all_jobs.end(), grid.begin(), grid.end());
    }

    ParallelExecutor exec(cfg.jobs);
    std::vector<model::FitObservation> observations =
        exec.mapOrdered(all_jobs, runGridPoint);

    const std::size_t per_workload =
        ids.empty() ? 0 : observations.size() / ids.size();
    std::vector<Characterization> out;
    out.reserve(ids.size());
    for (std::size_t w = 0; w < ids.size(); ++w) {
        auto first = observations.begin() +
                     static_cast<std::ptrdiff_t>(w * per_workload);
        out.push_back(fitCharacterization(
            ids[w], std::vector<model::FitObservation>(
                        first, first + static_cast<std::ptrdiff_t>(
                                           per_workload))));
    }
    return out;
}

ResilientCharacterizations
characterizeManyResilient(const std::vector<std::string> &ids,
                          const FreqScalingConfig &cfg)
{
    std::vector<RunConfig> all_jobs;
    for (const auto &id : ids) {
        inform("characterizing " + id + " (fault-tolerant) ...");
        std::vector<RunConfig> grid = characterizationGrid(id, cfg);
        all_jobs.insert(all_jobs.end(), grid.begin(), grid.end());
    }

    ParallelExecutor exec(cfg.jobs);
    std::vector<JobResult<model::FitObservation>> settled =
        mapOrderedResilientCheckpointed(
            exec, all_jobs, runGridPoint, cfg.resilience.toOptions(),
            cfg.resilience.checkpointPath,
            characterizationRunKey(ids, cfg), fitObservationCodec());

    ResilientCharacterizations out;
    out.totalJobs = settled.size();
    for (std::size_t i = 0; i < settled.size(); ++i) {
        if (settled[i].ok())
            continue;
        FailureRecord rec = *settled[i].failure;
        const RunConfig &rc = all_jobs[i];
        rec.context = strformat("%s ghz=%.4g mt=%.6g seed=%llu",
                                rc.workloadId.c_str(), rc.ghz,
                                rc.memMtPerSec,
                                static_cast<unsigned long long>(rc.seed));
        out.manifest.failures.push_back(std::move(rec));
    }

    // Slice the settled grid back per workload; a workload needs at
    // least two surviving observations for the two-parameter fit,
    // otherwise it is skipped and recorded in the manifest.
    const std::size_t per_workload =
        ids.empty() ? 0 : settled.size() / ids.size();
    for (std::size_t w = 0; w < ids.size(); ++w) {
        std::vector<model::FitObservation> survivors;
        std::size_t lost = 0;
        for (std::size_t j = 0; j < per_workload; ++j) {
            const auto &r = settled[w * per_workload + j];
            if (r.ok())
                survivors.push_back(*r.value);
            else
                ++lost;
        }
        if (survivors.size() < 2) {
            FailureRecord rec;
            rec.jobIndex = w * per_workload;
            rec.context = ids[w];
            rec.errorType = "FitSkipped";
            rec.message = strformat(
                "%zu of %zu grid points quarantined; at least 2 "
                "observations are needed to fit the model",
                lost, per_workload);
            rec.fatal = false;
            warn(ids[w] + ": " + rec.message);
            out.manifest.failures.push_back(std::move(rec));
            continue;
        }
        if (lost > 0)
            warn(strformat("%s: fitting from %zu of %zu grid points "
                           "(%zu quarantined)",
                           ids[w].c_str(), survivors.size(),
                           per_workload, lost));
        out.results.push_back(
            fitCharacterization(ids[w], std::move(survivors)));
    }
    return out;
}

std::vector<Characterization>
characterizeAll(const FreqScalingConfig &cfg)
{
    std::vector<std::string> ids;
    for (const auto &info : workloads::workloadCatalog())
        ids.push_back(info.id);
    return characterizeMany(ids, cfg);
}

} // namespace memsense::measure
