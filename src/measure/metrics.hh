/**
 * @file
 * Run-metrics registry: the JSON artifact over the trace core.
 *
 * util/trace.hh collects the raw material (counters, span aggregates,
 * value distributions) from the instrumented sweep stack. This layer
 * adds named gauges (point-in-time doubles such as per-phase wall
 * time), snapshots everything into one structure, and serializes the
 * `memsense.metrics.v1` JSON document written atomically to
 * `<exp>.metrics.json` beside the experiment's CSV artifacts:
 *
 *     {
 *       "schema": "memsense.metrics.v1",
 *       "experiment": "fig03_cpi_fits",
 *       "counters":      { "measure.jobs_run": 24, ... },
 *       "gauges":        { "phase.characterize.wall_ms": 812.4, ... },
 *       "distributions": { "solver.iterations_per_solve": {...}, ... },
 *       "spans":         { "solver.solve": {...}, ... }
 *     }
 *
 * Section contract (tested by observability_test): "counters" holds
 * only order-independent integer totals, so for a deterministic sweep
 * the section is byte-identical across any `--jobs` value; "gauges"
 * and "spans" carry wall-clock measurements and vary run to run;
 * "distributions" bucket counts are deterministic, their sums exact
 * for integer-valued metrics. Keys in every section are sorted.
 *
 * Arm collection with trace::setStatsEnabled(true) (the `--metrics`
 * bench flag does this); with it off, gauges and snapshots stay empty
 * and the instrumented sites cost one relaxed load each.
 */

#ifndef MEMSENSE_MEASURE_METRICS_HH
#define MEMSENSE_MEASURE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "util/trace.hh"

namespace memsense::measure
{

/** One consistent view of every metric store. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, trace::ValueStat> distributions;
    std::map<std::string, trace::SpanStat> spans;
};

/**
 * Process-global metrics facade. All methods are thread-safe; take
 * snapshots only while no instrumented sweep is in flight (sweeps
 * join their workers before returning, so bench/test call sites are
 * naturally safe).
 */
class MetricsRegistry
{
  public:
    /** The process-global registry. */
    static MetricsRegistry &instance();

    /** Set a named gauge (last write wins). No-op when stats are off. */
    void setGauge(const std::string &name, double value);

    /** Add to a named gauge, creating it at 0. No-op when stats off. */
    void addGauge(const std::string &name, double delta);

    /** A consistent snapshot of counters, gauges, spans, values. */
    MetricsSnapshot snapshot() const;

    /**
     * Serialize @p snap as a memsense.metrics.v1 document for
     * @p experiment. Deterministic for deterministic inputs: sorted
     * keys, fixed number formatting (%.17g doubles round-trip).
     */
    static std::string toJson(const MetricsSnapshot &snap,
                              const std::string &experiment);

    /**
     * Only the "counters" section of @p snap — the byte-comparable
     * slice for determinism tests.
     */
    static std::string countersJson(const MetricsSnapshot &snap);

    /**
     * Snapshot and write `<path>` atomically (temp + rename).
     * Returns the serialized document.
     */
    std::string flushToFile(const std::string &path,
                            const std::string &experiment) const;

    /** Drop gauges (counters/spans live in trace::resetForTest()). */
    void resetForTest();

  private:
    MetricsRegistry() = default;
    struct Impl;
    Impl &impl() const;
};

/**
 * RAII phase marker: emits a `phase.<name>` span (visible in the
 * trace file) and on destruction records the phase's wall time in the
 * `phase.<name>.wall_ms` gauge. Costs nothing when observability is
 * off. Use it around the coarse stages of a bench driver (sweep, fit,
 * report) so `<exp>.metrics.json` answers "where did the time go?".
 */
class PhaseTimer
{
  public:
    explicit PhaseTimer(const std::string &name);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    std::string gaugeName;
    std::uint64_t startNs = 0;
    bool live = false;
    trace::Span span;
};

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_METRICS_HH
