/**
 * @file
 * Interval-sampled workload characterization (paper Figs 2, 4, 5).
 *
 * Runs a workload and samples the machine counters at a fixed interval
 * (the paper sampled at ~100 ms on hardware; the simulator uses a
 * proportionally scaled virtual interval), producing the CPU
 * utilization / CPI / memory bandwidth time series the paper plots
 * for each workload.
 */

#ifndef MEMSENSE_MEASURE_TIMESERIES_HH
#define MEMSENSE_MEASURE_TIMESERIES_HH

#include <string>
#include <vector>

#include "measure/resilience.hh"
#include "measure/runner.hh"

namespace memsense::measure
{

/** One interval sample (one x position of Figs 2/4/5). */
struct IntervalSample
{
    double timeMs = 0.0;       ///< end of interval, virtual ms
    double cpuUtilization = 0.0; ///< non-halted fraction
    double cpi = 0.0;          ///< effective CPI of the interval
    double bandwidthGBps = 0.0;///< DRAM read+write traffic
    double ioGBps = 0.0;       ///< injected DMA traffic
    double mpki = 0.0;         ///< misses per kilo-instruction
    double missPenaltyNs = 0.0;///< average loaded latency
};

/** Time-series capture settings. */
struct TimeSeriesConfig
{
    RunConfig run;                ///< machine + workload settings
    Picos interval = nsToPicos(100'000.0); ///< sampling granularity
    int samples = 50;             ///< intervals to record
};

/** Captured series for one workload. */
struct TimeSeries
{
    std::string workloadId;
    std::vector<IntervalSample> samples;

    /** Mean CPI across samples. */
    double meanCpi() const;

    /** Coefficient of variation of CPI (phase variability). */
    double cpiCv() const;

    /** Mean bandwidth in GB/s. */
    double meanBandwidthGBps() const;

    /** Mean CPU utilization. */
    double meanCpuUtilization() const;
};

/** Run and sample one workload. */
TimeSeries captureTimeSeries(const TimeSeriesConfig &cfg);

/**
 * Capture several series on the parallel experiment engine: workloads
 * run concurrently on up to @p jobs workers, but each series is
 * sampled serially on its own machine (interval deltas are inherently
 * ordered). Results come back in input order, identical to running
 * captureTimeSeries() in a loop.
 *
 * @param cfgs one entry per series
 * @param jobs worker threads; 1 = serial, <= 0 = hardware threads
 */
std::vector<TimeSeries>
captureTimeSeriesBatch(const std::vector<TimeSeriesConfig> &cfgs,
                       int jobs = 1);

/** Outcome of a fault-tolerant time-series batch. */
struct ResilientTimeSeriesBatch
{
    /** Series that completed (possibly after retries), input order. */
    std::vector<TimeSeries> results;
    FailureManifest manifest; ///< quarantined captures
    std::size_t totalJobs = 0;///< captures attempted
};

/**
 * Fault-tolerant captureTimeSeriesBatch(): captures that fail are
 * retried per @p resilience and then quarantined instead of aborting
 * the batch; completed series stream to resilience.checkpointPath
 * (when set) for resume. Surviving series keep input order.
 */
ResilientTimeSeriesBatch
captureTimeSeriesBatchResilient(const std::vector<TimeSeriesConfig> &cfgs,
                                int jobs,
                                const ResilienceConfig &resilience);

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_TIMESERIES_HH
