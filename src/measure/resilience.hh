/**
 * @file
 * Per-job fault tolerance for the parallel experiment engine.
 *
 * mapOrdered() (measure/parallel.hh) aborts a whole sweep on the first
 * failing job — correct for tests, wasteful for the paper's production
 * grids, where one non-converging fixed point should not discard hours
 * of completed simulations. The resilient path wraps every job in the
 * retry taxonomy of util/retry.hh and returns a JobResult per input:
 * either the value, or a FailureRecord describing why the job was
 * quarantined (error type, message, attempts, deadline state). A sweep
 * therefore always completes, and the quarantined failures travel in a
 * machine-readable FailureManifest next to the results.
 *
 * Determinism: job values are computed exactly as in mapOrdered(), and
 * retry backoff is seeded per job index, so for a given fault pattern
 * the outcome vector is independent of worker count and scheduling.
 */

#ifndef MEMSENSE_MEASURE_RESILIENCE_HH
#define MEMSENSE_MEASURE_RESILIENCE_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/retry.hh"
#include "util/trace.hh"

namespace memsense::measure
{

/** Why one job was quarantined instead of returning a value. */
struct FailureRecord
{
    std::size_t jobIndex = 0; ///< input-order index of the job
    std::string context;      ///< caller-filled job description
    std::string errorType;    ///< stable tag ("FaultInjected", ...)
    std::string message;      ///< what() of the final error
    int attempts = 0;         ///< attempts made before quarantine
    bool timedOut = false;    ///< deadline exceeded, retries cut short
    bool fatal = false;       ///< classified fatal: never retried
    double elapsedMs = 0.0;   ///< wall clock spent on the job
};

/** Outcome of one resilient job: a value or a quarantined failure. */
template <typename T>
struct JobResult
{
    std::optional<T> value;
    std::optional<FailureRecord> failure;
    /** Attempts used (0 when the value was restored from a journal). */
    int attempts = 0;

    bool ok() const { return value.has_value(); }
};

/**
 * Machine-readable account of everything a sweep quarantined.
 * An empty manifest means the sweep completed cleanly.
 */
struct FailureManifest
{
    std::vector<FailureRecord> failures;

    bool empty() const { return failures.empty(); }

    /** Collect the failure records out of a JobResult vector. */
    template <typename T>
    static FailureManifest
    collect(const std::vector<JobResult<T>> &results)
    {
        FailureManifest m;
        for (const auto &r : results) {
            if (!r.ok() && r.failure)
                m.failures.push_back(*r.failure);
        }
        return m;
    }

    /** Merge another manifest's records into this one. */
    void merge(const FailureManifest &other);

    /** One human line: "3 of 128 jobs quarantined (2 retryable, ...)". */
    std::string summary(std::size_t total_jobs) const;

    /** JSON document for tooling (schema in docs/robustness.md). */
    std::string toJson() const;
};

/**
 * Engine knobs for one resilient sweep.
 *
 * The deadline is cooperative: a job is never killed mid-simulation
 * (that would tear simulator state); instead the elapsed wall clock is
 * checked between attempts, and a job over its deadline is quarantined
 * as timed out instead of being retried further. nowMs/sleepMs are
 * injectable so tests can drive a virtual clock.
 */
struct ResilienceOptions
{
    RetryPolicy retry;          ///< attempt budget + backoff schedule
    double jobTimeoutMs = 0.0;  ///< per-job deadline; 0 = unlimited
    std::function<double()> nowMs;       ///< clock; default steady_clock
    std::function<void(double)> sleepMs; ///< backoff sleeper; default real
};

/**
 * User-facing resilience knobs, as wired through the bench CLI
 * (--max-retries, --job-timeout-ms, --checkpoint).
 */
struct ResilienceConfig
{
    /** Extra attempts after the first; 0 disables retry. */
    int maxRetries = 0;
    /** Cooperative per-job deadline in wall-clock ms; 0 = unlimited. */
    double jobTimeoutMs = 0.0;
    /** Append-only journal path; empty disables checkpointing. */
    std::string checkpointPath;
    /** Seed for the backoff jitter streams. */
    std::uint64_t retrySeed = 0;

    /** True when any knob deviates from the strict default path. */
    bool enabled() const
    {
        return maxRetries > 0 || jobTimeoutMs > 0.0 ||
               !checkpointPath.empty();
    }

    /** Lower to engine options (retry budget = maxRetries + 1). */
    ResilienceOptions toOptions() const;
};

namespace detail
{

/** Monotonic wall clock in ms (the default ResilienceOptions::nowMs). */
double steadyNowMs();

/**
 * Run one job under the resilience contract. Never throws: every
 * exception ends up classified in the returned JobResult. @p stream
 * is the retry-jitter stream, conventionally the job's input index.
 */
template <typename T, typename Fn>
JobResult<T>
runResilientJob(Fn &fn, std::size_t stream, const ResilienceOptions &opts)
{
    auto now_ms = [&opts]() {
        return opts.nowMs ? opts.nowMs() : steadyNowMs();
    };
    JobResult<T> out;
    MS_METRIC_COUNT("measure.jobs_run");
    const double start_ms = now_ms();
    std::exception_ptr last_error;
    bool timed_out = false;
    bool fatal = false;
    for (;;) {
        ++out.attempts;
        if (out.attempts > 1)
            MS_METRIC_COUNT("measure.job_retries");
        try {
            MS_TRACE_SPAN("measure.job_attempt");
            out.value.emplace(fn(stream));
            return out;
        } catch (...) {
            last_error = std::current_exception();
        }
        fatal = classifyException(last_error) == ErrorClass::Fatal;
        if (fatal)
            break;
        if (opts.jobTimeoutMs > 0.0 &&
            now_ms() - start_ms >= opts.jobTimeoutMs) {
            timed_out = true;
            break;
        }
        if (out.attempts >= opts.retry.maxAttempts)
            break;
        const double wait_ms =
            opts.retry.delayMs(out.attempts + 1,
                               static_cast<std::uint64_t>(stream));
        if (opts.sleepMs)
            opts.sleepMs(wait_ms);
        else
            sleepForMs(wait_ms);
    }
    MS_METRIC_COUNT("measure.jobs_quarantined");
    if (timed_out)
        MS_METRIC_COUNT("measure.jobs_timed_out");
    const ExceptionInfo info = describeException(last_error);
    FailureRecord rec;
    rec.jobIndex = stream;
    rec.errorType = info.type;
    rec.message = info.message;
    rec.attempts = out.attempts;
    rec.timedOut = timed_out;
    rec.fatal = fatal;
    rec.elapsedMs = now_ms() - start_ms;
    out.failure = std::move(rec);
    return out;
}

} // namespace detail

} // namespace memsense::measure

#endif // MEMSENSE_MEASURE_RESILIENCE_HH
