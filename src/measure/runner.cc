#include "measure/runner.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/trace.hh"

namespace memsense::measure
{

sim::MachineConfig
RunConfig::machineConfig() const
{
    sim::MachineConfig mc;
    mc.cores = cores;
    mc.core.ghz = ghz;
    mc.core.mshrs = mshrs;
    mc.core.prefetcher.enabled = prefetcherEnabled;
    mc.llcPerCore.replacement = llcReplacement;
    mc.dram.channels = channels;
    mc.dram.megaTransfers = memMtPerSec;
    mc.seed = seed;
    return mc;
}

WorkloadRun::WorkloadRun(const RunConfig &config)
    : cfg(config)
{
    const workloads::WorkloadInfo &info =
        workloads::workloadInfo(cfg.workloadId);
    sim::MachineConfig mc = cfg.machineConfig();
    mach = std::make_unique<sim::Machine>(mc);
    for (int c = 0; c < cfg.cores; ++c) {
        streams.push_back(
            workloads::makeWorkload(cfg.workloadId, c, cfg.seed));
        mach->bind(c, *streams.back());
    }
    if (info.io.bytesPerSecond > 0.0) {
        sim::IoConfig io = info.io;
        io.seed = cfg.seed * 17 + 5;
        mach->setIo(io);
    }
    last = mach->snapshot();
}

void
WorkloadRun::warmup()
{
    MS_TRACE_SPAN("runner.warmup");
    if (!cfg.adaptiveWarmup) {
        mach->runFor(cfg.warmup);
        last = mach->snapshot();
        return;
    }

    // Probe a slice of the minimum warmup to estimate the fetch rate,
    // then extend so the run covers ~1.3 LLC residence times.
    const Picos probe = cfg.warmup / 4;
    mach->runFor(probe);
    sim::MachineSnapshot s = mach->snapshot();
    Picos total = cfg.warmup;
    if (probe > 0 && s.memoryFetches > 0) {
        const double llc_lines = static_cast<double>(
            mach->config().llcTotalBytes() / sim::kLineBytes);
        const double rate = static_cast<double>(s.memoryFetches) /
                            static_cast<double>(probe);
        // A long probe with few fetches makes rate vanishingly small
        // and 1.3 * llc_lines / rate larger than Picos can hold, so
        // cap in the double domain before the integer cast (the cast
        // of an out-of-range double is undefined behaviour).
        const double cap = static_cast<double>(cfg.maxWarmup);
        const double needed_d =
            std::min(cap, 1.3 * llc_lines / rate);
        // memsense-lint: allow(unclamped-double-to-int): needed_d is
        // capped to maxWarmup in the double domain two lines above
        total = std::clamp(static_cast<Picos>(needed_d), cfg.warmup,
                           cfg.maxWarmup);
    }
    mach->runFor(total - probe);
    last = mach->snapshot();
}

sim::MachineSnapshot
WorkloadRun::measure()
{
    MS_TRACE_SPAN("runner.measure");
    mach->runFor(cfg.measure);
    sim::MachineSnapshot now = mach->snapshot();
    sim::MachineSnapshot delta = now - last;
    last = now;
    return delta;
}

sim::MachineSnapshot
WorkloadRun::sampleInterval(Picos interval)
{
    mach->runFor(interval);
    sim::MachineSnapshot now = mach->snapshot();
    sim::MachineSnapshot delta = now - last;
    last = now;
    return delta;
}

model::FitObservation
runObservation(const RunConfig &cfg)
{
    MS_FAULT_POINT("runner.observe");
    MS_TRACE_SPAN("runner.observation");
    MS_METRIC_COUNT("runner.observations");
    WorkloadRun run(cfg);
    run.warmup();
    sim::MachineSnapshot d = run.measure();
    requireInvariant(d.instructions > 0,
                     cfg.workloadId + ": no instructions retired in the "
                                      "measurement window");

    model::FitObservation o;
    o.coreGhz = cfg.ghz;
    o.memMtPerSec = cfg.memMtPerSec;
    o.cpiEff = d.cpi(cfg.ghz);
    o.mpki = d.mpki();
    o.mpi = o.mpki / 1000.0;
    o.mpCycles = d.avgMissPenaltyCycles(cfg.ghz);
    o.wbr = d.wbr();
    o.instructions = static_cast<double>(d.instructions);
    return o;
}

} // namespace memsense::measure
