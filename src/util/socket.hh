/**
 * @file
 * Minimal POSIX socket layer for the serving path.
 *
 * Just enough BSD-socket surface for memsense_serve and
 * memsense_loadgen: RAII file descriptors, TCP and Unix-domain
 * listeners/dialers, and EINTR-safe poll/read/write helpers. All
 * failures surface as ConfigError (the environment, not the library,
 * is wrong); no call here ever raises SIGPIPE (writes use
 * MSG_NOSIGNAL / are pipe-safe).
 *
 * Deliberately not a framework: line framing, timeouts-as-policy, and
 * concurrency live in serve/transport.hh on top of these calls.
 */

#ifndef MEMSENSE_UTIL_SOCKET_HH
#define MEMSENSE_UTIL_SOCKET_HH

#include <cstddef>
#include <string>

namespace memsense::net
{

/** RAII owner of one file descriptor (move-only; -1 = empty). */
class FdHandle
{
  public:
    FdHandle() = default;
    explicit FdHandle(int fd_in)
        : fd_(fd_in)
    {}
    ~FdHandle() { reset(); }

    FdHandle(FdHandle &&other) noexcept
        : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    FdHandle &
    operator=(FdHandle &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    FdHandle(const FdHandle &) = delete;
    FdHandle &operator=(const FdHandle &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Give up ownership without closing. */
    int release()
    {
        int fd_out = fd_;
        fd_ = -1;
        return fd_out;
    }

  private:
    int fd_ = -1;
};

/** One bound, listening endpoint. */
struct Listener
{
    FdHandle fd;
    std::string address; ///< "tcp:127.0.0.1:8321" / "unix:/path"
    int port = 0;        ///< resolved TCP port (0 for Unix sockets)
    std::string unixPath; ///< socket file to unlink on close (Unix)
};

/**
 * Bind + listen on TCP @p host:@p port. Port 0 picks an ephemeral
 * port; the resolved one is returned in Listener::port.
 */
Listener listenTcp(const std::string &host, int port, int backlog = 64);

/** Bind + listen on a Unix-domain socket, replacing a stale file. */
Listener listenUnix(const std::string &path, int backlog = 64);

/** Connect to a TCP endpoint. Throws ConfigError on failure. */
FdHandle connectTcp(const std::string &host, int port);

/** Connect to a Unix-domain socket. Throws ConfigError on failure. */
FdHandle connectUnix(const std::string &path);

/** Outcome of one bounded wait on a descriptor. */
enum class IoWait
{
    Ready,   ///< readable (or accept-ready)
    Timeout, ///< nothing within the budget
    Hangup,  ///< peer closed / descriptor error
};

/** Wait up to @p timeout_ms for @p fd to become readable. */
IoWait waitReadable(int fd, int timeout_ms);

/**
 * Wait up to @p timeout_ms for either descriptor; @p wake_fd is the
 * self-pipe pattern — readable wake_fd reports Hangup so accept loops
 * unblock on shutdown without racing a close() of the listen fd.
 */
IoWait waitReadable2(int fd, int wake_fd, int timeout_ms);

/**
 * One read(2) into @p buf, retrying EINTR. Returns bytes read, 0 on
 * EOF, -1 on a would-block/after-timeout condition, throws
 * ConfigError on hard errors.
 */
long readSome(int fd, char *buf, std::size_t len);

/**
 * Write all of @p data, retrying EINTR and short writes, suppressing
 * SIGPIPE. Returns false when the peer is gone (EPIPE/ECONNRESET);
 * throws ConfigError on other hard errors.
 */
bool writeAll(int fd, const char *data, std::size_t len);

/** accept(2) with EINTR retry; empty handle when nothing is pending. */
FdHandle acceptOn(int listen_fd);

/** An inheritable pipe pair for self-pipe wakeups (read, write). */
struct PipePair
{
    FdHandle readEnd;
    FdHandle writeEnd;
};

/** Create a non-blocking pipe pair. */
PipePair makePipe();

/** Best-effort single-byte write to a wake pipe (signal-safe-ish). */
void pokePipe(int write_fd);

} // namespace memsense::net

#endif // MEMSENSE_UTIL_SOCKET_HH
