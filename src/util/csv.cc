#include "util/csv.hh"

#include "util/string_util.hh"

namespace memsense
{

std::string
CsvWriter::quote(const std::string &cell)
{
    bool needs = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os << ',';
        os << quote(cells[i]);
    }
    os << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(strformat("%.6g", v));
    writeRow(cells);
}

} // namespace memsense
