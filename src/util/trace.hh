/**
 * @file
 * Structured observability core: RAII span tracing + metric stores.
 *
 * The sweep stack declares named spans and counters at its interesting
 * sites:
 *
 *     MS_TRACE_SPAN("solver.solve");           // RAII scope timing
 *     MS_METRIC_COUNT("queuing.delay_lookups");// monotone counter
 *     MS_METRIC_COUNT_N("solver.iterations", n);
 *     MS_METRIC_OBSERVE("solver.iterations_per_solve", n);
 *
 * Two independent switches arm the sites:
 *
 *  - startTracing(path): every span becomes one Chrome `trace_event`
 *    complete event ("ph":"X"), buffered per thread and written as a
 *    `{"traceEvents": [...]}` document by stopTracing(). Load the file
 *    in chrome://tracing or https://ui.perfetto.dev. Every ThreadPool
 *    worker owns a thread track (tid = worker index + 1, named
 *    "worker-<i>"); the main thread is track 0.
 *
 *  - setStatsEnabled(true): spans aggregate per-site {count, total,
 *    min, max} durations, counters accumulate, and value observations
 *    build deterministic log2-bucket distributions. Snapshots feed the
 *    measure::MetricsRegistry JSON artifact.
 *
 * When both switches are off a site costs one relaxed atomic load and
 * a predictable branch — the PR-1 hot path is untouched. Compiling
 * with -DMEMSENSE_NO_TRACING removes the sites entirely (zero code),
 * mirroring MS_FAULT_POINT; the CMake option MEMSENSE_TRACING=OFF
 * sets it tree-wide.
 *
 * Determinism: counter totals and value-stat bucket counts are sums of
 * per-thread contributions, so for a deterministic sweep they are
 * identical for any worker count. Span durations and wall-clock gauges
 * are inherently nondeterministic and live in separate sections of the
 * metrics artifact (see docs/observability.md).
 *
 * Thread-safety: sites write thread-local state registered with a
 * process-global registry; snapshots and stopTracing() merge under the
 * registry lock. Take snapshots only while no instrumented sweep is in
 * flight (ThreadPool joins its workers before a sweep call returns, so
 * the bench/test call sites satisfy this naturally).
 */

#ifndef MEMSENSE_UTIL_TRACE_HH
#define MEMSENSE_UTIL_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace memsense::trace
{

/** Aggregate duration statistics of one span site (ns). */
struct SpanStat
{
    std::uint64_t count = 0;   ///< completed spans at the site
    std::uint64_t totalNs = 0; ///< summed duration
    std::uint64_t minNs = 0;   ///< shortest span (0 when count == 0)
    std::uint64_t maxNs = 0;   ///< longest span

    /** Fold another site aggregate into this one. */
    void merge(const SpanStat &other);
};

/** Number of log2 buckets a ValueStat distribution tracks. */
constexpr int kValueBuckets = 64;

/**
 * Deterministic distribution summary of one observed metric.
 *
 * Buckets are indexed by floor(log2(v)) clamped to
 * [kValueBucketMinLog2, kValueBucketMinLog2 + kValueBuckets - 1];
 * non-positive and non-finite observations are counted but not
 * bucketed (nonBucketed). Bucket counts are order-independent, so a
 * deterministic sweep produces identical distributions for any worker
 * count; `sum` is exact for integer-valued metrics below 2^53.
 */
struct ValueStat
{
    std::uint64_t count = 0;       ///< total observations
    std::uint64_t finite = 0;      ///< finite observations (min/max/sum)
    std::uint64_t nonBucketed = 0; ///< non-positive or non-finite
    double sum = 0.0;              ///< summed finite observations
    double min = 0.0;              ///< smallest finite observation
    double max = 0.0;              ///< largest finite observation
    std::uint64_t buckets[kValueBuckets] = {};

    /** Fold another distribution into this one. */
    void merge(const ValueStat &other);
};

/** Lowest log2 a ValueStat bucket resolves (values below clamp here). */
constexpr int kValueBucketMinLog2 = -16;

/** The log2 bucket index for @p v, or -1 when it is not bucketable. */
int valueBucketIndex(double v);

namespace detail
{

// memsense-lint: allow(mutable-global-state): process-global
// observability switches; written by start/stop/setStatsEnabled, read
// via relaxed loads on the instrumented hot paths.
extern std::atomic<unsigned> gArmed;

constexpr unsigned kTracingBit = 1u;
constexpr unsigned kStatsBit = 2u;

/** Monotonic timestamp in ns since an arbitrary process epoch. */
std::uint64_t nowNs();

/** Slow-path begin/end of one span on the current thread. */
void spanBegin();
void spanEnd(const char *site_literal, const std::string *site_owned,
             std::uint64_t start_ns);

/** Slow-path counter / observation hits on the current thread. */
void counterHit(const char *name, std::uint64_t delta);
void observeHit(const char *name, double value);

} // namespace detail

/** True when a trace file is being recorded. */
inline bool
tracingEnabled()
{
    return (detail::gArmed.load(std::memory_order_relaxed) &
            detail::kTracingBit) != 0;
}

/** True when metric aggregation (counters/spans/values) is armed. */
inline bool
statsEnabled()
{
    return (detail::gArmed.load(std::memory_order_relaxed) &
            detail::kStatsBit) != 0;
}

/** True when any observability switch is armed. */
inline bool
active()
{
    return detail::gArmed.load(std::memory_order_relaxed) != 0;
}

/**
 * Start recording spans to an in-memory event buffer destined for
 * @p path (written by stopTracing()). The current thread becomes
 * track 0 ("main"). Throws ConfigError when tracing is already
 * started or the path is empty.
 */
void startTracing(const std::string &path);

/**
 * Stop recording and write the Chrome trace_event JSON document to
 * the path given at startTracing(). Returns the path written. No-op
 * returning "" when tracing was not started.
 */
std::string stopTracing();

/** Arm/disarm metric aggregation (counters, span stats, values). */
void setStatsEnabled(bool on);

/**
 * Assign the calling thread a stable trace track. ThreadPool workers
 * call this with their worker slot index + 1 so that every worker
 * slot owns one named track ("worker-<index>") regardless of how many
 * pools a process creates; sequential pools reuse the same tracks.
 */
void setCurrentThreadTrack(int track, const std::string &name);

/** Counter totals across all threads (live and retired). */
std::map<std::string, std::uint64_t> counterTotals();

/** Per-site span aggregates across all threads. */
std::map<std::string, SpanStat> spanStats();

/** Per-metric value distributions across all threads. */
std::map<std::string, ValueStat> valueStats();

/**
 * Thread names that registered a trace track (track -> name), for the
 * current tracing session. Includes workers that recorded no events.
 */
std::map<int, std::string> threadTracks();

/**
 * Drop all collected state and disarm both switches. Test-only: the
 * caller must guarantee no instrumented code runs concurrently.
 */
void resetForTest();

/**
 * RAII span. The literal constructor is for MS_TRACE_SPAN sites and
 * costs one relaxed load when observability is off; the string
 * constructor is for cold, dynamically named scopes (bench phases).
 */
class Span
{
  public:
    explicit Span(const char *site_literal)
        : lit(site_literal)
    {
        if (active()) {
            live = true;
            startNs = detail::nowNs();
            detail::spanBegin();
        }
    }

    explicit Span(std::string site_name)
        : owned(std::move(site_name))
    {
        if (active()) {
            live = true;
            startNs = detail::nowNs();
            detail::spanBegin();
        }
    }

    ~Span()
    {
        if (live)
            detail::spanEnd(lit, lit ? nullptr : &owned, startNs);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *lit = nullptr;
    std::string owned;
    std::uint64_t startNs = 0;
    bool live = false;
};

} // namespace memsense::trace

#ifdef MEMSENSE_NO_TRACING
#define MS_TRACE_SPAN(site)                                             \
    do {                                                                \
    } while (false)
#define MS_METRIC_COUNT_N(name, delta)                                  \
    do {                                                                \
    } while (false)
#define MS_METRIC_OBSERVE(name, value)                                  \
    do {                                                                \
    } while (false)
#else
#define MS_TRACE_SPAN_CONCAT2(a, b) a##b
#define MS_TRACE_SPAN_CONCAT(a, b) MS_TRACE_SPAN_CONCAT2(a, b)
/** Time the enclosing scope as a named span (see file header). */
#define MS_TRACE_SPAN(site)                                             \
    ::memsense::trace::Span MS_TRACE_SPAN_CONCAT(ms_trace_span_,        \
                                                 __LINE__)(site)
/** Add @p delta to the named monotone counter. */
#define MS_METRIC_COUNT_N(name, delta)                                  \
    do {                                                                \
        if (::memsense::trace::statsEnabled())                          \
            ::memsense::trace::detail::counterHit(                      \
                name, static_cast<std::uint64_t>(delta));               \
    } while (false)
/** Record one observation of the named value distribution. */
#define MS_METRIC_OBSERVE(name, value)                                  \
    do {                                                                \
        if (::memsense::trace::statsEnabled())                          \
            ::memsense::trace::detail::observeHit(                      \
                name, static_cast<double>(value));                      \
    } while (false)
#endif

/** Increment the named monotone counter by one. */
#define MS_METRIC_COUNT(name) MS_METRIC_COUNT_N(name, 1)

#endif // MEMSENSE_UTIL_TRACE_HH
