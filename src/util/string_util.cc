#include "util/string_util.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace memsense
{

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    return strformat("%.*f", decimals, value);
}

std::string
formatPercent(double fraction, int decimals)
{
    return strformat("%.*f%%", decimals, fraction * 100.0);
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
toLower(std::string text)
{
    for (auto &c : text)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return text;
}

} // namespace memsense
