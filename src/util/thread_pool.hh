/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel experiment grids.
 *
 * The sweep drivers in measure/ submit independent (config -> counters)
 * jobs; each job owns its Machine and seed, so the pool needs no shared
 * simulation state — only a queue. submit() returns a std::future so
 * exceptions thrown inside a job surface at the caller's get(), and the
 * destructor drains every queued task before joining (graceful
 * shutdown: accepted work is never dropped).
 */

#ifndef MEMSENSE_UTIL_THREAD_POOL_HH
#define MEMSENSE_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace memsense
{

/** A fixed set of worker threads draining one FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads; a count <= 0 uses hardwareWorkers().
     */
    explicit ThreadPool(int workers = 0);

    /** Drains all queued tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn for execution on a worker.
     *
     * @return a future delivering fn's result; an exception thrown by
     *         fn is captured and rethrown from future::get().
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /** Number of worker threads. */
    int workerCount() const
    {
        return static_cast<int>(threads.size());
    }

    /** Tasks accepted but not yet started (diagnostics/tests). */
    std::size_t queuedTasks() const;

    /** The host's hardware concurrency, never less than 1. */
    static int hardwareWorkers();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    // The queue state (mutex, cv, deque, stop flag) is deliberately
    // segregated onto its own cache lines away from `threads`:
    // workerCount() readers and the submit path would otherwise share
    // a line with the hot mutex word and ping-pong it between cores.
    alignas(64) mutable std::mutex mtx;
    std::condition_variable cv;
    // memsense-lint: guarded_by(mtx)
    std::deque<std::function<void()>> queue;
    // memsense-lint: guarded_by(mtx)
    bool stopping = false;
    alignas(64) std::vector<std::thread> threads;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_THREAD_POOL_HH
