#include "util/contract.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace memsense
{

namespace
{

// Process-global failure policy, like the log level: a deliberate
// mutable knob, not experiment state (jobs never read it mid-run).
// memsense-lint: allow(mutable-global-state): policy switch, set once at startup
std::atomic<ContractPolicy> g_policy{ContractPolicy::Throw};

} // anonymous namespace

void
setContractPolicy(ContractPolicy policy)
{
    g_policy.store(policy, std::memory_order_relaxed);
}

ContractPolicy
contractPolicy()
{
    return g_policy.load(std::memory_order_relaxed);
}

namespace detail
{

[[noreturn]] void
contractFail(const char *kind, const char *expr, const char *file, int line,
             const std::string &msg)
{
    std::string what = std::string(file) + ":" + std::to_string(line) +
                       ": " + kind + " violated: `" + expr + "`";
    if (!msg.empty())
        what += " — " + msg;
    if (contractPolicy() == ContractPolicy::Abort) {
        std::fprintf(stderr, "memsense contract violation: %s\n",
                     what.c_str());
        std::abort();
    }
    throw ContractViolation(what);
}

} // namespace detail
} // namespace memsense
