#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/error.hh"

namespace memsense
{

CliParser::CliParser(std::string program_in, std::string summary_in)
    : program(std::move(program_in)), summary(std::move(summary_in))
{
    addBool("help", "show this help");
}

void
CliParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    flags[name] = Flag{Kind::String, help, def, def, false};
}

void
CliParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", def);
    flags[name] = Flag{Kind::Double, help, buf, buf, false};
}

void
CliParser::addInt(const std::string &name, int def,
                  const std::string &help)
{
    flags[name] = Flag{Kind::Int, help, std::to_string(def),
                       std::to_string(def), false};
}

void
CliParser::addBool(const std::string &name, const std::string &help)
{
    flags[name] = Flag{Kind::Bool, help, "false", "false", false};
}

bool
CliParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = flags.find(name);
        if (it == flags.end()) {
            std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
            printHelp();
            return false;
        }
        Flag &f = it->second;
        if (f.kind == Kind::Bool) {
            f.value = has_value ? value : "true";
        } else {
            if (!has_value) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "flag --%s needs a value\n",
                                 name.c_str());
                    return false;
                }
                value = argv[++i];
            }
            f.value = value;
        }
        f.set = true;
    }
    if (getBool("help")) {
        printHelp();
        return false;
    }
    return true;
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    auto it = flags.find(name);
    requireInvariant(it != flags.end(), "unregistered flag " + name);
    requireInvariant(it->second.kind == kind,
                     "flag " + name + " accessed with the wrong type");
    return it->second;
}

std::string
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

double
CliParser::getDouble(const std::string &name) const
{
    return std::atof(find(name, Kind::Double).value.c_str());
}

int
CliParser::getInt(const std::string &name) const
{
    return std::atoi(find(name, Kind::Int).value.c_str());
}

bool
CliParser::getBool(const std::string &name) const
{
    return find(name, Kind::Bool).value == "true";
}

bool
CliParser::isSet(const std::string &name) const
{
    auto it = flags.find(name);
    return it != flags.end() && it->second.set;
}

void
CliParser::printHelp() const
{
    std::printf("%s — %s\n\nflags:\n", program.c_str(),
                summary.c_str());
    for (const auto &[name, f] : flags) {
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    f.help.c_str(), f.def.c_str());
    }
}

} // namespace memsense
