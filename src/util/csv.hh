/**
 * @file
 * CSV emission for bench series output, so plots can be regenerated
 * from the harness output without scraping aligned tables.
 */

#ifndef MEMSENSE_UTIL_CSV_HH
#define MEMSENSE_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace memsense
{

/**
 * A simple row-oriented CSV writer with RFC 4180 quoting.
 *
 * Numeric convenience overloads format doubles with enough precision
 * to round-trip typical model values.
 */
class CsvWriter
{
  public:
    /** Write to @p os; the writer does not own the stream. */
    explicit CsvWriter(std::ostream &stream) : os(stream) {}

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of doubles (formatted with %.6g). */
    void writeRow(const std::vector<double> &values);

    /** Quote a single cell per RFC 4180 (exposed for tests). */
    static std::string quote(const std::string &cell);

  private:
    std::ostream &os;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_CSV_HH
