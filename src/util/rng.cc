#include "util/rng.hh"

#include <cmath>
#include <numbers>

#include "util/contract.hh"

namespace memsense
{

namespace
{

/** splitmix64, used only to expand the seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    MS_REQUIRE(bound != 0, "nextBounded called with bound 0");
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    MS_REQUIRE(lo <= hi, "nextRange with lo > hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::nextGaussian()
{
    if (haveGauss) {
        haveGauss = false;
        return cachedGauss;
    }
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cachedGauss = r * std::sin(theta);
    haveGauss = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double skew)
{
    MS_REQUIRE(n > 0, "nextZipf with n == 0");
    if (skew <= 0.0)
        return nextBounded(n);

    // Rejection-inversion after Hormann & Derflinger. H is the integral
    // of the (shifted) Zipf density; Hinv its inverse.
    const double s_exp = skew;
    auto H = [s_exp](double x) {
        // memsense-lint: allow(float-equal): exact limiting case s = 1
        if (s_exp == 1.0)
            return std::log(x);
        return (std::pow(x, 1.0 - s_exp) - 1.0) / (1.0 - s_exp);
    };
    auto Hinv = [s_exp](double x) {
        // memsense-lint: allow(float-equal): exact limiting case s = 1
        if (s_exp == 1.0)
            return std::exp(x);
        return std::pow(1.0 + x * (1.0 - s_exp), 1.0 / (1.0 - s_exp));
    };

    // memsense-lint: allow(float-equal): exact cache-key identity check
    if (zipfN != n || zipfS != skew) {
        zipfN = n;
        zipfS = skew;
        zipfHx0 = H(0.5) - 1.0;
        zipfHn = H(static_cast<double>(n) + 0.5);
        zipfDenom = zipfHn - zipfHx0;
    }

    for (;;) {
        double u = zipfHx0 + nextDouble() * zipfDenom;
        double x = Hinv(u);
        // memsense-lint: allow(unclamped-double-to-int): x = Hinv(u)
        // with u in [H(0.5), H(n + 0.5)], so x + 0.5 stays within n + 1
        auto k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= H(kd + 0.5) - std::pow(kd, -s_exp))
            return k - 1;
    }
}

} // namespace memsense
