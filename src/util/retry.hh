/**
 * @file
 * Deterministic retry policy for fault-tolerant sweeps.
 *
 * A sweep job that throws a TransientError (a non-converged solver, an
 * I/O hiccup, an injected fault) is worth re-running; one that throws a
 * ConfigError or LogicError is not — the input or the library is wrong
 * and every attempt will fail the same way. classifyException() encodes
 * that taxonomy, and retryCall() re-runs a callable under a bounded,
 * seeded-jitter exponential backoff schedule. The schedule is a pure
 * function of (policy, stream, attempt), so a sweep's retry behaviour
 * is reproducible: job i always waits the same sequence of delays no
 * matter which worker runs it or what else the process is doing.
 */

#ifndef MEMSENSE_UTIL_RETRY_HH
#define MEMSENSE_UTIL_RETRY_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "util/error.hh"

namespace memsense
{

/** Which half of the failure taxonomy an exception belongs to. */
enum class ErrorClass
{
    Retryable, ///< TransientError and subclasses: re-run may succeed
    Fatal,     ///< ConfigError, LogicError, anything else: it will not
};

/** Classify @p ep per the retry taxonomy. @p ep must be non-null. */
ErrorClass classifyException(const std::exception_ptr &ep);

/** Stable (type tag, message) description of an in-flight exception. */
struct ExceptionInfo
{
    std::string type;    ///< "ConfigError", "SolverConvergenceError", ...
    std::string message; ///< what() text (empty for non-std exceptions)
};

/** Describe @p ep for failure manifests. @p ep must be non-null. */
ExceptionInfo describeException(const std::exception_ptr &ep);

/**
 * Bounded-attempt exponential backoff with seeded jitter.
 *
 * The delay before attempt k (k >= 2) is
 *     min(baseDelayMs * multiplier^(k-2), maxDelayMs)
 * scaled by a jitter factor drawn deterministically from
 * (policy.seed, stream, k), uniform in [1 - jitterFrac, 1 + jitterFrac].
 * Passing the job index as @p stream decorrelates the backoff of jobs
 * that fail simultaneously without giving up reproducibility.
 */
struct RetryPolicy
{
    int maxAttempts = 3;        ///< total tries, including the first
    double baseDelayMs = 10.0;  ///< delay before the first re-try
    double multiplier = 2.0;    ///< exponential growth per attempt
    double maxDelayMs = 2000.0; ///< backoff ceiling
    double jitterFrac = 0.25;   ///< +/- fraction of jitter, in [0, 1]
    std::uint64_t seed = 0;     ///< jitter seed

    /** Validate the knobs; throws ConfigError on nonsense. */
    void validate() const;

    /**
     * Backoff delay before attempt @p attempt (2-based: the first
     * attempt never waits) for retry stream @p stream.
     */
    double delayMs(int attempt, std::uint64_t stream) const;
};

/** How a retryCall() ended, for logging and failure records. */
struct RetryDiagnostics
{
    int attempts = 0;          ///< attempts actually made
    double totalBackoffMs = 0.0; ///< sum of the backoff waits
};

/** Block the calling thread for @p delay_ms (the default sleeper). */
void sleepForMs(double delay_ms);

/**
 * Run @p fn under @p policy, retrying TransientErrors.
 *
 * Fatal errors propagate immediately; retryable errors propagate once
 * the attempt budget is exhausted. @p sleep_ms is called with each
 * backoff delay (inject a recorder in tests to avoid real waiting);
 * @p diag, when non-null, receives the attempt/backoff accounting even
 * when the call ultimately throws.
 */
template <typename Fn>
auto
retryCall(const RetryPolicy &policy, std::uint64_t stream, Fn &&fn,
          const std::function<void(double)> &sleep_ms = sleepForMs,
          RetryDiagnostics *diag = nullptr) -> std::invoke_result_t<Fn>
{
    policy.validate();
    RetryDiagnostics local;
    RetryDiagnostics &d = diag ? *diag : local;
    d = {};
    for (;;) {
        ++d.attempts;
        try {
            return fn();
        } catch (...) {
            std::exception_ptr ep = std::current_exception();
            if (classifyException(ep) == ErrorClass::Fatal ||
                d.attempts >= policy.maxAttempts)
                std::rethrow_exception(ep);
            double wait_ms = policy.delayMs(d.attempts + 1, stream);
            d.totalBackoffMs += wait_ms;
            if (sleep_ms)
                sleep_ms(wait_ms);
        }
    }
}

} // namespace memsense

#endif // MEMSENSE_UTIL_RETRY_HH
