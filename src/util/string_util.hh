/**
 * @file
 * Small string formatting helpers shared by the table/CSV writers and
 * the command line tools.
 */

#ifndef MEMSENSE_UTIL_STRING_UTIL_HH
#define MEMSENSE_UTIL_STRING_UTIL_HH

#include <string>
#include <vector>

namespace memsense
{

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format @p value with @p decimals digits after the point. */
std::string formatDouble(double value, int decimals = 3);

/** Format as a percentage ("42.0%") with @p decimals digits. */
std::string formatPercent(double fraction, int decimals = 1);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Lower-case ASCII copy of @p text. */
std::string toLower(std::string text);

} // namespace memsense

#endif // MEMSENSE_UTIL_STRING_UTIL_HH
