#include "util/fault_injection.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "util/retry.hh"
#include "util/rng.hh"
#include "util/string_util.hh"

namespace memsense::fault
{

namespace detail
{

// memsense-lint: allow(mutable-global-state): process-global injection
// switch; written only by configure()/reset(), read via relaxed loads.
std::atomic<bool> gActive{false};

} // namespace detail

namespace
{

enum class FaultKind
{
    Throw,
    Fatal,
    Delay,
};

/** One parsed `site:kind[:opt...]` entry. */
struct SiteSpec
{
    FaultKind faultKind = FaultKind::Throw;
    double delayMs = 0.0;
    double probability = 1.0;
    std::uint64_t nth = 0;   ///< 0 = every eligible hit
    std::uint64_t skip = 0;  ///< ignore the first `skip` hits
    std::int64_t maxFires = -1; ///< -1 = unbounded
};

/** Live per-site state: the spec plus counters and the jitter stream. */
struct SiteState
{
    bool configured = false;
    SiteSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rngState = 0; ///< per-site SplitMix64 walker for p=
};

/** Everything behind the mutex: specs, counters, the sleep handler. */
struct Registry
{
    std::mutex mtx;
    std::map<std::string, SiteState> sites;
    std::uint64_t seed = 0;
    std::function<void(double)> sleepHandler;
};

Registry &
registry()
{
    // memsense-lint: allow(mutable-global-state): the fault registry is
    // intentionally process-global (env-configured) and mutex-guarded.
    static Registry r;
    return r;
}

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

double
parseDoubleOpt(const std::string &entry, const std::string &text)
{
    try {
        return std::stod(text);
    } catch (const std::exception &) {
        throw ConfigError("bad MEMSENSE_FAULTS number '" + text +
                          "' in entry '" + entry + "'");
    }
}

std::uint64_t
parseCountOpt(const std::string &entry, const std::string &text)
{
    try {
        long long v = std::stoll(text);
        requireConfig(v >= 0, "fault option must be >= 0 in '" + entry +
                                  "'");
        return static_cast<std::uint64_t>(v);
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        throw ConfigError("bad MEMSENSE_FAULTS number '" + text +
                          "' in entry '" + entry + "'");
    }
}

/** Parse one `site:kind[:opt...]` entry into (site, spec). */
std::pair<std::string, SiteSpec>
parseEntry(const std::string &entry)
{
    std::vector<std::string> fields = split(entry, ':');
    requireConfig(fields.size() >= 2,
                  "MEMSENSE_FAULTS entry '" + entry +
                      "' needs site:kind");
    std::string site = trim(fields[0]);
    requireConfig(!site.empty(),
                  "MEMSENSE_FAULTS entry '" + entry + "' has no site");

    SiteSpec spec;
    const std::string kind = trim(fields[1]);
    if (kind == "throw") {
        spec.faultKind = FaultKind::Throw;
    } else if (kind == "fatal") {
        spec.faultKind = FaultKind::Fatal;
    } else if (kind.rfind("delay=", 0) == 0) {
        spec.faultKind = FaultKind::Delay;
        spec.delayMs = parseDoubleOpt(entry, kind.substr(6));
        requireConfig(spec.delayMs >= 0.0,
                      "fault delay must be >= 0 in '" + entry + "'");
    } else {
        throw ConfigError("unknown fault kind '" + kind + "' in '" +
                          entry + "' (throw | fatal | delay=<ms>)");
    }

    for (std::size_t i = 2; i < fields.size(); ++i) {
        const std::string opt = trim(fields[i]);
        if (opt.rfind("p=", 0) == 0) {
            spec.probability = parseDoubleOpt(entry, opt.substr(2));
            requireConfig(spec.probability >= 0.0 &&
                              spec.probability <= 1.0,
                          "fault probability must be in [0, 1] in '" +
                              entry + "'");
        } else if (opt.rfind("nth=", 0) == 0) {
            spec.nth = parseCountOpt(entry, opt.substr(4));
            requireConfig(spec.nth >= 1,
                          "nth must be >= 1 in '" + entry + "'");
        } else if (opt.rfind("after=", 0) == 0) {
            spec.skip = parseCountOpt(entry, opt.substr(6));
        } else if (opt.rfind("count=", 0) == 0) {
            spec.maxFires =
                static_cast<std::int64_t>(parseCountOpt(entry,
                                                        opt.substr(6)));
        } else {
            throw ConfigError("unknown fault option '" + opt + "' in '" +
                              entry +
                              "' (p= | nth= | after= | count=)");
        }
    }
    return {site, spec};
}

} // anonymous namespace

void
configure(const std::string &spec)
{
    // Parse into a staging map first so a malformed spec cannot leave
    // the registry half-updated.
    std::uint64_t seed = 0;
    std::map<std::string, SiteState> staged;
    for (const std::string &raw : split(spec, ';')) {
        const std::string entry = trim(raw);
        if (entry.empty())
            continue;
        if (entry.rfind("seed=", 0) == 0) {
            seed = parseCountOpt(entry, entry.substr(5));
            continue;
        }
        auto [site, parsed] = parseEntry(entry);
        SiteState state;
        state.configured = true;
        state.spec = parsed;
        staged[site] = state;
    }
    for (auto &[site, state] : staged)
        state.rngState = seed ^ fnv1a(site);

    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    r.sites = std::move(staged);
    r.seed = seed;
    detail::gActive.store(!r.sites.empty(), std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const char *spec = std::getenv("MEMSENSE_FAULTS");
    configure(spec ? spec : "");
}

void
reset()
{
    configure("");
}

void
setSleepHandler(std::function<void(double)> handler)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    r.sleepHandler = std::move(handler);
}

std::uint64_t
hitCount(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fireCount(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mtx);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.fires;
}

namespace detail
{

void
hitSite(const char *site)
{
    Registry &r = registry();
    FaultKind fault_kind = FaultKind::Throw;
    double delay_ms = 0.0;
    std::function<void(double)> sleep_handler;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(r.mtx);
        auto it = r.sites.find(site);
        if (it == r.sites.end()) {
            // Unconfigured sites still count hits, so tests can assert
            // a site was exercised without arming it.
            SiteState &state = r.sites[site];
            ++state.hits;
            return;
        }
        SiteState &state = it->second;
        ++state.hits;
        if (!state.configured)
            return;
        const SiteSpec &spec = state.spec;
        if (state.hits <= spec.skip)
            return;
        if (spec.maxFires >= 0 &&
            state.fires >= static_cast<std::uint64_t>(spec.maxFires))
            return;
        const std::uint64_t eligible = state.hits - spec.skip;
        if (spec.nth >= 1 && eligible % spec.nth != 0)
            return;
        if (spec.probability < 1.0) {
            // 53-bit uniform draw from the per-site deterministic
            // stream; advancing it counts as consuming this ordinal's
            // decision whether or not it fires.
            const double u =
                static_cast<double>(splitMix64(state.rngState) >> 11) *
                0x1.0p-53;
            if (u >= spec.probability)
                return;
        }
        ++state.fires;
        fire = true;
        fault_kind = spec.faultKind;
        delay_ms = spec.delayMs;
        sleep_handler = r.sleepHandler;
    }
    if (!fire)
        return;
    switch (fault_kind) {
      case FaultKind::Throw:
        throw FaultInjected(site);
      case FaultKind::Fatal:
        throw FaultInjectedFatal(site);
      case FaultKind::Delay:
        if (sleep_handler)
            sleep_handler(delay_ms);
        else
            sleepForMs(delay_ms);
        break;
    }
}

} // namespace detail

} // namespace memsense::fault
