#include "util/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hh"

namespace memsense::net
{

namespace
{

[[noreturn]] void
failErrno(const std::string &what)
{
    throw ConfigError(what + ": " + std::strerror(errno));
}

void
setCloexec(int fd)
{
    int flags = fcntl(fd, F_GETFD);
    if (flags >= 0)
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

sockaddr_in
tcpAddress(const std::string &host, int port)
{
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const std::string resolved =
        (host.empty() || host == "localhost") ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("cannot parse IPv4 address '" + resolved +
                          "' (hostnames are not resolved; use a "
                          "dotted quad or 'localhost')");
    return addr;
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    requireConfig(!path.empty(), "unix socket path must be non-empty");
    requireConfig(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // anonymous namespace

void
FdHandle::reset()
{
    if (fd_ >= 0) {
        // EINTR on close is not retried: POSIX leaves the fd state
        // unspecified and a retry risks closing a reused descriptor.
        ::close(fd_);
        fd_ = -1;
    }
}

Listener
listenTcp(const std::string &host, int port, int backlog)
{
    requireConfig(port >= 0 && port <= 65535,
                  "tcp port must be in [0, 65535], got " +
                      std::to_string(port));
    FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        failErrno("socket(AF_INET)");
    setCloexec(fd.get());
    int one = 1;
    setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcpAddress(host, port);
    if (bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        failErrno("bind tcp " + host + ":" + std::to_string(port));
    if (listen(fd.get(), backlog) != 0)
        failErrno("listen tcp " + host + ":" + std::to_string(port));

    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                    &len) != 0)
        failErrno("getsockname");
    Listener l;
    l.port = ntohs(bound.sin_port);
    l.address = "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) +
                ":" + std::to_string(l.port);
    l.fd = std::move(fd);
    return l;
}

Listener
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr = unixAddress(path);
    FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        failErrno("socket(AF_UNIX)");
    setCloexec(fd.get());
    // A stale socket file from a crashed server would make bind fail
    // with EADDRINUSE even though nothing is listening; unlink first.
    ::unlink(path.c_str());
    if (bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        failErrno("bind unix " + path);
    if (listen(fd.get(), backlog) != 0)
        failErrno("listen unix " + path);
    Listener l;
    l.address = "unix:" + path;
    l.unixPath = path;
    l.fd = std::move(fd);
    return l;
}

FdHandle
connectTcp(const std::string &host, int port)
{
    sockaddr_in addr = tcpAddress(host, port);
    FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        failErrno("socket(AF_INET)");
    setCloexec(fd.get());
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        failErrno("connect tcp " + host + ":" + std::to_string(port));
    return fd;
}

FdHandle
connectUnix(const std::string &path)
{
    sockaddr_un addr = unixAddress(path);
    FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        failErrno("socket(AF_UNIX)");
    setCloexec(fd.get());
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        failErrno("connect unix " + path);
    return fd;
}

IoWait
waitReadable(int fd, int timeout_ms)
{
    return waitReadable2(fd, -1, timeout_ms);
}

IoWait
waitReadable2(int fd, int wake_fd, int timeout_ms)
{
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    nfds_t n = 1;
    if (wake_fd >= 0) {
        fds[1] = {wake_fd, POLLIN, 0};
        n = 2;
    }
    int rc;
    do {
        rc = ::poll(fds, n, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        failErrno("poll");
    if (rc == 0)
        return IoWait::Timeout;
    if (n == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
        return IoWait::Hangup; // shutdown wake beats pending data
    if (fds[0].revents & (POLLERR | POLLNVAL))
        return IoWait::Hangup;
    // POLLHUP with POLLIN still has buffered bytes to drain; pure
    // POLLHUP means the peer is gone with nothing left to read.
    if ((fds[0].revents & POLLHUP) && !(fds[0].revents & POLLIN))
        return IoWait::Hangup;
    return IoWait::Ready;
}

long
readSome(int fd, char *buf, std::size_t len)
{
    for (;;) {
        ssize_t n = ::read(fd, buf, len);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -1;
        if (errno == ECONNRESET)
            return 0; // a reset peer reads as EOF for framing purposes
        failErrno("read");
    }
}

bool
writeAll(int fd, const char *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill
        // the server process with SIGPIPE. send() requires a socket;
        // pipes/regular fds fall back to write() (no SIGPIPE risk in
        // our usage: only the in-process transport uses non-sockets).
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data + sent, len - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return false;
            failErrno("write");
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

FdHandle
acceptOn(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            setCloexec(fd);
            return FdHandle(fd);
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return FdHandle();
        failErrno("accept");
    }
}

PipePair
makePipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        failErrno("pipe");
    setCloexec(fds[0]);
    setCloexec(fds[1]);
    // Non-blocking write end: pokePipe must never block even if the
    // pipe buffer is full of unread wake bytes.
    int flags = fcntl(fds[1], F_GETFL);
    if (flags >= 0)
        fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
    PipePair p;
    p.readEnd = FdHandle(fds[0]);
    p.writeEnd = FdHandle(fds[1]);
    return p;
}

void
pokePipe(int write_fd)
{
    char byte = 0;
    // Best-effort: a full pipe already has a pending wake, and EINTR
    // here is fine for the same reason (the next poke re-arms it).
    [[maybe_unused]] ssize_t rc = ::write(write_fd, &byte, 1);
}

} // namespace memsense::net
