/**
 * @file
 * Minimal command-line flag parser for the memsense tools.
 *
 * Supports `--flag value`, `--flag=value`, boolean `--flag`, and
 * positional arguments, with generated help text. Deliberately tiny —
 * just enough for the CLI and the bench binaries — and dependency
 * free.
 */

#ifndef MEMSENSE_UTIL_CLI_HH
#define MEMSENSE_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace memsense
{

/** Declarative flag parser. */
class CliParser
{
  public:
    /**
     * @param program program name for the usage line
     * @param summary one-line description
     */
    CliParser(std::string program, std::string summary);

    /** Register a string flag with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a numeric flag with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Register an integer flag with a default. */
    void addInt(const std::string &name, int def,
                const std::string &help);

    /** Register a boolean flag (presence = true). */
    void addBool(const std::string &name, const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage) on `--help` or
     * on a malformed/unknown flag.
     */
    bool parse(int argc, char **argv);

    /** @{ Typed accessors (flag must have been registered). */
    std::string getString(const std::string &name) const;
    double getDouble(const std::string &name) const;
    int getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;
    /** @} */

    /** True when the flag appeared on the command line. */
    bool isSet(const std::string &name) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const { return pos; }

    /** Print usage/help to stdout. */
    void printHelp() const;

  private:
    enum class Kind
    {
        String,
        Double,
        Int,
        Bool,
    };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value; ///< current value, textual
        std::string def;   ///< default, textual (for help)
        bool set = false;
    };

    const Flag &find(const std::string &name, Kind kind) const;

    std::string program;
    std::string summary;
    std::map<std::string, Flag> flags;
    std::vector<std::string> pos;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_CLI_HH
