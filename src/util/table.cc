#include "util/table.hh"

#include <algorithm>
#include <sstream>

#include "util/error.hh"

namespace memsense
{

Table::Table(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
    requireConfig(!headers.empty(), "table must have at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    requireConfig(cells.size() == headers.size(),
                  "row has " + std::to_string(cells.size()) +
                      " cells, table has " + std::to_string(headers.size()) +
                      " columns");
    rows.push_back(std::move(cells));
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    requireInvariant(row < rows.size() && col < headers.size(),
                     "table cell out of range");
    return rows[row][col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    if (!_title.empty())
        os << _title << '\n';
    print_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        print_row(row);
    if (!_footnote.empty())
        os << _footnote << '\n';
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace memsense
