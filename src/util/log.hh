/**
 * @file
 * Minimal leveled logging for memsense tools.
 *
 * Mirrors the gem5 inform()/warn() split: inform() is status output the
 * user may want, warn() flags behaviour that might be wrong but does not
 * stop the run. Verbosity is a process-global knob so that benchmarks
 * and tests can silence progress chatter.
 */

#ifndef MEMSENSE_UTIL_LOG_HH
#define MEMSENSE_UTIL_LOG_HH

#include <string>

namespace memsense
{

/** Logging verbosity levels, in increasing chattiness. */
enum class LogLevel
{
    Silent = 0, ///< nothing at all
    Warn = 1,   ///< warnings only
    Info = 2,   ///< warnings + status messages (default)
    Debug = 3,  ///< everything
};

/** Set the process-global verbosity. */
void setLogLevel(LogLevel level);

/** Current process-global verbosity. */
LogLevel logLevel();

/** Status message for the user (LogLevel::Info and above). */
void inform(const std::string &msg);

/** Possible-problem message (LogLevel::Warn and above). */
void warn(const std::string &msg);

/** Developer diagnostics (LogLevel::Debug only). */
void debug(const std::string &msg);

} // namespace memsense

#endif // MEMSENSE_UTIL_LOG_HH
