/**
 * @file
 * Minimal leveled logging for memsense tools.
 *
 * Mirrors the gem5 inform()/warn() split: inform() is status output the
 * user may want, warn() flags behaviour that might be wrong but does not
 * stop the run. Verbosity is a process-global knob so that benchmarks
 * and tests can silence progress chatter.
 *
 * The sink is thread-safe: the level check is atomic and each line is
 * written under a mutex, so concurrent sweep workers never interleave
 * mid-line. Workers label their lines with LogScope (e.g. the workload
 * id being characterized), which prefixes every message emitted by the
 * current thread while the scope is alive.
 */

#ifndef MEMSENSE_UTIL_LOG_HH
#define MEMSENSE_UTIL_LOG_HH

#include <string>

namespace memsense
{

/** Logging verbosity levels, in increasing chattiness. */
enum class LogLevel
{
    Silent = 0, ///< nothing at all
    Warn = 1,   ///< warnings only
    Info = 2,   ///< warnings + status messages (default)
    Debug = 3,  ///< everything
};

/** Set the process-global verbosity. */
void setLogLevel(LogLevel level);

/** Current process-global verbosity. */
LogLevel logLevel();

/** Status message for the user (LogLevel::Info and above). */
void inform(const std::string &msg);

/** Possible-problem message (LogLevel::Warn and above). */
void warn(const std::string &msg);

/** Developer diagnostics (LogLevel::Debug only). */
void debug(const std::string &msg);

/**
 * RAII label for the current thread's log lines.
 *
 * While alive, every message this thread emits is prefixed with
 * "[label] ". Scopes nest; the previous label is restored on
 * destruction. Sweep workers use this to tag their output with the
 * job (workload id) they are running.
 */
class LogScope
{
  public:
    explicit LogScope(std::string label);
    ~LogScope();

    LogScope(const LogScope &) = delete;
    LogScope &operator=(const LogScope &) = delete;

  private:
    std::string previous;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_LOG_HH
