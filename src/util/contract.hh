/**
 * @file
 * Runtime contract (invariant) layer for memsense.
 *
 * The model's credibility rests on invariants the compiler cannot see:
 * Eq. 1-4 quantities must stay non-negative and unit-consistent, the
 * fixed-point solver must converge within its iteration cap, and the
 * simulator's cache geometry must stay internally consistent. The
 * MS_REQUIRE / MS_ENSURE / MS_INVARIANT macros make those rules
 * machine-checked at the API boundaries instead of tribal knowledge.
 *
 * Distinction from util/error.hh: requireConfig() rejects bad *user
 * input* (a recoverable ConfigError); the contract macros guard what
 * the *library itself* promises. A fired contract is always a bug in
 * memsense, never in the caller's configuration, which is why
 * ContractViolation derives from LogicError.
 *
 * Each macro takes the condition plus an optional stream-style message
 * built from any number of trailing arguments:
 *
 *     MS_ENSURE(op.utilization <= 1.0,
 *               "utilization ", op.utilization, " exceeds 1");
 *
 * The failure policy is a process-global switch: Throw (the default,
 * so tests can observe violations) raises ContractViolation; Abort
 * prints the diagnostic to stderr and calls std::abort(), which is
 * what production batch sweeps want under a debugger or a sanitizer.
 */

#ifndef MEMSENSE_UTIL_CONTRACT_HH
#define MEMSENSE_UTIL_CONTRACT_HH

#include <sstream>
#include <string>

#include "util/error.hh"

namespace memsense
{

/** What a violated contract does to the process. */
enum class ContractPolicy
{
    Throw, ///< raise ContractViolation (default; test-observable)
    Abort, ///< print to stderr and std::abort() (batch / debugger use)
};

/** Set the process-global contract failure policy. */
void setContractPolicy(ContractPolicy policy);

/** Current process-global contract failure policy. */
ContractPolicy contractPolicy();

/** Raised by a violated contract under ContractPolicy::Throw. */
class ContractViolation : public LogicError
{
  public:
    explicit ContractViolation(const std::string &what_arg)
        : LogicError(what_arg)
    {}
};

namespace detail
{

/** Fold any number of streamable arguments into one message string. */
template <typename... Args>
std::string
contractMessage(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string();
    } else {
        std::ostringstream oss;
        (oss << ... << args);
        return oss.str();
    }
}

/**
 * Report a violated contract according to the active policy.
 *
 * @param kind "precondition", "postcondition", or "invariant"
 * @param expr stringified condition text
 * @param file call-site file
 * @param line call-site line
 * @param msg  formatted user message (may be empty)
 */
[[noreturn]] void contractFail(const char *kind, const char *expr,
                               const char *file, int line,
                               const std::string &msg);

} // namespace detail
} // namespace memsense

/** Internal: shared expansion of the three contract macros. */
#define MS_CONTRACT_CHECK_(kind, cond, ...)                             \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::memsense::detail::contractFail(                           \
                kind, #cond, __FILE__, __LINE__,                        \
                ::memsense::detail::contractMessage(__VA_ARGS__));      \
        }                                                               \
    } while (false)

/** Precondition: what the caller must guarantee on entry. */
#define MS_REQUIRE(cond, ...) MS_CONTRACT_CHECK_("precondition", cond, __VA_ARGS__)

/** Postcondition: what the callee guarantees on exit. */
#define MS_ENSURE(cond, ...) MS_CONTRACT_CHECK_("postcondition", cond, __VA_ARGS__)

/** Invariant: what must hold at every observable point in between. */
#define MS_INVARIANT(cond, ...) MS_CONTRACT_CHECK_("invariant", cond, __VA_ARGS__)

#endif // MEMSENSE_UTIL_CONTRACT_HH
