/**
 * @file
 * Strongly-named unit helpers used throughout memsense.
 *
 * Simulated time is kept in integer picoseconds (Picos) so that mixed
 * core/DDR clock domains never accumulate floating point drift. Rates
 * (frequency, bandwidth) are doubles since they only appear in model
 * arithmetic, not in event ordering.
 */

#ifndef MEMSENSE_UTIL_UNITS_HH
#define MEMSENSE_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace memsense
{

/** Simulated time in picoseconds. */
using Picos = std::uint64_t;

/** A count of core clock cycles. */
using Cycles = std::uint64_t;

/** Picoseconds per nanosecond. */
constexpr Picos kPicosPerNano = 1000;

/** Convert nanoseconds (may be fractional) to picoseconds, rounding. */
Picos nsToPicos(double ns);

/** Convert picoseconds to (fractional) nanoseconds. */
double picosToNs(Picos ps);

/** Bytes in one gigabyte (decimal, as used for bandwidth). */
constexpr double kBytesPerGB = 1e9;

/**
 * Convert a duration in nanoseconds to core cycles at @p ghz. The
 * explicit helper is the sanctioned way to cross the ns/cycles unit
 * boundary; memsense-lint's unit-mismatch rule flags implicit mixes.
 */
double nsToCycles(double ns, double ghz);

/** Convert core cycles at @p ghz to nanoseconds. */
double cyclesToNs(double cycles, double ghz);

/**
 * A core or memory clock.
 *
 * Wraps a frequency in GHz and provides exact cycle<->picosecond
 * conversion with a precomputed integer period.
 */
class Clock
{
  public:
    /** Construct a clock running at @p ghz gigahertz. */
    explicit Clock(double ghz);

    /** Frequency in GHz. */
    double ghz() const { return _ghz; }

    /** Frequency in cycles per second. */
    double hz() const { return _ghz * 1e9; }

    /** Clock period in picoseconds (rounded to nearest integer ps). */
    Picos periodPs() const { return _periodPs; }

    /** Convert a cycle count to picoseconds. */
    Picos toPicos(Cycles cycles) const { return cycles * _periodPs; }

    /** Convert picoseconds to whole elapsed cycles (floor). */
    Cycles toCycles(Picos ps) const { return ps / _periodPs; }

    /** Convert picoseconds to fractional cycles. */
    double toCyclesExact(Picos ps) const
    {
        return static_cast<double>(ps) / static_cast<double>(_periodPs);
    }

  private:
    double _ghz;
    Picos _periodPs;
};

/** Format a byte count as a human-readable string ("1.5 GB"). */
std::string formatBytes(double bytes);

/** Format a bandwidth in bytes/second as "NN.N GB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Format picoseconds as "NN.N ns". */
std::string formatNs(Picos ps);

} // namespace memsense

#endif // MEMSENSE_UTIL_UNITS_HH
