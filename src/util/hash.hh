/**
 * @file
 * FNV-1a hashing and fixed-width hex codecs.
 *
 * One home for the fingerprint machinery the repo keeps reinventing:
 * the checkpoint journal checksums its records with FNV-1a and stores
 * doubles as IEEE-754 bit patterns, and the serving layer keys its
 * solver cache on an FNV-1a fingerprint of the canonical request
 * encoding. Both need the same three ingredients — a streaming 64-bit
 * FNV-1a hasher, a 16-digit lowercase hex encoder, and its strict
 * decoder — so they live here, dependency-free.
 *
 * FNV-1a is not cryptographic; collisions are possible and every
 * consumer must tolerate them (the checkpoint journal re-runs a job on
 * checksum mismatch, the solve cache verifies the canonical key text
 * before trusting a hit).
 */

#ifndef MEMSENSE_UTIL_HASH_HH
#define MEMSENSE_UTIL_HASH_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace memsense
{

/** 64-bit FNV-1a of a byte string. */
std::uint64_t fnv1a64(std::string_view bytes);

/**
 * Streaming 64-bit FNV-1a hasher for composite keys.
 *
 * Field order matters (the hash is a fold over the byte stream), so
 * canonical encodings must feed fields in a fixed documented order.
 * add(double) hashes the value's IEEE-754 bit pattern, making the
 * fingerprint bit-exact: two doubles fingerprint equal iff they are
 * the same bits (note -0.0 and 0.0 therefore differ).
 */
class Fnv1a
{
  public:
    Fnv1a &add(std::string_view bytes);
    Fnv1a &add(double value);
    Fnv1a &add(std::uint64_t value);
    Fnv1a &add(int value);
    Fnv1a &add(bool value);

    /** The digest of everything added so far. */
    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ULL; ///< FNV offset basis
};

/** @p v as 16 lowercase hex digits. */
std::string hex64(std::uint64_t v);

/** Append hex64(@p v) to @p out without a temporary (hot paths). */
void appendHex64(std::string &out, std::uint64_t v);

/** Strict inverse of hex64(): exactly 16 lowercase hex digits. */
std::optional<std::uint64_t> parseHex64(std::string_view word);

} // namespace memsense

#endif // MEMSENSE_UTIL_HASH_HH
