#include "util/thread_pool.hh"

#include <string>

#include "util/error.hh"
#include "util/trace.hh"

namespace memsense
{

ThreadPool::ThreadPool(int workers)
{
    if (workers <= 0)
        workers = hardwareWorkers();
    threads.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        threads.emplace_back([this, i]() {
            // Worker slot i owns trace track i + 1 (track 0 is the
            // main thread); sequential pools reuse the same tracks.
            if (trace::active())
                trace::setCurrentThreadTrack(
                    i + 1, "worker-" + std::to_string(i));
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

std::size_t
ThreadPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return queue.size();
}

int
ThreadPool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        requireInvariant(!stopping,
                         "ThreadPool: submit after shutdown began");
        queue.push_back(std::move(task));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this]() { return stopping || !queue.empty(); });
            // Drain the queue even when stopping, so accepted futures
            // always complete.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        task(); // exceptions land in the task's promise, not here
    }
}

} // namespace memsense
