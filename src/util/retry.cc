#include "util/retry.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hh"

namespace memsense
{

namespace
{

/** SplitMix64 finalizer: decorrelates (seed, stream, attempt) tuples. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // anonymous namespace

ErrorClass
classifyException(const std::exception_ptr &ep)
{
    requireInvariant(ep != nullptr,
                     "classifyException needs a captured exception");
    try {
        std::rethrow_exception(ep);
    } catch (const TransientError &) {
        return ErrorClass::Retryable;
    } catch (...) {
        return ErrorClass::Fatal;
    }
}

ExceptionInfo
describeException(const std::exception_ptr &ep)
{
    requireInvariant(ep != nullptr,
                     "describeException needs a captured exception");
    try {
        std::rethrow_exception(ep);
    } catch (const TransientError &e) {
        return {e.kind(), e.what()};
    } catch (const ConfigError &e) {
        return {"ConfigError", e.what()};
    } catch (const LogicError &e) {
        // ContractViolation derives from LogicError; the what() text
        // already carries the contract kind and call site.
        return {"LogicError", e.what()};
    } catch (const std::exception &e) {
        return {"std::exception", e.what()};
    } catch (...) {
        return {"unknown", ""};
    }
}

void
RetryPolicy::validate() const
{
    requireConfig(maxAttempts >= 1, "retry needs at least one attempt");
    requireConfig(baseDelayMs >= 0.0, "base delay must be >= 0");
    requireConfig(multiplier >= 1.0, "backoff multiplier must be >= 1");
    requireConfig(maxDelayMs >= 0.0, "max delay must be >= 0");
    requireConfig(jitterFrac >= 0.0 && jitterFrac <= 1.0,
                  "jitter fraction must be in [0, 1]");
}

double
RetryPolicy::delayMs(int attempt, std::uint64_t stream) const
{
    requireConfig(attempt >= 2, "the first attempt never waits");
    double delay_ms = baseDelayMs;
    for (int k = 2; k < attempt; ++k) {
        delay_ms *= multiplier;
        if (delay_ms >= maxDelayMs)
            break;
    }
    delay_ms = std::min(delay_ms, maxDelayMs);
    if (jitterFrac > 0.0) {
        Rng rng(mix64(seed ^ mix64(stream)) ^
                static_cast<std::uint64_t>(attempt));
        delay_ms *= 1.0 + jitterFrac * (2.0 * rng.nextDouble() - 1.0);
    }
    return delay_ms;
}

void
sleepForMs(double delay_ms)
{
    if (delay_ms <= 0.0)
        return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
}

} // namespace memsense
