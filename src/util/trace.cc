/**
 * @file
 * Implementation of the span/counter/value observability core.
 *
 * Every instrumented thread owns a ThreadState (thread_local) holding
 * its buffered trace events and metric accumulators. States register
 * with a process-global, deliberately leaked Registry; when a thread
 * exits, its state retires (merges) into the registry's accumulators
 * under the registry mutex, so snapshots taken at any later point see
 * the thread's full contribution. Snapshot functions walk live states
 * too, which keeps the main thread visible before process teardown.
 */

#include "trace.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "error.hh"

namespace memsense::trace
{

void
SpanStat::merge(const SpanStat &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    count += other.count;
    totalNs += other.totalNs;
    minNs = std::min(minNs, other.minNs);
    maxNs = std::max(maxNs, other.maxNs);
}

void
ValueStat::merge(const ValueStat &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    count += other.count;
    nonBucketed += other.nonBucketed;
    if (other.finite > 0) {
        if (finite == 0) {
            min = other.min;
            max = other.max;
        } else {
            min = std::min(min, other.min);
            max = std::max(max, other.max);
        }
        sum += other.sum;
        finite += other.finite;
    }
    for (int i = 0; i < kValueBuckets; ++i)
        buckets[i] += other.buckets[i];
}

int
valueBucketIndex(double v)
{
    if (!std::isfinite(v) || v <= 0.0)
        return -1;
    int log2 = static_cast<int>(std::floor(std::log2(v)));
    if (log2 < kValueBucketMinLog2)
        log2 = kValueBucketMinLog2;
    int idx = log2 - kValueBucketMinLog2;
    if (idx >= kValueBuckets)
        idx = kValueBuckets - 1;
    return idx;
}

namespace detail
{

// memsense-lint: allow(mutable-global-state): process-global
// observability switches; written by start/stop/setStatsEnabled, read
// via relaxed loads on the instrumented hot paths.
std::atomic<unsigned> gArmed{0};

namespace
{

/** One buffered Chrome trace event (a completed span). */
struct Event
{
    std::string name;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    int track = 0;
};

struct ThreadState;

/** Process-global accumulator shared by all threads. */
struct Registry
{
    std::mutex mu;
    // memsense-lint: guarded_by(mu)
    std::vector<ThreadState *> live;
    // Contributions of threads that already exited.
    // memsense-lint: guarded_by(mu)
    std::map<std::string, std::uint64_t> retiredCounters;
    // memsense-lint: guarded_by(mu)
    std::map<std::string, SpanStat> retiredSpans;
    // memsense-lint: guarded_by(mu)
    std::map<std::string, ValueStat> retiredValues;
    // memsense-lint: guarded_by(mu)
    std::vector<Event> retiredEvents;
    // memsense-lint: guarded_by(mu)
    std::map<int, std::string> tracks;
    std::string tracePath;
    std::uint64_t epochNs = 0;
    int nextAnonTrack = 1000;
};

Registry &
registry()
{
    // memsense-lint: allow(mutable-global-state): the observability
    // registry is intentionally process-global and mutex-guarded;
    // leaked so thread_local destructors may retire into it at any
    // point of process teardown.
    static Registry *r = new Registry;
    return *r;
}

/** Per-thread buffers; registered with the registry on first touch.
 *
 * Cache-line aligned: instances are reached through Registry::live
 * during cross-thread aggregation, and alignment guarantees one
 * thread's hot counters never share a line with a neighbour's state
 * regardless of where the TLS allocator places them.
 */
struct alignas(64) ThreadState
{
    int track = -1;
    unsigned depth = 0;
    std::vector<Event> events;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, SpanStat> spans;
    std::map<std::string, ValueStat> values;

    ThreadState()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.live.push_back(this);
    }

    ~ThreadState()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        retireLocked(r);
        for (auto it = r.live.begin(); it != r.live.end(); ++it) {
            if (*it == this) {
                r.live.erase(it);
                break;
            }
        }
    }

    /** Move this thread's contribution into the registry (mu held). */
    void retireLocked(Registry &r)
    {
        for (const auto &kv : counters)
            // memsense-lint: allow(unguarded-shared-state): every
            // caller holds r.mu — see the "mu held" contract above
            r.retiredCounters[kv.first] += kv.second;
        for (const auto &kv : spans)
            // memsense-lint: allow(unguarded-shared-state): r.mu held
            r.retiredSpans[kv.first].merge(kv.second);
        for (const auto &kv : values)
            // memsense-lint: allow(unguarded-shared-state): r.mu held
            r.retiredValues[kv.first].merge(kv.second);
        // memsense-lint: allow(unguarded-shared-state): r.mu held
        r.retiredEvents.insert(r.retiredEvents.end(), events.begin(),
                               events.end());
        counters.clear();
        spans.clear();
        values.clear();
        events.clear();
    }

    int ensureTrack(Registry &r)
    {
        if (track < 0) {
            std::lock_guard<std::mutex> lock(r.mu);
            track = r.nextAnonTrack++;
            r.tracks.emplace(track, "thread-" + std::to_string(track));
        }
        return track;
    }
};

ThreadState &
threadState()
{
    // memsense-lint: allow(mutable-global-state): thread-local metric
    // buffer, the point of the design; merged under the registry mutex.
    thread_local ThreadState state;
    return state;
}

void
observeSpan(ThreadState &ts, const std::string &name, std::uint64_t dur_ns)
{
    SpanStat &s = ts.spans[name];
    if (s.count == 0) {
        s.minNs = dur_ns;
        s.maxNs = dur_ns;
    } else {
        s.minNs = std::min(s.minNs, dur_ns);
        s.maxNs = std::max(s.maxNs, dur_ns);
    }
    ++s.count;
    s.totalNs += dur_ns;
}

void
observeValue(ThreadState &ts, const std::string &name, double v)
{
    ValueStat &s = ts.values[name];
    int idx = valueBucketIndex(v);
    if (std::isfinite(v)) {
        if (s.finite == 0) {
            s.min = v;
            s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
        s.sum += v;
        ++s.finite;
    }
    ++s.count;
    if (idx >= 0)
        s.buckets[idx] += 1;
    else
        ++s.nonBucketed;
}

/** Minimal JSON string escaping for span/thread names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Write the Chrome trace_event document (registry mutex held). */
void
writeTraceLocked(Registry &r)
{
    std::string tmp = r.tracePath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw ConfigError("cannot open trace file for writing: " +
                              tmp);
        out << "{\"traceEvents\":[\n";
        bool first = true;
        // getpid() would be nondeterministic noise in the artifact; the
        // document describes exactly one process, so pid is fixed at 1.
        for (const auto &kv : r.tracks) {
            if (!first)
                out << ",\n";
            first = false;
            out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << kv.first
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                << jsonEscape(kv.second) << "\"}}";
        }
        auto emit = [&out, &first, &r](const Event &e) {
            if (!first)
                out << ",\n";
            first = false;
            std::uint64_t rel =
                e.startNs >= r.epochNs ? e.startNs - r.epochNs : 0;
            char ts[64];
            std::snprintf(ts, sizeof ts, "%.3f",
                          static_cast<double>(rel) / 1000.0);
            char dur[64];
            std::snprintf(dur, sizeof dur, "%.3f",
                          static_cast<double>(e.durNs) / 1000.0);
            out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.track
                << ",\"ts\":" << ts << ",\"dur\":" << dur
                << ",\"name\":\"" << jsonEscape(e.name) << "\"}";
        };
        for (const Event &e : r.retiredEvents)
            emit(e);
        for (ThreadState *ts : r.live)
            for (const Event &e : ts->events)
                emit(e);
        out << "\n]}\n";
        if (!out.flush())
            throw ConfigError("failed writing trace file: " + tmp);
    }
    if (std::rename(tmp.c_str(), r.tracePath.c_str()) != 0)
        throw ConfigError("failed to move trace file into place: " +
                          r.tracePath);
}

} // anonymous namespace

std::uint64_t
nowNs()
{
    // Span timestamps are observability metadata, never experiment
    // input; results do not depend on them.
    // memsense-lint: allow(no-nondeterminism): wall-clock span timing
    using clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

void
spanBegin()
{
    ++threadState().depth;
}

void
spanEnd(const char *site_literal, const std::string *site_owned,
        std::uint64_t start_ns)
{
    ThreadState &ts = threadState();
    if (ts.depth > 0)
        --ts.depth;
    std::uint64_t end_ns = nowNs();
    std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
    std::string name = site_literal ? std::string(site_literal)
                                    : *site_owned;
    if (statsEnabled())
        observeSpan(ts, name, dur);
    if (tracingEnabled()) {
        Event e;
        e.name = std::move(name);
        e.startNs = start_ns;
        e.durNs = dur;
        e.track = ts.ensureTrack(registry());
        ts.events.push_back(std::move(e));
    }
}

void
counterHit(const char *name, std::uint64_t delta)
{
    threadState().counters[name] += delta;
}

void
observeHit(const char *name, double value)
{
    observeValue(threadState(), name, value);
}

} // namespace detail

void
startTracing(const std::string &path)
{
    requireConfig(!path.empty(), "trace path must not be empty");
    requireConfig(!tracingEnabled(), "tracing already started");
    detail::Registry &r = detail::registry();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        r.tracePath = path;
        r.epochNs = detail::nowNs();
    }
    setCurrentThreadTrack(0, "main");
    detail::gArmed.fetch_or(detail::kTracingBit,
                            std::memory_order_relaxed);
}

std::string
stopTracing()
{
    if (!tracingEnabled())
        return "";
    detail::gArmed.fetch_and(~detail::kTracingBit,
                             std::memory_order_relaxed);
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    detail::writeTraceLocked(r);
    r.retiredEvents.clear();
    for (detail::ThreadState *ts : r.live)
        ts->events.clear();
    std::string path = r.tracePath;
    r.tracePath.clear();
    return path;
}

void
setStatsEnabled(bool on)
{
    if (on)
        detail::gArmed.fetch_or(detail::kStatsBit,
                                std::memory_order_relaxed);
    else
        detail::gArmed.fetch_and(~detail::kStatsBit,
                                 std::memory_order_relaxed);
}

void
setCurrentThreadTrack(int track, const std::string &name)
{
    detail::Registry &r = detail::registry();
    detail::ThreadState &ts = detail::threadState();
    std::lock_guard<std::mutex> lock(r.mu);
    ts.track = track;
    r.tracks[track] = name;
}

std::map<std::string, std::uint64_t>
counterTotals()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, std::uint64_t> out = r.retiredCounters;
    for (detail::ThreadState *ts : r.live)
        for (const auto &kv : ts->counters)
            out[kv.first] += kv.second;
    return out;
}

std::map<std::string, SpanStat>
spanStats()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, SpanStat> out = r.retiredSpans;
    for (detail::ThreadState *ts : r.live)
        for (const auto &kv : ts->spans)
            out[kv.first].merge(kv.second);
    return out;
}

std::map<std::string, ValueStat>
valueStats()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, ValueStat> out = r.retiredValues;
    for (detail::ThreadState *ts : r.live)
        for (const auto &kv : ts->values)
            out[kv.first].merge(kv.second);
    return out;
}

std::map<int, std::string>
threadTracks()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.tracks;
}

void
resetForTest()
{
    detail::gArmed.store(0, std::memory_order_relaxed);
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retiredCounters.clear();
    r.retiredSpans.clear();
    r.retiredValues.clear();
    r.retiredEvents.clear();
    r.tracks.clear();
    r.tracePath.clear();
    r.epochNs = 0;
    r.nextAnonTrack = 1000;
    for (detail::ThreadState *ts : r.live) {
        ts->counters.clear();
        ts->spans.clear();
        ts->values.clear();
        ts->events.clear();
        ts->track = -1;
        ts->depth = 0;
    }
}

} // namespace memsense::trace
