#include "util/hash.hh"

#include <bit>

namespace memsense
{

namespace
{
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
} // anonymous namespace

std::uint64_t
fnv1a64(std::string_view bytes)
{
    Fnv1a h;
    h.add(bytes);
    return h.value();
}

Fnv1a &
Fnv1a::add(std::string_view bytes)
{
    for (char c : bytes) {
        state ^= static_cast<unsigned char>(c);
        state *= kFnvPrime;
    }
    return *this;
}

Fnv1a &
Fnv1a::add(double value)
{
    return add(std::bit_cast<std::uint64_t>(value));
}

Fnv1a &
Fnv1a::add(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        state ^= (value >> (8 * i)) & 0xffULL;
        state *= kFnvPrime;
    }
    return *this;
}

Fnv1a &
Fnv1a::add(int value)
{
    // memsense-lint: allow(unclamped-double-to-int): integer source;
    // the lint's file-wide ident table types 'value' from add(double)
    return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
}

Fnv1a &
Fnv1a::add(bool value)
{
    state ^= value ? 1u : 0u;
    state *= kFnvPrime;
    return *this;
}

void
appendHex64(std::string &out, std::uint64_t v)
{
    // Hand-rolled nibble loop: this sits on the solve-cache hit path
    // (13 encodes per canonical request key), where snprintf("%016llx")
    // is an order of magnitude slower.
    static const char digits[] = "0123456789abcdef";
    char buf[16];
    for (int i = 15; i >= 0; --i) {
        buf[i] = digits[v & 0xfULL];
        v >>= 4;
    }
    out.append(buf, sizeof(buf));
}

std::string
hex64(std::uint64_t v)
{
    std::string out;
    out.reserve(16);
    appendHex64(out, v);
    return out;
}

std::optional<std::uint64_t>
parseHex64(std::string_view word)
{
    if (word.size() != 16)
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : word) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return v;
}

} // namespace memsense
