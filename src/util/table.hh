/**
 * @file
 * Console table writer used by the bench harnesses to print paper-style
 * tables (aligned columns, optional title and footnote).
 */

#ifndef MEMSENSE_UTIL_TABLE_HH
#define MEMSENSE_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace memsense
{

/**
 * An aligned, plain-text table.
 *
 * Usage:
 * @code
 *   Table t({"Workload", "CPI_cache", "BF"});
 *   t.addRow({"Spark", "0.90", "0.25"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title) { _title = std::move(title); }

    /** Optional footnote printed below the table. */
    void setFootnote(std::string note) { _footnote = std::move(note); }

    /**
     * Append a row; must have exactly as many cells as there are
     * headers.
     */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows.size(); }

    /** Cell accessor (row-major), for tests. */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Render to @p os with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string (same format as print()). */
    std::string toString() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    std::string _title;
    std::string _footnote;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_TABLE_HH
