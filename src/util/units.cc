#include "util/units.hh"

#include <cmath>
#include <cstdio>

#include "util/error.hh"

namespace memsense
{

Picos
nsToPicos(double ns)
{
    requireConfig(ns >= 0.0, "time must be non-negative");
    return static_cast<Picos>(std::llround(ns * kPicosPerNano));
}

double
picosToNs(Picos ps)
{
    return static_cast<double>(ps) / kPicosPerNano;
}

double
nsToCycles(double ns, double ghz)
{
    requireConfig(ghz > 0.0, "frequency must be positive");
    return ns * ghz;
}

double
cyclesToNs(double cycles, double ghz)
{
    requireConfig(ghz > 0.0, "frequency must be positive");
    return cycles / ghz;
}

Clock::Clock(double ghz)
    : _ghz(ghz)
{
    requireConfig(ghz > 0.0 && ghz <= 100.0,
                  "clock frequency must be in (0, 100] GHz");
    _periodPs = static_cast<Picos>(std::llround(1000.0 / ghz));
    requireConfig(_periodPs > 0, "clock period rounds to zero picoseconds");
}

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KB", "MB", "GB", "TB"};
    int idx = 0;
    while (bytes >= 1000.0 && idx < 4) {
        bytes /= 1000.0;
        ++idx;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffixes[idx]);
    return buf;
}

std::string
formatBandwidth(double bytes_per_sec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_sec / kBytesPerGB);
    return buf;
}

std::string
formatNs(Picos ps)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f ns", picosToNs(ps));
    return buf;
}

} // namespace memsense
