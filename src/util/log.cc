#include "util/log.hh"

#include <cstdio>

namespace memsense
{

namespace
{
LogLevel globalLevel = LogLevel::Info;
} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debug(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace memsense
