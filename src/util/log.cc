#include "util/log.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace memsense
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Info};

/** Serializes whole lines so concurrent workers never interleave. */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread line label set by LogScope ("[workload] " when set). */
thread_local std::string threadLabel;

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (threadLabel.empty()) {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    } else {
        std::fprintf(stderr, "%s: [%s] %s\n", tag, threadLabel.c_str(),
                     msg.c_str());
    }
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emit("info", msg);
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emit("warn", msg);
}

void
debug(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emit("debug", msg);
}

LogScope::LogScope(std::string label)
    : previous(std::exchange(threadLabel, std::move(label)))
{}

LogScope::~LogScope()
{
    threadLabel = std::exchange(previous, std::string());
}

} // namespace memsense
