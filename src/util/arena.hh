/**
 * @file
 * Bump (arena) allocator for hot-path data structures.
 *
 * The simulator and serve layers allocate long-lived, fixed-size
 * arrays (cache tag arrays, write-buffer rings, per-request key
 * scratch) whose lifetimes all end together — with the owning Machine
 * or at the end of a batch. A bump allocator turns each of those
 * allocations into a pointer increment, packs them contiguously (so
 * arrays that are touched together share pages), and frees them all
 * at once, eliminating per-object heap churn and allocator metadata
 * between hot arrays.
 *
 * Design:
 *  - Memory is carved from geometrically chained blocks; allocation
 *    is an aligned bump of the current block's cursor.
 *  - Requests larger than half the block size get a dedicated
 *    "large" block so they cannot strand most of a normal block.
 *  - reset() retains normal blocks for reuse (capacity is kept warm
 *    across batches) but releases large blocks, and re-poisons the
 *    retained payload under AddressSanitizer so any use-after-reset
 *    faults immediately instead of silently reading stale data.
 *  - Individual deallocation is a no-op by design: ArenaAllocator
 *    makes that explicit for standard containers. Containers backed
 *    by an arena must therefore size themselves once (reserve) —
 *    growth would strand the old buffer until reset. The
 *    no-hot-loop-alloc lint rule and the sizing discipline in
 *    src/sim keep this from happening on hot paths.
 *
 * The arena is deliberately not thread-safe: each Machine (one sweep
 * point, one worker thread) owns its own arena, which is also what
 * keeps its blocks NUMA-local to the worker that faults them in.
 */

#ifndef MEMSENSE_UTIL_ARENA_HH
#define MEMSENSE_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define MEMSENSE_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MEMSENSE_ARENA_ASAN 1
#endif
#endif
#ifndef MEMSENSE_ARENA_ASAN
#define MEMSENSE_ARENA_ASAN 0
#endif

#if MEMSENSE_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace memsense::util
{

/** A growable bump allocator; see the file comment for the design. */
class Arena
{
  public:
    /** Default size of a normal block (64 KiB). */
    static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 16;

    explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
        : blockBytes(block_bytes ? block_bytes : kDefaultBlockBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (a power of two).
     * Zero-byte requests return a unique, valid, unusable pointer.
     */
    void *allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t))
    {
        if (bytes == 0)
            bytes = 1;
        if (align == 0)
            align = 1;
        if (bytes > blockBytes / 2 || align > blockBytes / 4)
            return allocateLarge(bytes, align);
        if (cur < blocks.size()) {
            if (void *p = tryBump(blocks[cur], bytes, align))
                return p;
            // The current block is exhausted; later blocks (from a
            // previous reset) may still have room.
            while (cur + 1 < blocks.size()) {
                ++cur;
                if (void *p = tryBump(blocks[cur], bytes, align))
                    return p;
            }
        }
        blocks.push_back(Block::make(blockBytes));
        cur = blocks.size() - 1;
        return tryBump(blocks[cur], bytes, align);
    }

    /** Typed array allocation (uninitialized storage for @p n Ts). */
    template <typename T> T *allocateArray(std::size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Discard every allocation at once. Normal blocks are retained
     * (and poisoned under ASan) for reuse; large blocks are released.
     */
    void reset()
    {
        for (Block &b : blocks) {
            b.used = 0;
            poison(b.data.get(), b.capacity);
        }
        large.clear();
        cur = 0;
        liveBytes = 0;
    }

    /** Bytes handed out since construction or the last reset(). */
    std::size_t bytesAllocated() const { return liveBytes; }

    /** Total capacity currently held (normal + large blocks). */
    std::size_t bytesReserved() const
    {
        std::size_t n = 0;
        for (const Block &b : blocks)
            n += b.capacity;
        for (const Block &b : large)
            n += b.capacity;
        return n;
    }

    /** Number of normal blocks held. */
    std::size_t blockCount() const { return blocks.size(); }

    /** Number of live oversized (dedicated-block) allocations. */
    std::size_t largeAllocCount() const { return large.size(); }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;

        static Block make(std::size_t capacity)
        {
            Block b;
            b.data = std::make_unique<unsigned char[]>(capacity);
            b.capacity = capacity;
            Arena::poison(b.data.get(), capacity);
            return b;
        }
    };

    static void poison(const void *p, std::size_t n)
    {
#if MEMSENSE_ARENA_ASAN
        __asan_poison_memory_region(p, n);
#else
        (void)p;
        (void)n;
#endif
    }

    static void unpoison(const void *p, std::size_t n)
    {
#if MEMSENSE_ARENA_ASAN
        __asan_unpoison_memory_region(p, n);
#else
        (void)p;
        (void)n;
#endif
    }

    void *tryBump(Block &b, std::size_t bytes, std::size_t align)
    {
        const auto addr = reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::size_t aligned =
            (static_cast<std::size_t>(addr) + b.used + (align - 1)) &
            ~(align - 1);
        const std::size_t offset = aligned - static_cast<std::size_t>(addr);
        if (offset + bytes > b.capacity)
            return nullptr;
        b.used = offset + bytes;
        liveBytes += bytes;
        void *p = b.data.get() + offset;
        unpoison(p, bytes);
        return p;
    }

    void *allocateLarge(std::size_t bytes, std::size_t align)
    {
        // Over-allocate so any alignment can be honored inside the
        // block; new[] only guarantees max_align_t.
        const std::size_t pad = align > alignof(std::max_align_t)
                                    ? align - 1
                                    : 0;
        large.push_back(Block::make(bytes + pad));
        Block &b = large.back();
        const auto addr = reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::size_t aligned =
            (static_cast<std::size_t>(addr) + (align - 1)) & ~(align - 1);
        b.used = b.capacity;
        liveBytes += bytes;
        void *p = b.data.get() + (aligned - static_cast<std::size_t>(addr));
        unpoison(p, bytes);
        return p;
    }

    std::size_t blockBytes;
    std::vector<Block> blocks;  ///< normal blocks, reused across reset()
    std::vector<Block> large;   ///< dedicated blocks, freed on reset()
    std::size_t cur = 0;        ///< index of the block being bumped
    std::size_t liveBytes = 0;
};

/**
 * std::allocator-compatible adapter over Arena.
 *
 * Default-constructed (arena == nullptr) it degrades to plain heap
 * allocation, so containers stay usable in tests and cold paths
 * without an arena. deallocate() is a no-op for arena-backed storage;
 * containers using it must size once up front (see Arena's comment).
 */
template <typename T> class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(Arena *arena_in) noexcept : _arena(arena_in) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : _arena(other.arena())
    {
    }

    T *allocate(std::size_t n)
    {
        if (_arena)
            return _arena->allocateArray<T>(n);
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    }

    void deallocate(T *p, std::size_t n) noexcept
    {
        if (_arena)
            return; // reclaimed wholesale by Arena::reset()/dtor
        (void)n;
        ::operator delete(p, std::align_val_t(alignof(T)));
    }

    Arena *arena() const noexcept { return _arena; }

    friend bool operator==(const ArenaAllocator &a,
                           const ArenaAllocator &b) noexcept
    {
        return a._arena == b._arena;
    }

  private:
    Arena *_arena = nullptr;
};

/** Shorthand for an arena-backed (or heap-fallback) vector. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/**
 * A cache-line-aligned raw byte buffer, arena-backed when an arena is
 * supplied and heap-backed otherwise. Used for blocked (AoSoA) layouts
 * where one buffer interleaves several element types at computed
 * offsets, which std::vector cannot express.
 */
class AlignedSlab
{
  public:
    static constexpr std::size_t kAlign = 64;

    AlignedSlab() = default;
    AlignedSlab(const AlignedSlab &) = delete;
    AlignedSlab &operator=(const AlignedSlab &) = delete;

    ~AlignedSlab()
    {
        if (heapMem)
            ::operator delete(heapMem, std::align_val_t(kAlign));
    }

    /**
     * Allocate @p bytes; callable exactly once. Pass @p zero = false
     * when the caller initializes every live field itself (e.g. the
     * cache constructor writes all tags and rrpvs): zeroing a
     * multi-megabyte LLC slab that is about to be overwritten is a
     * second full sweep of the buffer for nothing.
     */
    void init(std::size_t bytes, Arena *arena, bool zero = true)
    {
        if (bytes == 0)
            bytes = 1;
        if (arena) {
            mem = static_cast<unsigned char *>(
                arena->allocate(bytes, kAlign));
        } else {
            heapMem = ::operator new(bytes, std::align_val_t(kAlign));
            mem = static_cast<unsigned char *>(heapMem);
        }
        if (zero) {
            for (std::size_t i = 0; i < bytes; ++i)
                mem[i] = 0;
        }
    }

    unsigned char *data() { return mem; }
    const unsigned char *data() const { return mem; }

  private:
    unsigned char *mem = nullptr;
    void *heapMem = nullptr; ///< set only for the heap fallback
};

} // namespace memsense::util

#endif // MEMSENSE_UTIL_ARENA_HH
