/**
 * @file
 * Error handling primitives for memsense.
 *
 * Follows the gem5 fatal()/panic() distinction: a ConfigError is the
 * user's fault (bad configuration or arguments) and is recoverable by
 * fixing the input; a LogicError indicates a bug inside the library and
 * should never be observed by a correct program.
 */

#ifndef MEMSENSE_UTIL_ERROR_HH
#define MEMSENSE_UTIL_ERROR_HH

#include <source_location>
#include <stdexcept>
#include <string>

namespace memsense
{

/** Raised when a user-supplied configuration or argument is invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::runtime_error("memsense config error: " + what_arg)
    {}
};

/** Raised when an internal invariant is violated (a library bug). */
class LogicError : public std::logic_error
{
  public:
    explicit LogicError(const std::string &what_arg)
        : std::logic_error("memsense internal error: " + what_arg)
    {}
};

/**
 * Raised for conditions that are expected to clear on a repeat attempt
 * with the same inputs refreshed: an iterative calculation that ran out
 * of budget, a filesystem hiccup, an injected fault. This is the
 * *retryable* class of the failure taxonomy (docs/robustness.md): the
 * retry layer in util/retry.hh re-runs TransientErrors under its
 * backoff policy and treats everything else — ConfigError (the input
 * is wrong; retrying cannot fix it) and LogicError/ContractViolation
 * (the library is wrong) — as fatal.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &what_arg)
        : std::runtime_error("memsense transient error: " + what_arg)
    {}

    /** Stable subclass tag for failure manifests ("TransientError",
     *  "SolverConvergenceError", "FaultInjected", ...). */
    virtual const char *kind() const { return "TransientError"; }
};

/**
 * Throw a ConfigError unless @p cond holds.
 *
 * @param cond condition that must be true for the configuration to be valid
 * @param msg  human-readable description of the requirement
 */
inline void
requireConfig(bool cond, const std::string &msg)
{
    if (!cond)
        throw ConfigError(msg);
}

/**
 * Throw a LogicError unless the invariant @p cond holds.
 *
 * @param cond invariant that must hold
 * @param msg  description of the violated invariant
 * @param loc  call site, captured automatically
 */
inline void
requireInvariant(bool cond, const std::string &msg,
                 std::source_location loc = std::source_location::current())
{
    if (!cond) {
        throw LogicError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + msg);
    }
}

} // namespace memsense

#endif // MEMSENSE_UTIL_ERROR_HH
