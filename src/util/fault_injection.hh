/**
 * @file
 * Deterministic, site-tagged fault injection.
 *
 * Code paths that a fault-tolerant sweep must survive declare named
 * fault points:
 *
 *     MS_FAULT_POINT("solver.solve");
 *
 * In a normal run a fault point is a single relaxed atomic load. When
 * a fault specification is active — from MEMSENSE_FAULTS in the
 * environment or fault::configure() in tests — registered sites
 * deterministically throw or delay according to the spec, so the
 * resilience tests can prove that every injected fault is either
 * retried to success or quarantined, never a mid-sweep abort.
 *
 * Spec syntax (semicolon-separated entries):
 *
 *     seed=42;runner.observe:throw:p=0.5;solver.solve:delay=25:nth=3
 *
 * Each site entry is `site:kind[:opt...]` with
 *   kind   `throw` (FaultInjected, retryable), `fatal`
 *          (FaultInjectedFatal, non-retryable), or `delay=<ms>`
 *          (invokes the sleep handler; wall-clock deadline tests)
 *   opts   `p=<0..1>`  fire with seeded per-site probability
 *          `nth=<k>`   fire on every k-th eligible hit
 *          `after=<n>` ignore the first n hits
 *          `count=<n>` fire at most n times
 *
 * Determinism: firing decisions are a pure function of the spec seed,
 * the site name, and the site's hit ordinal. With `--jobs 1` the hit
 * ordinal sequence is the program's deterministic execution order, so
 * a spec reproduces exactly; with parallel sweeps the *set* of decisions
 * per ordinal is fixed even though jobs interleave.
 *
 * Compiling with -DMEMSENSE_NO_FAULT_INJECTION turns every
 * MS_FAULT_POINT into nothing (zero code, zero cost) for production
 * builds; the CMake option MEMSENSE_FAULT_INJECTION=OFF sets it
 * tree-wide.
 */

#ifndef MEMSENSE_UTIL_FAULT_INJECTION_HH
#define MEMSENSE_UTIL_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "util/error.hh"

namespace memsense::fault
{

/** Thrown by a `throw`-kind fault point; retryable by design. */
class FaultInjected : public TransientError
{
  public:
    explicit FaultInjected(const std::string &site)
        : TransientError("injected fault at " + site)
    {}

    const char *kind() const override { return "FaultInjected"; }
};

/** Thrown by a `fatal`-kind fault point; never retried. */
class FaultInjectedFatal : public LogicError
{
  public:
    explicit FaultInjectedFatal(const std::string &site)
        : LogicError("injected fatal fault at " + site)
    {}
};

/**
 * Install a fault specification (see file header for the grammar).
 * An empty spec deactivates injection. Throws ConfigError on a
 * malformed spec, leaving the previous configuration untouched.
 */
void configure(const std::string &spec);

/** configure() from the MEMSENSE_FAULTS environment variable. */
void configureFromEnv();

/** Deactivate injection and clear all counters and specs. */
void reset();

/**
 * Replace the delay-fault sleep handler (tests install a virtual-clock
 * recorder). Passing nullptr restores the default blocking sleep.
 */
void setSleepHandler(std::function<void(double)> handler);

/** Times @p site was hit since the last configure()/reset(). */
std::uint64_t hitCount(const std::string &site);

/** Times @p site actually fired its fault. */
std::uint64_t fireCount(const std::string &site);

namespace detail
{

// memsense-lint: allow(mutable-global-state): process-global injection
// switch; written only by configure()/reset(), read via relaxed loads.
extern std::atomic<bool> gActive;

/** Slow path behind MS_FAULT_POINT: count the hit, maybe fire. */
void hitSite(const char *site);

} // namespace detail

/** True when a fault specification is active. */
inline bool
enabled()
{
    return detail::gActive.load(std::memory_order_relaxed);
}

} // namespace memsense::fault

#ifdef MEMSENSE_NO_FAULT_INJECTION
#define MS_FAULT_POINT(site)                                            \
    do {                                                                \
    } while (false)
#else
/** Declare a named fault-injection site (see file header). */
#define MS_FAULT_POINT(site)                                            \
    do {                                                                \
        if (::memsense::fault::enabled())                               \
            ::memsense::fault::detail::hitSite(site);                   \
    } while (false)
#endif

#endif // MEMSENSE_UTIL_FAULT_INJECTION_HH
