/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic behaviour in memsense flows through Rng so that a
 * (workload, seed) pair fully determines the generated micro-op stream
 * and therefore every simulation result. The generator is xoshiro256**,
 * which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef MEMSENSE_UTIL_RNG_HH
#define MEMSENSE_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace memsense
{

/** Deterministic pseudo-random number source (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability @p p. */
    bool chance(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /**
     * Zipf-distributed rank in [0, n) with skew @p s.
     *
     * Uses rejection-inversion (Hormann/Derflinger), suitable for large n.
     * s = 0 degenerates to uniform.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s[4];
    bool haveGauss = false;
    double cachedGauss = 0.0;

    // Cached parameters for the Zipf sampler, recomputed when (n, s)
    // changes between calls.
    std::uint64_t zipfN = 0;
    double zipfS = -1.0;
    double zipfHx0 = 0.0;
    double zipfHn = 0.0;
    double zipfDenom = 1.0;
};

} // namespace memsense

#endif // MEMSENSE_UTIL_RNG_HH
