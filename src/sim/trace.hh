/**
 * @file
 * Micro-op trace recording and replay.
 *
 * RecordingStream tees any OpStream into an in-memory trace that can
 * be saved to a portable text format; ReplayStream plays a trace back
 * as an OpStream. Traces make workload behavior reproducible across
 * machines and generator versions (record once, replay forever) and
 * let external tools inject their own access streams into the
 * simulator without writing a generator.
 *
 * Format: one op per line, `#`-comments allowed:
 *   C <count>                 compute
 *   B <cycles>                bubble
 *   I <cycles>                idle
 *   L <addr-hex> <dep> <stream>   load
 *   S <addr-hex> <stream>     store
 *   N <addr-hex>              non-temporal store
 */

#ifndef MEMSENSE_SIM_TRACE_HH
#define MEMSENSE_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/microop.hh"

namespace memsense::sim
{

/** An in-memory op trace. */
class Trace
{
  public:
    /** Append one op. */
    void append(const MicroOp &op) { ops.push_back(op); }

    /** Number of recorded ops. */
    std::size_t size() const { return ops.size(); }

    /** Op accessor. */
    const MicroOp &at(std::size_t i) const;

    /** Serialize to the text format. */
    void save(std::ostream &os) const;

    /** Parse the text format; throws ConfigError on malformed input. */
    static Trace load(std::istream &is);

    /** Total instructions represented (compute counts + mem ops). */
    std::uint64_t instructionCount() const;

    /** Memory operations (loads + stores + NT stores). */
    std::uint64_t memOpCount() const;

  private:
    std::vector<MicroOp> ops;
};

/** Tees an upstream OpStream into a Trace while passing ops through. */
class RecordingStream : public OpStream
{
  public:
    /**
     * @param upstream    stream to record (borrowed)
     * @param max_ops     stop recording (but keep passing through)
     *                    after this many ops; 0 = unlimited
     */
    explicit RecordingStream(OpStream &upstream,
                             std::size_t max_ops = 0);

    bool next(MicroOp &op) override;

    /** The trace recorded so far. */
    const Trace &trace() const { return recorded; }

  private:
    OpStream &upstream;
    std::size_t maxOps;
    Trace recorded;
};

/** Replays a Trace as an OpStream (optionally looping). */
class ReplayStream : public OpStream
{
  public:
    /**
     * @param trace trace to replay (copied)
     * @param loop  restart from the beginning at the end of the trace
     */
    explicit ReplayStream(Trace trace, bool loop = false);

    bool next(MicroOp &op) override;

  private:
    Trace source;
    std::size_t pos = 0;
    bool loop;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_TRACE_HH
