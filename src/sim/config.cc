#include "sim/config.hh"

#include "util/error.hh"

namespace memsense::sim
{

void
CacheConfig::validate() const
{
    requireConfig(ways >= 1 && ways <= 64,
                  "associativity must be in [1, 64]");
    requireConfig(sizeBytes >= static_cast<std::uint64_t>(ways) * kLineBytes,
                  "cache must hold at least one set");
    requireConfig(sizeBytes % (static_cast<std::uint64_t>(ways) *
                               kLineBytes) == 0,
                  "cache size must be a multiple of ways * line size");
}

void
PrefetcherConfig::validate() const
{
    if (!enabled)
        return;
    requireConfig(tableEntries >= 1 && tableEntries <= 256,
                  "prefetcher table entries must be in [1, 256]");
    requireConfig(degree >= 1 && degree <= 16,
                  "prefetch degree must be in [1, 16]");
    requireConfig(distance >= 1 && distance <= 64,
                  "prefetch distance must be in [1, 64]");
    requireConfig(trainThreshold >= 1,
                  "prefetcher train threshold must be at least 1");
}

void
CoreConfig::validate() const
{
    requireConfig(ghz > 0.0 && ghz <= 10.0,
                  "core frequency must be in (0, 10] GHz");
    requireConfig(issueWidth >= 0.25 && issueWidth <= 16.0,
                  "issue width must be in [0.25, 16]");
    requireConfig(mshrs >= 1 && mshrs <= 128,
                  "MSHR count must be in [1, 128]");
    prefetcher.validate();
}

void
DramConfig::validate() const
{
    requireConfig(channels >= 1 && channels <= 16,
                  "channel count must be in [1, 16]");
    requireConfig(megaTransfers > 0.0, "transfer rate must be positive");
    requireConfig(banksPerChannel >= 1 && banksPerChannel <= 64,
                  "banks per channel must be in [1, 64]");
    requireConfig(tCasNs > 0.0 && tRcdNs > 0.0 && tRpNs > 0.0,
                  "DDR timings must be positive");
    requireConfig(rowBytes >= kLineBytes &&
                      rowBytes % kLineBytes == 0,
                  "row size must be a positive multiple of the line size");
    requireConfig(uncoreNs >= 0.0, "uncore latency must be non-negative");
    requireConfig(busOverheadFactor >= 1.0 && busOverheadFactor <= 3.0,
                  "bus overhead factor must be in [1, 3]");
    requireConfig(writeBufferEntries >= 1,
                  "write buffer needs at least one entry");
    requireConfig(writeDrainWatermark > 0.0 && writeDrainWatermark <= 1.0,
                  "write drain watermark must be in (0, 1]");
}

void
MachineConfig::validate() const
{
    requireConfig(cores >= 1 && cores <= 256,
                  "core count must be in [1, 256]");
    core.validate();
    l1d.validate();
    l2.validate();
    // The shared LLC geometry is per-core size * cores; validate that.
    CacheConfig total = llcPerCore;
    total.sizeBytes = llcTotalBytes();
    total.validate();
    dram.validate();
}

} // namespace memsense::sim
