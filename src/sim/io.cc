#include "sim/io.hh"

#include <cmath>

#include "util/error.hh"

namespace memsense::sim
{

void
IoConfig::validate() const
{
    requireConfig(bytesPerSecond >= 0.0, "I/O rate must be non-negative");
    requireConfig(readFraction >= 0.0 && readFraction <= 1.0,
                  "I/O read fraction must be in [0, 1]");
    requireConfig(burstBytes >= kLineBytes &&
                      burstBytes % kLineBytes == 0,
                  "I/O burst must be a positive multiple of the line size");
    requireConfig(rangeBytes >= burstBytes,
                  "I/O region must hold at least one burst");
}

IoInjector::IoInjector(const IoConfig &config, MemoryController &memctrl)
    : cfg(config), mem(memctrl), rng(config.seed)
{
    cfg.validate();
    if (enabled()) {
        double gap_sec =
            static_cast<double>(cfg.burstBytes) / cfg.bytesPerSecond;
        burstGapPs = static_cast<Picos>(std::llround(gap_sec * 1e12));
        requireConfig(burstGapPs > 0, "I/O rate too high to schedule");
    }
}

void
IoInjector::runUntil(Picos until)
{
    if (!enabled()) {
        timePs = until;
        return;
    }
    const std::uint64_t lines_per_burst = cfg.burstBytes / kLineBytes;
    const std::uint64_t range_lines = cfg.rangeBytes / kLineBytes;
    while (timePs < until) {
        // Pick a random burst-aligned position in the DMA region.
        std::uint64_t max_start = range_lines - lines_per_burst + 1;
        std::uint64_t start_line =
            (cfg.baseAddr >> kLineShift) + rng.nextBounded(max_start);
        bool is_read = rng.chance(cfg.readFraction);
        for (std::uint64_t i = 0; i < lines_per_burst; ++i) {
            if (is_read)
                mem.read(start_line + i, timePs);
            else
                mem.write(start_line + i, timePs);
        }
        if (is_read)
            ctrs.bytesRead += static_cast<double>(cfg.burstBytes);
        else
            ctrs.bytesWritten += static_cast<double>(cfg.burstBytes);
        ++ctrs.bursts;
        timePs += burstGapPs;
    }
}

} // namespace memsense::sim
