#include "sim/prefetcher.hh"

namespace memsense::sim
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config)
    : cfg(config)
{
    cfg.validate();
    if (cfg.enabled)
        table.resize(cfg.tableEntries);
}

void
StridePrefetcher::observeMiss(std::uint16_t stream, Addr line_addr,
                              std::vector<Addr> &out)
{
    if (!cfg.enabled)
        return;
    ++_stats.trainings;

    // Find the stream's entry, or victimize the least recently used.
    Entry *entry = nullptr;
    Entry *lru = &table[0];
    for (auto &e : table) {
        if (e.valid && e.stream == stream) {
            entry = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    if (!entry) {
        entry = lru;
        entry->valid = true;
        entry->stream = stream;
        entry->lastLine = line_addr;
        entry->stride = 0;
        entry->confidence = 0;
        entry->lastUse = ++useCounter;
        return;
    }

    entry->lastUse = ++useCounter;
    std::int64_t stride = static_cast<std::int64_t>(line_addr) -
                          static_cast<std::int64_t>(entry->lastLine);
    entry->lastLine = line_addr;
    if (stride == 0)
        return;

    if (stride == entry->stride) {
        if (entry->confidence < 255)
            ++entry->confidence;
    } else {
        entry->stride = stride;
        entry->confidence = 1;
        return;
    }

    if (entry->confidence < cfg.trainThreshold)
        return;

    // Confident stream: fetch `degree` lines starting `distance` ahead.
    for (std::uint32_t i = 0; i < cfg.degree; ++i) {
        std::int64_t ahead =
            static_cast<std::int64_t>(cfg.distance + i) * entry->stride;
        std::int64_t target = static_cast<std::int64_t>(line_addr) + ahead;
        if (target < 0)
            continue;
        // memsense-lint: allow(no-hot-loop-alloc): bounded by
        // cfg.degree; the caller's scratch vector is cleared (not
        // shrunk) per call, so its capacity persists after warmup
        out.push_back(static_cast<Addr>(target));
        ++_stats.issued;
    }
}

void
StridePrefetcher::reset()
{
    for (auto &e : table)
        e = Entry{};
    useCounter = 0;
}

} // namespace memsense::sim
