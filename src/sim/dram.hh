/**
 * @file
 * DDR channel timing model.
 *
 * Each channel owns a set of banks with open-page row buffers and a
 * shared data bus. Requests are serviced with O(1) resource
 * reservations: a bank's `readyAt` and the channel's `busFreeAt`
 * advance monotonically, so queuing delay *emerges* from contention
 * (the basis of the paper's Fig. 7 loaded-latency curves) rather than
 * being a model input.
 */

#ifndef MEMSENSE_SIM_DRAM_HH
#define MEMSENSE_SIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** Result of a channel access. */
struct DramService
{
    Picos complete = 0;   ///< time data transfer finishes
    bool rowHit = false;  ///< row buffer hit
};

/** Per-channel statistics. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    Picos busBusy = 0;    ///< accumulated data-bus occupancy
    Picos queueDelay = 0; ///< accumulated (start - arrival) wait

    /** Row hit fraction of all accesses. */
    double rowHitRatio() const
    {
        std::uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * One DDR channel: banks plus a data bus.
 *
 * Thread-compatible (no internal synchronization); the machine's event
 * loop serializes access.
 */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &cfg);

    /**
     * Service a read of one line.
     *
     * @param bank    bank index within the channel
     * @param row     row index within the bank
     * @param arrival time the request reaches the channel
     */
    DramService read(std::uint32_t bank, std::uint64_t row, Picos arrival);

    /**
     * Service a posted write of one line; occupies the same bank and
     * bus resources as a read but reports no completion to the issuer.
     */
    void write(std::uint32_t bank, std::uint64_t row, Picos arrival);

    /** Statistics accessor. */
    const ChannelStats &stats() const { return _stats; }

    /** Reset statistics (not timing state). */
    void clearStats() { _stats = ChannelStats{}; }

    /** Unloaded read latency (row miss, idle channel) in picoseconds. */
    Picos unloadedReadPs() const;

    /** Time at which the data bus becomes free (write scheduling). */
    Picos busFreeTime() const { return busFreeAt; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1; ///< -1: closed
        Picos readyAt = 0;
    };

    /** Shared service path for reads and writes. */
    DramService access(std::uint32_t bank, std::uint64_t row,
                       Picos arrival);

    DramConfig cfg;
    std::vector<Bank> banks;
    Picos busFreeAt = 0;
    Picos tCas;
    Picos tRcd;
    Picos tRp;
    Picos tTransfer;
    Picos tBusOccupancy; ///< transfer plus turnaround/refresh overhead
    ChannelStats _stats;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_DRAM_HH
