/**
 * @file
 * Micro-operation stream interface between workload generators and the
 * simulated core.
 *
 * Workloads are ISA-less: they emit a stream of MicroOps (compute
 * bundles, loads, stores, idle gaps) over a virtual address space. The
 * core consumes the stream and produces timing; the address space is
 * never backed by host memory — only cache tag arrays exist.
 */

#ifndef MEMSENSE_SIM_MICROOP_HH
#define MEMSENSE_SIM_MICROOP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace memsense::sim
{

/** A virtual byte address in the workload's address space. */
using Addr = std::uint64_t;

/** Kinds of micro-operations a workload can emit. */
enum class OpKind : std::uint8_t
{
    Compute, ///< `count` instructions with no memory access
    Bubble,  ///< `count` cycles of pipeline stall retiring nothing
             ///< (branch misprediction, serialization); counts as
             ///< busy time, so it raises CPI_cache
    Load,    ///< one memory read instruction
    Store,   ///< one memory write instruction (write-allocate)
    NtStore, ///< non-temporal store: bypasses caches, writes memory
    Idle,    ///< core halts for `count` cycles (thread-level gaps);
             ///< excluded from CPI, lowers CPU utilization
};

/** One micro-operation. */
struct MicroOp
{
    OpKind kind = OpKind::Compute;
    Addr addr = 0;            ///< target address (Load/Store/NtStore)
    std::uint32_t count = 1;  ///< instructions (Compute) / cycles (Idle)
    bool dependent = false;   ///< Load only: the instruction stream
                              ///< cannot proceed past this load until
                              ///< its data returns (pointer chase)
    std::uint16_t stream = 0; ///< prefetcher training stream id
};

/**
 * Abstract producer of micro-ops.
 *
 * Implementations must be deterministic given their construction seed.
 * next() returns false when the workload is complete (streams meant to
 * run forever simply always return true).
 */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /** Produce the next op into @p op; false at end of stream. */
    virtual bool next(MicroOp &op) = 0;

    /**
     * Hand out a run of ready ops without copying: points @p run at
     * consecutive ops (consumed from the stream's perspective) and
     * returns how many; 0 means the stream ended. The pointer stays
     * valid until the next acquireRun() call on this stream.
     *
     * The ops and their order are exactly what repeated next() calls
     * would produce — this exists so the core pays one virtual call
     * per run instead of per op, and no per-op copy at all when the
     * producer buffers internally (workloads::Workload points straight
     * into its batch buffer). The default loops next() into a private
     * staging buffer for producers without one.
     */
    virtual std::size_t acquireRun(const MicroOp **run)
    {
        // Once next() has returned false the stream is complete and —
        // matching the per-op caller this batches for — must never be
        // asked again: a stream's end-of-stream check need not be
        // idempotent.
        if (stagingDone) {
            *run = stagingBuf.data();
            return 0;
        }
        if (stagingBuf.empty())
            stagingBuf.resize(kStagingRun);
        std::size_t n = 0;
        while (n < stagingBuf.size()) {
            if (!next(stagingBuf[n])) {
                stagingDone = true;
                break;
            }
            ++n;
        }
        *run = stagingBuf.data();
        return n;
    }

  private:
    /** Run length of the default acquireRun() (one virtual call per
     *  this many ops; sized to keep the staging buffer L1-resident). */
    static constexpr std::size_t kStagingRun = 128;
    std::vector<MicroOp> stagingBuf; ///< lazily sized, default path only
    bool stagingDone = false; ///< latched on the first false from next()
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_MICROOP_HH
