/**
 * @file
 * Micro-operation stream interface between workload generators and the
 * simulated core.
 *
 * Workloads are ISA-less: they emit a stream of MicroOps (compute
 * bundles, loads, stores, idle gaps) over a virtual address space. The
 * core consumes the stream and produces timing; the address space is
 * never backed by host memory — only cache tag arrays exist.
 */

#ifndef MEMSENSE_SIM_MICROOP_HH
#define MEMSENSE_SIM_MICROOP_HH

#include <cstdint>

namespace memsense::sim
{

/** A virtual byte address in the workload's address space. */
using Addr = std::uint64_t;

/** Kinds of micro-operations a workload can emit. */
enum class OpKind : std::uint8_t
{
    Compute, ///< `count` instructions with no memory access
    Bubble,  ///< `count` cycles of pipeline stall retiring nothing
             ///< (branch misprediction, serialization); counts as
             ///< busy time, so it raises CPI_cache
    Load,    ///< one memory read instruction
    Store,   ///< one memory write instruction (write-allocate)
    NtStore, ///< non-temporal store: bypasses caches, writes memory
    Idle,    ///< core halts for `count` cycles (thread-level gaps);
             ///< excluded from CPI, lowers CPU utilization
};

/** One micro-operation. */
struct MicroOp
{
    OpKind kind = OpKind::Compute;
    Addr addr = 0;            ///< target address (Load/Store/NtStore)
    std::uint32_t count = 1;  ///< instructions (Compute) / cycles (Idle)
    bool dependent = false;   ///< Load only: the instruction stream
                              ///< cannot proceed past this load until
                              ///< its data returns (pointer chase)
    std::uint16_t stream = 0; ///< prefetcher training stream id
};

/**
 * Abstract producer of micro-ops.
 *
 * Implementations must be deterministic given their construction seed.
 * next() returns false when the workload is complete (streams meant to
 * run forever simply always return true).
 */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /** Produce the next op into @p op; false at end of stream. */
    virtual bool next(MicroOp &op) = 0;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_MICROOP_HH
