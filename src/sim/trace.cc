#include "sim/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hh"

namespace memsense::sim
{

const MicroOp &
Trace::at(std::size_t i) const
{
    requireInvariant(i < ops.size(), "trace index out of range");
    return ops[i];
}

void
Trace::save(std::ostream &os) const
{
    os << "# memsense micro-op trace v1\n";
    for (const auto &op : ops) {
        switch (op.kind) {
          case OpKind::Compute:
            os << "C " << op.count << '\n';
            break;
          case OpKind::Bubble:
            os << "B " << op.count << '\n';
            break;
          case OpKind::Idle:
            os << "I " << op.count << '\n';
            break;
          case OpKind::Load:
            os << "L " << std::hex << op.addr << std::dec << ' '
               << (op.dependent ? 1 : 0) << ' ' << op.stream << '\n';
            break;
          case OpKind::Store:
            os << "S " << std::hex << op.addr << std::dec << ' '
               << op.stream << '\n';
            break;
          case OpKind::NtStore:
            os << "N " << std::hex << op.addr << std::dec << '\n';
            break;
        }
    }
}

Trace
Trace::load(std::istream &is)
{
    Trace t;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char tag = 0;
        ls >> tag;
        MicroOp op;
        bool ok = true;
        switch (tag) {
          case 'C':
            op.kind = OpKind::Compute;
            ok = static_cast<bool>(ls >> op.count);
            break;
          case 'B':
            op.kind = OpKind::Bubble;
            ok = static_cast<bool>(ls >> op.count);
            break;
          case 'I':
            op.kind = OpKind::Idle;
            ok = static_cast<bool>(ls >> op.count);
            break;
          case 'L': {
            op.kind = OpKind::Load;
            int dep = 0;
            ok = static_cast<bool>(ls >> std::hex >> op.addr >>
                                   std::dec >> dep >> op.stream);
            op.dependent = dep != 0;
            break;
          }
          case 'S':
            op.kind = OpKind::Store;
            ok = static_cast<bool>(ls >> std::hex >> op.addr >>
                                   std::dec >> op.stream);
            break;
          case 'N':
            op.kind = OpKind::NtStore;
            ok = static_cast<bool>(ls >> std::hex >> op.addr);
            break;
          default:
            ok = false;
        }
        if (!ok) {
            // memsense-lint: allow(no-hot-loop-alloc): cold error
            // path of the once-per-file trace loader; also keeps the
            // message off the happy path entirely
            const std::string where = std::to_string(lineno);
            throw ConfigError("malformed trace line " + where + ": " +
                              line);
        }
        t.append(op);
    }
    return t;
}

std::uint64_t
Trace::instructionCount() const
{
    std::uint64_t n = 0;
    for (const auto &op : ops) {
        switch (op.kind) {
          case OpKind::Compute:
            n += op.count;
            break;
          case OpKind::Load:
          case OpKind::Store:
          case OpKind::NtStore:
            n += 1;
            break;
          case OpKind::Bubble:
          case OpKind::Idle:
            break;
        }
    }
    return n;
}

std::uint64_t
Trace::memOpCount() const
{
    std::uint64_t n = 0;
    for (const auto &op : ops) {
        if (op.kind == OpKind::Load || op.kind == OpKind::Store ||
            op.kind == OpKind::NtStore) {
            ++n;
        }
    }
    return n;
}

RecordingStream::RecordingStream(OpStream &upstream_in,
                                 std::size_t max_ops)
    : upstream(upstream_in), maxOps(max_ops)
{
}

bool
RecordingStream::next(MicroOp &op)
{
    if (!upstream.next(op))
        return false;
    if (maxOps == 0 || recorded.size() < maxOps)
        recorded.append(op);
    return true;
}

ReplayStream::ReplayStream(Trace trace, bool loop_in)
    : source(std::move(trace)), loop(loop_in)
{
    requireConfig(source.size() > 0, "cannot replay an empty trace");
}

bool
ReplayStream::next(MicroOp &op)
{
    if (pos >= source.size()) {
        if (!loop)
            return false;
        pos = 0;
    }
    op = source.at(pos++);
    return true;
}

} // namespace memsense::sim
