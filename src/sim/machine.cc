#include "sim/machine.hh"

#include <algorithm>
#include <limits>

#include "util/error.hh"

namespace memsense::sim
{

MachineSnapshot
MachineSnapshot::operator-(const MachineSnapshot &earlier) const
{
    MachineSnapshot d;
    d.time = time - earlier.time;
    d.instructions = instructions - earlier.instructions;
    d.busyTime = busyTime - earlier.busyTime;
    d.idleTime = idleTime - earlier.idleTime;
    d.memoryFetches = memoryFetches - earlier.memoryFetches;
    d.dramLatencyTotal = dramLatencyTotal - earlier.dramLatencyTotal;
    d.writebacks = writebacks - earlier.writebacks;
    d.dramBytesRead = dramBytesRead - earlier.dramBytesRead;
    d.dramBytesWritten = dramBytesWritten - earlier.dramBytesWritten;
    d.busBusy = busBusy - earlier.busBusy;
    d.ioBytes = ioBytes - earlier.ioBytes;
    return d;
}

double
MachineSnapshot::cpi(double ghz) const
{
    if (instructions == 0)
        return 0.0;
    double cycles = picosToNs(busyTime) * ghz;
    return cycles / static_cast<double>(instructions);
}

double
MachineSnapshot::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(memoryFetches) /
           static_cast<double>(instructions);
}

double
MachineSnapshot::avgMissPenaltyNs() const
{
    if (memoryFetches == 0)
        return 0.0;
    return picosToNs(dramLatencyTotal) /
           static_cast<double>(memoryFetches);
}

double
MachineSnapshot::wbr() const
{
    if (memoryFetches == 0)
        return 0.0;
    return static_cast<double>(writebacks) /
           static_cast<double>(memoryFetches);
}

double
MachineSnapshot::dramBandwidth() const
{
    if (time == 0)
        return 0.0;
    double seconds = static_cast<double>(time) * 1e-12;
    return (dramBytesRead + dramBytesWritten) / seconds;
}

double
MachineSnapshot::cpuUtilization() const
{
    Picos total = busyTime + idleTime;
    if (total == 0)
        return 0.0;
    return static_cast<double>(busyTime) / static_cast<double>(total);
}

namespace
{

/** Shared-LLC geometry scaled to the machine's core count. */
CacheConfig
scaledLlc(const MachineConfig &cfg)
{
    CacheConfig llc = cfg.llcPerCore;
    llc.sizeBytes = cfg.llcTotalBytes();
    return llc;
}

} // anonymous namespace

Machine::Machine(const MachineConfig &config)
    : cfg(config), mem(config.dram, &arena),
      sharedLlc("llc", scaledLlc(config), config.seed * 31, &arena)
{
    cfg.validate();
    if (cfg.prefillLlc)
        sharedLlc.prefill();
    cores.reserve(static_cast<std::size_t>(cfg.cores));
    for (int i = 0; i < cfg.cores; ++i)
        // memsense-lint: allow(no-hot-loop-alloc): construction-time
        // loop, reserved to the core count two lines above
        cores.push_back(
            std::make_unique<SimCore>(i, cfg, sharedLlc, mem, &arena));
    // ~256 core cycles of cross-agent skew: small vs. DRAM latency.
    quantum = Clock(cfg.core.ghz).toPicos(256);
}

void
Machine::bind(int core_idx, OpStream &stream)
{
    requireConfig(core_idx >= 0 && core_idx < coreCount(),
                  "core index out of range");
    cores[static_cast<std::size_t>(core_idx)]->bind(stream);
}

void
Machine::setIo(const IoConfig &io_cfg)
{
    io.emplace(io_cfg, mem);
}

bool
Machine::runFor(Picos duration)
{
    const Picos end = currentTime + duration;
    constexpr Picos kInf = std::numeric_limits<Picos>::max();

    for (;;) {
        // Pick the laggard agent still below the deadline.
        SimCore *next_core = nullptr;
        Picos min_time = kInf;
        for (auto &c : cores) {
            if (c->done() || !c->hasStream())
                continue;
            if (c->now() < min_time) {
                min_time = c->now();
                next_core = c.get();
            }
        }
        bool io_next = io && io->enabled() && io->now() < min_time;
        if (io_next)
            min_time = io->now();

        if (min_time >= end)
            break;

        Picos target = std::min(min_time + quantum, end);
        if (io_next)
            io->runUntil(target);
        else if (next_core)
            next_core->runUntil(target);
        else
            break; // every core done; nothing left to advance
    }

    currentTime = end;
    bool any_alive = false;
    for (auto &c : cores)
        if (c->hasStream() && !c->done())
            any_alive = true;
    return any_alive;
}

MachineSnapshot
Machine::snapshot() const
{
    MachineSnapshot s;
    s.time = currentTime;
    for (const auto &c : cores) {
        const CoreCounters &k = c->counters();
        s.instructions += k.instructions;
        s.busyTime += k.busyTime;
        s.idleTime += k.idleTime;
        s.memoryFetches += k.memoryFetches();
        s.dramLatencyTotal += k.dramLatencyTotal;
        s.writebacks += k.writebacks;
    }
    s.dramBytesRead = mem.stats().bytesRead();
    s.dramBytesWritten = mem.stats().bytesWritten();
    for (std::uint32_t ch = 0; ch < mem.channels(); ++ch)
        s.busBusy += mem.channelStats(ch).busBusy;
    if (io)
        s.ioBytes = io->counters().bytesRead + io->counters().bytesWritten;
    return s;
}

SimCore &
Machine::core(int i)
{
    requireConfig(i >= 0 && i < coreCount(), "core index out of range");
    return *cores[static_cast<std::size_t>(i)];
}

const SimCore &
Machine::core(int i) const
{
    requireConfig(i >= 0 && i < coreCount(), "core index out of range");
    return *cores[static_cast<std::size_t>(i)];
}

} // namespace memsense::sim
