/**
 * @file
 * The simulated core: consumes a micro-op stream and produces timing.
 *
 * The core abstracts a superscalar pipeline the way the paper's model
 * does: compute instructions retire at the issue width; loads and
 * stores walk a private L1/L2 and the shared LLC; LLC misses occupy
 * MSHRs (the MLP limit) and either overlap with execution (independent
 * misses) or stall the core until fill (dependent misses, i.e. pointer
 * chases). The measured blocking factor of a workload *emerges* from
 * its dependent-load fraction, the MSHR count, and prefetch coverage.
 */

#ifndef MEMSENSE_SIM_CORE_HH
#define MEMSENSE_SIM_CORE_HH

#include <cstdint>
#include <vector>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/memctrl.hh"
#include "sim/microop.hh"
#include "sim/prefetcher.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** Per-core performance counters (the PMU facade). */
struct CoreCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ntStores = 0;
    std::uint64_t llcDemandMisses = 0;   ///< demand lines fetched
    std::uint64_t llcPrefetchFetches = 0;///< prefetch lines fetched
    Picos dramLatencyTotal = 0; ///< summed DRAM latency, demand+prefetch
    std::uint64_t writebacks = 0;        ///< dirty LLC evictions +
                                         ///< non-temporal stores
    Picos busyTime = 0;  ///< non-idle core time
    Picos idleTime = 0;  ///< halted (Idle op) time
    Picos mshrStall = 0; ///< time stalled on MSHR exhaustion
    Picos depStall = 0;  ///< time stalled on dependent misses
    Picos robStall = 0;  ///< time stalled running ahead of in-flight
                         ///< independent loads

    /** All lines this core fetched from DRAM (MPI numerator). */
    std::uint64_t memoryFetches() const
    {
        return llcDemandMisses + llcPrefetchFetches;
    }

    /** Average DRAM latency over this core's fetches, in ns. */
    double avgMissPenaltyNs() const
    {
        std::uint64_t f = memoryFetches();
        return f ? picosToNs(dramLatencyTotal) / static_cast<double>(f)
                 : 0.0;
    }

    /** Misses (demand + prefetch) per kilo-instruction. */
    double mpki() const
    {
        return instructions ? 1000.0 *
                                  static_cast<double>(memoryFetches()) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    /** Writebacks per miss (the paper's WBR). */
    double wbr() const
    {
        std::uint64_t f = memoryFetches();
        return f ? static_cast<double>(writebacks) /
                       static_cast<double>(f)
                 : 0.0;
    }
};

/**
 * One simulated core with private L1D and L2.
 *
 * Owned and driven by Machine; runUntil() advances local time by
 * consuming ops. The shared LLC and memory controller are borrowed
 * references owned by the Machine.
 */
class SimCore
{
  public:
    /**
     * @param id      core index (diagnostics)
     * @param mc      machine configuration (core + cache geometry)
     * @param llc     shared last-level cache (borrowed)
     * @param mem     memory controller (borrowed)
     * @param arena   optional bump allocator backing the private
     *                cache arrays (borrowed; must outlive the core)
     */
    SimCore(int id, const MachineConfig &mc, SetAssocCache &llc,
            MemoryController &mem, util::Arena *arena = nullptr);

    /** Attach the op stream to execute (borrowed; must outlive runs). */
    void bind(OpStream &stream)
    {
        ops = &stream;
        // Drop any run acquired from a previously bound stream.
        opRun = nullptr;
        opPos = opCount = 0;
    }

    /** Local core time. */
    Picos now() const { return timePs; }

    /**
     * Execute ops until local time reaches @p until or the stream
     * ends.
     *
     * @return false when the stream ended
     */
    bool runUntil(Picos until);

    /** True once the bound stream has ended. */
    bool done() const { return streamEnded; }

    /** True when an op stream is bound to this core. */
    bool hasStream() const { return ops != nullptr; }

    /** Counter accessor. */
    const CoreCounters &counters() const { return ctrs; }

    /** Reset counters (not caches or time). */
    void clearCounters() { ctrs = CoreCounters{}; }

    /** Private L1 stats (tests). */
    const SetAssocCache &l1() const { return l1d; }

    /** Private L2 stats (tests). */
    const SetAssocCache &l2() const { return l2c; }

    /** Prefetcher stats (tests). */
    const StridePrefetcher &prefetcher() const { return pf; }

    /** The core's clock. */
    // memsense-lint: allow(no-nondeterminism): simulated Clock, not wall time
    const Clock &clock() const { return clk; }

  private:
    /** Advance local time by a (possibly fractional) cycle count. */
    void advanceCycles(double cycles);

    /** Handle one op. */
    void apply(const MicroOp &op);

    /** Load/store path; returns after timing is charged. */
    void access(const MicroOp &op, bool is_write);

    /**
     * Charge the wait for a line whose data arrives at @p fill_time:
     * dependent consumers wait for the data itself, independent ones
     * stall only past the ROB run-ahead window.
     */
    void waitForFill(Picos fill_time, bool dependent);

    /** Fetch a line from DRAM, allocating through the hierarchy. */
    void fetchLine(Addr line, bool is_write, bool dependent,
                   std::uint16_t stream_id);

    /** Issue prefetches triggered by a demand miss. */
    void maybePrefetch(std::uint16_t stream_id, Addr line);

    /** Install a line into LLC/L2/L1, routing dirty victims. */
    void installLine(Addr line, bool is_write, Picos fill_time);

    /** Install into L2 (and L1), cascading dirty victims outward. */
    void installIntoL2(Addr line, bool is_write, Picos fill_time);

    /** Install into L1, cascading dirty victims outward. */
    void installIntoL1(Addr line, bool is_write, Picos fill_time);

    /** Reclaim completed MSHRs; stall if all are busy. */
    void reserveMshr();

    int id;
    const MachineConfig &mc;
    Clock clk;
    SetAssocCache l1d;
    SetAssocCache l2c;
    SetAssocCache &llc;
    MemoryController &mem;
    StridePrefetcher pf;
    OpStream *ops = nullptr;
    bool streamEnded = false;

    /**
     * Current op run: runUntil() acquires runs from the stream (one
     * virtual acquireRun() per run instead of one next() per op) and
     * consumes them in place. Ops left over when a quantum deadline
     * hits are consumed by the next quantum, so the executed sequence
     * is exactly the stream's sequence.
     */
    const MicroOp *opRun = nullptr;
    std::size_t opPos = 0;   ///< next unconsumed op in opRun
    std::size_t opCount = 0; ///< valid ops in opRun

    Picos timePs = 0;
    double carryPs = 0.0; ///< sub-picosecond accumulation
    double issueCostPs;   ///< per-instruction issue time
    double issueCyclesPerOp = 0.0; ///< 1/issueWidth, hoisted from the
                                   ///< per-access path in apply()
    /**
     * True when issueWidth is a power of two (the common 2/4/8
     * configs): division by it is exact, so `count * (1/width)`
     * is bit-identical to `count / width` and saves an FP divide on
     * every Compute op. Non-power-of-two widths keep the divide.
     */
    bool issueDivExact = false;
    Picos robWindowPs;    ///< run-ahead slack for independent loads
    std::vector<Picos> mshrBusy; ///< outstanding miss completion times
    std::vector<Picos> pfBusy;   ///< outstanding prefetch completions
    std::vector<Addr> pfCandidates; ///< scratch for prefetch candidates
    CoreCounters ctrs;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_CORE_HH
