/**
 * @file
 * Set-associative cache with pluggable replacement and write-back
 * write-allocate semantics.
 *
 * The cache stores tags only — no data — since workloads are address
 * streams. Each line carries a fill timestamp so that demand hits on
 * lines still in flight (installed by a prefetch that has not yet
 * returned from memory) can charge the remaining latency.
 *
 * Way state is laid out as blocked structure-of-arrays (AoSoA): each
 * set owns one cache-line-aligned block holding its tags contiguously
 * (the array a probe scans — one line for 8 ways instead of the five
 * lines the old way-struct walk touched), followed by the set's
 * replacement/metadata arrays that only the matching or victim way
 * touches. Keeping a set's arrays adjacent inside one block means an
 * insert+evict on a DRAM-sized LLC hits four neighboring lines on one
 * page rather than five lines on five pages, which is what the
 * profile says the simulator spends most of its time doing. Validity
 * is folded into the tag array via a sentinel (kInvalidTag): real
 * line addresses are byte addresses shifted right by kLineShift and
 * the prefill dummies sit at 2^56, so no reachable line can equal ~0.
 */

#ifndef MEMSENSE_SIM_CACHE_HH
#define MEMSENSE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/microop.hh"
#include "util/arena.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** Hit/miss and traffic counters of one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Accesses observed. */
    std::uint64_t accesses() const { return hits + misses; }

    /** Miss ratio in [0, 1]; 0 when never accessed. */
    double missRatio() const
    {
        return accesses() ? static_cast<double>(misses) /
                                static_cast<double>(accesses())
                          : 0.0;
    }
};

/** An evicted line (returned from insert()). */
struct Victim
{
    bool valid = false;    ///< an eviction actually happened
    bool dirty = false;    ///< the victim needs writing back
    Addr lineAddr = 0;     ///< victim's line address
};

/** Result of a cache lookup. */
struct LookupResult
{
    bool hit = false;      ///< line present (possibly still in flight)
    Picos fillTime = 0;    ///< when the line's data is/was available
    bool firstPrefetchTouch = false; ///< first demand touch of a line
                                     ///< a prefetch installed (used to
                                     ///< keep streamers training)
};

/**
 * A tag-only set-associative cache.
 *
 * Addresses are line addresses (byte address >> kLineShift). The cache
 * is indexed by line address modulo the set count, which supports
 * non-power-of-two set counts (needed when the shared LLC is scaled by
 * a non-power-of-two core count).
 */
class SetAssocCache
{
  public:
    /**
     * @param name  human-readable name for diagnostics
     * @param cfg   geometry and replacement policy
     * @param seed  RNG seed for the Random replacement policy
     * @param arena optional bump allocator backing the way arrays
     *              (must outlive the cache); heap when null
     */
    SetAssocCache(std::string name, const CacheConfig &cfg,
                  std::uint64_t seed = 1,
                  util::Arena *arena = nullptr);

    /**
     * Probe for @p line_addr; updates replacement state and statistics.
     *
     * @param line_addr line address to look up
     * @param is_write  true marks the line dirty on a hit
     * @param now       current time (unused except for bookkeeping)
     */
    LookupResult lookup(Addr line_addr, bool is_write, Picos now);

    /**
     * Probe without updating replacement state or statistics.
     */
    bool contains(Addr line_addr) const;

    /**
     * Install @p line_addr, evicting a victim if the set is full.
     *
     * @param line_addr line to install
     * @param dirty     install in dirty state (write allocate)
     * @param fill_time when the line's data arrives (>= now for lines
     *                  installed by in-flight fetches)
     * @param prefetched true when a prefetch (not a demand access)
     *                  installed the line
     */
    Victim insert(Addr line_addr, bool dirty, Picos fill_time,
                  bool prefetched = false);

    /**
     * Install the line whose lookup() just missed, reusing the miss
     * scan: the lookup recorded the set block and its first invalid
     * way, so the fill needs no second scan (demand fills are half
     * the set scans in the simulator's hottest loop).
     *
     * Contract: callable only when the immediately preceding
     * operation on THIS cache was a lookup() miss for @p line_addr —
     * which is how the core's access path behaves: each level's
     * demand fill follows its miss with no intervening operation on
     * that level. Enforced with a checked invariant. Semantically
     * identical to insert(@p line_addr, ...) under that contract.
     */
    Victim fillAfterMiss(Addr line_addr, bool dirty, Picos fill_time,
                         bool prefetched = false);

    /** Invalidate a line if present; returns whether it was dirty. */
    bool invalidate(Addr line_addr);

    /**
     * Mark a line dirty if present (writeback from an inner level),
     * without touching replacement state or hit/miss statistics.
     *
     * @return true when the line was present
     */
    bool markDirtyIfPresent(Addr line_addr);

    /**
     * Accept a dirty writeback from an inner level: equivalent to
     * `markDirtyIfPresent(a) || insert(a, true, now)` but in one set
     * scan instead of two — the writeback cascade runs this against
     * the outer (largest, coldest) caches, where each scan is a
     * near-guaranteed host-cache miss on the set block.
     *
     * When the line was present, only its dirty bit is set (recency
     * untouched, no statistics) and the returned victim is invalid;
     * otherwise the line is installed dirty exactly as insert() would
     * install it, including any eviction.
     */
    Victim writebackInsert(Addr line_addr, Picos now);

    /** Statistics accessor. */
    const CacheStats &stats() const { return _stats; }

    /** Reset statistics (not contents). */
    void clearStats() { _stats = CacheStats{}; }

    /** Configuration in use. */
    const CacheConfig &config() const { return cfg; }

    /** Name for diagnostics. */
    const std::string &name() const { return _name; }

    /** Number of currently valid lines (linear scan; tests only). */
    std::uint64_t validLineCount() const;

    /**
     * Fill every way with distinct clean dummy lines from a reserved
     * address region, so capacity evictions (and therefore dirty
     * writebacks of real lines) begin immediately instead of after a
     * long cold-start window. Does not touch statistics.
     */
    void prefill();

  private:
    /** Tag value marking an empty way (no reachable line address). */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /** Bits of the per-way metadata byte. */
    static constexpr std::uint8_t kDirty = 1u << 0;
    static constexpr std::uint8_t kPrefetched = 1u << 1;

    /** Set index for a line address.
     *
     * Every lookup/insert/invalidate runs through here, and every
     * sweep worker hammers it, so the common power-of-two geometry
     * uses a precomputed mask instead of the integer divide; the
     * modulo fallback keeps non-power-of-two set counts working (the
     * shared LLC scaled by e.g. 3 cores). Both forms produce the same
     * index for power-of-two counts, so results are unchanged.
     */
    std::uint64_t setIndex(Addr line_addr) const
    {
        return setMask ? (line_addr & setMask) : (line_addr % numSets);
    }

    /** @{ Views into one set's block of the slab (see file comment). */
    unsigned char *setBlock(std::uint64_t s)
    {
        return slab.data() + static_cast<std::size_t>(s) * setStride;
    }
    const unsigned char *setBlock(std::uint64_t s) const
    {
        return slab.data() + static_cast<std::size_t>(s) * setStride;
    }
    static Addr *tagsOf(unsigned char *blk)
    {
        return reinterpret_cast<Addr *>(blk);
    }
    static const Addr *tagsOf(const unsigned char *blk)
    {
        return reinterpret_cast<const Addr *>(blk);
    }
    std::uint64_t *lastUseOf(unsigned char *blk) const
    {
        return reinterpret_cast<std::uint64_t *>(blk + lastUseOff);
    }
    Picos *fillTimesOf(unsigned char *blk) const
    {
        return reinterpret_cast<Picos *>(blk + fillOff);
    }
    std::uint8_t *metaOf(unsigned char *blk) const
    {
        return blk + metaOff;
    }
    std::uint8_t *rrpvsOf(unsigned char *blk) const
    {
        return blk + rrpvOff;
    }
    /** @} */

    /** Choose a victim way within @p blk; returns the way index. */
    std::uint32_t pickVictim(unsigned char *blk);

    std::string _name;
    CacheConfig cfg;
    std::uint64_t numSets = 0;
    /** numSets - 1 when numSets is a power of two, else 0 (use %). */
    std::uint64_t setMask = 0;

    // Way state, blocked per set: tags (scanned), then lastUse /
    // fillTimes / meta / rrpvs for the matching way only. Offsets are
    // derived from the way count in the constructor; setStride is the
    // block size rounded up to a cache line.
    util::AlignedSlab slab;
    std::size_t setStride = 0;
    std::size_t lastUseOff = 0; ///< LRU timestamps
    std::size_t fillOff = 0;    ///< fill timestamps
    std::size_t metaOff = 0;    ///< kDirty | kPrefetched bytes
    std::size_t rrpvOff = 0;    ///< SRRIP re-reference bytes

    std::uint64_t useCounter = 0;
    Rng rng;
    CacheStats _stats;

    // Fill hint recorded by a lookup() miss and consumed by the next
    // fillAfterMiss(): the set block just scanned and its first
    // invalid way (== ways when the set is full). Valid because the
    // core never interleaves another operation on the same cache
    // between a demand miss and its fill (see fillAfterMiss()).
    unsigned char *fillHintBlk = nullptr;
    Addr fillHintLine = 0;
    std::uint32_t fillHintSlot = 0;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_CACHE_HH
