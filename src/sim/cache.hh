/**
 * @file
 * Set-associative cache with pluggable replacement and write-back
 * write-allocate semantics.
 *
 * The cache stores tags only — no data — since workloads are address
 * streams. Each line carries a fill timestamp so that demand hits on
 * lines still in flight (installed by a prefetch that has not yet
 * returned from memory) can charge the remaining latency.
 */

#ifndef MEMSENSE_SIM_CACHE_HH
#define MEMSENSE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/microop.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** Hit/miss and traffic counters of one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Accesses observed. */
    std::uint64_t accesses() const { return hits + misses; }

    /** Miss ratio in [0, 1]; 0 when never accessed. */
    double missRatio() const
    {
        return accesses() ? static_cast<double>(misses) /
                                static_cast<double>(accesses())
                          : 0.0;
    }
};

/** An evicted line (returned from insert()). */
struct Victim
{
    bool valid = false;    ///< an eviction actually happened
    bool dirty = false;    ///< the victim needs writing back
    Addr lineAddr = 0;     ///< victim's line address
};

/** Result of a cache lookup. */
struct LookupResult
{
    bool hit = false;      ///< line present (possibly still in flight)
    Picos fillTime = 0;    ///< when the line's data is/was available
    bool firstPrefetchTouch = false; ///< first demand touch of a line
                                     ///< a prefetch installed (used to
                                     ///< keep streamers training)
};

/**
 * A tag-only set-associative cache.
 *
 * Addresses are line addresses (byte address >> kLineShift). The cache
 * is indexed by line address modulo the set count, which supports
 * non-power-of-two set counts (needed when the shared LLC is scaled by
 * a non-power-of-two core count).
 */
class SetAssocCache
{
  public:
    /**
     * @param name human-readable name for diagnostics
     * @param cfg  geometry and replacement policy
     * @param seed RNG seed for the Random replacement policy
     */
    SetAssocCache(std::string name, const CacheConfig &cfg,
                  std::uint64_t seed = 1);

    /**
     * Probe for @p line_addr; updates replacement state and statistics.
     *
     * @param line_addr line address to look up
     * @param is_write  true marks the line dirty on a hit
     * @param now       current time (unused except for bookkeeping)
     */
    LookupResult lookup(Addr line_addr, bool is_write, Picos now);

    /**
     * Probe without updating replacement state or statistics.
     */
    bool contains(Addr line_addr) const;

    /**
     * Install @p line_addr, evicting a victim if the set is full.
     *
     * @param line_addr line to install
     * @param dirty     install in dirty state (write allocate)
     * @param fill_time when the line's data arrives (>= now for lines
     *                  installed by in-flight fetches)
     * @param prefetched true when a prefetch (not a demand access)
     *                  installed the line
     */
    Victim insert(Addr line_addr, bool dirty, Picos fill_time,
                  bool prefetched = false);

    /** Invalidate a line if present; returns whether it was dirty. */
    bool invalidate(Addr line_addr);

    /**
     * Mark a line dirty if present (writeback from an inner level),
     * without touching replacement state or hit/miss statistics.
     *
     * @return true when the line was present
     */
    bool markDirtyIfPresent(Addr line_addr);

    /** Statistics accessor. */
    const CacheStats &stats() const { return _stats; }

    /** Reset statistics (not contents). */
    void clearStats() { _stats = CacheStats{}; }

    /** Configuration in use. */
    const CacheConfig &config() const { return cfg; }

    /** Name for diagnostics. */
    const std::string &name() const { return _name; }

    /** Number of currently valid lines (linear scan; tests only). */
    std::uint64_t validLineCount() const;

    /**
     * Fill every way with distinct clean dummy lines from a reserved
     * address region, so capacity evictions (and therefore dirty
     * writebacks of real lines) begin immediately instead of after a
     * long cold-start window. Does not touch statistics.
     */
    void prefill();

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp
        std::uint8_t rrpv = 3;     ///< SRRIP re-reference value
        bool prefetched = false;   ///< installed by a prefetch, not
                                   ///< yet demand touched
        Picos fillTime = 0;
    };

    /** Set index for a line address.
     *
     * Every lookup/insert/invalidate runs through here, and every
     * sweep worker hammers it, so the common power-of-two geometry
     * uses a precomputed mask instead of the integer divide; the
     * modulo fallback keeps non-power-of-two set counts working (the
     * shared LLC scaled by e.g. 3 cores). Both forms produce the same
     * index for power-of-two counts, so results are unchanged.
     */
    std::uint64_t setIndex(Addr line_addr) const
    {
        return setMask ? (line_addr & setMask) : (line_addr % numSets);
    }

    /** First way of set @p s in the flat array. */
    std::size_t setBase(std::uint64_t s) const
    {
        return static_cast<std::size_t>(s) * cfg.ways;
    }

    /** Choose a victim way within [base, base+ways). */
    std::size_t pickVictim(std::size_t base);

    std::string _name;
    CacheConfig cfg;
    std::uint64_t numSets = 0;
    /** numSets - 1 when numSets is a power of two, else 0 (use %). */
    std::uint64_t setMask = 0;
    std::vector<Way> ways;
    std::uint64_t useCounter = 0;
    Rng rng;
    CacheStats _stats;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_CACHE_HH
