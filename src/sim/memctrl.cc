#include "sim/memctrl.hh"

#include "util/error.hh"

namespace memsense::sim
{

MemoryController::MemoryController(const DramConfig &config,
                                   util::Arena *arena)
    : cfg(config)
{
    cfg.validate();
    chans.reserve(static_cast<std::size_t>(cfg.channels));
    for (int i = 0; i < cfg.channels; ++i)
        // memsense-lint: allow(no-hot-loop-alloc): construction-time
        // loop, reserved to the channel count two lines above
        chans.emplace_back(cfg);
    writeBuf.reserve(static_cast<std::size_t>(cfg.channels));
    for (int i = 0; i < cfg.channels; ++i) {
        // memsense-lint: allow(no-hot-loop-alloc): construction-time
        // loop, reserved to the channel count above
        writeBuf.emplace_back(util::ArenaAllocator<PendingWrite>(arena));
        // Capacity equals the forced-burst bound, so the ring is sized
        // exactly once (arena storage is never regrown).
        // memsense-lint: allow(no-hot-loop-alloc): sized exactly once
        writeBuf.back().slots.resize(cfg.writeBufferEntries);
    }
    Picos uncore_total = nsToPicos(cfg.uncoreNs);
    uncoreRequest = uncore_total / 2;
    uncoreResponse = uncore_total - uncoreRequest;
    linesPerRow = cfg.rowBytes / kLineBytes;
    drainWatermark = static_cast<std::size_t>(
        cfg.writeDrainWatermark *
        static_cast<double>(cfg.writeBufferEntries));
}

DramCoord
MemoryController::decode(Addr line_addr) const
{
    DramCoord c;
    auto nch = static_cast<std::uint64_t>(cfg.channels);
    c.channel = static_cast<std::uint32_t>(line_addr % nch);
    std::uint64_t in_channel = line_addr / nch;
    std::uint64_t bank_row = in_channel / linesPerRow;
    // Hash the bank index (golden-ratio multiplicative hash) the way
    // real controllers permute bank bits: equally-aligned concurrent
    // streams would otherwise camp on one bank and ping-pong its row
    // buffer forever. Row-buffer locality within a row is preserved.
    std::uint64_t hashed = bank_row * 0x9E3779B97F4A7C15ULL;
    c.bank = static_cast<std::uint32_t>(
        (hashed >> 32) % cfg.banksPerChannel);
    c.row = bank_row / cfg.banksPerChannel;
    return c;
}

Picos
MemoryController::read(Addr line_addr, Picos now)
{
    DramCoord c = decode(line_addr);
    Picos arrival = now + uncoreRequest;
    DramService svc = chans[c.channel].read(c.bank, c.row, arrival);
    Picos complete = svc.complete + uncoreResponse;
    ++_stats.reads;
    _stats.totalReadLatency += complete - now;
    return complete;
}

void
MemoryController::write(Addr line_addr, Picos now)
{
    DramCoord c = decode(line_addr);
    WriteRing &buf = writeBuf[c.channel];
    DramChannel &chan = chans[c.channel];
    buf.push({c.bank, c.row});
    ++_stats.writes;

    const Picos arrival = now + uncoreRequest;

    if (buf.size() >= cfg.writeBufferEntries) {
        // Buffer full: forced burst drain (a real write storm).
        while (!buf.empty()) {
            const PendingWrite w = buf.pop();
            chan.write(w.bank, w.row, arrival);
        }
        return;
    }

    // Opportunistic drain: slip buffered writes into idle bus time so
    // they do not form read-blocking bursts at moderate load. Above
    // the watermark, drain one write per posting regardless, keeping
    // the buffer bounded under sustained write pressure.
    const std::size_t watermark = drainWatermark;
    while (!buf.empty() &&
           (chan.busFreeTime() <= arrival ||
            buf.size() > std::max<std::size_t>(1, watermark))) {
        const PendingWrite w = buf.pop();
        chan.write(w.bank, w.row, arrival);
        if (chan.busFreeTime() > arrival && buf.size() <= watermark) {
            break;
        }
    }
}

void
MemoryController::drainWrites(Picos now)
{
    for (std::uint32_t ch = 0; ch < chans.size(); ++ch) {
        Picos arrival = now + uncoreRequest;
        WriteRing &buf = writeBuf[ch];
        while (!buf.empty()) {
            const PendingWrite w = buf.pop();
            chans[ch].write(w.bank, w.row, arrival);
        }
    }
}

const ChannelStats &
MemoryController::channelStats(std::uint32_t ch) const
{
    requireInvariant(ch < chans.size(), "channel index out of range");
    return chans[ch].stats();
}

void
MemoryController::clearStats()
{
    _stats = MemCtrlStats{};
    for (auto &c : chans)
        c.clearStats();
}

double
MemoryController::unloadedLatencyNs() const
{
    return cfg.unloadedLatencyNs();
}

double
MemoryController::busUtilization(Picos elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    Picos busy = 0;
    for (const auto &c : chans)
        busy += c.stats().busBusy;
    return static_cast<double>(busy) /
           (static_cast<double>(elapsed) *
            static_cast<double>(chans.size()));
}

} // namespace memsense::sim
