/**
 * @file
 * Memory controller: address interleaving across channels, write
 * buffering, and the uncore latency between the LLC miss and the DDR
 * command.
 *
 * The mapping is line-interleaved across channels; within a channel,
 * consecutive lines fill a bank row (8 KB) before moving to the next
 * bank, the standard open-page-friendly layout.
 */

#ifndef MEMSENSE_SIM_MEMCTRL_HH
#define MEMSENSE_SIM_MEMCTRL_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/microop.hh"
#include "util/arena.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** Decoded DRAM coordinates of a line address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
};

/** Controller-level statistics. */
struct MemCtrlStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    Picos totalReadLatency = 0; ///< sum over reads of (complete-issue)

    /** Bytes read from DRAM. */
    double bytesRead() const
    {
        return static_cast<double>(reads) * kLineBytes;
    }

    /** Bytes written to DRAM. */
    double bytesWritten() const
    {
        return static_cast<double>(writes) * kLineBytes;
    }

    /** Average read latency in ns; 0 when no reads. */
    double avgReadLatencyNs() const
    {
        return reads ? picosToNs(totalReadLatency) /
                           static_cast<double>(reads)
                     : 0.0;
    }
};

/** Channel-interleaved memory controller with posted writes. */
class MemoryController
{
  public:
    /**
     * @param cfg   channel timing and geometry
     * @param arena optional bump allocator backing the per-channel
     *              write rings (must outlive the controller)
     */
    explicit MemoryController(const DramConfig &cfg,
                              util::Arena *arena = nullptr);

    /** Decode a line address into channel/bank/row coordinates. */
    DramCoord decode(Addr line_addr) const;

    /**
     * Issue a demand/prefetch read; returns the completion time
     * (data available at the requesting core), including uncore
     * latency both ways.
     */
    Picos read(Addr line_addr, Picos now);

    /**
     * Post a write (LLC dirty writeback or non-temporal store).
     * Writes complete immediately for the issuer; they drain to the
     * channel in batches once the per-channel buffer passes the
     * configured watermark, competing with reads for bank and bus.
     */
    void write(Addr line_addr, Picos now);

    /** Drain all buffered writes (end of run). */
    void drainWrites(Picos now);

    /** Controller statistics. */
    const MemCtrlStats &stats() const { return _stats; }

    /** Per-channel statistics. */
    const ChannelStats &channelStats(std::uint32_t ch) const;

    /** Number of channels. */
    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(chans.size());
    }

    /** Reset statistics on the controller and all channels. */
    void clearStats();

    /** Unloaded end-to-end read latency in ns (the compulsory value). */
    double unloadedLatencyNs() const;

    /** Aggregate DRAM bus utilization over @p elapsed picoseconds. */
    double busUtilization(Picos elapsed) const;

    /** Configuration in use. */
    const DramConfig &config() const { return cfg; }

  private:
    struct PendingWrite
    {
        std::uint32_t bank;
        std::uint64_t row;
    };

    /**
     * Fixed-capacity FIFO of posted writes for one channel.
     *
     * The drain loop used to pop the front of a std::vector —
     * O(buffer) memmove per drained write, on the hot write path. A
     * ring pops in O(1) and never reallocates: capacity is exactly
     * writeBufferEntries, the forced-burst bound.
     */
    struct WriteRing
    {
        explicit WriteRing(util::ArenaAllocator<PendingWrite> alloc)
            : slots(alloc)
        {
        }

        util::ArenaVector<PendingWrite> slots; ///< sized once, in ctor
        std::size_t head = 0;
        std::size_t count = 0;

        bool empty() const { return count == 0; }
        std::size_t size() const { return count; }

        void push(PendingWrite w)
        {
            std::size_t tail = head + count;
            if (tail >= slots.size())
                tail -= slots.size();
            slots[tail] = w;
            ++count;
        }

        PendingWrite pop()
        {
            PendingWrite w = slots[head];
            if (++head == slots.size())
                head = 0;
            --count;
            return w;
        }
    };

    DramConfig cfg;
    std::vector<DramChannel> chans;
    std::vector<WriteRing> writeBuf; ///< per channel
    Picos uncoreRequest;  ///< LLC-miss to DDR-command latency
    Picos uncoreResponse; ///< DDR-data to core latency
    std::uint32_t linesPerRow;
    /** cfg.writeDrainWatermark * entries, hoisted off the write path. */
    std::size_t drainWatermark = 0;
    MemCtrlStats _stats;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_MEMCTRL_HH
