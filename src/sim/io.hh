/**
 * @file
 * DMA-style I/O traffic injector.
 *
 * Models the memory-side footprint of storage/network I/O (the paper's
 * NITS workload drives >2 GB/s from an SSD RAID): bursts of line-sized
 * DRAM reads and writes that consume channel bandwidth but never stall
 * a core. This realizes Eq. 4's IOPI * IOSZ term in the simulator.
 */

#ifndef MEMSENSE_SIM_IO_HH
#define MEMSENSE_SIM_IO_HH

#include <cstdint>

#include "sim/memctrl.hh"
#include "sim/microop.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace memsense::sim
{

/** I/O injector configuration. */
struct IoConfig
{
    double bytesPerSecond = 0.0; ///< target DMA rate; 0 disables
    double readFraction = 0.5;   ///< reads vs. writes mix
    Addr baseAddr = Addr{1} << 40; ///< start of the DMA buffer region
    std::uint64_t rangeBytes = std::uint64_t{1} << 30; ///< region size
    std::uint32_t burstBytes = 64 * 1024; ///< bytes per DMA burst
    std::uint64_t seed = 99;     ///< burst placement seed

    void validate() const;
};

/** I/O traffic counters. */
struct IoCounters
{
    std::uint64_t bursts = 0;
    double bytesRead = 0.0;
    double bytesWritten = 0.0;
};

/** Generates DMA bursts against the memory controller. */
class IoInjector
{
  public:
    /**
     * @param cfg injection parameters
     * @param mem memory controller (borrowed)
     */
    IoInjector(const IoConfig &cfg, MemoryController &mem);

    /** True when injection is enabled (rate > 0). */
    bool enabled() const { return cfg.bytesPerSecond > 0.0; }

    /** Local time of the injector. */
    Picos now() const { return timePs; }

    /** Issue bursts until local time reaches @p until. */
    void runUntil(Picos until);

    /** Counters accessor. */
    const IoCounters &counters() const { return ctrs; }

  private:
    IoConfig cfg;
    MemoryController &mem;
    Rng rng;
    Picos timePs = 0;
    Picos burstGapPs = 0;
    IoCounters ctrs;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_IO_HH
