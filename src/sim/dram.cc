#include "sim/dram.hh"

#include <algorithm>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::sim
{

DramChannel::DramChannel(const DramConfig &config)
    : cfg(config), banks(config.banksPerChannel),
      tCas(nsToPicos(config.tCasNs)), tRcd(nsToPicos(config.tRcdNs)),
      tRp(nsToPicos(config.tRpNs)),
      tTransfer(nsToPicos(config.lineTransferNs())),
      tBusOccupancy(nsToPicos(config.lineTransferNs() *
                              config.busOverheadFactor))
{
    cfg.validate();
}

DramService
DramChannel::access(std::uint32_t bank, std::uint64_t row, Picos arrival)
{
    MS_REQUIRE(bank < banks.size(), "bank index out of range");
    Bank &b = banks[bank];

    Picos start = std::max(arrival, b.readyAt);
    Picos row_latency;
    bool row_hit;
    if (b.openRow == static_cast<std::int64_t>(row)) {
        row_latency = tCas;
        row_hit = true;
    } else if (b.openRow == -1) {
        row_latency = tRcd + tCas;
        row_hit = false;
    } else {
        row_latency = tRp + tRcd + tCas;
        row_hit = false;
    }

    // Command/array access, then win the data bus for the burst.
    Picos data_ready = start + row_latency;
    Picos bus_start = std::max(data_ready, busFreeAt);
    Picos complete = bus_start + tTransfer;

    busFreeAt = bus_start + tBusOccupancy;
    // Column accesses pipeline: on a row hit the bank can accept the
    // next CAS a burst-gap later (tCCD ~ transfer time), not after the
    // whole access; only the row activate/precharge occupies the
    // array. The data bus remains the aggregate throughput limit.
    b.readyAt = start + (row_latency - tCas) + tBusOccupancy;
    b.openRow = static_cast<std::int64_t>(row);

    _stats.busBusy += tBusOccupancy;
    _stats.queueDelay += (start - arrival) + (bus_start - data_ready);
    if (row_hit)
        ++_stats.rowHits;
    else
        ++_stats.rowMisses;

    return {complete, row_hit};
}

DramService
DramChannel::read(std::uint32_t bank, std::uint64_t row, Picos arrival)
{
    ++_stats.reads;
    return access(bank, row, arrival);
}

void
DramChannel::write(std::uint32_t bank, std::uint64_t row, Picos arrival)
{
    ++_stats.writes;
    access(bank, row, arrival);
}

Picos
DramChannel::unloadedReadPs() const
{
    return tRcd + tCas + tTransfer;
}

} // namespace memsense::sim
