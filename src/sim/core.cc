#include "sim/core.hh"

#include <algorithm>
#include <cmath>

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::sim
{

SimCore::SimCore(int id_in, const MachineConfig &machine_cfg,
                 SetAssocCache &shared_llc, MemoryController &memctrl,
                 util::Arena *arena)
    : id(id_in), mc(machine_cfg), clk(machine_cfg.core.ghz),
      l1d("core" + std::to_string(id_in) + ".l1d", machine_cfg.l1d,
          machine_cfg.seed * 7919 + static_cast<std::uint64_t>(id_in),
          arena),
      l2c("core" + std::to_string(id_in) + ".l2", machine_cfg.l2,
          machine_cfg.seed * 104729 + static_cast<std::uint64_t>(id_in),
          arena),
      llc(shared_llc), mem(memctrl), pf(machine_cfg.core.prefetcher)
{
    issueCostPs = static_cast<double>(clk.periodPs()) /
                  mc.core.issueWidth;
    // Hoisted out of the per-access path: apply() charges one issue
    // slot per load/store, and recomputing 1/width there puts an FP
    // divide on every memory access of every sweep worker. Cached as
    // the identical expression so timing is bit-for-bit unchanged.
    issueCyclesPerOp = 1.0 / mc.core.issueWidth;
    {
        int exp = 0;
        // memsense-lint: allow(float-equal): frexp of a power of two
        // returns exactly 0.5 — an exact-sentinel check by design
        issueDivExact = std::frexp(mc.core.issueWidth, &exp) == 0.5;
    }
    robWindowPs = clk.toPicos(mc.core.robWindowCycles);
    mshrBusy.reserve(mc.core.mshrs);
    pfBusy.reserve(mc.core.prefetcher.maxOutstanding);
}

void
SimCore::advanceCycles(double cycles)
{
    // A negative advance would drive carryPs below zero, and casting a
    // negative double to the unsigned Picos type is undefined behavior.
    MS_REQUIRE(cycles >= 0.0,
               "cannot advance the core clock backwards: ", cycles);
    carryPs += cycles * static_cast<double>(clk.periodPs());
    auto whole = static_cast<Picos>(carryPs);
    timePs += whole;
    carryPs -= static_cast<double>(whole);
}

bool
SimCore::runUntil(Picos until)
{
    if (streamEnded) {
        timePs = std::max(timePs, until);
        return false;
    }
    MS_REQUIRE(ops != nullptr, "core has no bound op stream");
    while (timePs < until) {
        if (opPos == opCount) {
            opCount = ops->acquireRun(&opRun);
            opPos = 0;
            if (opCount == 0) {
                streamEnded = true;
                return false;
            }
        }
        apply(opRun[opPos++]);
    }
    return true;
}

void
SimCore::apply(const MicroOp &op)
{
    const Picos before = timePs;
    switch (op.kind) {
      case OpKind::Compute:
        advanceCycles(issueDivExact
                          ? static_cast<double>(op.count) * issueCyclesPerOp
                          : static_cast<double>(op.count) /
                                mc.core.issueWidth);
        ctrs.instructions += op.count;
        break;
      case OpKind::Bubble:
        advanceCycles(static_cast<double>(op.count));
        break;
      case OpKind::Idle:
        advanceCycles(static_cast<double>(op.count));
        break;
      case OpKind::Load:
        advanceCycles(issueCyclesPerOp);
        ++ctrs.instructions;
        ++ctrs.loads;
        access(op, false);
        break;
      case OpKind::Store:
        advanceCycles(issueCyclesPerOp);
        ++ctrs.instructions;
        ++ctrs.stores;
        access(op, true);
        break;
      case OpKind::NtStore:
        advanceCycles(issueCyclesPerOp);
        ++ctrs.instructions;
        ++ctrs.ntStores;
        ++ctrs.writebacks;
        mem.write(op.addr >> kLineShift, timePs);
        break;
    }
    const Picos delta = timePs - before;
    if (op.kind == OpKind::Idle)
        ctrs.idleTime += delta;
    else
        ctrs.busyTime += delta;
}

namespace
{

} // anonymous namespace

void
SimCore::waitForFill(Picos fill_time, bool dependent)
{
    if (dependent) {
        // Dependent consumers wait for the data itself.
        if (fill_time > timePs) {
            ctrs.depStall += fill_time - timePs;
            timePs = fill_time;
            carryPs = 0.0;
        }
        return;
    }
    // Independent consumers can run ahead, but only as far as the
    // ROB/LSQ window; beyond that the core stalls on the in-flight
    // line. This is what throttles prefetch-covered streams to the
    // memory system's service rate.
    if (fill_time > timePs + robWindowPs) {
        Picos target = fill_time - robWindowPs;
        ctrs.robStall += target - timePs;
        timePs = target;
        carryPs = 0.0;
    }
}

void
SimCore::access(const MicroOp &op, bool is_write)
{
    const Addr line = op.addr >> kLineShift;
    const bool dependent = op.dependent && !is_write;

    const bool waits = !is_write; // stores are buffered, never wait

    LookupResult r1 = l1d.lookup(line, is_write, timePs);
    if (r1.hit) {
        if (waits)
            waitForFill(r1.fillTime, dependent);
        return;
    }

    LookupResult r2 = l2c.lookup(line, is_write, timePs);
    if (r2.hit) {
        if (dependent)
            advanceCycles(mc.l2.hitLatencyCycles);
        if (waits)
            waitForFill(r2.fillTime, dependent);
        installIntoL1(line, is_write, r2.fillTime);
        return;
    }

    LookupResult r3 = llc.lookup(line, is_write, timePs);
    if (r3.hit) {
        if (dependent)
            advanceCycles(mc.llcPerCore.hitLatencyCycles);
        if (waits)
            waitForFill(r3.fillTime, dependent);
        installIntoL2(line, is_write, r3.fillTime);
        // First demand touch of a prefetched line keeps the streamer
        // running ahead of the consumption point.
        if (r3.firstPrefetchTouch && !is_write)
            maybePrefetch(op.stream, line);
        return;
    }

    fetchLine(line, is_write, dependent, op.stream);
}

void
SimCore::fetchLine(Addr line, bool is_write, bool dependent,
                   std::uint16_t stream_id)
{
    ++ctrs.llcDemandMisses;
    reserveMshr();

    const Picos issue = timePs;
    const Picos completion = mem.read(line, issue);
    ctrs.dramLatencyTotal += completion - issue;

    installLine(line, is_write, completion);

    if (dependent) {
        ctrs.depStall += completion - timePs;
        timePs = completion;
        carryPs = 0.0;
    } else {
        // Independent misses overlap through the MSHRs; reserveMshr()
        // above is the MLP throttle.
        mshrBusy.push_back(completion);
    }

    // Train the prefetcher on demand reads only; stores rarely train
    // hardware prefetchers and training on them double-counts streams.
    if (!is_write)
        maybePrefetch(stream_id, line);
}

void
SimCore::maybePrefetch(std::uint16_t stream_id, Addr line)
{
    pfCandidates.clear();
    pf.observeMiss(stream_id, line, pfCandidates);
    for (Addr cand : pfCandidates) {
        // Bound in-flight prefetches; drop excess candidates (real
        // prefetchers throttle under memory pressure too).
        for (std::size_t i = 0; i < pfBusy.size();) {
            if (pfBusy[i] <= timePs) {
                pfBusy[i] = pfBusy.back();
                pfBusy.pop_back();
            } else {
                ++i;
            }
        }
        if (pfBusy.size() >= mc.core.prefetcher.maxOutstanding)
            break;
        if (llc.contains(cand))
            continue;
        ++ctrs.llcPrefetchFetches;
        const Picos completion = mem.read(cand, timePs);
        ctrs.dramLatencyTotal += completion - timePs;
        // memsense-lint: allow(no-hot-loop-alloc): capacity reserved
        // to maxOutstanding in the ctor, and the loop breaks at that
        // bound above — the push never grows
        pfBusy.push_back(completion);
        Victim v = llc.insert(cand, false, completion, true);
        if (v.valid && v.dirty) {
            mem.write(v.lineAddr, timePs);
            ++ctrs.writebacks;
        }
    }
}

void
SimCore::installLine(Addr line, bool is_write, Picos fill_time)
{
    Victim v = llc.fillAfterMiss(line, false, fill_time);
    if (v.valid && v.dirty) {
        mem.write(v.lineAddr, timePs);
        ++ctrs.writebacks;
    }
    installIntoL2(line, is_write, fill_time);
}

void
SimCore::installIntoL2(Addr line, bool is_write, Picos fill_time)
{
    Victim v = l2c.fillAfterMiss(line, false, fill_time);
    if (v.valid && v.dirty) {
        // Writeback into the LLC; allocate there if it was evicted
        // (one fused scan: dirty-mark when present, install when not).
        Victim lv = llc.writebackInsert(v.lineAddr, timePs);
        if (lv.valid && lv.dirty) {
            mem.write(lv.lineAddr, timePs);
            ++ctrs.writebacks;
        }
    }
    installIntoL1(line, is_write, fill_time);
}

void
SimCore::installIntoL1(Addr line, bool is_write, Picos fill_time)
{
    Victim v = l1d.fillAfterMiss(line, is_write, fill_time);
    if (v.valid && v.dirty) {
        // Writeback into the L2; allocate there if it was evicted
        // (fused scans, cascading outward as victims stay dirty).
        Victim lv = l2c.writebackInsert(v.lineAddr, timePs);
        if (lv.valid && lv.dirty) {
            Victim llv = llc.writebackInsert(lv.lineAddr, timePs);
            if (llv.valid && llv.dirty) {
                mem.write(llv.lineAddr, timePs);
                ++ctrs.writebacks;
            }
        }
    }
}

void
SimCore::reserveMshr()
{
    // Reclaim completed entries (swap-erase keeps this O(n), and n is
    // the MSHR count, which is small).
    for (std::size_t i = 0; i < mshrBusy.size();) {
        if (mshrBusy[i] <= timePs) {
            mshrBusy[i] = mshrBusy.back();
            mshrBusy.pop_back();
        } else {
            ++i;
        }
    }
    if (mshrBusy.size() < mc.core.mshrs)
        return;

    // All MSHRs busy: stall until the earliest completes.
    auto earliest = std::min_element(mshrBusy.begin(), mshrBusy.end());
    ctrs.mshrStall += *earliest - timePs;
    timePs = *earliest;
    carryPs = 0.0;
    for (std::size_t i = 0; i < mshrBusy.size();) {
        if (mshrBusy[i] <= timePs) {
            mshrBusy[i] = mshrBusy.back();
            mshrBusy.pop_back();
        } else {
            ++i;
        }
    }
}

} // namespace memsense::sim
