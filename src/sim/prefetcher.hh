/**
 * @file
 * Per-core stride/stream prefetcher.
 *
 * Trained on L2 demand misses, keyed by the workload's stream id. Once
 * a stream shows a stable line stride, the prefetcher emits fetch
 * candidates `distance` lines ahead with configurable degree. The
 * paper (Sec. VII) ties low blocking factors to effective prefetching
 * on regular access patterns; the ablation bench flips this component
 * on and off to show exactly that effect.
 */

#ifndef MEMSENSE_SIM_PREFETCHER_HH
#define MEMSENSE_SIM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/microop.hh"

namespace memsense::sim
{

/** Prefetcher statistics. */
struct PrefetcherStats
{
    std::uint64_t trainings = 0; ///< observed demand misses
    std::uint64_t issued = 0;    ///< prefetch candidates emitted
};

/** Stride detector + prefetch generator. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &cfg);

    /**
     * Observe a demand miss and append prefetch candidates (line
     * addresses) to @p out. Candidates may duplicate cached lines;
     * the caller filters against the cache before fetching.
     *
     * @param stream    workload stream id (training key)
     * @param line_addr missing line address
     * @param out       receives candidate line addresses
     */
    void observeMiss(std::uint16_t stream, Addr line_addr,
                     std::vector<Addr> &out);

    /** Statistics accessor. */
    const PrefetcherStats &stats() const { return _stats; }

    /** Drop all training state (e.g. between measurement phases). */
    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t stream = 0;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
    };

    PrefetcherConfig cfg;
    std::vector<Entry> table;
    std::uint64_t useCounter = 0;
    PrefetcherStats _stats;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_PREFETCHER_HH
