/**
 * @file
 * The simulated machine: cores, shared LLC, memory controller, and an
 * optional I/O injector, advanced by a bounded-skew event loop.
 *
 * The loop repeatedly picks the agent (core or injector) with the
 * smallest local time and advances it by one quantum; agents interact
 * only through the LLC and the DRAM resource model, so a quantum of a
 * few hundred cycles bounds cross-agent timestamp skew without a
 * per-event global heap.
 */

#ifndef MEMSENSE_SIM_MACHINE_HH
#define MEMSENSE_SIM_MACHINE_HH

#include <memory>
#include <optional>
#include <vector>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/core.hh"
#include "sim/io.hh"
#include "sim/memctrl.hh"
#include "util/arena.hh"

namespace memsense::sim
{

/** Aggregated machine counters at an instant (for interval sampling). */
struct MachineSnapshot
{
    Picos time = 0;              ///< machine time of the snapshot
    std::uint64_t instructions = 0;
    Picos busyTime = 0;          ///< summed non-idle core time
    Picos idleTime = 0;          ///< summed halted core time
    std::uint64_t memoryFetches = 0; ///< demand + prefetch line reads
    Picos dramLatencyTotal = 0;  ///< summed core-observed DRAM latency
    std::uint64_t writebacks = 0;
    double dramBytesRead = 0.0;  ///< all DRAM reads (cores + IO)
    double dramBytesWritten = 0.0;
    Picos busBusy = 0;           ///< summed channel bus occupancy
    double ioBytes = 0.0;        ///< injected DMA bytes

    /** Difference of two snapshots (this - earlier). */
    MachineSnapshot operator-(const MachineSnapshot &earlier) const;

    /** Effective CPI over the busy (non-halted) interval. */
    double cpi(double ghz) const;

    /** Misses (demand + prefetch) per kilo-instruction. */
    double mpki() const;

    /** Average miss penalty in ns. */
    double avgMissPenaltyNs() const;

    /** Average miss penalty in core cycles at @p ghz. */
    double avgMissPenaltyCycles(double ghz) const
    {
        return avgMissPenaltyNs() * ghz;
    }

    /** Writebacks per miss (WBR). */
    double wbr() const;

    /** Total DRAM bandwidth over the interval, bytes/second. */
    double dramBandwidth() const;

    /** CPU (non-halt) utilization of the interval. */
    double cpuUtilization() const;
};

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    // The machine owns cores holding references to its LLC/controller;
    // moving would dangle them.
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Attach @p stream to core @p core_idx (borrowed reference). */
    void bind(int core_idx, OpStream &stream);

    /** Enable the DMA injector. */
    void setIo(const IoConfig &io_cfg);

    /**
     * Advance the machine by @p duration of simulated time.
     *
     * @return false when every bound stream ended before the deadline
     */
    bool runFor(Picos duration);

    /** Current machine time (the run deadline reached so far). */
    Picos now() const { return currentTime; }

    /** Aggregate counters for interval sampling. */
    MachineSnapshot snapshot() const;

    /** Core accessor. */
    SimCore &core(int i);
    const SimCore &core(int i) const;

    /** Number of cores. */
    int coreCount() const { return static_cast<int>(cores.size()); }

    /** Memory controller accessor. */
    MemoryController &memctrl() { return mem; }
    const MemoryController &memctrl() const { return mem; }

    /** Shared LLC accessor. */
    SetAssocCache &llc() { return sharedLlc; }
    const SetAssocCache &llc() const { return sharedLlc; }

    /** Configuration in use. */
    const MachineConfig &config() const { return cfg; }

  private:
    MachineConfig cfg;
    /**
     * Bump allocator backing the hot per-access state (cache way
     * arrays, write rings). Declared before its consumers so it is
     * destroyed last; one arena per Machine keeps its blocks local to
     * the sweep worker that owns the Machine.
     */
    util::Arena arena;
    MemoryController mem;
    SetAssocCache sharedLlc;
    std::vector<std::unique_ptr<SimCore>> cores;
    std::optional<IoInjector> io;
    Picos currentTime = 0;
    Picos quantum;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_MACHINE_HH
