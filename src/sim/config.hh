/**
 * @file
 * Simulator configuration: core, cache hierarchy, and DDR parameters.
 *
 * Defaults approximate a Xeon E5-2600-class socket (the paper's test
 * platform): 8 cores, 32 KB L1D, 256 KB L2, 2.5 MB LLC per core, four
 * DDR3 channels, ~75 ns unloaded memory latency.
 */

#ifndef MEMSENSE_SIM_CONFIG_HH
#define MEMSENSE_SIM_CONFIG_HH

#include <cstdint>

namespace memsense::sim
{

/** Cache line size in bytes (fixed across the hierarchy). */
constexpr std::uint32_t kLineBytes = 64;
/** log2(kLineBytes). */
constexpr std::uint32_t kLineShift = 6;

/** Replacement policies supported by SetAssocCache. */
enum class ReplacementKind : std::uint8_t
{
    Lru,    ///< least recently used (timestamp based)
    Random, ///< random victim
    Srrip,  ///< static re-reference interval prediction (2-bit)
};

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024; ///< total capacity
    std::uint32_t ways = 8;              ///< associativity
    ReplacementKind replacement = ReplacementKind::Lru;
    std::uint32_t hitLatencyCycles = 4;  ///< visible hit cost (cycles)

    /** Number of sets implied by the geometry. */
    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * kLineBytes);
    }

    /** Throws ConfigError on inconsistent geometry. */
    void validate() const;
};

/** Stride prefetcher configuration. */
struct PrefetcherConfig
{
    bool enabled = true;
    std::uint32_t tableEntries = 16; ///< tracked streams per core
    std::uint32_t degree = 4;        ///< prefetches issued per trigger
    std::uint32_t distance = 8;      ///< lines ahead of the demand miss
    std::uint32_t trainThreshold = 2;///< matching strides before firing
    std::uint32_t maxOutstanding = 32; ///< in-flight prefetch cap/core

    void validate() const;
};

/** Core pipeline abstraction. */
struct CoreConfig
{
    double ghz = 2.7;            ///< core clock
    double issueWidth = 4.0;     ///< compute instructions per cycle
    std::uint32_t mshrs = 10;    ///< outstanding LLC misses per core
    std::uint32_t storeBufferDrainCycles = 1; ///< visible store cost
    /** How far (in cycles) the core can run ahead of an independent
     *  load whose data has not arrived yet — the ROB/LSQ slack. Once
     *  an in-flight line's fill time exceeds now + this window, the
     *  core stalls; without this bound a fully prefetch-covered
     *  stream would consume data faster than DRAM can deliver it. */
    std::uint32_t robWindowCycles = 160;
    PrefetcherConfig prefetcher; ///< per-core L2 prefetcher

    void validate() const;
};

/** DDR channel timing and geometry. */
struct DramConfig
{
    int channels = 4;
    double megaTransfers = 1866.7; ///< MT/s per channel
    std::uint32_t banksPerChannel = 16; ///< 8 banks x 2 ranks
    double tCasNs = 13.9;  ///< column access (row hit) latency
    double tRcdNs = 13.9;  ///< RAS-to-CAS delay
    double tRpNs = 13.9;   ///< precharge time
    std::uint32_t rowBytes = 8192; ///< row-buffer size per bank
    double uncoreNs = 28.5;///< fixed on-die path (L3 miss to DDR cmd
                           ///< and data return), both directions total;
                           ///< chosen so the unloaded random-access
                           ///< latency lands at the paper's ~75 ns
    /** Multiplier on data-bus occupancy per burst, accounting for
     *  read/write turnaround, refresh, and scheduling gaps that the
     *  O(1) resource model does not simulate directly. 1.25 lands the
     *  sustainable random-traffic efficiency near the ~70% of peak
     *  the paper observed. */
    double busOverheadFactor = 1.25;
    std::uint32_t writeBufferEntries = 64; ///< posted writes per channel
    /** Writes are drained when the buffer exceeds this fill level. */
    double writeDrainWatermark = 0.5;

    /** Data transfer time for one line, in ns. */
    double lineTransferNs() const
    {
        return static_cast<double>(kLineBytes) / 8.0 /
               (megaTransfers * 1e6) * 1e9;
    }

    /** Peak bandwidth of all channels in bytes/second. */
    double peakBandwidth() const
    {
        return static_cast<double>(channels) * megaTransfers * 1e6 * 8.0;
    }

    /** Unloaded (compulsory) read latency in ns: uncore + row miss. */
    double unloadedLatencyNs() const
    {
        return uncoreNs + tRcdNs + tCasNs + lineTransferNs();
    }

    void validate() const;
};

/** Whole-machine configuration. */
struct MachineConfig
{
    int cores = 8;
    CoreConfig core;
    CacheConfig l1d{32 * 1024, 8, ReplacementKind::Lru, 0};
    CacheConfig l2{256 * 1024, 8, ReplacementKind::Lru, 6};
    /** Shared LLC; sizeBytes is PER CORE and scaled by core count. */
    CacheConfig llcPerCore{2560 * 1024, 20, ReplacementKind::Lru, 18};
    DramConfig dram;
    std::uint64_t seed = 1; ///< machine-level RNG seed (replacement etc.)
    /** Start with a full (clean) LLC so capacity-eviction behavior —
     *  and with it the measured writeback rate — is in steady state
     *  from the first cycle instead of after a long cold window. */
    bool prefillLlc = true;

    /** Total shared LLC capacity. */
    std::uint64_t llcTotalBytes() const
    {
        return llcPerCore.sizeBytes * static_cast<std::uint64_t>(cores);
    }

    void validate() const;
};

} // namespace memsense::sim

#endif // MEMSENSE_SIM_CONFIG_HH
