#include "sim/cache.hh"

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::sim
{

SetAssocCache::SetAssocCache(std::string name_in, const CacheConfig &config,
                             std::uint64_t seed)
    : _name(std::move(name_in)), cfg(config), rng(seed)
{
    // Validate before deriving the geometry: sets() divides by the
    // way count, so a zero-way config must be rejected first.
    cfg.validate();
    numSets = cfg.sets();
    if (numSets > 0 && (numSets & (numSets - 1)) == 0)
        setMask = numSets - 1;
    ways.resize(static_cast<std::size_t>(numSets) * cfg.ways);
    MS_ENSURE(numSets >= 1, _name, ": derived geometry has no sets");
    MS_INVARIANT(ways.size() ==
                     static_cast<std::size_t>(numSets) * cfg.ways,
                 _name, ": way array does not match sets x ways");
}

LookupResult
SetAssocCache::lookup(Addr line_addr, bool is_write, Picos now)
{
    (void)now;
    const std::size_t base = setBase(setIndex(line_addr));
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        Way &w = ways[i];
        if (w.valid && w.tag == line_addr) {
            w.lastUse = ++useCounter;
            w.rrpv = 0;
            if (is_write)
                w.dirty = true;
            ++_stats.hits;
            bool first_touch = w.prefetched;
            w.prefetched = false;
            return {true, w.fillTime, first_touch};
        }
    }
    ++_stats.misses;
    return {false, 0, false};
}

bool
SetAssocCache::contains(Addr line_addr) const
{
    const std::size_t base = setBase(setIndex(line_addr));
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        if (ways[i].valid && ways[i].tag == line_addr)
            return true;
    }
    return false;
}

std::size_t
SetAssocCache::pickVictim(std::size_t base)
{
    switch (cfg.replacement) {
      case ReplacementKind::Lru: {
        std::size_t victim = base;
        std::uint64_t oldest = ways[base].lastUse;
        for (std::size_t i = base + 1; i < base + cfg.ways; ++i) {
            if (ways[i].lastUse < oldest) {
                oldest = ways[i].lastUse;
                victim = i;
            }
        }
        return victim;
      }
      case ReplacementKind::Random:
        return base + static_cast<std::size_t>(rng.nextBounded(cfg.ways));
      case ReplacementKind::Srrip: {
        // Find an RRPV-3 line, aging the set until one appears.
        for (;;) {
            for (std::size_t i = base; i < base + cfg.ways; ++i) {
                if (ways[i].rrpv >= 3)
                    return i;
            }
            for (std::size_t i = base; i < base + cfg.ways; ++i)
                ++ways[i].rrpv;
        }
      }
    }
    throw LogicError("unknown replacement policy");
}

Victim
SetAssocCache::insert(Addr line_addr, bool dirty, Picos fill_time,
                      bool prefetched)
{
    const std::size_t base = setBase(setIndex(line_addr));

    // Already present (racing fill): refresh state, no eviction.
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        Way &w = ways[i];
        if (w.valid && w.tag == line_addr) {
            w.dirty = w.dirty || dirty;
            w.lastUse = ++useCounter;
            return {};
        }
    }

    // Prefer an invalid way.
    std::size_t slot = base + cfg.ways;
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        if (!ways[i].valid) {
            slot = i;
            break;
        }
    }

    Victim victim;
    if (slot == base + cfg.ways) {
        slot = pickVictim(base);
        MS_INVARIANT(slot < ways.size(),
                     _name, ": victim slot ", slot, " out of range");
        Way &w = ways[slot];
        victim.valid = true;
        victim.dirty = w.dirty;
        victim.lineAddr = w.tag;
        ++_stats.evictions;
        if (w.dirty)
            ++_stats.dirtyEvictions;
    }

    Way &w = ways[slot];
    w.tag = line_addr;
    w.valid = true;
    w.dirty = dirty;
    w.lastUse = ++useCounter;
    w.rrpv = 2; // SRRIP long re-reference insertion
    w.prefetched = prefetched;
    w.fillTime = fill_time;
    ++_stats.fills;
    return victim;
}

bool
SetAssocCache::invalidate(Addr line_addr)
{
    const std::size_t base = setBase(setIndex(line_addr));
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        Way &w = ways[i];
        if (w.valid && w.tag == line_addr) {
            w.valid = false;
            bool was_dirty = w.dirty;
            w.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

bool
SetAssocCache::markDirtyIfPresent(Addr line_addr)
{
    const std::size_t base = setBase(setIndex(line_addr));
    for (std::size_t i = base; i < base + cfg.ways; ++i) {
        Way &w = ways[i];
        if (w.valid && w.tag == line_addr) {
            w.dirty = true;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::prefill()
{
    // Tags from the top of the address space cannot collide with
    // workload arenas (which sit near 2^44); line (base + w*sets + s)
    // maps to set s under the modulo indexing.
    constexpr Addr kDummyBase = Addr{1} << 56;
    for (std::uint64_t s = 0; s < numSets; ++s) {
        const std::size_t base = setBase(s);
        for (std::uint32_t w = 0; w < cfg.ways; ++w) {
            Way &way = ways[base + w];
            if (way.valid)
                continue;
            way.tag = kDummyBase + w * numSets + s;
            way.valid = true;
            way.dirty = false;
            way.lastUse = 0; // evict dummies before any real line
            way.rrpv = 3;
            way.fillTime = 0;
        }
    }
}

std::uint64_t
SetAssocCache::validLineCount() const
{
    std::uint64_t n = 0;
    for (const auto &w : ways)
        if (w.valid)
            ++n;
    return n;
}

} // namespace memsense::sim
