#include "sim/cache.hh"

#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::sim
{

SetAssocCache::SetAssocCache(std::string name_in, const CacheConfig &config,
                             std::uint64_t seed, util::Arena *arena)
    : _name(std::move(name_in)), cfg(config), rng(seed)
{
    // Validate before deriving the geometry: sets() divides by the
    // way count, so a zero-way config must be rejected first.
    cfg.validate();
    numSets = cfg.sets();
    if (numSets > 0 && (numSets & (numSets - 1)) == 0)
        setMask = numSets - 1;
    MS_ENSURE(numSets >= 1, _name, ": derived geometry has no sets");

    // Per-set block layout: tags, lastUse, fillTimes (8 bytes per
    // way each), then the meta and rrpv bytes; the stride rounds up
    // to a cache line so sets never share a line.
    const std::size_t w = cfg.ways;
    lastUseOff = 8 * w;
    fillOff = 16 * w;
    metaOff = 24 * w;
    rrpvOff = 25 * w;
    setStride = (26 * w + (util::AlignedSlab::kAlign - 1)) &
                ~(util::AlignedSlab::kAlign - 1);
    // No pre-zeroing: tags and rrpvs are the only fields read before
    // an install, and the loop below writes them. Every other field
    // (lastUse, fillTimes, meta) is written by insert()/prefill()
    // before any path reads it — pickVictim and the hit path only
    // touch ways whose tag is valid, i.e. ways that were installed.
    slab.init(static_cast<std::size_t>(numSets) * setStride, arena,
              /*zero=*/false);
    for (std::uint64_t s = 0; s < numSets; ++s) {
        unsigned char *blk = setBlock(s);
        Addr *tags = tagsOf(blk);
        std::uint8_t *rrpvs = rrpvsOf(blk);
        for (std::uint32_t i = 0; i < cfg.ways; ++i) {
            tags[i] = kInvalidTag;
            rrpvs[i] = 3;
        }
    }
}

LookupResult
SetAssocCache::lookup(Addr line_addr, bool is_write, Picos now)
{
    (void)now;
    unsigned char *blk = setBlock(setIndex(line_addr));
    const Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr) {
            lastUseOf(blk)[i] = ++useCounter;
            rrpvsOf(blk)[i] = 0;
            std::uint8_t *meta = metaOf(blk);
            std::uint8_t m = meta[i];
            const bool first_touch = (m & kPrefetched) != 0;
            if (is_write)
                m |= kDirty;
            meta[i] = m & static_cast<std::uint8_t>(~kPrefetched);
            ++_stats.hits;
            return {true, fillTimesOf(blk)[i], first_touch};
        }
    }
    // Miss: remember this scan for fillAfterMiss(). The tag array is
    // host-cache hot after the scan above, so finding the first
    // invalid way here is nearly free — unlike the cold re-scan a
    // plain insert() would do at fill time.
    std::uint32_t invalid = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == kInvalidTag) {
            invalid = i;
            break;
        }
    }
    fillHintBlk = blk;
    fillHintLine = line_addr;
    fillHintSlot = invalid;
    ++_stats.misses;
    return {false, 0, false};
}

bool
SetAssocCache::contains(Addr line_addr) const
{
    const Addr *tags = tagsOf(setBlock(setIndex(line_addr)));
    const std::uint32_t n = cfg.ways;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr)
            return true;
    }
    return false;
}

std::uint32_t
SetAssocCache::pickVictim(unsigned char *blk)
{
    const std::uint32_t n = cfg.ways;
    switch (cfg.replacement) {
      case ReplacementKind::Lru: {
        const std::uint64_t *lastUse = lastUseOf(blk);
        std::uint32_t victim = 0;
        std::uint64_t oldest = lastUse[0];
        for (std::uint32_t i = 1; i < n; ++i) {
            if (lastUse[i] < oldest) {
                oldest = lastUse[i];
                victim = i;
            }
        }
        return victim;
      }
      case ReplacementKind::Random:
        return static_cast<std::uint32_t>(rng.nextBounded(n));
      case ReplacementKind::Srrip: {
        // Find an RRPV-3 line, aging the set until one appears.
        std::uint8_t *rrpvs = rrpvsOf(blk);
        for (;;) {
            for (std::uint32_t i = 0; i < n; ++i) {
                if (rrpvs[i] >= 3)
                    return i;
            }
            for (std::uint32_t i = 0; i < n; ++i)
                ++rrpvs[i];
        }
      }
    }
    throw LogicError("unknown replacement policy");
}

Victim
SetAssocCache::insert(Addr line_addr, bool dirty, Picos fill_time,
                      bool prefetched)
{
    MS_INVARIANT(line_addr != kInvalidTag,
                 _name, ": line address collides with the empty-way tag");
    unsigned char *blk = setBlock(setIndex(line_addr));
    Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;

    // One scan finds both a racing fill (already present: refresh, no
    // eviction) and the first invalid way (preferred install slot).
    std::uint32_t slot = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr) {
            if (dirty)
                metaOf(blk)[i] |= kDirty;
            lastUseOf(blk)[i] = ++useCounter;
            return {};
        }
        if (tags[i] == kInvalidTag && slot == n)
            slot = i;
    }

    Victim victim;
    if (slot == n) {
        slot = pickVictim(blk);
        MS_INVARIANT(slot < n,
                     _name, ": victim slot ", slot, " out of range");
        victim.valid = true;
        victim.dirty = (metaOf(blk)[slot] & kDirty) != 0;
        victim.lineAddr = tags[slot];
        ++_stats.evictions;
        if (victim.dirty)
            ++_stats.dirtyEvictions;
    }

    tags[slot] = line_addr;
    lastUseOf(blk)[slot] = ++useCounter;
    rrpvsOf(blk)[slot] = 2; // SRRIP long re-reference insertion
    metaOf(blk)[slot] = static_cast<std::uint8_t>(
        (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0));
    fillTimesOf(blk)[slot] = fill_time;
    ++_stats.fills;
    return victim;
}

bool
SetAssocCache::invalidate(Addr line_addr)
{
    unsigned char *blk = setBlock(setIndex(line_addr));
    Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr) {
            tags[i] = kInvalidTag;
            std::uint8_t *meta = metaOf(blk);
            const bool was_dirty = (meta[i] & kDirty) != 0;
            meta[i] = static_cast<std::uint8_t>(meta[i] & ~kDirty);
            return was_dirty;
        }
    }
    return false;
}

Victim
SetAssocCache::fillAfterMiss(Addr line_addr, bool dirty, Picos fill_time,
                             bool prefetched)
{
    MS_INVARIANT(fillHintBlk != nullptr && fillHintLine == line_addr,
                 _name, ": fillAfterMiss without a matching miss");
    unsigned char *blk = fillHintBlk;
    fillHintBlk = nullptr;
    Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;

    // Install exactly as insert() would: the hinted slot replaces the
    // scan (the line cannot be present — nothing touched this cache
    // since its miss), and a full set falls through to the victim
    // policy with an unchanged decision sequence.
    std::uint32_t slot = fillHintSlot;
    Victim victim;
    if (slot == n) {
        slot = pickVictim(blk);
        MS_INVARIANT(slot < n,
                     _name, ": victim slot ", slot, " out of range");
        victim.valid = true;
        victim.dirty = (metaOf(blk)[slot] & kDirty) != 0;
        victim.lineAddr = tags[slot];
        ++_stats.evictions;
        if (victim.dirty)
            ++_stats.dirtyEvictions;
    }

    tags[slot] = line_addr;
    lastUseOf(blk)[slot] = ++useCounter;
    rrpvsOf(blk)[slot] = 2; // SRRIP long re-reference insertion
    metaOf(blk)[slot] = static_cast<std::uint8_t>(
        (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0));
    fillTimesOf(blk)[slot] = fill_time;
    ++_stats.fills;
    return victim;
}

Victim
SetAssocCache::writebackInsert(Addr line_addr, Picos now)
{
    MS_INVARIANT(line_addr != kInvalidTag,
                 _name, ": line address collides with the empty-way tag");
    unsigned char *blk = setBlock(setIndex(line_addr));
    Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;

    // One scan: a present line takes the markDirtyIfPresent() path
    // (dirty bit only — a writeback is not a reuse, so recency and
    // statistics stay untouched); the scan also remembers the first
    // invalid way in case the line is absent.
    std::uint32_t slot = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr) {
            metaOf(blk)[i] |= kDirty;
            return {};
        }
        if (tags[i] == kInvalidTag && slot == n)
            slot = i;
    }

    // Absent: install dirty, exactly as insert(line, true, now) would.
    Victim victim;
    if (slot == n) {
        slot = pickVictim(blk);
        MS_INVARIANT(slot < n,
                     _name, ": victim slot ", slot, " out of range");
        victim.valid = true;
        victim.dirty = (metaOf(blk)[slot] & kDirty) != 0;
        victim.lineAddr = tags[slot];
        ++_stats.evictions;
        if (victim.dirty)
            ++_stats.dirtyEvictions;
    }

    tags[slot] = line_addr;
    lastUseOf(blk)[slot] = ++useCounter;
    rrpvsOf(blk)[slot] = 2; // SRRIP long re-reference insertion
    metaOf(blk)[slot] = kDirty;
    fillTimesOf(blk)[slot] = now;
    ++_stats.fills;
    return victim;
}

bool
SetAssocCache::markDirtyIfPresent(Addr line_addr)
{
    unsigned char *blk = setBlock(setIndex(line_addr));
    const Addr *tags = tagsOf(blk);
    const std::uint32_t n = cfg.ways;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[i] == line_addr) {
            metaOf(blk)[i] |= kDirty;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::prefill()
{
    // Tags from the top of the address space cannot collide with
    // workload arenas (which sit near 2^44); line (base + w*sets + s)
    // maps to set s under the modulo indexing.
    constexpr Addr kDummyBase = Addr{1} << 56;
    for (std::uint64_t s = 0; s < numSets; ++s) {
        unsigned char *blk = setBlock(s);
        Addr *tags = tagsOf(blk);
        for (std::uint32_t w = 0; w < cfg.ways; ++w) {
            if (tags[w] != kInvalidTag)
                continue;
            tags[w] = kDummyBase + w * numSets + s;
            lastUseOf(blk)[w] = 0; // evict dummies before any real line
            rrpvsOf(blk)[w] = 3;
            metaOf(blk)[w] = 0;
            fillTimesOf(blk)[w] = 0;
        }
    }
}

std::uint64_t
SetAssocCache::validLineCount() const
{
    std::uint64_t n = 0;
    for (std::uint64_t s = 0; s < numSets; ++s) {
        const Addr *tags = tagsOf(setBlock(s));
        for (std::uint32_t w = 0; w < cfg.ways; ++w)
            if (tags[w] != kInvalidTag)
                ++n;
    }
    return n;
}

} // namespace memsense::sim
