#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/string_util.hh"

namespace memsense::stats
{

Histogram::Histogram(double lower, double upper, std::size_t bin_count)
    : lo(lower), hi(upper), width((upper - lower) /
                                  static_cast<double>(bin_count)),
      counts(bin_count, 0)
{
    requireConfig(upper > lower, "histogram needs hi > lo");
    requireConfig(bin_count >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++n;
    // NaN compares false against both range bounds and would fall
    // through to the double->index cast below (undefined for NaN);
    // quarantine it in its own bucket instead.
    if (std::isnan(x)) {
        ++nan;
        return;
    }
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    // Cap in the double domain: rounding can push (x - lo) / width to
    // counts.size() even with x < hi, and an out-of-range
    // double->integer cast is UB.
    auto b = static_cast<std::size_t>(
        std::min((x - lo) / width,
                 static_cast<double>(counts.size() - 1)));
    ++counts[b];
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    requireInvariant(i < counts.size(), "histogram bin out of range");
    return counts[i];
}

double
Histogram::binCenter(std::size_t i) const
{
    requireInvariant(i < counts.size(), "histogram bin out of range");
    return lo + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::quantile(double q) const
{
    requireConfig(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    requireConfig(n > 0, "quantile of empty histogram");
    // memsense-lint: allow(unclamped-double-to-int): q in [0, 1] is
    // enforced above, so q * n never exceeds the sample count
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(n));
    std::uint64_t seen = under;
    if (seen > target)
        return lo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen > target)
            return binCenter(i);
    }
    return hi;
}

std::string
Histogram::sketch(std::size_t sketch_width) const
{
    std::uint64_t peak = 1;
    for (auto c : counts)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        auto bar = static_cast<std::size_t>(
            (counts[i] * sketch_width + peak - 1) / peak);
        out += strformat("%12.3f | ", binCenter(i));
        out += std::string(bar, '#');
        out += strformat("  (%llu)\n",
                         static_cast<unsigned long long>(counts[i]));
    }
    return out;
}

} // namespace memsense::stats
