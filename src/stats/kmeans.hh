/**
 * @file
 * Small-dimension k-means clustering.
 *
 * Used by the classifier (paper Fig. 6) to verify that the workload
 * classes form distinct clusters in (blocking factor, memory references
 * per cycle) space, complementing the paper's a-priori class means.
 */

#ifndef MEMSENSE_STATS_KMEANS_HH
#define MEMSENSE_STATS_KMEANS_HH

#include <cstdint>
#include <vector>

namespace memsense::stats
{

/** A point in d-dimensional space. */
using Point = std::vector<double>;

/** Result of a k-means run. */
struct KMeansResult
{
    std::vector<Point> centroids;       ///< final cluster centers
    std::vector<std::size_t> assignment;///< cluster index per input point
    double inertia = 0.0;               ///< sum of squared distances
    std::size_t iterations = 0;         ///< iterations until convergence
    bool converged = false;             ///< true if assignments stabilized
};

/** Configuration for kMeans(). */
struct KMeansConfig
{
    std::size_t k = 2;          ///< number of clusters
    std::size_t maxIters = 100; ///< iteration cap
    std::size_t restarts = 8;   ///< independent restarts, best kept
    std::uint64_t seed = 1;     ///< RNG seed for k-means++ init
};

/**
 * Lloyd's algorithm with k-means++ initialization and restarts.
 *
 * @param points input points; all must share one dimensionality
 * @param cfg    clustering configuration
 * @return best-inertia result over the restarts
 */
KMeansResult kMeans(const std::vector<Point> &points,
                    const KMeansConfig &cfg);

/** Squared Euclidean distance between equal-dimension points. */
double squaredDistance(const Point &a, const Point &b);

} // namespace memsense::stats

#endif // MEMSENSE_STATS_KMEANS_HH
