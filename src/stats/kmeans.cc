#include "stats/kmeans.hh"

#include <limits>

#include "util/error.hh"
#include "util/rng.hh"

namespace memsense::stats
{

double
squaredDistance(const Point &a, const Point &b)
{
    requireInvariant(a.size() == b.size(), "dimension mismatch");
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

namespace
{

std::vector<Point>
initPlusPlus(const std::vector<Point> &points, std::size_t k, Rng &rng)
{
    std::vector<Point> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.nextBounded(points.size())]);

    std::vector<double> d2(points.size());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : centroids)
                best = std::min(best, squaredDistance(points[i], c));
            d2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; duplicate.
            centroids.push_back(points[rng.nextBounded(points.size())]);
            continue;
        }
        double r = rng.nextDouble() * total;
        std::size_t pick = 0;
        for (; pick + 1 < points.size(); ++pick) {
            r -= d2[pick];
            if (r <= 0.0)
                break;
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

KMeansResult
lloyd(const std::vector<Point> &points, std::size_t k, std::size_t max_iters,
      Rng &rng)
{
    const std::size_t dim = points[0].size();
    KMeansResult res;
    res.centroids = initPlusPlus(points, k, rng);
    res.assignment.assign(points.size(), 0);

    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::size_t best_c = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < k; ++c) {
                double d = squaredDistance(points[i], res.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best_c = c;
                }
            }
            if (res.assignment[i] != best_c) {
                res.assignment[i] = best_c;
                changed = true;
            }
        }

        std::vector<Point> sums(k, Point(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            for (std::size_t d = 0; d < dim; ++d)
                sums[res.assignment[i]][d] += points[i][d];
            ++counts[res.assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster on a random point.
                res.centroids[c] = points[rng.nextBounded(points.size())];
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d) {
                res.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }

        res.iterations = iter + 1;
        if (!changed) {
            res.converged = true;
            break;
        }
    }

    res.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        res.inertia +=
            squaredDistance(points[i], res.centroids[res.assignment[i]]);
    }
    return res;
}

} // anonymous namespace

KMeansResult
kMeans(const std::vector<Point> &points, const KMeansConfig &cfg)
{
    requireConfig(!points.empty(), "k-means on empty point set");
    requireConfig(cfg.k >= 1 && cfg.k <= points.size(),
                  "k must be in [1, #points]");
    const std::size_t dim = points[0].size();
    for (const auto &p : points)
        requireConfig(p.size() == dim, "points must share dimensionality");

    Rng rng(cfg.seed);
    KMeansResult best;
    best.inertia = std::numeric_limits<double>::max();
    std::size_t restarts = std::max<std::size_t>(1, cfg.restarts);
    for (std::size_t r = 0; r < restarts; ++r) {
        KMeansResult res = lloyd(points, cfg.k, cfg.maxIters, rng);
        if (res.inertia < best.inertia)
            best = std::move(res);
    }
    return best;
}

} // namespace memsense::stats
