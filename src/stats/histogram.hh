/**
 * @file
 * Fixed-width histogram, used for latency distributions in the DRAM
 * model and for time-series summaries in the characterization benches.
 */

#ifndef MEMSENSE_STATS_HISTOGRAM_HH
#define MEMSENSE_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace memsense::stats
{

/** Fixed-width histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo   inclusive lower bound of the tracked range
     * @param hi   exclusive upper bound
     * @param bins number of equal-width bins
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /** Count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Center x of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Number of bins (excluding under/overflow). */
    std::size_t bins() const { return counts.size(); }

    /** Observations below the range. */
    std::uint64_t underflow() const { return under; }

    /** Observations at or above the range (+inf lands here). */
    std::uint64_t overflow() const { return over; }

    /** NaN observations (counted in total(), in no range bucket). */
    std::uint64_t nanCount() const { return nan; }

    /** Total observations including under/overflow. */
    std::uint64_t total() const { return n; }

    /** Approximate quantile from bin centers; @p q in [0, 1]. */
    double quantile(double q) const;

    /** Render an ASCII sketch, one line per non-empty bin. */
    std::string sketch(std::size_t width = 40) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t nan = 0;
    std::uint64_t n = 0;
};

} // namespace memsense::stats

#endif // MEMSENSE_STATS_HISTOGRAM_HH
