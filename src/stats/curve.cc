#include "stats/curve.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace memsense::stats
{

PiecewiseCurve::PiecewiseCurve(std::vector<CurvePoint> pts)
{
    std::sort(pts.begin(), pts.end(),
              [](const CurvePoint &a, const CurvePoint &b) {
                  return a.x < b.x;
              });
    // Average duplicate x values so at() is a function.
    for (std::size_t i = 0; i < pts.size();) {
        std::size_t j = i;
        double sum = 0.0;
        // memsense-lint: allow(float-equal): collapsing exact-duplicate knots
        while (j < pts.size() && pts[j].x == pts[i].x) {
            sum += pts[j].y;
            ++j;
        }
        knots.push_back({pts[i].x, sum / static_cast<double>(j - i)});
        i = j;
    }
}

const CurvePoint &
PiecewiseCurve::knot(std::size_t i) const
{
    requireInvariant(i < knots.size(), "curve knot out of range");
    return knots[i];
}

double
PiecewiseCurve::minX() const
{
    requireInvariant(!knots.empty(), "minX of empty curve");
    return knots.front().x;
}

double
PiecewiseCurve::maxX() const
{
    requireInvariant(!knots.empty(), "maxX of empty curve");
    return knots.back().x;
}

double
PiecewiseCurve::at(double x) const
{
    requireInvariant(!knots.empty(), "evaluating empty curve");
    if (knots.size() == 1)
        return knots.front().y;
    if (x <= knots.front().x)
        return knots.front().y;

    auto it = std::lower_bound(knots.begin(), knots.end(), x,
                               [](const CurvePoint &p, double v) {
                                   return p.x < v;
                               });
    std::size_t hi_idx;
    if (it == knots.end()) {
        hi_idx = knots.size() - 1; // extrapolate on the last segment
    } else {
        hi_idx = static_cast<std::size_t>(it - knots.begin());
        if (hi_idx == 0)
            return knots.front().y;
    }
    const CurvePoint &a = knots[hi_idx - 1];
    const CurvePoint &b = knots[hi_idx];
    double t = (x - a.x) / (b.x - a.x);
    return a.y + t * (b.y - a.y);
}

bool
PiecewiseCurve::isMonotoneNonDecreasing() const
{
    for (std::size_t i = 1; i < knots.size(); ++i)
        if (knots[i].y < knots[i - 1].y)
            return false;
    return true;
}

PiecewiseCurve
PiecewiseCurve::fromSamples(const std::vector<CurvePoint> &samples,
                            std::size_t bins)
{
    requireConfig(!samples.empty(), "no samples to build curve from");
    requireConfig(bins >= 1, "need at least one bin");

    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    for (const auto &s : samples) {
        lo = std::min(lo, s.x);
        hi = std::max(hi, s.x);
    }
    // memsense-lint: allow(float-equal): degenerate all-equal-x input
    if (lo == hi)
        return PiecewiseCurve({{lo, 0.0}}); // degenerate; averaged below

    std::vector<double> ysum(bins, 0.0);
    std::vector<double> xsum(bins, 0.0);
    std::vector<std::size_t> count(bins, 0);
    double width = (hi - lo) / static_cast<double>(bins);
    for (const auto &s : samples) {
        // Cap in the double domain: s.x == hi lands exactly on `bins`,
        // and an out-of-range double->integer cast is UB.
        auto b = static_cast<std::size_t>(std::min(
            (s.x - lo) / width, static_cast<double>(bins - 1)));
        ysum[b] += s.y;
        xsum[b] += s.x;
        ++count[b];
    }

    std::vector<CurvePoint> knots;
    for (std::size_t b = 0; b < bins; ++b) {
        if (count[b] == 0)
            continue;
        double cnt = static_cast<double>(count[b]);
        knots.push_back({xsum[b] / cnt, ysum[b] / cnt});
    }
    return PiecewiseCurve(std::move(knots));
}

PiecewiseCurve
PiecewiseCurve::composite(const std::vector<PiecewiseCurve> &curves,
                          std::size_t bins)
{
    requireConfig(!curves.empty(), "composite of zero curves");
    requireConfig(bins >= 2, "composite needs at least two bins");
    double lo = std::numeric_limits<double>::lowest();
    double hi = std::numeric_limits<double>::max();
    for (const auto &c : curves) {
        requireConfig(!c.empty(), "composite input curve is empty");
        lo = std::max(lo, c.minX());
        hi = std::min(hi, c.maxX());
    }
    requireConfig(lo < hi, "composite curves have disjoint x domains");

    std::vector<CurvePoint> knots;
    knots.reserve(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        double x = lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(bins - 1);
        double y = 0.0;
        for (const auto &c : curves)
            y += c.at(x);
        knots.push_back({x, y / static_cast<double>(curves.size())});
    }
    return PiecewiseCurve(std::move(knots));
}

PiecewiseCurve
PiecewiseCurve::monotoneEnvelope() const
{
    PiecewiseCurve out = *this;
    double running = -std::numeric_limits<double>::max();
    for (auto &k : out.knots) {
        running = std::max(running, k.y);
        k.y = running;
    }
    return out;
}

} // namespace memsense::stats
