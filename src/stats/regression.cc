#include "stats/regression.hh"

#include <cmath>

#include "util/error.hh"

namespace memsense::stats
{

namespace
{

LinearFit
fitImpl(const std::vector<double> &xs, const std::vector<double> &ys,
        const std::vector<double> *weights)
{
    requireConfig(xs.size() == ys.size(),
                  "regression needs equally sized x and y vectors");
    requireConfig(xs.size() >= 2, "regression needs at least two points");
    if (weights) {
        requireConfig(weights->size() == xs.size(),
                      "weight vector size mismatch");
    }

    double sw = 0.0;
    double swx = 0.0;
    double swy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double w = weights ? (*weights)[i] : 1.0;
        requireConfig(w >= 0.0, "regression weights must be non-negative");
        sw += w;
        swx += w * xs[i];
        swy += w * ys[i];
    }
    requireConfig(sw > 0.0, "regression weights sum to zero");
    double mx = swx / sw;
    double my = swy / sw;

    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double w = weights ? (*weights)[i] : 1.0;
        double dx = xs[i] - mx;
        sxx += w * dx * dx;
        sxy += w * dx * (ys[i] - my);
    }
    requireConfig(sxx > 0.0,
                  "regression x values are all identical; vary core or "
                  "memory speed to obtain a spread in MPI*MP");

    LinearFit fit;
    fit.n = xs.size();
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;

    double sse = 0.0;
    double sst = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double w = weights ? (*weights)[i] : 1.0;
        double resid = ys[i] - fit.at(xs[i]);
        sse += w * resid * resid;
        double dy = ys[i] - my;
        sst += w * dy * dy;
    }
    fit.r2 = (sst > 0.0) ? 1.0 - sse / sst : 1.0;
    if (xs.size() > 2) {
        double dof = static_cast<double>(xs.size() - 2);
        fit.residualStddev = std::sqrt(sse / dof);
        fit.slopeStderr = fit.residualStddev / std::sqrt(sxx);
        fit.interceptStderr =
            fit.residualStddev * std::sqrt(1.0 / sw + mx * mx / sxx);
    }
    return fit;
}

} // anonymous namespace

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    return fitImpl(xs, ys, nullptr);
}

LinearFit
weightedLinearFit(const std::vector<double> &xs, const std::vector<double> &ys,
                  const std::vector<double> &weights)
{
    return fitImpl(xs, ys, &weights);
}

LinearFit
nonNegativeSlopeFit(const std::vector<double> &xs,
                    const std::vector<double> &ys)
{
    LinearFit fit = fitImpl(xs, ys, nullptr);
    if (fit.slope >= 0.0)
        return fit;

    // Clamp to slope 0; the least-squares intercept is then mean(y).
    double my = 0.0;
    for (double y : ys)
        my += y;
    my /= static_cast<double>(ys.size());

    LinearFit clamped;
    clamped.n = fit.n;
    clamped.slope = 0.0;
    clamped.intercept = my;
    double sse = 0.0;
    double sst = 0.0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
        double r = ys[i] - my;
        sse += r * r;
        sst += r * r;
    }
    clamped.r2 = (sst > 0.0) ? 1.0 - sse / sst : 1.0;
    if (ys.size() > 2) {
        clamped.residualStddev =
            std::sqrt(sse / static_cast<double>(ys.size() - 2));
    }
    return clamped;
}

} // namespace memsense::stats
