/**
 * @file
 * Streaming and batch summary statistics.
 *
 * RunningStats implements Welford's online algorithm so samplers can
 * accumulate mean/variance over millions of interval samples without
 * storing them; the batch helpers operate on stored vectors (needed for
 * percentiles).
 */

#ifndef MEMSENSE_STATS_SUMMARY_HH
#define MEMSENSE_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace memsense::stats
{

/** Online mean/variance/min/max accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator (parallel Welford combine). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return mn; }

    /** Largest observation; -inf when empty. */
    double max() const { return mx; }

    /** Sum of all observations. */
    double sum() const { return total; }

    /** Coefficient of variation (stddev/mean); 0 when mean is 0. */
    double cv() const;

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double mn = 1.0 / 0.0;
    double mx = -1.0 / 0.0;
    double total = 0.0;
};

/** Mean of @p xs; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation of @p xs. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile of @p xs.
 *
 * @param xs observations (copied and sorted internally)
 * @param p  percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/** Median (50th percentile). */
double median(std::vector<double> xs);

/** Pearson correlation of paired samples; 0 if degenerate. */
double correlation(const std::vector<double> &xs,
                   const std::vector<double> &ys);

} // namespace memsense::stats

#endif // MEMSENSE_STATS_SUMMARY_HH
