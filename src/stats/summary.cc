#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace memsense::stats
{

void
RunningStats::add(double x)
{
    ++n;
    total += x;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    mn = std::min(mn, x);
    mx = std::max(mx, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.m - m;
    std::size_t combined = n + other.n;
    double nd = static_cast<double>(n);
    double od = static_cast<double>(other.n);
    double cd = static_cast<double>(combined);
    m2 = m2 + other.m2 + delta * delta * nd * od / cd;
    m = m + delta * od / cd;
    total += other.total;
    mn = std::min(mn, other.mn);
    mx = std::max(mx, other.mx);
    n = combined;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::cv() const
{
    // memsense-lint: allow(float-equal): guard against exact-zero divisor
    if (mean() == 0.0)
        return 0.0;
    return stddev() / mean();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    requireConfig(!xs.empty(), "percentile of empty sample");
    requireConfig(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    // memsense-lint: allow(unclamped-double-to-int): p in [0, 100] is
    // enforced above, so rank never exceeds size - 1
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size())
        return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
correlation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    requireConfig(xs.size() == ys.size(), "correlation needs paired samples");
    std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // memsense-lint: allow(float-equal): exact-zero variance guard
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace memsense::stats
