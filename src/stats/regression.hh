/**
 * @file
 * Ordinary least squares linear regression.
 *
 * This is the mathematical core of the paper's fitting methodology
 * (Sec. V.A): CPI_eff measured at several (MPI * MP) points is fit to
 * the line CPI_eff = CPI_cache + BF * (MPI * MP), so the intercept is
 * CPI_cache and the slope is the blocking factor.
 */

#ifndef MEMSENSE_STATS_REGRESSION_HH
#define MEMSENSE_STATS_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace memsense::stats
{

/** Result of a simple linear regression y = intercept + slope * x. */
struct LinearFit
{
    double intercept = 0.0;      ///< fitted intercept
    double slope = 0.0;          ///< fitted slope
    double r2 = 0.0;             ///< coefficient of determination
    double slopeStderr = 0.0;    ///< standard error of the slope
    double interceptStderr = 0.0;///< standard error of the intercept
    double residualStddev = 0.0; ///< sqrt(SSE / (n - 2))
    std::size_t n = 0;           ///< number of points

    /** Predicted value at @p x. */
    double at(double x) const { return intercept + slope * x; }
};

/**
 * Fit y = a + b*x by ordinary least squares.
 *
 * Requires at least two points with non-degenerate x spread.
 */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Weighted least squares variant; weight i multiplies the squared
 * residual of point i (used to weight program phases by instruction
 * count, per Sec. IV.D).
 */
LinearFit weightedLinearFit(const std::vector<double> &xs,
                            const std::vector<double> &ys,
                            const std::vector<double> &weights);

/**
 * Fit y = a + b*x with the slope constrained to be non-negative.
 *
 * The blocking factor is physically non-negative; on noisy core-bound
 * workloads an unconstrained fit can go slightly negative, which the
 * paper treats as BF ~= 0 (e.g. the Proximity workload).
 */
LinearFit nonNegativeSlopeFit(const std::vector<double> &xs,
                              const std::vector<double> &ys);

} // namespace memsense::stats

#endif // MEMSENSE_STATS_REGRESSION_HH
