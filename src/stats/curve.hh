/**
 * @file
 * Piecewise-linear curves over scattered (x, y) samples.
 *
 * The paper's Fig. 7 builds a composite queuing-delay vs. bandwidth-
 * utilization relationship by averaging measured curves from several
 * memory speeds and read/write mixes. PiecewiseCurve is the container
 * for one such curve: it bins scattered samples, enforces monotone x,
 * and interpolates (with configurable extrapolation at the ends).
 */

#ifndef MEMSENSE_STATS_CURVE_HH
#define MEMSENSE_STATS_CURVE_HH

#include <cstddef>
#include <vector>

namespace memsense::stats
{

/** One (x, y) knot of a piecewise-linear curve. */
struct CurvePoint
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * A piecewise-linear function defined by sorted knots.
 *
 * Evaluation clamps to the first knot below the domain and linearly
 * extrapolates above it (queuing delay keeps growing past the last
 * measured utilization point).
 */
class PiecewiseCurve
{
  public:
    PiecewiseCurve() = default;

    /** Construct from knots; they are sorted by x, duplicates averaged. */
    explicit PiecewiseCurve(std::vector<CurvePoint> knots);

    /** True when no knots are present. */
    bool empty() const { return knots.empty(); }

    /** Number of knots. */
    std::size_t size() const { return knots.size(); }

    /** Knot accessor. */
    const CurvePoint &knot(std::size_t i) const;

    /** Smallest knot x; undefined when empty. */
    double minX() const;

    /** Largest knot x; undefined when empty. */
    double maxX() const;

    /**
     * Evaluate at @p x.
     *
     * Below minX() the first knot's y is returned; above maxX() the
     * last segment's slope is extended.
     */
    double at(double x) const;

    /** True if y is non-decreasing in x over all knots. */
    bool isMonotoneNonDecreasing() const;

    /**
     * Build a curve by bucketing scattered samples into @p bins
     * equal-width x bins and averaging y within each bin.
     */
    static PiecewiseCurve fromSamples(const std::vector<CurvePoint> &samples,
                                      std::size_t bins);

    /**
     * Average several curves into a composite (the paper's Fig. 7
     * composite): evaluates every input at @p bins uniform x positions
     * spanning the intersection of their domains and averages.
     */
    static PiecewiseCurve composite(const std::vector<PiecewiseCurve> &curves,
                                    std::size_t bins);

    /**
     * Return a copy whose y values are replaced by the running maximum
     * (a cheap monotone regression; queuing delay is physically
     * non-decreasing in utilization, measurement noise is not).
     */
    PiecewiseCurve monotoneEnvelope() const;

  private:
    std::vector<CurvePoint> knots;
};

} // namespace memsense::stats

#endif // MEMSENSE_STATS_CURVE_HH
