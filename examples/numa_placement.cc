/**
 * @file
 * NUMA placement: what is page locality worth, per workload class?
 *
 * Uses the multi-socket extension (paper Sec. VIII) to compare three
 * placement strategies on a two-socket version of the paper baseline:
 * perfect pinning (0% remote), first-touch-gone-wrong (75% remote),
 * and fully interleaved (50% remote). The answer differs by class for
 * the same reason as Table 7: remote hops are a latency tax, so the
 * latency-sensitive classes pay and the bandwidth-bound class mostly
 * cares about the interconnect's width instead.
 *
 *   ./build/examples/numa_placement [remote_hop_ns]
 */

#include <cstdio>
#include <cstdlib>

#include "model/memsense.hh"

using namespace memsense::model;

int
main(int argc, char **argv)
{
    double hop_ns = argc > 1 ? std::atof(argv[1]) : 65.0;

    MultiSocketPlatform plat;
    plat.socket = Platform::paperBaseline();
    plat.sockets = 2;
    plat.remoteExtraNs = hop_ns;
    plat.interconnectGBps = 32.0;

    MultiSocketSolver solver;
    struct Strategy
    {
        const char *name;
        double remoteFraction;
    };
    const Strategy strategies[] = {
        {"pinned (NUMA-aware)", 0.0},
        {"interleaved", 0.5},
        {"bad first-touch", 0.75},
    };

    std::printf("Two sockets x (%s), %.0f ns remote hop\n\n",
                plat.socket.describe().c_str(), hop_ns);
    std::printf("%-12s %-22s %8s %10s %10s\n", "class", "placement",
                "CPI", "vs pinned", "link util");
    for (const auto &cls : paper::classParams()) {
        double pinned_cpi = 0.0;
        for (const auto &s : strategies) {
            plat.remoteFraction = s.remoteFraction;
            MultiSocketPoint pt = solver.solve(cls, plat);
            if (s.remoteFraction == 0.0)
                pinned_cpi = pt.cpiEff;
            std::printf("%-12s %-22s %8.3f %9.1f%% %9.0f%%\n",
                        cls.name.c_str(), s.name, pt.cpiEff,
                        (pt.cpiEff / pinned_cpi - 1.0) * 100.0,
                        pt.interconnectUtilization * 100.0);
        }
        std::printf("\n");
    }

    std::printf("Rule of thumb from the model: every 10%% of remote "
                "accesses costs a latency-limited class roughly what "
                "%.1f ns of extra compulsory latency would (hop x "
                "fraction), while the HPC mix only notices once the "
                "interconnect saturates.\n",
                hop_ns * 0.1);
    return 0;
}
