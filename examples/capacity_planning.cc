/**
 * @file
 * Capacity planning: pick the cheapest memory configuration that
 * meets a performance target for a mixed fleet.
 *
 * The paper's Sec. VI.D advice is qualitative ("provide enough
 * bandwidth for the target workload class first, then optimize
 * latency"); this example turns it into a concrete procedure: given a
 * fleet mix of workload classes and a tolerated slowdown vs. the
 * 4-channel baseline, enumerate channel-count/speed configurations
 * (each with a rough relative cost) and report the cheapest
 * configuration that stays within budget — per class and for the
 * blended fleet.
 *
 *   ./build/examples/capacity_planning [slowdown_pct]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/memsense.hh"

using namespace memsense::model;

namespace
{

struct Option
{
    MemoryConfig memory;
    double relativeCost; ///< DIMM+channel cost vs. baseline
};

/** Candidate configurations, roughly ordered by cost. */
std::vector<Option>
options(const MemoryConfig &base)
{
    std::vector<Option> out;
    const struct
    {
        int ch;
        double mt;
        double cost;
    } table[] = {
        {1, ddr::kDdr3_1067, 0.22}, {1, ddr::kDdr3_1333, 0.24},
        {1, ddr::kDdr3_1867, 0.28}, {2, ddr::kDdr3_1067, 0.44},
        {2, ddr::kDdr3_1333, 0.48}, {2, ddr::kDdr3_1867, 0.55},
        {3, ddr::kDdr3_1333, 0.72}, {3, ddr::kDdr3_1867, 0.82},
        {4, ddr::kDdr3_1333, 0.90}, {4, ddr::kDdr3_1600, 0.95},
        {4, ddr::kDdr3_1867, 1.00},
    };
    for (const auto &row : table) {
        out.push_back(
            {base.withChannels(row.ch).withSpeed(row.mt), row.cost});
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double budget_pct = argc > 1 ? std::atof(argv[1]) : 5.0;
    std::printf("Fleet capacity planning: tolerate <= %.1f%% slowdown "
                "vs. the 4ch DDR3-1867 baseline\n\n",
                budget_pct);

    Platform base = Platform::paperBaseline();
    Solver solver;

    // A fleet mix: mostly big data, some enterprise, a little HPC.
    struct Share
    {
        WorkloadParams params;
        double weight;
    };
    std::vector<Share> fleet = {
        {paper::classParams(WorkloadClass::BigData), 0.6},
        {paper::classParams(WorkloadClass::Enterprise), 0.3},
        {paper::classParams(WorkloadClass::Hpc), 0.1},
    };

    // Baseline throughput per class.
    std::vector<double> base_cpi;
    for (const auto &s : fleet)
        base_cpi.push_back(solver.solve(s.params, base).cpiEff);

    std::printf("%-28s %8s %10s %10s %10s %9s\n", "configuration",
                "cost", "bigdata", "enterprise", "hpc", "fleet");
    const Option *cheapest = nullptr;
    auto opts = options(base.memory);
    for (const auto &opt : opts) {
        Platform plat = base;
        plat.memory = opt.memory;
        double fleet_slowdown = 0.0;
        double per_class[3];
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            double cpi = solver.solve(fleet[i].params, plat).cpiEff;
            per_class[i] = (cpi / base_cpi[i] - 1.0) * 100.0;
            fleet_slowdown += fleet[i].weight * per_class[i];
        }
        bool ok = fleet_slowdown <= budget_pct;
        std::printf("%-28s %7.2fx %9.1f%% %9.1f%% %9.1f%% %7.1f%%%s\n",
                    opt.memory.describe().c_str(), opt.relativeCost,
                    per_class[0], per_class[1], per_class[2],
                    fleet_slowdown, ok ? "  <- fits" : "");
        if (ok && (!cheapest || opt.relativeCost < cheapest->relativeCost))
            cheapest = &opt;
    }

    if (cheapest) {
        std::printf("\nCheapest configuration within budget: %s "
                    "(%.0f%% of baseline memory cost)\n",
                    cheapest->memory.describe().c_str(),
                    cheapest->relativeCost * 100.0);
    } else {
        std::printf("\nNo configuration meets the budget; keep the "
                    "baseline.\n");
    }
    std::printf("\nNote how the answer is dominated by the HPC share "
                "even at 10%% weight — the paper's \"provide enough "
                "bandwidth for your target class first\".\n");
    return 0;
}
