/**
 * @file
 * Characterize your own workload: the paper's full measurement
 * pipeline applied to a user-defined micro-op stream.
 *
 * Defines a custom workload (a toy key-value scan with a tunable
 * pointer-chase fraction), runs it on the bundled simulator across
 * the frequency-scaling grid, fits Eq. 1 to the counters, and places
 * the result on the paper's Fig. 6 map next to the published class
 * means.
 *
 *   ./build/examples/characterize_workload [chase_fraction]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "measure/freq_scaling.hh"
#include "model/memsense.hh"
#include "sim/machine.hh"
#include "util/log.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

using namespace memsense;

namespace
{

/** A toy workload: scan a table, occasionally chase into an index. */
class MyWorkload : public workloads::Workload
{
  public:
    MyWorkload(double chase_fraction, std::uint64_t seed,
               sim::Addr arena_base)
        : Workload("my_workload", seed), chaseFraction(chase_fraction)
    {
        workloads::AddressSpace arena(arena_base);
        table = arena.allocate("table", 512ULL << 20);
        index = arena.allocate("index", 256ULL << 20);
    }

  protected:
    bool
    generateBatch() override
    {
        // Scan one line of the table...
        pushLoad(table.lineAddr(cursor), false, /*stream=*/1);
        cursor = (cursor + 1) % table.lines();
        pushCompute(120);
        pushBubble(30);
        // ...and sometimes dereference into the index.
        if (rng.chance(chaseFraction)) {
            pushLoad(index.lineAddr(rng.nextBounded(index.lines())),
                     /*dependent=*/true, 0);
            pushCompute(10);
        }
        return true;
    }

  private:
    double chaseFraction;
    workloads::Region table;
    workloads::Region index;
    std::uint64_t cursor = 0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    double chase = argc > 1 ? std::atof(argv[1]) : 0.3;
    std::printf("Characterizing a custom workload (pointer-chase "
                "fraction %.2f) on the simulator...\n\n",
                chase);

    // The frequency-scaling grid of paper Sec. V.A.
    const double core_ghz[] = {2.1, 2.4, 2.7, 3.1};
    const double mem_mt[] = {1333.3, 1866.7};

    std::vector<model::FitObservation> obs;
    for (double ghz : core_ghz) {
        for (double mt : mem_mt) {
            sim::MachineConfig mc;
            mc.cores = 4;
            mc.core.ghz = ghz;
            mc.dram.megaTransfers = mt;
            sim::Machine machine(mc);
            std::vector<std::unique_ptr<MyWorkload>> streams;
            for (int c = 0; c < mc.cores; ++c) {
                streams.push_back(std::make_unique<MyWorkload>(
                    chase, 100 + static_cast<std::uint64_t>(c),
                    (sim::Addr{1} << 44) +
                        static_cast<sim::Addr>(c) * (sim::Addr{1} << 42)));
                machine.bind(c, *streams.back());
            }
            machine.runFor(nsToPicos(6'000'000.0)); // warmup
            sim::MachineSnapshot before = machine.snapshot();
            machine.runFor(nsToPicos(1'000'000.0)); // measure
            sim::MachineSnapshot d = machine.snapshot() - before;

            model::FitObservation o;
            o.coreGhz = ghz;
            o.memMtPerSec = mt;
            o.cpiEff = d.cpi(ghz);
            o.mpki = d.mpki();
            o.mpi = o.mpki / 1000.0;
            o.mpCycles = d.avgMissPenaltyCycles(ghz);
            o.wbr = d.wbr();
            obs.push_back(o);
            std::printf("  %.1f GHz / DDR3-%4.0f: CPI %.3f, MPKI %.1f, "
                        "MP %.0f cycles\n",
                        ghz, mt, o.cpiEff, o.mpki, o.mpCycles);
        }
    }

    // Fit Eq. 1 and report.
    model::FittedModel fit = model::fitModel(
        "my_workload", model::WorkloadClass::BigData, obs);
    std::printf("\nFitted model: CPI = %.3f + %.3f * (MPI*MP), "
                "R^2 = %.3f\n",
                fit.params.cpiCache, fit.params.bf, fit.fit.r2);
    std::printf("MPKI %.1f, WBR %.0f%%%s\n", fit.params.mpki,
                fit.params.wbr * 100.0,
                fit.coreBound ? " — core bound" : "");

    // Where does it land on the Fig. 6 map?
    model::ScatterPoint me = model::toScatterPoint(fit.params);
    std::printf("\nFig. 6 position: BF=%.3f, refs/cycle=%.4f\n", me.bf,
                me.refsPerCycle);
    for (const auto &cls : model::paper::classParams()) {
        model::ScatterPoint ref = model::toScatterPoint(cls);
        std::printf("  %-11s mean sits at BF=%.2f, refs/cycle=%.4f\n",
                    cls.name.c_str(), ref.bf, ref.refsPerCycle);
    }

    // And what does the model predict on the paper baseline?
    model::Solver solver;
    model::OperatingPoint op =
        solver.solve(fit.params, model::Platform::paperBaseline());
    std::printf("\nOn the paper baseline platform: CPI %.3f, "
                "%.1f GB/s, %s\n",
                op.cpiEff, op.bandwidthTotalBps / 1e9,
                op.bandwidthBound ? "bandwidth bound"
                                  : "latency limited");
    return 0;
}
