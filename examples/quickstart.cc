/**
 * @file
 * Quickstart: the analytic model in ten minutes.
 *
 * Builds a workload description from performance-counter-style
 * numbers, solves for its operating point on a concrete platform, and
 * asks the two questions the paper is about: what does losing
 * bandwidth cost, and what does losing latency cost?
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "model/memsense.hh"

using namespace memsense::model;

int
main()
{
    // 1. Describe a workload by its counter-derived parameters. These
    //    are the paper's published values for the big data class
    //    (Table 6); to derive your own from a running system, measure
    //    CPI at a few core/memory frequencies and use model::fitModel
    //    (see examples/characterize_workload.cc for the simulator
    //    version of that pipeline).
    WorkloadParams app;
    app.name = "my-analytics-app";
    app.cls = WorkloadClass::BigData;
    app.cpiCache = 0.91; // CPI with an infinite LLC
    app.bf = 0.21;       // blocking factor: latency sensitivity
    app.mpki = 5.5;      // LLC misses per kilo-instruction
    app.wbr = 0.92;      // writebacks per miss

    // 2. Describe the platform: cores, clock, and the memory system.
    Platform plat = Platform::paperBaseline(); // 8C/16T @ 2.7 GHz,
                                               // 4ch DDR3-1867, 75 ns

    // 3. Solve for the stable operating point (Eq. 1 + Eq. 4 coupled
    //    through the queuing model).
    Solver solver;
    OperatingPoint op = solver.solve(app, plat);
    std::printf("On %s:\n", plat.describe().c_str());
    std::printf("  CPI            : %.3f\n", op.cpiEff);
    std::printf("  loaded latency : %.1f ns (%.1f ns queuing)\n",
                op.missPenaltyNs, op.queuingDelayNs);
    std::printf("  bandwidth      : %.1f GB/s (%.0f%% of available)\n",
                op.bandwidthTotalBps / 1e9, op.utilization * 100.0);
    std::printf("  bandwidth bound: %s\n",
                op.bandwidthBound ? "yes" : "no");

    // 4. What should the next platform optimize — latency or
    //    bandwidth? (The paper's Table 7 question.)
    EquivalenceAnalyzer eq(solver, plat);
    TradeoffSummary s = eq.summarize(app);
    std::printf("\nDesign tradeoffs for %s:\n", app.name.c_str());
    std::printf("  +1 GB/s/core of bandwidth : %+.2f%% performance\n",
                s.perfGainBandwidthPct);
    std::printf("  -10 ns of latency         : %+.2f%% performance\n",
                s.perfGainLatencyPct);
    std::printf("  10 ns is worth the same as %.1f GB/s of extra "
                "bandwidth\n",
                s.bandwidthEquivalentGBps);

    // 5. And how does CPI respond across a whole latency range?
    SensitivityAnalyzer an(solver, plat);
    std::printf("\nCompulsory latency sweep:\n");
    for (const auto &pt : an.latencySweep(app, 60.0, 20.0)) {
        std::printf("  %3.0f ns -> CPI %.3f (%+.1f%%)\n",
                    pt.compulsoryNs, pt.op.cpiEff,
                    pt.cpiIncreaseFrac * 100.0);
    }
    return 0;
}
