/**
 * @file
 * Memory tiering: size a DRAM cache in front of an emerging-memory
 * capacity tier (paper Sec. VII, Eq. 5).
 *
 * An in-memory analytics service wants to move a 256 GB working set
 * from DRAM to a cheaper, slower technology (300 ns, 12 GB/s) with a
 * DRAM cache in front. How much DRAM is enough? This sweeps the
 * near-tier capacity for the big data class model and reports the
 * knee: the smallest DRAM tier that keeps the slowdown under a
 * threshold vs. all-DRAM.
 *
 *   ./build/examples/memory_tiering [threshold_pct]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "model/memsense.hh"

using namespace memsense::model;

int
main(int argc, char **argv)
{
    double threshold_pct = argc > 1 ? std::atof(argv[1]) : 10.0;
    const double footprint_gb = 256.0;
    const double ghz = 2.7;
    const int cores = 8;

    WorkloadParams app = paper::classParams(WorkloadClass::BigData);

    MemoryTier dram{"DRAM-cache", 75.0, 40.0, 0.0};
    MemoryTier nvm{"NVM", 300.0, 12.0, 1024.0};
    TieredMemoryModel tiered(dram, nvm, footprint_gb, /*theta=*/0.5);

    // All-DRAM reference: near tier covers the whole footprint.
    double all_dram_cpi =
        tiered.capacitySweep(app, ghz, cores, {footprint_gb})[0].cpiEff;

    std::printf("Tiering a %.0f GB big data working set over "
                "%.0f ns / %.0f GB/s capacity memory\n"
                "all-DRAM reference CPI: %.3f; tolerated slowdown: "
                "%.0f%%\n\n",
                footprint_gb, nvm.latencyNs, nvm.bandwidthGBps,
                all_dram_cpi, threshold_pct);

    std::vector<double> capacities = {4,  8,   16,  32, 48,
                                      64, 96, 128, 192, 256};
    auto sweep = tiered.capacitySweep(app, ghz, cores, capacities);

    std::printf("%10s %12s %8s %12s %12s\n", "DRAM (GB)", "hit rate",
                "CPI", "slowdown", "far tier");
    double knee = -1.0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        double slowdown = (r.cpiEff / all_dram_cpi - 1.0) * 100.0;
        std::printf("%10.0f %11.1f%% %8.3f %11.1f%% %12s\n",
                    capacities[i], r.hitFraction * 100.0, r.cpiEff,
                    slowdown,
                    r.farBandwidthBound ? "BW bound" : "ok");
        if (knee < 0.0 && slowdown <= threshold_pct)
            knee = capacities[i];
    }

    if (knee >= 0.0) {
        std::printf("\n-> %.0f GB of DRAM cache (%.0f%% of the "
                    "footprint) keeps the penalty under %.0f%%.\n",
                    knee, knee / footprint_gb * 100.0, threshold_pct);
    } else {
        std::printf("\n-> no DRAM size under the full footprint meets "
                    "the target; the far tier is too slow for this "
                    "workload.\n");
    }
    std::printf("\nEq. 5 at work: CPI = CPI_cache + (MPI_near*MP_near "
                "+ MPI_far*MP_far) * BF, with per-tier queuing.\n");
    return 0;
}
