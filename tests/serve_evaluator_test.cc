/**
 * @file
 * Tests for the memoizing batch evaluator and the JSON-lines service:
 * cached solves must be bit-identical to the analytic solver, batches
 * must deduplicate and capture per-request failures, and the emitted
 * result stream must be byte-identical across worker counts and cache
 * temperature (the serving determinism contract, docs/serving.md).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "json_test_support.hh"
#include "model/equivalence.hh"
#include "model/paper_data.hh"
#include "model/sensitivity.hh"
#include "serve/evaluator.hh"
#include "serve/service.hh"
#include "util/fault_injection.hh"

namespace memsense::serve
{
namespace
{

using memsense::testjson::parseJson;

/** Split a result stream into its lines (no trailing blank). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(ServeEvaluator, SolveIsBitIdenticalToAnalyticSolver)
{
    model::Solver solver;
    Evaluator eval;
    model::Platform base = model::Platform::paperBaseline();
    for (const auto &p : model::paper::classParams()) {
        model::OperatingPoint direct = solver.solve(p, base);
        model::OperatingPoint cold = eval.solve(p, base);
        model::OperatingPoint warm = eval.solve(p, base);
        for (const auto &op : {cold, warm}) {
            EXPECT_DOUBLE_EQ(op.cpiEff, direct.cpiEff) << p.name;
            EXPECT_DOUBLE_EQ(op.missPenaltyNs, direct.missPenaltyNs)
                << p.name;
            EXPECT_DOUBLE_EQ(op.queuingDelayNs, direct.queuingDelayNs)
                << p.name;
            EXPECT_DOUBLE_EQ(op.bandwidthTotalBps,
                             direct.bandwidthTotalBps)
                << p.name;
            EXPECT_DOUBLE_EQ(op.utilization, direct.utilization)
                << p.name;
            EXPECT_EQ(op.bandwidthBound, direct.bandwidthBound)
                << p.name;
        }
    }
    CacheStats s = eval.cacheStats();
    EXPECT_EQ(s.inserts, 3u);
    EXPECT_EQ(s.hits, 3u);
}

TEST(ServeEvaluator, BatchDeduplicatesIdenticalRequests)
{
    Evaluator eval;
    model::Platform base = model::Platform::paperBaseline();
    model::WorkloadParams bd =
        model::paper::classParams(model::WorkloadClass::BigData);
    model::WorkloadParams hpc =
        model::paper::classParams(model::WorkloadClass::Hpc);

    std::vector<EvalRequest> batch = {
        {"first", bd, base},
        {"dup-of-first", bd, base},
        {"other", hpc, base},
    };
    auto outcomes = eval.evaluateBatch(batch);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].id, "first");
    EXPECT_EQ(outcomes[1].id, "dup-of-first");
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.result.ok()) << o.id;
    EXPECT_DOUBLE_EQ(outcomes[0].result.value->cpiEff,
                     outcomes[1].result.value->cpiEff);
    // Two unique operating points solved; the duplicate solved zero.
    EXPECT_EQ(eval.cacheStats().inserts, 2u);

    // The same batch again is served entirely from the warm cache.
    auto warm = eval.evaluateBatch(batch);
    EXPECT_EQ(eval.cacheStats().inserts, 2u);
    EXPECT_EQ(eval.cacheStats().hits, 3u);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].cacheHit) << warm[i].id;
        EXPECT_DOUBLE_EQ(warm[i].result.value->cpiEff,
                         outcomes[i].result.value->cpiEff);
    }
}

TEST(ServeEvaluator, AnalyzersProduceIdenticalResultsThroughTheCache)
{
    model::Platform base = model::Platform::paperBaseline();
    model::WorkloadParams bd =
        model::paper::classParams(model::WorkloadClass::BigData);

    model::EquivalenceAnalyzer direct(model::Solver(), base);
    Evaluator eval;
    model::EquivalenceAnalyzer cached(eval, base);

    model::TradeoffSummary a = direct.summarize(bd);
    model::TradeoffSummary b = cached.summarize(bd);
    EXPECT_DOUBLE_EQ(a.baselineCpi, b.baselineCpi);
    EXPECT_DOUBLE_EQ(a.perfGainBandwidthPct, b.perfGainBandwidthPct);
    EXPECT_DOUBLE_EQ(a.perfGainLatencyPct, b.perfGainLatencyPct);
    EXPECT_DOUBLE_EQ(a.bandwidthEquivalentGBps,
                     b.bandwidthEquivalentGBps);
    EXPECT_DOUBLE_EQ(a.latencyEquivalentNs, b.latencyEquivalentNs);
    // The bisections revisit baselines and probe points; the cache
    // must have absorbed some of those repeats.
    EXPECT_GT(eval.cacheStats().hits, 0u);
}

/** The JSON-lines stream the service tests drive. Line 4 is
 *  malformed on purpose; "bad" has an out-of-domain mpki. */
const char *const kRequestStream =
    R"({"id": "a", "workload": {"class": "bigdata"}})"
    "\n"
    R"({"id": "b", "workload": {"class": "hpc"}})"
    "\n"
    R"({"id": "dup-of-a", "workload": {"class": "bigdata"}})"
    "\n"
    "this is not json\n"
    R"({"id": "bad", "workload": {"class": "bigdata", "mpki": -3}})"
    "\n"
    R"({"id": "c", "workload": {"class": "enterprise"},)"
    R"( "platform": {"latency_ns": 95}})"
    "\n";

std::string
runService(int jobs, int repeat)
{
    std::istringstream in(kRequestStream);
    std::ostringstream out;
    ServiceOptions opts;
    opts.eval.jobs = jobs;
    opts.repeat = repeat;
    runEvalService(in, out, opts);
    return out.str();
}

TEST(ServeService, OutputIsByteIdenticalAcrossJobsAndRepeat)
{
    std::string serial = runService(1, 1);
    EXPECT_EQ(serial, runService(8, 1))
        << "worker count changed the result stream";
    EXPECT_EQ(serial, runService(4, 3))
        << "a warm cache changed the result stream";
}

TEST(ServeService, ResultLinesPreserveOrderAndCaptureErrors)
{
    std::istringstream in(kRequestStream);
    std::ostringstream out;
    ServiceSummary summary = runEvalService(in, out, {});

    auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 6u);

    const char *const ids[] = {"a", "b", "dup-of-a", "line-4", "bad",
                               "c"};
    for (std::size_t i = 0; i < lines.size(); ++i) {
        auto v = parseJson(lines[i]);
        EXPECT_EQ(v.at("id").str, ids[i]) << "line " << i + 1;
    }

    // The malformed line: a ConfigError result with attempts = 0
    // (it never became a request, so nothing was ever attempted).
    auto malformed = parseJson(lines[3]);
    EXPECT_FALSE(malformed.at("ok").boolean);
    EXPECT_EQ(malformed.at("error").at("type").str, "ConfigError");
    EXPECT_EQ(malformed.at("error").at("attempts").number, 0.0);

    // The out-of-domain request: captured, not thrown, batch intact.
    auto bad = parseJson(lines[4]);
    EXPECT_FALSE(bad.at("ok").boolean);
    EXPECT_EQ(bad.at("error").at("type").str, "ConfigError");

    // Healthy lines carry a full operating point.
    auto ok_line = parseJson(lines[0]);
    EXPECT_TRUE(ok_line.at("ok").boolean);
    EXPECT_GT(ok_line.at("op").at("cpi_eff").number, 0.0);
    EXPECT_GT(ok_line.at("op").at("miss_penalty_ns").number, 0.0);

    // The duplicate of "a" must carry the identical operating point.
    auto dup = parseJson(lines[2]);
    EXPECT_EQ(dup.at("op").at("cpi_eff").number,
              ok_line.at("op").at("cpi_eff").number);

    EXPECT_EQ(summary.lines, 6u);
    EXPECT_EQ(summary.parseErrors, 1u);
    EXPECT_EQ(summary.solved, 4u);
    EXPECT_EQ(summary.failed, 1u);
}

/**
 * A one-char streambuf that flips an atomic flag the moment the Nth
 * newline is served, so the service's between-lines stop poll sees the
 * flag with a deterministic number of lines already ingested — exactly
 * what a signal landing mid-stream looks like to runEvalService().
 */
class FlagAfterLinesBuf : public std::streambuf
{
  public:
    FlagAfterLinesBuf(std::string text_in, int lines,
                      std::atomic<bool> &flag_in)
        : text(std::move(text_in)), linesLeft(lines), flag(flag_in)
    {
    }

  protected:
    int_type
    underflow() override
    {
        if (pos >= text.size())
            return traits_type::eof();
        ch = text[pos++];
        if (ch == '\n' && --linesLeft == 0)
            flag.store(true);
        setg(&ch, &ch, &ch + 1);
        return traits_type::to_int_type(ch);
    }

  private:
    std::string text;
    std::size_t pos = 0;
    char ch = 0;
    int linesLeft;
    std::atomic<bool> &flag;
};

TEST(ServeService, PresetStopFlagInterruptsBeforeReadingAnything)
{
    std::istringstream in(kRequestStream);
    std::ostringstream out;
    ServiceOptions opts;
    std::atomic<bool> stop{true};
    opts.stop = &stop;
    ServiceSummary summary = runEvalService(in, out, opts);
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.lines, 0u);
    EXPECT_EQ(out.str(), "");
}

TEST(ServeService, StopMidStreamFlushesTheIngestedPrefix)
{
    // This is the memsense_eval Ctrl-C contract: stop reading, still
    // evaluate and emit everything ingested before the signal.
    std::atomic<bool> stop{false};
    FlagAfterLinesBuf buf(kRequestStream, 2, stop);
    std::istream in(&buf);
    std::ostringstream out;
    ServiceOptions opts;
    opts.stop = &stop;
    ServiceSummary summary = runEvalService(in, out, opts);
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.lines, 2u);
    auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(parseJson(lines[0]).at("id").str, "a");
    EXPECT_EQ(parseJson(lines[1]).at("id").str, "b");
    EXPECT_EQ(summary.solved, 2u);
}

class EvaluatorFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::reset(); }

    model::Platform base = model::Platform::paperBaseline();
    model::WorkloadParams bd =
        model::paper::classParams(model::WorkloadClass::BigData);
    model::WorkloadParams hpc =
        model::paper::classParams(model::WorkloadClass::Hpc);
};

TEST_F(EvaluatorFaultTest, PersistentSolveFaultIsQuarantinedPerRequest)
{
    Evaluator eval;
    eval.solve(bd, base); // warm the cache before the faults start
    fault::configure("evaluator.solve:throw:nth=1");

    std::vector<EvalRequest> batch = {
        {"cached", bd, base},
        {"cold", hpc, base},
    };
    auto outcomes = eval.evaluateBatch(batch);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].result.ok());
    EXPECT_TRUE(outcomes[0].cacheHit);
    ASSERT_FALSE(outcomes[1].result.ok());
    EXPECT_EQ(outcomes[1].result.failure->errorType, "FaultInjected");
    EXPECT_EQ(outcomes[1].result.attempts, 1);
}

TEST_F(EvaluatorFaultTest, TransientSolveFaultIsRetriedToSuccess)
{
    EvaluatorOptions opts;
    opts.resilience.retry.maxAttempts = 3;
    opts.resilience.retry.baseDelayMs = 1.0;
    Evaluator eval(model::Solver(), opts);
    fault::configure("evaluator.solve:throw:count=1");

    std::vector<EvalRequest> batch = {{"r", bd, base}};
    auto outcomes = eval.evaluateBatch(batch);
    ASSERT_TRUE(outcomes[0].result.ok());
    EXPECT_EQ(outcomes[0].result.attempts, 2);
    EXPECT_EQ(fault::fireCount("evaluator.solve"), 1u);
}

TEST_F(EvaluatorFaultTest, ProbeFaultAbortsTheBatchWithACleanThrow)
{
    // The serial probe pass is unprotected by design: a fault there is
    // a clean typed throw out of evaluateBatch, never a crash.
    Evaluator eval;
    fault::configure("evaluator.probe:throw:nth=1");
    std::vector<EvalRequest> batch = {{"r", bd, base}};
    EXPECT_THROW(eval.evaluateBatch(batch), fault::FaultInjected);
}

TEST_F(EvaluatorFaultTest, InsertFaultAbortsTheCachePassCleanly)
{
    Evaluator eval;
    fault::configure("evaluator.insert:throw:nth=1");
    std::vector<EvalRequest> batch = {{"r", bd, base}};
    EXPECT_THROW(eval.evaluateBatch(batch), fault::FaultInjected);
}

TEST(ServeService, NoResultFieldLeaksCacheState)
{
    // docs/serving.md promises cold and warm result lines are
    // byte-identical, which requires that no serialized field depend
    // on cache state. Check the field inventory of one line.
    std::istringstream in(R"({"id": "x"})" "\n");
    std::ostringstream out;
    runEvalService(in, out, {});
    auto v = parseJson(splitLines(out.str()).at(0));
    EXPECT_EQ(v.object.size(), 3u) << "id, ok, op — nothing else";
    EXPECT_TRUE(v.has("id"));
    EXPECT_TRUE(v.has("ok"));
    EXPECT_TRUE(v.has("op"));
    EXPECT_FALSE(v.has("cache_hit"));
}

} // anonymous namespace
} // namespace memsense::serve
