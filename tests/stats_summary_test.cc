/**
 * @file
 * Tests for streaming and batch summary statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hh"
#include "util/error.hh"

namespace memsense::stats
{
namespace
{

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleObservationHasZeroVariance)
{
    RunningStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7 - 3.0;
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summary, MeanAndStddev)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Summary, PercentileInterpolates)
{
    std::vector<double> xs{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Summary, PercentileValidation)
{
    EXPECT_THROW(percentile({}, 50), ConfigError);
    EXPECT_THROW(percentile({1.0}, -1), ConfigError);
    EXPECT_THROW(percentile({1.0}, 101), ConfigError);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
}

TEST(Summary, CorrelationSigns)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y_pos{2, 4, 6, 8};
    std::vector<double> y_neg{8, 6, 4, 2};
    EXPECT_NEAR(correlation(x, y_pos), 1.0, 1e-12);
    EXPECT_NEAR(correlation(x, y_neg), -1.0, 1e-12);
}

TEST(Summary, CorrelationDegenerateCases)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> flat{5, 5, 5};
    EXPECT_DOUBLE_EQ(correlation(x, flat), 0.0);
    EXPECT_THROW(correlation(x, {1.0}), ConfigError);
    EXPECT_DOUBLE_EQ(correlation({1.0}, {2.0}), 0.0);
}

} // anonymous namespace
} // namespace memsense::stats
