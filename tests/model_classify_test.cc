/**
 * @file
 * Tests for workload classification (Fig. 6 / Table 6).
 */

#include <gtest/gtest.h>

#include "model/classify.hh"
#include "model/paper_data.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

TEST(Classify, ScatterPointMapsAxes)
{
    WorkloadParams p = paper::classParams(WorkloadClass::Enterprise);
    ScatterPoint sp = toScatterPoint(p);
    EXPECT_DOUBLE_EQ(sp.bf, p.bf);
    EXPECT_DOUBLE_EQ(sp.refsPerCycle, p.refsPerCycle());
    EXPECT_FALSE(sp.coreBound);
}

TEST(Classify, ProximityLandsInCoreBoundCluster)
{
    // Paper: Proximity is omitted from the class means as it shows
    // no sensitivity to latency or bandwidth.
    for (const auto &p : paper::bigDataParams()) {
        ScatterPoint sp = toScatterPoint(p);
        EXPECT_EQ(sp.coreBound, p.name == "Proximity") << p.name;
    }
}

TEST(Classify, PaperWorkloadsProduceThreeClassMeans)
{
    Classification c = classify(paper::allWorkloadParams());
    ASSERT_EQ(c.means.size(), 3u);
    EXPECT_EQ(c.points.size(), 12u);
}

TEST(Classify, ClassMeansMatchTable6Approximately)
{
    // Means over Tables 2/4/5 (excluding core-bound Proximity) should
    // land near the published Table 6 values for CPI_cache / BF /
    // MPKI. (The published big-data WBR mean of 92% is inconsistent
    // with its own Table 2 inputs — see EXPERIMENTS.md — so WBR is
    // not asserted here.)
    Classification c = classify(paper::allWorkloadParams());
    for (const auto &mean : c.means) {
        WorkloadParams published = paper::classParams(mean.cls);
        EXPECT_NEAR(mean.cpiCache, published.cpiCache, 0.10) << mean.name;
        EXPECT_NEAR(mean.bf, published.bf, 0.05) << mean.name;
        EXPECT_NEAR(mean.mpki, published.mpki, 1.0) << mean.name;
    }
}

TEST(Classify, ClassOrderingMatchesPaper)
{
    // Enterprise most latency sensitive, HPC most bandwidth hungry,
    // big data in between on both axes (paper Sec. VI.B).
    Classification c = classify(paper::allWorkloadParams());
    WorkloadParams ent;
    WorkloadParams bd;
    WorkloadParams hpc;
    for (const auto &m : c.means) {
        if (m.cls == WorkloadClass::Enterprise)
            ent = m;
        else if (m.cls == WorkloadClass::BigData)
            bd = m;
        else if (m.cls == WorkloadClass::Hpc)
            hpc = m;
    }
    EXPECT_GT(ent.bf, bd.bf);
    EXPECT_GT(bd.bf, hpc.bf);
    EXPECT_GT(hpc.refsPerCycle(), bd.refsPerCycle());
    EXPECT_GT(bd.refsPerCycle(), ent.refsPerCycle());
}

TEST(Classify, KMeansRecoversTheLabeledClusters)
{
    // Unsupervised clustering on the normalized Fig. 6 coordinates
    // should agree with the class labels for most workloads — the
    // paper's claim that "each workload class forms its own distinct
    // cluster".
    Classification c = classify(paper::allWorkloadParams());
    EXPECT_GE(c.clusterAgreement, 0.8);
}

TEST(Classify, CoreBoundCriteriaAreConfigurable)
{
    CoreBoundCriteria strict;
    strict.maxBf = 0.5;
    strict.maxRefsPerCycle = 1.0;
    // Everything becomes core bound under absurdly loose criteria.
    Classification c = classify(paper::bigDataParams(), strict);
    for (const auto &pt : c.points)
        EXPECT_TRUE(pt.coreBound) << pt.name;
    EXPECT_TRUE(c.means.empty());
}

TEST(Classify, RejectsEmptyInput)
{
    EXPECT_THROW(classify({}), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
