/**
 * @file
 * Calibration regression tests: every synthetic workload's fitted
 * parameters must stay inside a tolerance band around its paper
 * target (Tables 2/4/5). These are the contract between the workload
 * generators and the reproduction benches — if a simulator or
 * generator change drifts a workload out of band, this suite catches
 * it before the benches silently stop matching the paper.
 *
 * Runs a reduced grid (3 core speeds x 1 memory speed, short windows)
 * to keep ctest fast; the bands are wider than the full-grid
 * calibration in bench/calibrate_workloads accordingly.
 */

#include <gtest/gtest.h>

#include "measure/freq_scaling.hh"
#include "util/log.hh"
#include "workloads/factory.hh"

namespace memsense
{
namespace
{

/** Relative tolerance bands for the reduced-grid fit. */
struct Band
{
    double cpiCacheTol = 0.30; ///< relative
    double bfAbsTol = 0.12;    ///< absolute (BF is small)
    double mpkiTol = 0.35;     ///< relative
    /** Spark's WBR sits ~0.15 under its paper target even on the
     *  full grid (see EXPERIMENTS.md), so the band is generous. */
    double wbrAbsTol = 0.30;   ///< absolute
};

class CalibrationBand : public ::testing::TestWithParam<std::string>
{
  protected:
    static measure::FreqScalingConfig
    reducedGrid()
    {
        measure::FreqScalingConfig cfg;
        cfg.coreGhz = {2.1, 2.7, 3.1};
        cfg.memMtPerSec = {1866.7};
        cfg.warmup = nsToPicos(5'000'000.0);
        cfg.measure = nsToPicos(700'000.0);
        cfg.adaptiveWarmup = false;
        return cfg;
    }
};

TEST_P(CalibrationBand, FittedParamsWithinBand)
{
    setLogLevel(LogLevel::Warn);
    const auto &info = workloads::workloadInfo(GetParam());
    const auto &ref = info.paperTarget;
    Band band;

    measure::Characterization c =
        measure::characterize(GetParam(), reducedGrid());
    const auto &got = c.model.params;

    EXPECT_NEAR(got.cpiCache, ref.cpiCache,
                ref.cpiCache * band.cpiCacheTol)
        << "CPI_cache drifted";
    EXPECT_NEAR(got.bf, ref.bf, band.bfAbsTol) << "BF drifted";
    EXPECT_NEAR(got.mpki, ref.mpki, ref.mpki * band.mpkiTol)
        << "MPKI drifted";
    EXPECT_NEAR(got.wbr, ref.wbr, band.wbrAbsTol) << "WBR drifted";
}

TEST_P(CalibrationBand, FitQualityHolds)
{
    setLogLevel(LogLevel::Warn);
    measure::Characterization c =
        measure::characterize(GetParam(), reducedGrid());
    // Core-bound proximity legitimately fits poorly (paper Sec. V.E);
    // everything else must fit well.
    if (GetParam() != "proximity") {
        EXPECT_GT(c.model.fit.r2, 0.85);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CalibrationBand,
    ::testing::Values("column_store", "nits", "proximity", "spark",
                      "oltp", "jvm", "virtualization", "web_caching",
                      "bwaves", "milc", "soplex", "wrf"),
    [](const auto &p) { return p.param; });

} // anonymous namespace
} // namespace memsense
