/**
 * @file
 * Tests for string helpers, table rendering, and CSV quoting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"
#include "util/error.hh"
#include "util/string_util.hh"
#include "util/table.hh"

namespace memsense
{
namespace
{

TEST(StringUtil, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(StringUtil, FormatDoubleAndPercent)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.325), "32.5%");
    EXPECT_EQ(formatPercent(1.17, 0), "117%");
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimAndLower)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "long_header"});
    t.addRow({"xxxx", "1"});
    std::string out = t.toString();
    // Header and row share column positions.
    auto hdr_pos = out.find("long_header");
    auto row = out.find("xxxx");
    ASSERT_NE(hdr_pos, std::string::npos);
    ASSERT_NE(row, std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongArity)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), ConfigError);
}

TEST(Table, CellAccessor)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.cell(1, 0), "3");
    EXPECT_THROW(t.cell(2, 0), LogicError);
}

TEST(Table, TitleAndFootnoteRendered)
{
    Table t({"c"});
    t.setTitle("My Title");
    t.setFootnote("note below");
    t.addRow({"v"});
    std::string out = t.toString();
    EXPECT_LT(out.find("My Title"), out.find("c"));
    EXPECT_GT(out.find("note below"), out.find("v"));
}

TEST(Csv, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.writeRow(std::vector<std::string>{"x", "y"});
    w.writeRow(std::vector<double>{1.5, 2.0});
    EXPECT_EQ(oss.str(), "x,y\n1.5,2\n");
}

} // anonymous namespace
} // namespace memsense
