/**
 * @file
 * End-to-end integration tests: the full paper pipeline on reduced
 * configurations — simulate, measure, fit, validate (Table 3 style),
 * classify, and cross-check the analytic model against direct
 * simulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "measure/freq_scaling.hh"
#include "model/classify.hh"
#include "model/cpi_model.hh"
#include "model/fitter.hh"
#include "util/log.hh"

namespace memsense
{
namespace
{

measure::FreqScalingConfig
quickSweep()
{
    measure::FreqScalingConfig cfg;
    cfg.coreGhz = {2.1, 2.7, 3.1};
    cfg.memMtPerSec = {1333.3, 1866.7};
    cfg.warmup = nsToPicos(4'000'000.0);
    cfg.measure = nsToPicos(800'000.0);
    cfg.adaptiveWarmup = false;
    return cfg;
}

TEST(Integration, FittedModelPredictsHeldOutRuns)
{
    // The paper's Table 3 validation: fit on the grid, then the
    // Eq. 1 prediction must match each measured CPI within a few
    // percent.
    setLogLevel(LogLevel::Warn);
    measure::Characterization c =
        measure::characterize("column_store", quickSweep());
    auto errs = model::validationErrors(c.model, c.observations);
    for (double e : errs)
        EXPECT_LT(std::abs(e), 0.06);
}

TEST(Integration, FitQualityIsHighForMemoryBoundWorkloads)
{
    setLogLevel(LogLevel::Warn);
    measure::Characterization c =
        measure::characterize("column_store", quickSweep());
    // Paper reports R^2 = 0.95 for the structured-data fit.
    EXPECT_GT(c.model.fit.r2, 0.95);
    EXPECT_GT(c.model.params.bf, 0.1);
    EXPECT_LT(c.model.params.bf, 0.4);
}

TEST(Integration, CoreBoundWorkloadFitsFlat)
{
    // Proximity: near-zero slope and an R^2 that does not matter
    // (paper Sec. V.E: "the poor correlation coefficient is not of
    // concern in this case").
    setLogLevel(LogLevel::Warn);
    measure::Characterization c =
        measure::characterize("proximity", quickSweep());
    EXPECT_LT(c.model.params.bf, 0.10);
    EXPECT_LT(c.model.params.mpki, 2.0);
    // Its latency term is an order of magnitude below the memory-
    // bound workloads' (BF * MPKI is the Eq. 1 slope driver).
    EXPECT_LT(c.model.params.bf * c.model.params.mpki, 0.12);
}

TEST(Integration, MeasuredClassOrderingMatchesPaper)
{
    // Characterize one representative of each class on the simulator
    // and confirm the Fig. 6 ordering without using any published
    // numbers: enterprise BF > big data BF > HPC BF, and HPC MPKI
    // dominates.
    setLogLevel(LogLevel::Warn);
    auto sweep = quickSweep();
    auto ent = measure::characterize("oltp", sweep).model.params;
    auto bd = measure::characterize("column_store", sweep).model.params;
    auto hpc = measure::characterize("wrf", sweep).model.params;
    EXPECT_GT(ent.bf, bd.bf);
    EXPECT_GT(bd.bf, hpc.bf);
    EXPECT_GT(hpc.mpki, 2.0 * bd.mpki);
    EXPECT_GT(hpc.refsPerCycle(), bd.refsPerCycle());
    EXPECT_GT(bd.refsPerCycle(), ent.refsPerCycle());
}

TEST(Integration, FittedParamsClassifyIntoPaperClusters)
{
    setLogLevel(LogLevel::Warn);
    auto sweep = quickSweep();
    std::vector<model::WorkloadParams> fitted;
    for (const char *id :
         {"column_store", "spark", "oltp", "web_caching", "bwaves",
          "soplex"}) {
        fitted.push_back(measure::characterize(id, sweep).model.params);
    }
    model::Classification cls = model::classify(fitted);
    EXPECT_EQ(cls.means.size(), 3u);
    EXPECT_GE(cls.clusterAgreement, 0.6);
}

TEST(Integration, ModelPredictsSimulatedFrequencyScaling)
{
    // Cross-validation: fit the model on a {core speed, memory speed}
    // grid, then predict the CPI of a configuration OUTSIDE the
    // training grid and compare against direct simulation.
    setLogLevel(LogLevel::Warn);
    measure::FreqScalingConfig train = quickSweep();
    train.coreGhz = {2.1, 2.7};
    measure::Characterization c =
        measure::characterize("column_store", train);

    measure::RunConfig held_out;
    held_out.workloadId = "column_store";
    held_out.cores = 4;
    held_out.ghz = 3.1; // extrapolation beyond the training grid
    held_out.warmup = train.warmup;
    held_out.measure = train.measure;
    held_out.adaptiveWarmup = false;
    model::FitObservation o = measure::runObservation(held_out);

    double predicted = c.model.predictCpi(o.latencyPerInstruction());
    EXPECT_NEAR(predicted, o.cpiEff, o.cpiEff * 0.06);
}

TEST(Integration, PrefetcherAblationLowersBlockingFactor)
{
    // Paper Sec. VII: "an improved prefetching technique will
    // increase memory-level parallelism and will lower the blocking
    // factor." Run the same streaming workload with the prefetcher on
    // and off.
    setLogLevel(LogLevel::Warn);
    measure::FreqScalingConfig cfg = quickSweep();
    cfg.coreGhz = {2.1, 3.1};
    measure::Characterization with_pf =
        measure::characterize("bwaves", cfg);
    cfg.prefetcherEnabled = false;
    measure::Characterization without_pf =
        measure::characterize("bwaves", cfg);
    EXPECT_LT(with_pf.model.params.bf,
              0.5 * without_pf.model.params.bf);
}

TEST(Integration, MlpAblationRaisesBlockingFactor)
{
    // Fewer MSHRs -> less overlap -> higher BF (BF ~ 1/MLP, Eq. 3).
    setLogLevel(LogLevel::Warn);
    measure::FreqScalingConfig cfg = quickSweep();
    cfg.coreGhz = {2.1, 3.1};
    cfg.mshrs = 10;
    measure::Characterization wide =
        measure::characterize("column_store", cfg);
    cfg.mshrs = 1;
    measure::Characterization narrow =
        measure::characterize("column_store", cfg);
    EXPECT_GT(narrow.model.params.bf, wide.model.params.bf * 1.3);
}

} // anonymous namespace
} // namespace memsense
