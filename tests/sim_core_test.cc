/**
 * @file
 * Tests for the simulated core: issue timing, cache walk, MSHR/MLP
 * limits, dependent-load stalls, ROB run-ahead, and counters.
 */

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/memctrl.hh"

namespace memsense::sim
{
namespace
{

/** Replays a fixed vector of micro-ops. */
class VectorStream : public OpStream
{
  public:
    explicit VectorStream(std::vector<MicroOp> ops_in)
        : ops(std::move(ops_in))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (pos >= ops.size())
            return false;
        op = ops[pos++];
        return true;
    }

  private:
    std::vector<MicroOp> ops;
    std::size_t pos = 0;
};

MicroOp
compute(std::uint32_t n)
{
    MicroOp op;
    op.kind = OpKind::Compute;
    op.count = n;
    return op;
}

MicroOp
bubble(std::uint32_t n)
{
    MicroOp op;
    op.kind = OpKind::Bubble;
    op.count = n;
    return op;
}

MicroOp
idle(std::uint32_t n)
{
    MicroOp op;
    op.kind = OpKind::Idle;
    op.count = n;
    return op;
}

MicroOp
load(Addr addr, bool dep = false)
{
    MicroOp op;
    op.kind = OpKind::Load;
    op.addr = addr;
    op.dependent = dep;
    return op;
}

MicroOp
store(Addr addr)
{
    MicroOp op;
    op.kind = OpKind::Store;
    op.addr = addr;
    return op;
}

MicroOp
ntStore(Addr addr)
{
    MicroOp op;
    op.kind = OpKind::NtStore;
    op.addr = addr;
    return op;
}

/** Test fixture wiring a single core to a private memory system. */
class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : mc(makeConfig()), mem(mc.dram),
          llc("llc", scaledLlc(mc), 1), core(0, mc, llc, mem)
    {
    }

    static MachineConfig
    makeConfig()
    {
        MachineConfig cfg;
        cfg.cores = 1;
        cfg.core.ghz = 1.0; // 1000 ps period: easy arithmetic
        cfg.core.issueWidth = 4.0;
        // Core-mechanics tests want raw demand-miss behavior; the
        // prefetcher has its own suite.
        cfg.core.prefetcher.enabled = false;
        return cfg;
    }

    static CacheConfig
    scaledLlc(const MachineConfig &cfg)
    {
        CacheConfig llc = cfg.llcPerCore;
        llc.sizeBytes = cfg.llcTotalBytes();
        return llc;
    }

    /** Run the whole stream to completion; returns elapsed ps. */
    Picos
    run(std::vector<MicroOp> ops)
    {
        VectorStream stream(std::move(ops));
        core.bind(stream);
        while (core.runUntil(core.now() + nsToPicos(100'000.0))) {
        }
        return core.now();
    }

    MachineConfig mc;
    MemoryController mem;
    SetAssocCache llc;
    SimCore core;
};

TEST_F(CoreTest, ComputeRetiresAtIssueWidth)
{
    Picos t = run({compute(400)});
    // 400 instructions at 4-wide, 1 GHz: 100 cycles = 100'000 ps.
    EXPECT_EQ(t, 100'000u);
    EXPECT_EQ(core.counters().instructions, 400u);
    EXPECT_EQ(core.counters().busyTime, 100'000u);
}

TEST_F(CoreTest, BubblesAddCyclesNotInstructions)
{
    Picos t = run({compute(40), bubble(50)});
    EXPECT_EQ(t, 10'000u + 50'000u);
    EXPECT_EQ(core.counters().instructions, 40u);
    EXPECT_EQ(core.counters().busyTime, t);
}

TEST_F(CoreTest, IdleCountsSeparately)
{
    run({compute(40), idle(100)});
    EXPECT_EQ(core.counters().idleTime, 100'000u);
    EXPECT_EQ(core.counters().busyTime, 10'000u);
}

TEST_F(CoreTest, DependentMissStallsForFullLatency)
{
    Picos t = run({load(1 << 20, /*dep=*/true)});
    // Page-empty DRAM latency (~61 ns) at 1 GHz; the issue slot is
    // tiny beside it.
    EXPECT_NEAR(picosToNs(t), 61.0, 3.0);
    EXPECT_EQ(core.counters().llcDemandMisses, 1u);
    EXPECT_GT(core.counters().depStall, nsToPicos(55.0));
}

TEST_F(CoreTest, IndependentMissesOverlap)
{
    // 8 independent misses to different lines: with 10 MSHRs they all
    // overlap, so elapsed ~ one latency, not eight.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(load(static_cast<Addr>(i) * 4096));
    // Re-touch the last line dependently so the elapsed time covers
    // the in-flight fills.
    ops.push_back(load(7 * 4096, /*dep=*/true));
    Picos t = run(ops);
    EXPECT_LT(picosToNs(t), 2.5 * 75.0);
    EXPECT_GT(picosToNs(t), 45.0);
    EXPECT_EQ(core.counters().llcDemandMisses, 8u);
    // Only the final dependent re-touch waited; eight serialized
    // misses would have taken ~8x longer.
    EXPECT_LT(core.counters().depStall, nsToPicos(150.0));
}

TEST_F(CoreTest, MshrExhaustionStalls)
{
    // 3x the MSHR count of independent misses: the core must stall on
    // MSHR reclaim at least once.
    std::vector<MicroOp> ops;
    for (std::uint32_t i = 0; i < 3 * makeConfig().core.mshrs; ++i)
        ops.push_back(load(static_cast<Addr>(i) * 4096));
    run(ops);
    EXPECT_GT(core.counters().mshrStall, 0u);
}

TEST_F(CoreTest, SecondAccessHitsTheHierarchy)
{
    run({load(4096, true), compute(400), load(4096, true)});
    EXPECT_EQ(core.counters().llcDemandMisses, 1u);
    EXPECT_EQ(core.l1().stats().hits, 1u);
}

TEST_F(CoreTest, StoresDoNotBlock)
{
    // A dependent-marked store is still non-blocking (store buffer).
    MicroOp s = store(1 << 20);
    s.dependent = true;
    Picos t = run({s, compute(400)});
    EXPECT_LT(picosToNs(t), 110.0);
    EXPECT_EQ(core.counters().stores, 1u);
    EXPECT_EQ(core.counters().depStall, 0u);
}

TEST_F(CoreTest, NtStoreBypassesCaches)
{
    run({ntStore(1 << 20)});
    EXPECT_EQ(core.counters().ntStores, 1u);
    EXPECT_EQ(core.counters().writebacks, 1u);
    EXPECT_EQ(core.counters().llcDemandMisses, 0u);
    EXPECT_FALSE(llc.contains((1 << 20) >> kLineShift));
    EXPECT_EQ(mem.stats().writes, 1u);
}

TEST_F(CoreTest, CountersDeriveModelInputs)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4; ++i) {
        ops.push_back(load(static_cast<Addr>(i) * 8192, true));
        ops.push_back(compute(96));
    }
    run(ops);
    const CoreCounters &k = core.counters();
    EXPECT_EQ(k.memoryFetches(), 4u);
    EXPECT_NEAR(k.mpki(), 4000.0 / 388.0, 0.5);
    // One page-empty access (~61 ns) plus three row hits (~47 ns).
    EXPECT_NEAR(k.avgMissPenaltyNs(), 50.0, 6.0);
}

TEST_F(CoreTest, StreamEndReported)
{
    VectorStream stream({compute(4)});
    core.bind(stream);
    EXPECT_FALSE(core.runUntil(core.now() + nsToPicos(1000.0)));
    EXPECT_TRUE(core.done());
}

} // anonymous namespace
} // namespace memsense::sim
