/**
 * @file
 * Tests for the measurement drivers: run harness, frequency-scaling
 * characterization, time-series capture, and the loaded-latency
 * sweep. Configurations are scaled down to keep ctest fast.
 */

#include <gtest/gtest.h>

#include "measure/freq_scaling.hh"
#include "measure/loaded_latency.hh"
#include "measure/timeseries.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace memsense::measure
{
namespace
{

class MeasureTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }

    static RunConfig
    quickRun(const std::string &id)
    {
        RunConfig rc;
        rc.workloadId = id;
        rc.cores = 2;
        rc.warmup = nsToPicos(400'000.0);
        rc.measure = nsToPicos(400'000.0);
        rc.adaptiveWarmup = false;
        return rc;
    }
};

TEST_F(MeasureTest, RunObservationProducesSaneCounters)
{
    model::FitObservation o = runObservation(quickRun("column_store"));
    EXPECT_GT(o.cpiEff, 0.5);
    EXPECT_LT(o.cpiEff, 5.0);
    EXPECT_GT(o.mpki, 1.0);
    EXPECT_LT(o.mpki, 20.0);
    EXPECT_GT(o.mpCycles, 100.0);
    EXPECT_GT(o.instructions, 1e5);
    EXPECT_NEAR(o.mpi * 1000.0, o.mpki, 1e-9);
}

TEST_F(MeasureTest, MissPenaltyInCoreCyclesScalesWithFrequency)
{
    // The fitting methodology's core lever (Sec. V.A): at a higher
    // core frequency the same memory latency costs more cycles.
    RunConfig slow = quickRun("column_store");
    slow.ghz = 2.1;
    RunConfig fast = quickRun("column_store");
    fast.ghz = 3.1;
    model::FitObservation a = runObservation(slow);
    model::FitObservation b = runObservation(fast);
    EXPECT_GT(b.mpCycles, a.mpCycles * 1.2);
    // And the effective CPI rises with it.
    EXPECT_GT(b.cpiEff, a.cpiEff);
}

TEST_F(MeasureTest, SlowerMemoryRaisesMissPenalty)
{
    RunConfig fast = quickRun("spark");
    fast.memMtPerSec = 1866.7;
    RunConfig slow = quickRun("spark");
    slow.memMtPerSec = 1066.7;
    model::FitObservation a = runObservation(fast);
    model::FitObservation b = runObservation(slow);
    EXPECT_GT(b.mpCycles, a.mpCycles);
}

TEST_F(MeasureTest, CharacterizationFitsPositiveModel)
{
    FreqScalingConfig cfg;
    cfg.coreGhz = {2.1, 3.1};
    cfg.memMtPerSec = {1333.3, 1866.7};
    cfg.warmup = nsToPicos(1'000'000.0);
    cfg.measure = nsToPicos(500'000.0);
    cfg.adaptiveWarmup = false;
    cfg.coresOverride = 2;
    Characterization c = characterize("oltp", cfg);
    ASSERT_EQ(c.observations.size(), 4u);
    EXPECT_GT(c.model.params.cpiCache, 0.5);
    EXPECT_GT(c.model.params.bf, 0.1);
    EXPECT_LE(c.model.params.bf, 1.0);
    EXPECT_GT(c.model.fit.r2, 0.7);
    EXPECT_EQ(c.model.params.cls, model::WorkloadClass::Enterprise);
}

TEST_F(MeasureTest, CharacterizationValidation)
{
    FreqScalingConfig cfg;
    cfg.coreGhz = {};
    EXPECT_THROW(characterize("oltp", cfg), ConfigError);
    cfg = FreqScalingConfig{};
    cfg.runsPerPoint = 0;
    EXPECT_THROW(characterize("oltp", cfg), ConfigError);
}

TEST_F(MeasureTest, TimeSeriesCapturesPerIntervalSamples)
{
    TimeSeriesConfig cfg;
    cfg.run = quickRun("spark");
    cfg.interval = nsToPicos(50'000.0);
    cfg.samples = 12;
    TimeSeries ts = captureTimeSeries(cfg);
    ASSERT_EQ(ts.samples.size(), 12u);
    for (const auto &s : ts.samples) {
        EXPECT_GT(s.cpi, 0.3);
        EXPECT_GE(s.cpuUtilization, 0.0);
        EXPECT_LE(s.cpuUtilization, 1.0);
        EXPECT_GE(s.bandwidthGBps, 0.0);
    }
    EXPECT_GT(ts.meanCpi(), 0.5);
    EXPECT_GT(ts.meanBandwidthGBps(), 0.0);
    // Spark has visible CPI variation (phases).
    EXPECT_GT(ts.cpiCv(), 0.0);
}

TEST_F(MeasureTest, TimeSeriesShowsSparkIdleGaps)
{
    TimeSeriesConfig cfg;
    cfg.run = quickRun("spark");
    cfg.interval = nsToPicos(100'000.0);
    cfg.samples = 8;
    TimeSeries ts = captureTimeSeries(cfg);
    EXPECT_LT(ts.meanCpuUtilization(), 0.97);
}

TEST_F(MeasureTest, LoadedLatencySweepShape)
{
    LoadedLatencySetup setup;
    setup.cores = 4;
    setup.delayCycles = {0, 64, 1024};
    setup.warmup = nsToPicos(60'000.0);
    setup.measure = nsToPicos(150'000.0);
    LoadedLatencyCurve c = sweepLoadedLatency(setup);
    ASSERT_EQ(c.points.size(), 3u);
    // More delay, less bandwidth.
    EXPECT_GT(c.points[0].bandwidthGBps, c.points[2].bandwidthGBps);
    // More bandwidth, more latency.
    EXPECT_GT(c.points[0].latencyNs, c.points[2].latencyNs);
    // Unloaded latency lands near the platform's compulsory ~75 ns.
    EXPECT_NEAR(c.unloadedNs, 75.0, 6.0);
    auto samples = c.toQueuingSamples();
    ASSERT_EQ(samples.size(), 3u);
    for (const auto &s : samples) {
        EXPECT_GE(s.x, 0.0);
        EXPECT_LE(s.x, 1.0);
        EXPECT_GE(s.y, 0.0);
    }
}

TEST_F(MeasureTest, MeasuredQueuingModelIsUsable)
{
    LoadedLatencySetup setup;
    setup.cores = 4;
    setup.delayCycles = {0, 16, 64, 256, 1024};
    setup.warmup = nsToPicos(60'000.0);
    setup.measure = nsToPicos(120'000.0);
    model::QueuingModel q = measureQueuingModel({setup}, 8);
    EXPECT_TRUE(q.isMeasured());
    EXPECT_GE(q.maxStableDelayNs(), q.delayNs(0.3));
    EXPECT_GE(q.delayNs(0.9), 0.0);
}

TEST_F(MeasureTest, SweepValidation)
{
    LoadedLatencySetup setup;
    setup.cores = 1; // no generators
    EXPECT_THROW(sweepLoadedLatency(setup), ConfigError);
    setup = LoadedLatencySetup{};
    setup.delayCycles = {};
    EXPECT_THROW(sweepLoadedLatency(setup), ConfigError);
    EXPECT_THROW(measureQueuingModel({}), ConfigError);
}

TEST_F(MeasureTest, Fig7SetupsCoverSpeedAndMixGrid)
{
    auto setups = paperFig7Setups();
    ASSERT_EQ(setups.size(), 4u);
    int fast = 0;
    int read_only = 0;
    for (const auto &s : setups) {
        if (s.memMtPerSec > 1800)
            ++fast;
        // memsense-lint: allow(float-equal): exact literal from the config
        if (s.readFraction == 1.0)
            ++read_only;
    }
    EXPECT_EQ(fast, 2);
    EXPECT_EQ(read_only, 2);
}

} // anonymous namespace
} // namespace memsense::measure
