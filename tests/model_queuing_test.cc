/**
 * @file
 * Tests for the queuing-delay model (Fig. 7 composite).
 */

#include <gtest/gtest.h>

#include "model/queuing.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

TEST(QueuingModel, AnalyticDefaultShape)
{
    QueuingModel q = QueuingModel::analyticDefault(20.0, 22.0, 0.95);
    EXPECT_FALSE(q.isMeasured());
    EXPECT_DOUBLE_EQ(q.delayNs(0.0), 0.0);
    // linear + M/D/1: d(0.5) = 20*0.5 + 22*0.5/(2*0.5) = 21.
    EXPECT_NEAR(q.delayNs(0.5), 21.0, 0.5);
    EXPECT_GT(q.delayNs(0.9), q.delayNs(0.5));
}

TEST(QueuingModel, DelayIsMonotone)
{
    QueuingModel q = QueuingModel::analyticDefault();
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.01) {
        double d = q.delayNs(u);
        ASSERT_GE(d, prev);
        prev = d;
    }
}

TEST(QueuingModel, ClampsAtMaxStableUtilization)
{
    QueuingModel q = QueuingModel::analyticDefault(20.0, 22.0, 0.95);
    EXPECT_DOUBLE_EQ(q.delayNs(0.99), q.maxStableDelayNs());
    EXPECT_DOUBLE_EQ(q.delayNs(2.0), q.maxStableDelayNs());
    EXPECT_DOUBLE_EQ(q.maxStableUtilization(), 0.95);
}

TEST(QueuingModel, NegativeUtilizationClampsToZero)
{
    QueuingModel q = QueuingModel::analyticDefault();
    EXPECT_DOUBLE_EQ(q.delayNs(-0.5), 0.0);
}

TEST(QueuingModel, FromMeasuredCurve)
{
    stats::PiecewiseCurve curve(
        {{0.0, 0.0}, {0.5, 10.0}, {0.9, 80.0}, {0.95, 130.0}});
    QueuingModel q = QueuingModel::fromCurve(curve, 0.95);
    EXPECT_TRUE(q.isMeasured());
    EXPECT_NEAR(q.delayNs(0.5), 10.0, 1e-9);
    EXPECT_NEAR(q.delayNs(0.7), 45.0, 1e-9);
    EXPECT_NEAR(q.maxStableDelayNs(), 130.0, 1e-9);
}

TEST(QueuingModel, RejectsNonMonotoneCurves)
{
    stats::PiecewiseCurve bad({{0.0, 5.0}, {0.5, 2.0}, {1.0, 10.0}});
    EXPECT_THROW(QueuingModel::fromCurve(bad, 0.95), ConfigError);
    // The documented remedy is monotoneEnvelope().
    EXPECT_NO_THROW(QueuingModel::fromCurve(bad.monotoneEnvelope(), 0.95));
}

TEST(QueuingModel, Validation)
{
    EXPECT_THROW(QueuingModel::analyticDefault(-1.0), ConfigError);
    EXPECT_THROW(QueuingModel::analyticDefault(20.0, 0.0), ConfigError);
    EXPECT_THROW(QueuingModel::analyticDefault(20.0, 22.0, 0.0),
                 ConfigError);
    EXPECT_THROW(QueuingModel::analyticDefault(20.0, 22.0, 1.0),
                 ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
