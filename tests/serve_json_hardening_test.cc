/**
 * @file
 * Hostile-input hardening tests for the serving JSON parser.
 *
 * The parser is the first thing untrusted network bytes reach, so it
 * must fail closed on resource-exhaustion shapes — oversized lines,
 * deep `[[[[...` nesting that would overflow the recursive descent's
 * stack — and on malformed UTF-8 inside string literals, all with a
 * typed ParseError (a ConfigError subclass) instead of a crash, an
 * OOM, or silent mojibake pass-through.
 */

#include <gtest/gtest.h>

#include <string>

#include "serve/json.hh"

namespace memsense::serve
{
namespace
{

TEST(JsonLimits, OversizedInputIsRejectedUpFront)
{
    JsonLimits limits;
    limits.maxBytes = 64;
    const std::string big(65, ' ');
    try {
        parseJson("\"" + big + "\"", limits);
        FAIL() << "oversized input parsed";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("byte cap"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonLimits, InputAtTheCapStillParses)
{
    JsonLimits limits;
    limits.maxBytes = 16;
    // Exactly 16 bytes: {"k":"0123456"} plus one space = 16.
    const std::string doc = "{\"k\":\"01234567\"}";
    ASSERT_EQ(doc.size(), 16u);
    JsonValue v = parseJson(doc, limits);
    EXPECT_EQ(v.at("k").asString("k"), "01234567");
}

TEST(JsonLimits, DeepNestingIsRejectedNotStackOverflowed)
{
    JsonLimits limits;
    limits.maxDepth = 8;
    std::string deep;
    for (int i = 0; i < 9; ++i)
        deep += "[";
    for (int i = 0; i < 9; ++i)
        deep += "]";
    EXPECT_THROW(parseJson(deep, limits), ParseError);

    std::string ok;
    for (int i = 0; i < 8; ++i)
        ok += "[";
    for (int i = 0; i < 8; ++i)
        ok += "]";
    EXPECT_NO_THROW(parseJson(ok, limits));
}

TEST(JsonLimits, HostileDepthBombAtDefaultLimitsDoesNotCrash)
{
    // 100k nested arrays: without the depth cap this would overflow
    // the stack long before running out of input.
    std::string bomb;
    bomb.reserve(200000);
    for (int i = 0; i < 100000; ++i)
        bomb += "[";
    EXPECT_THROW(parseJson(bomb), ParseError);
}

TEST(JsonLimits, MixedObjectArrayNestingCountsBothKinds)
{
    JsonLimits limits;
    limits.maxDepth = 4;
    // Depth 5 alternating object/array.
    EXPECT_THROW(parseJson("{\"a\":[{\"b\":[{}]}]}", limits),
                 ParseError);
    EXPECT_NO_THROW(parseJson("{\"a\":[{\"b\":[]}]}", limits));
}

TEST(JsonUtf8, TruncatedSequenceIsRejected)
{
    // E2 82 is the first two bytes of U+20AC (€); the tail is cut off.
    const std::string truncated = "\"\xE2\x82\"";
    try {
        parseJson(truncated);
        FAIL() << "truncated UTF-8 parsed";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated UTF-8"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonUtf8, BareContinuationByteIsRejected)
{
    EXPECT_THROW(parseJson("\"\x80\""), ParseError);
}

TEST(JsonUtf8, OverlongEncodingIsRejected)
{
    // C0 AF is the classic overlong encoding of '/'.
    EXPECT_THROW(parseJson("\"\xC0\xAF\""), ParseError);
    // E0 80 80: overlong NUL in three bytes.
    EXPECT_THROW(parseJson("\"\xE0\x80\x80\""), ParseError);
}

TEST(JsonUtf8, EncodedSurrogateIsRejected)
{
    // ED A0 80 encodes U+D800, a high surrogate — invalid in UTF-8.
    EXPECT_THROW(parseJson("\"\xED\xA0\x80\""), ParseError);
}

TEST(JsonUtf8, CodePointPastUnicodeRangeIsRejected)
{
    // F4 90 80 80 would be U+110000, one past the Unicode ceiling.
    EXPECT_THROW(parseJson("\"\xF4\x90\x80\x80\""), ParseError);
}

TEST(JsonUtf8, ValidMultiByteSequencesPassThrough)
{
    // é (2 bytes), € (3 bytes), 😀 (4 bytes).
    const std::string doc = "\"\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80\"";
    JsonValue v = parseJson(doc);
    EXPECT_EQ(v.text, "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
}

TEST(JsonUtf8, TruncatedAtEndOfInputDoesNotOverread)
{
    // Lead byte promising 4 bytes right at the end of the document.
    EXPECT_THROW(parseJson("\"\xF0"), ParseError);
}

TEST(JsonParseError, IsACatchableConfigError)
{
    // The service's per-line error capture catches ConfigError; the
    // hardened failures must flow through that path unchanged.
    try {
        parseJson("{\"a\":");
        FAIL() << "malformed input parsed";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("JSON parse error"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParseError, ReportsByteOffset)
{
    try {
        parseJson("{\"a\":tru}");
        FAIL() << "malformed input parsed";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("at byte"),
                  std::string::npos)
            << e.what();
    }
}

} // anonymous namespace
} // namespace memsense::serve
