/**
 * @file
 * Tests for the multicore machine: event loop, shared LLC contention,
 * snapshots, I/O injection, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace memsense::sim
{
namespace
{

/** Endless pointer-chase over a region (deterministic by seed). */
class ChaseStream : public OpStream
{
  public:
    ChaseStream(Addr base_in, std::uint64_t lines_in,
                std::uint64_t seed, bool dependent_in = true)
        : base(base_in), lines(lines_in), rng(seed),
          dependent(dependent_in)
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (++toggle % 2 == 0) {
            op.kind = OpKind::Compute;
            op.count = 20;
            return true;
        }
        op.kind = OpKind::Load;
        op.addr = base + rng.nextBounded(lines) * kLineBytes;
        op.dependent = dependent;
        op.stream = 0;
        return true;
    }

  private:
    Addr base;
    std::uint64_t lines;
    Rng rng;
    bool dependent;
    std::uint64_t toggle = 0;
};

MachineConfig
smallMachine(int cores = 2)
{
    MachineConfig cfg;
    cfg.cores = cores;
    cfg.core.ghz = 2.0;
    return cfg;
}

TEST(Machine, AdvancesAllCores)
{
    MachineConfig cfg = smallMachine();
    Machine m(cfg);
    ChaseStream s0(0, 1 << 16, 1);
    ChaseStream s1(Addr{1} << 32, 1 << 16, 2);
    m.bind(0, s0);
    m.bind(1, s1);
    EXPECT_TRUE(m.runFor(nsToPicos(50'000.0)));
    EXPECT_EQ(m.now(), nsToPicos(50'000.0));
    EXPECT_GT(m.core(0).counters().instructions, 0u);
    EXPECT_GT(m.core(1).counters().instructions, 0u);
    // Cores stay loosely synchronized (bounded skew).
    EXPECT_NEAR(static_cast<double>(m.core(0).now()),
                static_cast<double>(m.core(1).now()), 1e6);
}

TEST(Machine, SnapshotAggregatesCores)
{
    Machine m(smallMachine());
    ChaseStream s0(0, 1 << 16, 1);
    ChaseStream s1(Addr{1} << 32, 1 << 16, 2);
    m.bind(0, s0);
    m.bind(1, s1);
    m.runFor(nsToPicos(50'000.0));
    MachineSnapshot s = m.snapshot();
    EXPECT_EQ(s.instructions, m.core(0).counters().instructions +
                                  m.core(1).counters().instructions);
    EXPECT_GT(s.memoryFetches, 0u);
    EXPECT_GT(s.dramBytesRead, 0.0);
    EXPECT_GT(s.cpi(2.0), 0.5);
    EXPECT_GT(s.avgMissPenaltyNs(), 50.0);
}

TEST(Machine, SnapshotDeltasAreConsistent)
{
    Machine m(smallMachine());
    ChaseStream s0(0, 1 << 16, 1);
    ChaseStream s1(Addr{1} << 32, 1 << 16, 2);
    m.bind(0, s0);
    m.bind(1, s1);
    m.runFor(nsToPicos(20'000.0));
    MachineSnapshot a = m.snapshot();
    m.runFor(nsToPicos(20'000.0));
    MachineSnapshot b = m.snapshot();
    MachineSnapshot d = b - a;
    EXPECT_EQ(d.time, nsToPicos(20'000.0));
    EXPECT_EQ(d.instructions, b.instructions - a.instructions);
    EXPECT_GT(d.instructions, 0u);
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Machine m(smallMachine());
        ChaseStream s0(0, 1 << 16, 7);
        ChaseStream s1(Addr{1} << 32, 1 << 16, 8);
        m.bind(0, s0);
        m.bind(1, s1);
        m.runFor(nsToPicos(30'000.0));
        MachineSnapshot s = m.snapshot();
        return std::make_pair(s.instructions, s.memoryFetches);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Machine, MemoryContentionRaisesObservedLatency)
{
    // One core alone vs. co-running with a traffic-heavy neighbor:
    // the neighbor's DRAM load must raise the subject's observed
    // average miss penalty (shared memory-system contention — the
    // physical basis of the paper's Fig. 7).
    auto subject_latency = [](bool neighbor) {
        MachineConfig cfg = smallMachine(2);
        Machine m(cfg);
        ChaseStream subject(0, 1 << 20, 3);
        ChaseStream thrash(Addr{1} << 32, 1 << 22, 4, false);
        m.bind(0, subject);
        if (neighbor)
            m.bind(1, thrash);
        m.runFor(nsToPicos(500'000.0));
        return m.core(0).counters().avgMissPenaltyNs();
    };
    double alone = subject_latency(false);
    double shared = subject_latency(true);
    EXPECT_NEAR(alone, 75.0, 5.0); // unloaded random-access latency
    EXPECT_GT(shared, alone + 5.0);
}

TEST(Machine, IoInjectorAddsTraffic)
{
    MachineConfig cfg = smallMachine(1);
    Machine m(cfg);
    ChaseStream s0(0, 1 << 10, 1);
    m.bind(0, s0);
    IoConfig io;
    io.bytesPerSecond = 1e9;
    m.setIo(io);
    m.runFor(nsToPicos(1'000'000.0)); // 1 ms at 1 GB/s = ~1 MB
    MachineSnapshot s = m.snapshot();
    EXPECT_NEAR(s.ioBytes, 1e6, 2e5);
    EXPECT_GT(s.dramBytesRead + s.dramBytesWritten, s.ioBytes * 0.5);
}

TEST(Machine, FinishedStreamsEndTheRun)
{
    class ShortStream : public OpStream
    {
      public:
        bool
        next(MicroOp &op) override
        {
            if (count-- == 0)
                return false;
            op = MicroOp{};
            op.kind = OpKind::Compute;
            op.count = 4;
            return true;
        }

      private:
        int count = 10;
    };

    Machine m(smallMachine(1));
    ShortStream s;
    m.bind(0, s);
    EXPECT_FALSE(m.runFor(nsToPicos(1'000'000.0)));
    EXPECT_TRUE(m.core(0).done());
}

TEST(Machine, PrefillOptionControlsLlcState)
{
    MachineConfig cfg = smallMachine(1);
    cfg.prefillLlc = true;
    Machine filled(cfg);
    EXPECT_EQ(filled.llc().validLineCount(),
              cfg.llcTotalBytes() / kLineBytes);
    cfg.prefillLlc = false;
    Machine empty(cfg);
    EXPECT_EQ(empty.llc().validLineCount(), 0u);
}

TEST(Machine, BindValidatesCoreIndex)
{
    Machine m(smallMachine(2));
    ChaseStream s(0, 16, 1);
    EXPECT_THROW(m.bind(2, s), ConfigError);
    EXPECT_THROW(m.bind(-1, s), ConfigError);
    EXPECT_THROW(m.core(5), ConfigError);
}

TEST(Machine, UtilizationReflectsIdleStreams)
{
    class IdleHeavyStream : public OpStream
    {
      public:
        bool
        next(MicroOp &op) override
        {
            op = MicroOp{};
            if (++n % 2 == 0) {
                op.kind = OpKind::Idle;
                op.count = 300;
            } else {
                op.kind = OpKind::Compute;
                op.count = 400; // 100 cycles at 4-wide
            }
            return true;
        }

      private:
        std::uint64_t n = 0;
    };

    Machine m(smallMachine(1));
    IdleHeavyStream s;
    m.bind(0, s);
    m.runFor(nsToPicos(100'000.0));
    EXPECT_NEAR(m.snapshot().cpuUtilization(), 0.25, 0.05);
}

} // anonymous namespace
} // namespace memsense::sim
