/**
 * @file
 * Schema and determinism tests for the observability layer
 * (util/trace + measure/metrics): the emitted Chrome trace parses and
 * its spans nest per thread track, worker tracks match the --jobs
 * worker count, the metrics document validates against the
 * memsense.metrics.v1 schema, and the "counters" section is
 * byte-identical across worker counts for a deterministic sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "json_test_support.hh"
#include "measure/metrics.hh"
#include "measure/parallel.hh"
#include "model/platform.hh"
#include "model/solver.hh"
#include "util/error.hh"
#include "util/trace.hh"

namespace
{

using namespace memsense;
using memsense::testjson::JsonValue;
using memsense::testjson::parseJson;

std::string
tempFile(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class ObservabilityTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetAll(); }
    void TearDown() override { resetAll(); }

    static void resetAll()
    {
        trace::resetForTest();
        measure::MetricsRegistry::instance().resetForTest();
    }
};

/** One complete ("X") event lifted out of the parsed trace. */
struct Interval
{
    double ts = 0.0;
    double end = 0.0;
    std::string name;
};

TEST_F(ObservabilityTest, TraceFileParsesAndSpansNestPerTrack)
{
    const std::string path = tempFile("obs_trace.json");
    trace::startTracing(path);

    measure::ParallelExecutor exec(3);
    std::vector<int> inputs(8);
    std::iota(inputs.begin(), inputs.end(), 0);
    std::vector<int> doubled = exec.mapOrdered(inputs, [](const int &x) {
        trace::Span inner("test.inner");
        return x * 2;
    });
    EXPECT_EQ(trace::stopTracing(), path);
    EXPECT_EQ(doubled[7], 14);

    JsonValue doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.isObject());
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    std::map<double, std::vector<Interval>> by_tid;
    int jobs_spans = 0;
    int inner_spans = 0;
    for (const JsonValue &e : events.array) {
        ASSERT_TRUE(e.isObject());
        const std::string ph = e.at("ph").str;
        EXPECT_EQ(e.at("pid").number, 1.0);
        if (ph != "X")
            continue;
        Interval iv;
        iv.ts = e.at("ts").number;
        iv.end = iv.ts + e.at("dur").number;
        iv.name = e.at("name").str;
        by_tid[e.at("tid").number].push_back(iv);
        if (iv.name == "measure.job")
            ++jobs_spans;
        if (iv.name == "test.inner")
            ++inner_spans;
    }
    EXPECT_EQ(jobs_spans, 8);
    EXPECT_EQ(inner_spans, 8);

    // Spans on one thread track must obey stack discipline: any two
    // either nest or are disjoint (0.01 us slack for the fixed-point
    // timestamp formatting).
    const double eps = 0.01;
    for (auto &[tid, ivs] : by_tid) {
        std::sort(ivs.begin(), ivs.end(),
                  [](const Interval &a, const Interval &b) {
                      if (a.ts < b.ts)
                          return true;
                      if (b.ts < a.ts)
                          return false;
                      return a.end > b.end;
                  });
        std::vector<Interval> stack;
        for (const Interval &iv : ivs) {
            while (!stack.empty() && stack.back().end <= iv.ts + eps)
                stack.pop_back();
            if (!stack.empty()) {
                EXPECT_LE(iv.end, stack.back().end + eps)
                    << iv.name << " overlaps " << stack.back().name
                    << " on tid " << tid;
            }
            stack.push_back(iv);
        }
    }
}

TEST_F(ObservabilityTest, WorkerThreadTracksEqualJobs)
{
    const std::string path = tempFile("obs_tracks.json");
    trace::startTracing(path);

    const int jobs = 4;
    measure::ParallelExecutor exec(jobs);
    std::vector<int> inputs(16);
    std::iota(inputs.begin(), inputs.end(), 0);
    exec.mapOrdered(inputs, [](const int &x) { return x; });
    trace::stopTracing();

    JsonValue doc = parseJson(slurp(path));
    int workers = 0;
    bool has_main = false;
    for (const JsonValue &e : doc.at("traceEvents").array) {
        if (e.at("ph").str != "M" ||
            e.at("name").str != "thread_name")
            continue;
        const std::string name = e.at("args").at("name").str;
        if (name.rfind("worker-", 0) == 0)
            ++workers;
        if (name == "main")
            has_main = true;
    }
    EXPECT_EQ(workers, jobs);
    EXPECT_TRUE(has_main);

    const std::map<int, std::string> tracks = trace::threadTracks();
    EXPECT_EQ(tracks.size(), static_cast<std::size_t>(jobs + 1));
    EXPECT_EQ(tracks.at(0), "main");
    EXPECT_EQ(tracks.at(1), "worker-0");
    EXPECT_EQ(tracks.at(jobs), "worker-" + std::to_string(jobs - 1));
}

TEST_F(ObservabilityTest, CountersByteIdenticalAcrossJobCounts)
{
    auto counters_for = [](int jobs) {
        resetAll();
        trace::setStatsEnabled(true);

        measure::ParallelExecutor exec(jobs);
        std::vector<int> inputs(32);
        std::iota(inputs.begin(), inputs.end(), 0);
        measure::ResilienceOptions opts;
        opts.retry.maxAttempts = 3;
        opts.sleepMs = [](double) {}; // no real backoff sleeps
        auto results = exec.mapOrderedResilient(
            inputs,
            [](const int &x) -> double {
                if (x % 5 == 0)
                    throw TransientError("deterministic flake");
                return static_cast<double>(x);
            },
            opts);
        EXPECT_EQ(results.size(), inputs.size());
        return measure::MetricsRegistry::countersJson(
            measure::MetricsRegistry::instance().snapshot());
    };

    const std::string serial = counters_for(1);
    const std::string parallel4 = counters_for(4);
    const std::string parallel8 = counters_for(8);
    EXPECT_EQ(serial, parallel4);
    EXPECT_EQ(serial, parallel8);

    // And the totals mean what they should: 32 jobs, 7 quarantined
    // (every 5th), each flaky job retried twice after its first try.
    EXPECT_NE(serial.find("\"measure.jobs_run\": 32"),
              std::string::npos)
        << serial;
    EXPECT_NE(serial.find("\"measure.jobs_quarantined\": 7"),
              std::string::npos)
        << serial;
    EXPECT_NE(serial.find("\"measure.job_retries\": 14"),
              std::string::npos)
        << serial;
}

TEST_F(ObservabilityTest, DisabledMacrosRecordNothing)
{
    {
        MS_TRACE_SPAN("test.disabled");
        MS_METRIC_COUNT("test.disabled_counter");
        MS_METRIC_OBSERVE("test.disabled_value", 42.0);
    }
    EXPECT_TRUE(trace::counterTotals().empty());
    EXPECT_TRUE(trace::spanStats().empty());
    EXPECT_TRUE(trace::valueStats().empty());
}

TEST_F(ObservabilityTest, MetricsDocumentValidatesAgainstSchema)
{
    trace::setStatsEnabled(true);

    model::WorkloadParams p;
    p.cpiCache = 1.2;
    p.bf = 0.6;
    p.mpki = 20.0;
    p.wbr = 0.3;
    model::Platform plat = model::Platform::paperBaseline();
    model::Solver solver;
    model::OperatingPoint op = solver.solve(p, plat);
    EXPECT_GT(op.iterations, 0);
    {
        measure::PhaseTimer phase("unit");
    }

    const std::string path = tempFile("obs_metrics.json");
    measure::MetricsRegistry::instance().flushToFile(path, "unit_test");

    JsonValue doc = parseJson(slurp(path));
    EXPECT_EQ(doc.at("schema").str, "memsense.metrics.v1");
    EXPECT_EQ(doc.at("experiment").str, "unit_test");

    const JsonValue &counters = doc.at("counters");
    ASSERT_TRUE(counters.isObject());
    EXPECT_GE(counters.at("solver.solves").number, 1.0);
    EXPECT_GE(counters.at("solver.iterations").number, 1.0);
    EXPECT_GE(counters.at("queuing.delay_lookups").number, 1.0);

    const JsonValue &dist =
        doc.at("distributions").at("solver.iterations_per_solve");
    EXPECT_GE(dist.at("count").number, 1.0);
    EXPECT_GE(dist.at("max").number, dist.at("min").number);
    EXPECT_FALSE(dist.at("log2_buckets").object.empty());

    const JsonValue &span = doc.at("spans").at("solver.solve");
    EXPECT_GE(span.at("count").number, 1.0);
    EXPECT_LE(span.at("min_ns").number, span.at("max_ns").number);
    EXPECT_GE(span.at("total_ns").number, span.at("max_ns").number);

    const JsonValue &gauges = doc.at("gauges");
    ASSERT_TRUE(gauges.has("phase.unit.wall_ms"));
    EXPECT_GE(gauges.at("phase.unit.wall_ms").number, 0.0);

    // The determinism helper is exactly the document's counters
    // section.
    const std::string slice = measure::MetricsRegistry::countersJson(
        measure::MetricsRegistry::instance().snapshot());
    EXPECT_NE(slurp(path).find(slice), std::string::npos);
}

TEST_F(ObservabilityTest, WallClockArtifactsStayOutOfCountersSlice)
{
    // Regression guard for the determinism contract: countersJson()
    // is the byte-comparable slice that figure-level determinism
    // checks diff across --jobs values, so nothing wall-clock —
    // PhaseTimer gauges, span timings — may ever appear in it. A
    // PhaseTimer leaking into the slice would make the determinism
    // checks flaky exactly when observability is armed.
    trace::setStatsEnabled(true);
    {
        measure::PhaseTimer sweep("sweep");
        MS_TRACE_SPAN("unit.work");
        MS_METRIC_COUNT("unit.deterministic_total");
    }

    measure::MetricsSnapshot snap =
        measure::MetricsRegistry::instance().snapshot();
    // The phase recorded both of its wall-clock artifacts...
    ASSERT_TRUE(snap.gauges.count("phase.sweep.wall_ms"));
    ASSERT_TRUE(snap.spans.count("phase.sweep"));
    ASSERT_TRUE(snap.spans.count("unit.work"));

    // ...and none of them reach the byte-comparable slice; the
    // deterministic counter does.
    const std::string slice =
        measure::MetricsRegistry::countersJson(snap);
    EXPECT_NE(slice.find("unit.deterministic_total"),
              std::string::npos)
        << slice;
    EXPECT_EQ(slice.find("phase."), std::string::npos) << slice;
    EXPECT_EQ(slice.find("wall_ms"), std::string::npos) << slice;
    EXPECT_EQ(slice.find("_ns"), std::string::npos) << slice;
    EXPECT_EQ(slice.find("unit.work"), std::string::npos) << slice;

    // Two snapshots of the same counters serialize byte-identically
    // even though wall time moved between them.
    {
        measure::PhaseTimer again("sweep");
    }
    const std::string slice2 = measure::MetricsRegistry::countersJson(
        measure::MetricsRegistry::instance().snapshot());
    EXPECT_EQ(slice, slice2);
}

TEST_F(ObservabilityTest, TracingLifecycleGuards)
{
    EXPECT_EQ(trace::stopTracing(), "") << "stop without start is a no-op";
    EXPECT_THROW(trace::startTracing(""), ConfigError);

    const std::string path = tempFile("obs_lifecycle.json");
    trace::startTracing(path);
    EXPECT_THROW(trace::startTracing(path), ConfigError);
    EXPECT_EQ(trace::stopTracing(), path);
    EXPECT_FALSE(trace::tracingEnabled());

    JsonValue doc = parseJson(slurp(path));
    EXPECT_TRUE(doc.at("traceEvents").isArray());
}

TEST_F(ObservabilityTest, ValueStatBucketsAreLog2)
{
    EXPECT_EQ(trace::valueBucketIndex(1.0),
              -trace::kValueBucketMinLog2);
    EXPECT_EQ(trace::valueBucketIndex(2.0),
              -trace::kValueBucketMinLog2 + 1);
    EXPECT_EQ(trace::valueBucketIndex(3.9),
              -trace::kValueBucketMinLog2 + 1);
    EXPECT_EQ(trace::valueBucketIndex(0.5),
              -trace::kValueBucketMinLog2 - 1);
    EXPECT_EQ(trace::valueBucketIndex(0.0), -1);
    EXPECT_EQ(trace::valueBucketIndex(-5.0), -1);
    EXPECT_EQ(trace::valueBucketIndex(
                  std::numeric_limits<double>::infinity()),
              -1);
    EXPECT_EQ(trace::valueBucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              -1);
    // Values beyond the bucket range clamp to the edge buckets.
    EXPECT_EQ(trace::valueBucketIndex(1e-30), 0);
    EXPECT_EQ(trace::valueBucketIndex(1e300),
              trace::kValueBuckets - 1);
}

} // anonymous namespace
