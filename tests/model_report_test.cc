/**
 * @file
 * Tests for the one-call sensitivity report.
 */

#include <gtest/gtest.h>

#include "model/paper_data.hh"
#include "model/report.hh"

namespace memsense::model
{
namespace
{

SensitivityReport
reportFor(WorkloadClass cls)
{
    return buildReport(Solver(), paper::classParams(cls),
                       Platform::paperBaseline());
}

TEST(Report, PopulatesAllSections)
{
    SensitivityReport r = reportFor(WorkloadClass::BigData);
    EXPECT_GT(r.baseline.cpiEff, 0.9);
    EXPECT_EQ(r.latencySweep.size(), 7u);
    EXPECT_GE(r.bandwidthSweep.size(), 12u);
    EXPECT_FALSE(r.recommendation.empty());
}

TEST(Report, RecommendsBandwidthForHpc)
{
    SensitivityReport r = reportFor(WorkloadClass::Hpc);
    EXPECT_TRUE(r.baseline.bandwidthBound);
    EXPECT_NE(r.recommendation.find("BANDWIDTH BOUND"),
              std::string::npos);
}

TEST(Report, RecommendsLatencyForEnterprise)
{
    SensitivityReport r = reportFor(WorkloadClass::Enterprise);
    EXPECT_FALSE(r.baseline.bandwidthBound);
    EXPECT_NE(r.recommendation.find("LATENCY LIMITED"),
              std::string::npos);
}

TEST(Report, RecommendsCoresForCoreBoundWorkloads)
{
    WorkloadParams p = paper::bigDataParams()[3]; // Proximity
    SensitivityReport r =
        buildReport(Solver(), p, Platform::paperBaseline());
    EXPECT_NE(r.recommendation.find("CORE BOUND"), std::string::npos);
}

TEST(Report, MarkdownContainsTheNumbers)
{
    SensitivityReport r = reportFor(WorkloadClass::Enterprise);
    std::string md = r.toMarkdown();
    EXPECT_NE(md.find("# Memory sensitivity report: Enterprise"),
              std::string::npos);
    EXPECT_NE(md.find("## Operating point"), std::string::npos);
    EXPECT_NE(md.find("## Latency sensitivity"), std::string::npos);
    EXPECT_NE(md.find("## Bandwidth sensitivity"), std::string::npos);
    EXPECT_NE(md.find("## Design tradeoff"), std::string::npos);
    EXPECT_NE(md.find("## Recommendation"), std::string::npos);
    // The baseline CPI appears somewhere in the tables.
    char cpi[16];
    std::snprintf(cpi, sizeof(cpi), "%.3f", r.baseline.cpiEff);
    EXPECT_NE(md.find(cpi), std::string::npos);
}

TEST(Report, HpcMarkdownFlagsUnboundedEquivalence)
{
    std::string md = reportFor(WorkloadClass::Hpc).toMarkdown();
    EXPECT_NE(md.find("no latency reduction matches"),
              std::string::npos);
}

} // anonymous namespace
} // namespace memsense::model
