/**
 * @file
 * Tests for trace recording, serialization, and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "util/error.hh"
#include "workloads/factory.hh"

namespace memsense::sim
{
namespace
{

Trace
sampleTrace()
{
    Trace t;
    MicroOp op;
    op.kind = OpKind::Compute;
    op.count = 42;
    t.append(op);
    op = MicroOp{};
    op.kind = OpKind::Load;
    op.addr = 0xdeadbeef00;
    op.dependent = true;
    op.stream = 7;
    t.append(op);
    op = MicroOp{};
    op.kind = OpKind::Store;
    op.addr = 0x1000;
    op.stream = 2;
    t.append(op);
    op = MicroOp{};
    op.kind = OpKind::NtStore;
    op.addr = 0x2000;
    t.append(op);
    op = MicroOp{};
    op.kind = OpKind::Bubble;
    op.count = 9;
    t.append(op);
    op = MicroOp{};
    op.kind = OpKind::Idle;
    op.count = 100;
    t.append(op);
    return t;
}

TEST(Trace, SaveLoadRoundTrips)
{
    Trace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);
    Trace loaded = Trace::load(ss);
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded.at(i).kind, t.at(i).kind) << i;
        EXPECT_EQ(loaded.at(i).addr, t.at(i).addr) << i;
        EXPECT_EQ(loaded.at(i).count, t.at(i).count) << i;
        EXPECT_EQ(loaded.at(i).dependent, t.at(i).dependent) << i;
        EXPECT_EQ(loaded.at(i).stream, t.at(i).stream) << i;
    }
}

TEST(Trace, Counters)
{
    Trace t = sampleTrace();
    // 42 compute + 3 memory ops; bubbles/idle retire nothing.
    EXPECT_EQ(t.instructionCount(), 45u);
    EXPECT_EQ(t.memOpCount(), 3u);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines)
{
    std::stringstream ss("# comment\n\nC 5\n# another\nL ff 1 3\n");
    Trace t = Trace::load(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.at(0).count, 5u);
    EXPECT_EQ(t.at(1).addr, 0xffu);
    EXPECT_TRUE(t.at(1).dependent);
}

TEST(Trace, LoadRejectsMalformedLines)
{
    std::stringstream bad_tag("X 5\n");
    EXPECT_THROW(Trace::load(bad_tag), ConfigError);
    std::stringstream missing_field("L ff\n");
    EXPECT_THROW(Trace::load(missing_field), ConfigError);
}

TEST(RecordingStream, TeesOpsThrough)
{
    auto w = workloads::makeWorkload("proximity", 0, 3);
    RecordingStream rec(*w, 100);
    MicroOp op;
    for (int i = 0; i < 250; ++i)
        ASSERT_TRUE(rec.next(op));
    // Capped at 100 records, but kept passing through.
    EXPECT_EQ(rec.trace().size(), 100u);
}

TEST(RecordingStream, RecordsExactlyWhatFlowed)
{
    auto a = workloads::makeWorkload("oltp", 0, 5);
    auto b = workloads::makeWorkload("oltp", 0, 5);
    RecordingStream rec(*a, 0);
    MicroOp ra;
    MicroOp rb;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(rec.next(ra));
        ASSERT_TRUE(b->next(rb));
        ASSERT_EQ(ra.addr, rb.addr);
    }
    EXPECT_EQ(rec.trace().size(), 500u);
}

TEST(ReplayStream, ReplaysAndEnds)
{
    Trace t = sampleTrace();
    ReplayStream replay(t, /*loop=*/false);
    MicroOp op;
    std::size_t n = 0;
    while (replay.next(op))
        ++n;
    EXPECT_EQ(n, t.size());
}

TEST(ReplayStream, LoopsWhenAsked)
{
    Trace t = sampleTrace();
    ReplayStream replay(t, /*loop=*/true);
    MicroOp op;
    for (std::size_t i = 0; i < 5 * t.size(); ++i)
        ASSERT_TRUE(replay.next(op));
    // After exactly N loops we are at the first op again.
    ASSERT_TRUE(replay.next(op));
    EXPECT_EQ(op.kind, OpKind::Compute);
    EXPECT_EQ(op.count, 42u);
}

TEST(ReplayStream, RejectsEmptyTrace)
{
    EXPECT_THROW(ReplayStream(Trace{}, false), ConfigError);
}

TEST(Trace, RecordReplayProducesIdenticalSimResults)
{
    // A trace is a faithful substitute for its generator.
    auto live = workloads::makeWorkload("column_store", 0, 9);
    RecordingStream rec(*live, 0);
    MicroOp op;
    for (int i = 0; i < 20'000; ++i)
        rec.next(op);

    ReplayStream replay(rec.trace(), false);
    auto fresh = workloads::makeWorkload("column_store", 0, 9);
    MicroOp a;
    MicroOp b;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(replay.next(a));
        ASSERT_TRUE(fresh->next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.kind, b.kind);
    }
}

TEST(Trace, ReplayOnMachineMatchesLiveRun)
{
    // Simulating a recorded trace produces the same counters as
    // simulating the generator it was recorded from — traces are a
    // drop-in workload substitute.
    auto run = [](OpStream &stream) {
        MachineConfig cfg;
        cfg.cores = 1;
        Machine m(cfg);
        m.bind(0, stream);
        m.runFor(nsToPicos(200'000.0));
        MachineSnapshot s = m.snapshot();
        return std::make_tuple(s.instructions, s.memoryFetches,
                               s.busyTime);
    };

    auto live = workloads::makeWorkload("oltp", 0, 77);
    RecordingStream rec(*live, 0);
    {
        // Record enough ops to cover the run.
        MicroOp op;
        for (int i = 0; i < 400'000; ++i)
            rec.next(op);
    }
    ReplayStream replay(rec.trace(), /*loop=*/true);
    auto fresh = workloads::makeWorkload("oltp", 0, 77);

    EXPECT_EQ(run(replay), run(*fresh));
}

} // anonymous namespace
} // namespace memsense::sim
