/**
 * @file
 * Tests for the DDR channel model: row-buffer behavior, bus
 * serialization, pipelined column accesses, and emergent queuing.
 */

#include <gtest/gtest.h>

#include "sim/dram.hh"

namespace memsense::sim
{
namespace
{

DramConfig
ddr1867()
{
    DramConfig cfg;
    cfg.megaTransfers = 1866.7;
    return cfg;
}

TEST(Dram, UnloadedRowMissLatency)
{
    DramChannel ch(ddr1867());
    DramService s = ch.read(0, 0, 0);
    // Closed bank: tRCD + tCAS + transfer.
    Picos expected = nsToPicos(13.9) + nsToPicos(13.9) +
                     nsToPicos(ddr1867().lineTransferNs());
    EXPECT_EQ(s.complete, expected);
    EXPECT_FALSE(s.rowHit);
    EXPECT_EQ(ch.unloadedReadPs(), expected);
}

TEST(Dram, RowHitIsFasterThanRowConflict)
{
    DramChannel ch(ddr1867());
    DramService first = ch.read(0, 7, 0);
    Picos t1 = first.complete;
    DramService hit = ch.read(0, 7, t1 + 100000);
    DramService conflict = ch.read(0, 8, hit.complete + 100000);
    Picos hit_latency = hit.complete - (t1 + 100000);
    Picos conflict_latency =
        conflict.complete - (hit.complete + 100000);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_FALSE(conflict.rowHit);
    // Conflict pays tRP + tRCD extra.
    EXPECT_EQ(conflict_latency - hit_latency,
              nsToPicos(13.9) + nsToPicos(13.9));
}

TEST(Dram, BusSerializesConcurrentBanks)
{
    DramChannel ch(ddr1867());
    // Two simultaneous reads to different banks: row latency overlaps
    // but the data bus transfers serialize.
    DramService a = ch.read(0, 0, 0);
    DramService b = ch.read(1, 0, 0);
    EXPECT_GT(b.complete, a.complete);
    Picos occupancy = nsToPicos(ddr1867().lineTransferNs() *
                                ddr1867().busOverheadFactor);
    EXPECT_EQ(b.complete - a.complete, occupancy);
}

TEST(Dram, RowHitsPipelineOnOneBank)
{
    // Back-to-back row hits to one bank stream at the bus rate, not
    // at (tCAS + transfer) per access — the fix that keeps streaming
    // workloads from spuriously saturating a single bank.
    DramChannel ch(ddr1867());
    ch.read(0, 0, 0); // open the row
    Picos t0 = 1'000'000;
    DramService s1 = ch.read(0, 0, t0);
    DramService s2 = ch.read(0, 0, t0);
    DramService s3 = ch.read(0, 0, t0);
    Picos occupancy = nsToPicos(ddr1867().lineTransferNs() *
                                ddr1867().busOverheadFactor);
    EXPECT_EQ(s2.complete - s1.complete, occupancy);
    EXPECT_EQ(s3.complete - s2.complete, occupancy);
}

TEST(Dram, QueueDelayEmergesUnderLoad)
{
    DramChannel ch(ddr1867());
    // Pile 50 simultaneous requests onto one bank+row.
    Picos last = 0;
    for (int i = 0; i < 50; ++i)
        last = ch.read(0, 0, 0).complete;
    // The 50th request waits for 49 predecessors.
    EXPECT_GT(picosToNs(last), 49 * ddr1867().lineTransferNs());
    EXPECT_GT(ch.stats().queueDelay, 0u);
}

TEST(Dram, WritesOccupyResources)
{
    DramChannel ch(ddr1867());
    ch.write(0, 0, 0);
    DramService r = ch.read(0, 0, 0);
    // The read queues behind the write's bank/bus occupancy.
    EXPECT_GT(r.complete, ch.unloadedReadPs());
    EXPECT_EQ(ch.stats().writes, 1u);
    EXPECT_EQ(ch.stats().reads, 1u);
}

TEST(Dram, StatsTrackRowHitRatio)
{
    DramChannel ch(ddr1867());
    Picos t = 0;
    t = ch.read(0, 0, t).complete;
    t = ch.read(0, 0, t).complete; // hit
    t = ch.read(0, 0, t).complete; // hit
    ch.read(0, 1, t);              // conflict
    EXPECT_EQ(ch.stats().rowHits, 2u);
    EXPECT_EQ(ch.stats().rowMisses, 2u);
    EXPECT_NEAR(ch.stats().rowHitRatio(), 0.5, 1e-12);
}

TEST(Dram, SlowerSpeedLongerTransfer)
{
    DramConfig slow = ddr1867();
    slow.megaTransfers = 1333.3;
    EXPECT_GT(slow.lineTransferNs(), ddr1867().lineTransferNs());
    EXPECT_LT(slow.peakBandwidth(), ddr1867().peakBandwidth());
    // 1866.7 MT/s * 8 B = 14.93 GB/s per channel.
    EXPECT_NEAR(ddr1867().peakBandwidth() / 4 / 1e9, 14.93, 0.01);
}

TEST(Dram, ClearStatsKeepsTimingState)
{
    DramChannel ch(ddr1867());
    Picos t = ch.read(0, 3, 0).complete;
    ch.clearStats();
    EXPECT_EQ(ch.stats().reads, 0u);
    // Row 3 is still open: next access is a hit.
    DramService s = ch.read(0, 3, t);
    EXPECT_TRUE(s.rowHit);
}

} // anonymous namespace
} // namespace memsense::sim
