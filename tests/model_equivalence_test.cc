/**
 * @file
 * Tests for the latency/bandwidth tradeoff equivalence (Table 7).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/equivalence.hh"
#include "model/paper_data.hh"
#include "util/contract.hh"

namespace memsense::model
{
namespace
{

EquivalenceAnalyzer
makeAnalyzer()
{
    return EquivalenceAnalyzer(Solver(), Platform::paperBaseline());
}

TEST(Equivalence, HpcGainsBigFromBandwidthNothingFromLatency)
{
    // Paper Table 7: HPC ~24% per +1 GB/s/core, ~0% per -10 ns.
    EquivalenceAnalyzer an = makeAnalyzer();
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    EXPECT_GT(an.perfGainFromBandwidth(hpc), 10.0);
    EXPECT_NEAR(an.perfGainFromLatency(hpc), 0.0, 0.3);
}

TEST(Equivalence, LatencyLimitedClassesGainFromLatency)
{
    // Paper Table 7: enterprise/big data gain ~3%/10ns and <1% per
    // +1 GB/s/core.
    EquivalenceAnalyzer an = makeAnalyzer();
    for (WorkloadClass cls :
         {WorkloadClass::Enterprise, WorkloadClass::BigData}) {
        WorkloadParams p = paper::classParams(cls);
        double lat = an.perfGainFromLatency(p);
        double bw = an.perfGainFromBandwidth(p);
        EXPECT_GT(lat, 1.5) << className(cls);
        EXPECT_LT(bw, 2.5) << className(cls);
        EXPECT_LT(bw, lat) << className(cls);
    }
}

TEST(Equivalence, BandwidthEquivalentOfLatencyIsFiniteForLatencyBound)
{
    // Paper: 10 ns == 39.7 GB/s (enterprise) / 27.1 GB/s (big data).
    // Exact numbers depend on the queuing curve; the reproduction
    // claim is a finite, tens-of-GB/s-scale equivalence with
    // enterprise needing more than big data.
    EquivalenceAnalyzer an = makeAnalyzer();
    double ent = an.bandwidthEquivalentOfLatency(
        paper::classParams(WorkloadClass::Enterprise));
    double bd = an.bandwidthEquivalentOfLatency(
        paper::classParams(WorkloadClass::BigData));
    EXPECT_TRUE(std::isfinite(ent));
    EXPECT_TRUE(std::isfinite(bd));
    EXPECT_GT(ent, 5.0);
    EXPECT_GT(bd, 3.0);
    EXPECT_GT(ent, bd);
}

TEST(Equivalence, HpcLatencyGivesZeroBandwidthEquivalent)
{
    // No latency benefit -> nothing to match.
    EquivalenceAnalyzer an = makeAnalyzer();
    double hpc = an.bandwidthEquivalentOfLatency(
        paper::classParams(WorkloadClass::Hpc));
    EXPECT_DOUBLE_EQ(hpc, 0.0);
}

TEST(Equivalence, NoLatencyReductionMatchesBandwidthForHpc)
{
    // Paper Sec. VI.D: "no amount of latency reduction can compensate
    // for bandwidth constraints for our HPC mix."
    EquivalenceAnalyzer an = makeAnalyzer();
    double ns = an.latencyEquivalentOfBandwidth(
        paper::classParams(WorkloadClass::Hpc));
    EXPECT_TRUE(std::isinf(ns));
}

TEST(Equivalence, LatencyEquivalentOfBandwidthSmallForLatencyBound)
{
    // Paper: +1 GB/s/core == ~2.0 ns (enterprise) / ~2.9 ns (big
    // data); the claim reproduced is a small single-digit-ns
    // equivalence, larger for big data than enterprise.
    EquivalenceAnalyzer an = makeAnalyzer();
    double ent = an.latencyEquivalentOfBandwidth(
        paper::classParams(WorkloadClass::Enterprise));
    double bd = an.latencyEquivalentOfBandwidth(
        paper::classParams(WorkloadClass::BigData));
    EXPECT_TRUE(std::isfinite(ent));
    EXPECT_TRUE(std::isfinite(bd));
    EXPECT_LT(ent, 10.0);
    EXPECT_LT(bd, 12.0);
    EXPECT_GT(bd, ent);
}

TEST(Equivalence, EquivalenceRoundTrips)
{
    // Granting the computed bandwidth equivalent must reproduce the
    // 10 ns CPI within tolerance (definition of equivalence).
    EquivalenceAnalyzer an = makeAnalyzer();
    Platform base = Platform::paperBaseline();
    Solver solver;
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);

    double gbps = an.bandwidthEquivalentOfLatency(bd, 10.0);
    Platform lat_plat = base;
    lat_plat.memory = base.memory.withCompulsoryNs(65.0);
    double target = solver.solve(bd, lat_plat).cpiEff;

    Platform bw_plat = base;
    double scale = (base.memory.effectiveBandwidth() + gbps * 1e9) /
                   base.memory.effectiveBandwidth();
    // Scale the channel rate; effective bandwidth grows by the same
    // factor and, unlike efficiency, cannot leave its valid range.
    bw_plat.memory =
        base.memory.withSpeed(base.memory.megaTransfers * scale);
    double via_bw = solver.solve(bd, bw_plat).cpiEff;
    EXPECT_NEAR(via_bw, target, target * 0.01);
}

TEST(Equivalence, SummaryPopulatesAllFields)
{
    EquivalenceAnalyzer an = makeAnalyzer();
    TradeoffSummary s =
        an.summarize(paper::classParams(WorkloadClass::BigData));
    EXPECT_EQ(s.name, "Big Data");
    EXPECT_GT(s.baselineCpi, 0.9);
    EXPECT_GT(s.perfGainLatencyPct, 0.0);
    EXPECT_GT(s.bandwidthEquivalentGBps, 0.0);
    EXPECT_GT(s.latencyEquivalentNs, 0.0);
}

TEST(Equivalence, ZeroDeltasGiveZeroGains)
{
    EquivalenceAnalyzer an = makeAnalyzer();
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    EXPECT_DOUBLE_EQ(an.perfGainFromBandwidth(bd, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(an.perfGainFromLatency(bd, 0.0), 0.0);
}

TEST(Equivalence, NoLatencyHeadroomGivesInfiniteEquivalent)
{
    // Regression: with the baseline compulsory latency already at the
    // 1 ns floor, the old bisection bracket [0, compulsoryNs - 1]
    // collapsed to a point (or went negative) and converged onto
    // nonsense negative "equivalent" latency reductions. No reduction
    // can match the bandwidth gain, so the answer is infinity.
    Platform floor_plat = Platform::paperBaseline();
    floor_plat.memory = floor_plat.memory.withCompulsoryNs(1.0);
    EquivalenceAnalyzer an(Solver(), floor_plat);
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    double equivalent_ns = an.latencyEquivalentOfBandwidth(bd);
    EXPECT_TRUE(std::isinf(equivalent_ns));
    EXPECT_GT(equivalent_ns, 0.0) << "must never be negative";
}

TEST(Equivalence, NegligibleThresholdMustBeNonNegative)
{
    EquivalenceAnalyzer an = makeAnalyzer();
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    EXPECT_THROW(an.bandwidthEquivalentOfLatency(bd, 10.0, -1e-6),
                 ContractViolation);
    EXPECT_THROW(an.latencyEquivalentOfBandwidth(bd, 1.0, -1e-6),
                 ContractViolation);
}

} // anonymous namespace
} // namespace memsense::model
