/**
 * @file
 * Seeded generative-testing support for the model invariant suites.
 *
 * forAll() drives a property over many randomly generated cases from
 * the repo's own deterministic Rng (util/rng.hh), so a failure
 * reproduces exactly from the seed/iteration pair printed in the
 * gtest trace. Generators draw only inputs that satisfy the model's
 * validate() contracts (params.hh / platform.hh), so every generated
 * case is a legal call — properties test behaviour, not validation.
 */

#ifndef MEMSENSE_TESTS_PROPERTY_TEST_SUPPORT_HH
#define MEMSENSE_TESTS_PROPERTY_TEST_SUPPORT_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "model/memory_config.hh"
#include "model/params.hh"
#include "model/platform.hh"
#include "util/rng.hh"

namespace memsense::proptest
{

/**
 * Run @p property(rng) for @p iterations independent cases derived
 * from @p seed. Each case gets its own Rng stream (seed + iteration
 * index hashed apart) and a SCOPED_TRACE naming the reproducer.
 */
template <typename Property>
void
forAll(std::uint64_t seed, int iterations, Property property)
{
    for (int i = 0; i < iterations; ++i) {
        SCOPED_TRACE("forAll seed=" +
                     std::to_string(
                         static_cast<unsigned long long>(seed)) +
                     " iteration=" + std::to_string(i));
        Rng rng(seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(i));
        property(rng);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

/** Uniform double in [lo, hi). */
inline double
uniform(Rng &rng, double lo, double hi)
{
    return lo + rng.nextDouble() * (hi - lo);
}

/** Uniform int in [lo_i, hi_i]. */
inline int
uniformInt(Rng &rng, int lo_i, int hi_i)
{
    return lo_i + static_cast<int>(rng.nextBounded(
                      static_cast<std::uint64_t>(hi_i - lo_i + 1)));
}

/**
 * A random workload inside the validate() envelope, spanning the
 * paper's Table 3 neighbourhood plus a wide margin: cache-friendly
 * through memory-bound, with and without I/O traffic.
 */
inline model::WorkloadParams
genWorkloadParams(Rng &rng)
{
    model::WorkloadParams p;
    p.cpiCache = uniform(rng, 0.3, 5.0);
    p.bf = uniform(rng, 0.01, 1.0);
    p.mpki = uniform(rng, 0.01, 50.0);
    p.wbr = uniform(rng, 0.0, 1.0);
    if (rng.chance(0.25)) {
        p.iopi = uniform(rng, 0.0, 1e-3);
        p.ioBytes = uniform(rng, 0.0, 1e5);
    }
    p.validate();
    return p;
}

/** A random memory configuration inside the validate() envelope. */
inline model::MemoryConfig
genMemoryConfig(Rng &rng)
{
    model::MemoryConfig m;
    m.channels = uniformInt(rng, 1, 8);
    const double speeds[] = {1333.3, 1600.0, 1866.7, 2133.3};
    m.megaTransfers = speeds[rng.nextBounded(4)];
    m.efficiency = uniform(rng, 0.5, 0.9);
    m.compulsoryNs = uniform(rng, 50.0, 120.0);
    return m;
}

/** A random platform inside the validate() envelope. */
inline model::Platform
genPlatform(Rng &rng)
{
    model::Platform plat;
    plat.cores = uniformInt(rng, 1, 32);
    plat.smt = uniformInt(rng, 1, 2);
    plat.ghz = uniform(rng, 1.0, 4.0);
    plat.memory = genMemoryConfig(rng);
    plat.validate();
    return plat;
}

} // namespace memsense::proptest

#endif // MEMSENSE_TESTS_PROPERTY_TEST_SUPPORT_HH
