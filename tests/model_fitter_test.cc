/**
 * @file
 * Tests for the Eq. 1 model fitter (Sec. V methodology), including
 * fitting the paper's own Table 3 grid.
 */

#include <gtest/gtest.h>

#include "model/fitter.hh"
#include "model/paper_data.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace memsense::model
{
namespace
{

FitObservation
makeObs(double mpi, double mp_cycles, double cpi)
{
    FitObservation o;
    o.mpi = mpi;
    o.mpki = mpi * 1000.0;
    o.mpCycles = mp_cycles;
    o.cpiEff = cpi;
    o.wbr = 0.3;
    o.instructions = 1e6;
    return o;
}

TEST(Fitter, RecoversExactLine)
{
    std::vector<FitObservation> obs;
    for (double mp : {300.0, 400.0, 500.0, 600.0})
        obs.push_back(makeObs(0.006, mp, 0.9 + 0.006 * mp * 0.25));
    FittedModel m = fitModel("synthetic", WorkloadClass::BigData, obs);
    EXPECT_NEAR(m.params.cpiCache, 0.9, 1e-9);
    EXPECT_NEAR(m.params.bf, 0.25, 1e-9);
    EXPECT_NEAR(m.fit.r2, 1.0, 1e-9);
    EXPECT_FALSE(m.coreBound);
    EXPECT_EQ(m.params.cls, WorkloadClass::BigData);
    EXPECT_NEAR(m.params.mpki, 6.0, 1e-9);
    EXPECT_NEAR(m.params.wbr, 0.3, 1e-9);
}

TEST(Fitter, FitsPaperTable3Grid)
{
    // Fitting the paper's actual measured grid for Structured Data
    // must recover approximately the published CPI_cache=0.89 and
    // BF=0.20 with a high R^2 (the paper reports R^2 = 0.95).
    auto obs = paper::table3StructuredDataRuns();
    FittedModel m = fitModel("Structured Data", WorkloadClass::BigData, obs);
    EXPECT_NEAR(m.params.cpiCache, 0.89, 0.06);
    EXPECT_NEAR(m.params.bf, 0.20, 0.03);
    EXPECT_GT(m.fit.r2, 0.93);
}

TEST(Fitter, Table3ValidationErrorsWithinTwoPercent)
{
    // Paper Sec. V.H: computed vs measured CPI errors within ~+/-3%.
    auto obs = paper::table3StructuredDataRuns();
    FittedModel m = fitModel("Structured Data", WorkloadClass::BigData, obs);
    for (double err : validationErrors(m, obs))
        EXPECT_LT(std::abs(err), 0.035);
}

TEST(Fitter, FlagsCoreBoundWorkloads)
{
    // Flat CPI vs MP: Proximity-like.
    std::vector<FitObservation> obs;
    Rng rng(4);
    for (double mp : {300.0, 400.0, 500.0, 600.0})
        obs.push_back(makeObs(0.0005, mp, 0.93 + rng.nextGaussian() * 0.002));
    FittedModel m = fitModel("proximity", WorkloadClass::BigData, obs);
    EXPECT_TRUE(m.coreBound);
    EXPECT_LT(m.params.bf, 0.05);
}

TEST(Fitter, ClampsNegativeSlopes)
{
    std::vector<FitObservation> obs;
    obs.push_back(makeObs(0.001, 300, 1.00));
    obs.push_back(makeObs(0.001, 600, 0.98)); // noise-driven decline
    FittedModel m = fitModel("noisy", WorkloadClass::BigData, obs);
    EXPECT_DOUBLE_EQ(m.params.bf, 0.0);
    EXPECT_NEAR(m.params.cpiCache, 0.99, 1e-9);
}

TEST(Fitter, UnclampedOptionKeepsNegativeSlope)
{
    std::vector<FitObservation> obs;
    obs.push_back(makeObs(0.001, 300, 1.00));
    obs.push_back(makeObs(0.001, 600, 0.98));
    FitOptions opts;
    opts.clampNegativeSlope = false;
    FittedModel m = fitModel("noisy", WorkloadClass::BigData, obs, opts);
    EXPECT_LT(m.params.bf, 0.0);
}

TEST(Fitter, WeightedByInstructions)
{
    // Phase weighting (Sec. IV.D): a heavier phase dominates the fit.
    std::vector<FitObservation> obs;
    FitObservation heavy = makeObs(0.006, 300, 2.0);
    heavy.instructions = 1e9;
    FitObservation light = makeObs(0.006, 600, 10.0); // outlier phase
    light.instructions = 1.0;
    FitObservation mid = makeObs(0.006, 450, 2.0);
    mid.instructions = 1e9;
    obs = {heavy, light, mid};
    FitOptions opts;
    opts.weightByInstructions = true;
    FittedModel m = fitModel("phased", WorkloadClass::Enterprise, obs, opts);
    EXPECT_LT(m.params.bf, 0.5); // the outlier barely moves the slope
}

TEST(Fitter, RequiresTwoObservations)
{
    std::vector<FitObservation> one{makeObs(0.005, 300, 1.0)};
    EXPECT_THROW(fitModel("x", WorkloadClass::BigData, one), ConfigError);
}

TEST(Fitter, PredictsAtLatencyPerInstruction)
{
    std::vector<FitObservation> obs;
    for (double mp : {300.0, 600.0})
        obs.push_back(makeObs(0.005, mp, 1.0 + 0.005 * mp * 0.4));
    FittedModel m = fitModel("x", WorkloadClass::Enterprise, obs);
    EXPECT_NEAR(m.predictCpi(0.005 * 450), 1.0 + 0.005 * 450 * 0.4, 1e-9);
}

TEST(Fitter, ValidationErrorsRequirePositiveCpi)
{
    std::vector<FitObservation> obs;
    for (double mp : {300.0, 600.0})
        obs.push_back(makeObs(0.005, mp, 1.0));
    FittedModel m = fitModel("x", WorkloadClass::Enterprise, obs);
    obs[0].cpiEff = 0.0;
    EXPECT_THROW(validationErrors(m, obs), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
