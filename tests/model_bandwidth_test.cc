/**
 * @file
 * Tests for Eq. 4 (bandwidth demand) and the memory/platform configs.
 */

#include <gtest/gtest.h>

#include "model/bandwidth_model.hh"
#include "model/memory_config.hh"
#include "model/platform.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace memsense::model
{
namespace
{

WorkloadParams
hpcMean()
{
    WorkloadParams p;
    p.name = "HPC";
    p.cpiCache = 0.75;
    p.bf = 0.07;
    p.mpki = 26.7;
    p.wbr = 0.27;
    return p;
}

TEST(Eq4, MatchesHandComputation)
{
    // BW = MPI*(1+WBR)*64 * CPS / CPI.
    WorkloadParams p = hpcMean();
    double bw = bandwidthDemandPerCore(p, 1.0, 2.7e9);
    EXPECT_NEAR(bw, 0.0267 * 1.27 * 64.0 * 2.7e9, 1e6);
}

TEST(Eq4, HpcClassDemandExceedsBaselineSupply)
{
    // The paper's headline: the HPC class is bandwidth bound on the
    // 4ch DDR3-1867 baseline (~42 GB/s effective).
    WorkloadParams p = hpcMean();
    Platform base = Platform::paperBaseline();
    double cpi_latency_only =
        p.cpiCache + p.mpi() * base.nsToCycles(75.0) * p.bf;
    double total =
        bandwidthDemandTotal(p, cpi_latency_only, base.cyclesPerSecond(),
                             base.hardwareThreads());
    EXPECT_GT(total, base.memory.effectiveBandwidth());
}

TEST(Eq4, ScalesInverselyWithCpi)
{
    WorkloadParams p = hpcMean();
    double fast = bandwidthDemandPerCore(p, 1.0, 2.7e9);
    double slow = bandwidthDemandPerCore(p, 2.0, 2.7e9);
    EXPECT_NEAR(fast / slow, 2.0, 1e-12);
}

TEST(Eq4, IoTermAddsTraffic)
{
    WorkloadParams p = hpcMean();
    double base = bandwidthDemandPerCore(p, 1.0, 2.7e9);
    p.iopi = 1.0 / 8192.0;
    p.ioBytes = 4096.0;
    double with_io = bandwidthDemandPerCore(p, 1.0, 2.7e9);
    EXPECT_NEAR(with_io - base, 0.5 * 2.7e9, 1e6);
}

TEST(Eq4Inverse, RoundTrips)
{
    WorkloadParams p = hpcMean();
    double cpi = 1.3;
    double bw = bandwidthDemandPerCore(p, cpi, 2.7e9);
    EXPECT_NEAR(bandwidthLimitedCpi(p, bw, 2.7e9), cpi, 1e-9);
}

TEST(Eq4, Validation)
{
    WorkloadParams p = hpcMean();
    EXPECT_THROW(bandwidthDemandPerCore(p, 0.0, 2.7e9), ConfigError);
    EXPECT_THROW(bandwidthDemandPerCore(p, 1.0, 0.0), ConfigError);
    EXPECT_THROW(bandwidthDemandTotal(p, 1.0, 2.7e9, 0), ConfigError);
    EXPECT_THROW(bandwidthLimitedCpi(p, 0.0, 2.7e9), ConfigError);
}

TEST(MemoryConfig, PaperBaselineBandwidth)
{
    MemoryConfig m; // defaults = 4ch DDR3-1867 @ 70%
    EXPECT_NEAR(m.peakBandwidth() / 1e9, 59.7, 0.1);
    EXPECT_NEAR(m.effectiveBandwidthGBps(), 41.8, 0.1);
}

TEST(MemoryConfig, WithersProduceModifiedCopies)
{
    MemoryConfig m;
    EXPECT_EQ(m.withChannels(2).channels, 2);
    EXPECT_DOUBLE_EQ(m.withSpeed(1333.3).megaTransfers, 1333.3);
    EXPECT_DOUBLE_EQ(m.withEfficiency(0.9).efficiency, 0.9);
    EXPECT_DOUBLE_EQ(m.withCompulsoryNs(85).compulsoryNs, 85.0);
    // Original unchanged.
    EXPECT_EQ(m.channels, 4);
}

TEST(MemoryConfig, Validation)
{
    MemoryConfig m;
    EXPECT_NO_THROW(m.validate());
    EXPECT_THROW(m.withChannels(0).validate(), ConfigError);
    EXPECT_THROW(m.withEfficiency(0.0).validate(), ConfigError);
    EXPECT_THROW(m.withEfficiency(1.2).validate(), ConfigError);
    EXPECT_THROW(m.withCompulsoryNs(0.0).validate(), ConfigError);
}

TEST(MemoryConfig, WithersRejectInvalidValuesEagerly)
{
    // Regression (found by memsense-lint contract-coverage): the
    // builder methods used to accept any value silently, deferring all
    // checking to validate(); a config that was never validated could
    // carry a zero or negative rate into the bandwidth math. The
    // withers now contract their domain at the call.
    MemoryConfig m;
    EXPECT_THROW(m.withSpeed(0.0), ConfigError);
    EXPECT_THROW(m.withSpeed(-1333.0), ConfigError);
    EXPECT_THROW(m.withEfficiency(0.0), ConfigError);
    EXPECT_THROW(m.withEfficiency(1.2), ConfigError);
    EXPECT_THROW(m.withCompulsoryNs(-5.0), ConfigError);
}

TEST(Platform, BaselineMatchesPaperSection6)
{
    Platform p = Platform::paperBaseline();
    EXPECT_EQ(p.cores, 8);
    EXPECT_DOUBLE_EQ(p.ghz, 2.7);
    EXPECT_DOUBLE_EQ(p.memory.compulsoryNs, 75.0);
    // ~5.25 GB/s per core (paper Sec. VI.C.2).
    EXPECT_NEAR(p.bandwidthPerCoreBps() / 1e9, 5.2, 0.1);
}

TEST(Platform, CycleConversions)
{
    Platform p = Platform::paperBaseline();
    EXPECT_NEAR(p.nsToCycles(75.0), 202.5, 1e-9);
    EXPECT_NEAR(p.cyclesToNs(270.0), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(p.cyclesPerSecond(), 2.7e9);
}

TEST(Platform, CycleConversionsContractTheFrequency)
{
    // Regression (found by memsense-lint contract-coverage): on an
    // unvalidated platform with ghz == 0, cyclesToNs used to divide by
    // zero and return inf, which then flowed silently into latency
    // sweeps. Both conversions now require a positive frequency.
    Platform p = Platform::paperBaseline();
    p.ghz = 0.0;
    EXPECT_THROW(p.nsToCycles(75.0), ContractViolation);
    EXPECT_THROW(p.cyclesToNs(270.0), ContractViolation);
}

TEST(Units, ExplicitConversionHelpersCrossTheUnitBoundary)
{
    // The free helpers are the sanctioned way to mix ns and cycles;
    // memsense-lint's unit-mismatch rule recognizes them by name.
    EXPECT_NEAR(nsToCycles(75.0, 2.7), 202.5, 1e-9);
    EXPECT_NEAR(cyclesToNs(202.5, 2.7), 75.0, 1e-9);
    EXPECT_THROW(nsToCycles(75.0, 0.0), ConfigError);
    EXPECT_THROW(cyclesToNs(202.5, -1.0), ConfigError);
}

TEST(Platform, Validation)
{
    Platform p = Platform::paperBaseline();
    EXPECT_NO_THROW(p.validate());
    p.cores = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = Platform::paperBaseline();
    p.ghz = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
