/**
 * @file
 * Determinism tests for the parallel experiment engine: the sweep
 * drivers must produce bit-identical results for any worker count,
 * because each job owns its machine and seed and results are collected
 * in input order.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "measure/freq_scaling.hh"
#include "measure/loaded_latency.hh"
#include "measure/parallel.hh"
#include "measure/timeseries.hh"
#include "util/log.hh"

namespace memsense::measure
{
namespace
{

class MeasureParallelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }

    /** Small sweep grid: full catalog stays ctest-friendly. */
    static FreqScalingConfig
    quickSweep()
    {
        FreqScalingConfig cfg;
        cfg.coreGhz = {2.1, 3.1};
        cfg.memMtPerSec = {1866.7};
        cfg.warmup = nsToPicos(300'000.0);
        cfg.measure = nsToPicos(300'000.0);
        cfg.adaptiveWarmup = false;
        cfg.coresOverride = 2;
        return cfg;
    }
};

/** Bitwise comparison: EXPECT_EQ on doubles is exact, not approximate. */
void
expectObservationsIdentical(
    const std::vector<model::FitObservation> &a,
    const std::vector<model::FitObservation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].coreGhz, b[i].coreGhz) << "observation " << i;
        EXPECT_EQ(a[i].memMtPerSec, b[i].memMtPerSec);
        EXPECT_EQ(a[i].cpiEff, b[i].cpiEff) << "observation " << i;
        EXPECT_EQ(a[i].mpi, b[i].mpi) << "observation " << i;
        EXPECT_EQ(a[i].mpCycles, b[i].mpCycles) << "observation " << i;
        EXPECT_EQ(a[i].mpki, b[i].mpki) << "observation " << i;
        EXPECT_EQ(a[i].wbr, b[i].wbr) << "observation " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions)
            << "observation " << i;
    }
}

TEST_F(MeasureParallelTest, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(5), 5);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-3), 1);
}

TEST_F(MeasureParallelTest, MapOrderedPreservesInputOrder)
{
    ParallelExecutor exec(4);
    std::vector<int> inputs;
    for (int i = 0; i < 100; ++i)
        inputs.push_back(i);
    std::vector<int> out =
        exec.mapOrdered(inputs, [](const int &x) { return 3 * x + 1; });
    ASSERT_EQ(out.size(), inputs.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 3 * i + 1);
}

TEST_F(MeasureParallelTest, MapOrderedRethrowsLowestIndexedFailure)
{
    ParallelExecutor exec(4);
    std::vector<int> inputs = {0, 1, 2, 3, 4, 5, 6, 7};
    try {
        exec.mapOrdered(inputs, [](const int &x) -> int {
            if (x == 3 || x == 6)
                throw std::runtime_error("job " + std::to_string(x));
            return x;
        });
        FAIL() << "expected the job exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3");
    }
}

TEST_F(MeasureParallelTest, CharacterizeParallelGridIsBitIdentical)
{
    FreqScalingConfig serial = quickSweep();
    FreqScalingConfig parallel = quickSweep();
    parallel.jobs = 4;
    Characterization a = characterize("column_store", serial);
    Characterization b = characterize("column_store", parallel);
    expectObservationsIdentical(a.observations, b.observations);
    EXPECT_EQ(a.model.params.cpiCache, b.model.params.cpiCache);
    EXPECT_EQ(a.model.params.bf, b.model.params.bf);
    EXPECT_EQ(a.model.fit.r2, b.model.fit.r2);
}

TEST_F(MeasureParallelTest, CharacterizeAllParallelIsBitIdentical)
{
    FreqScalingConfig serial = quickSweep();
    FreqScalingConfig parallel = quickSweep();
    parallel.jobs = 4;
    std::vector<Characterization> a = characterizeAll(serial);
    std::vector<Characterization> b = characterizeAll(parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        EXPECT_EQ(a[w].workloadId, b[w].workloadId);
        expectObservationsIdentical(a[w].observations,
                                    b[w].observations);
        EXPECT_EQ(a[w].model.params.cpiCache,
                  b[w].model.params.cpiCache);
        EXPECT_EQ(a[w].model.params.bf, b[w].model.params.bf);
        EXPECT_EQ(a[w].model.params.mpki, b[w].model.params.mpki);
        EXPECT_EQ(a[w].model.params.wbr, b[w].model.params.wbr);
        EXPECT_EQ(a[w].model.fit.r2, b[w].model.fit.r2);
    }
}

TEST_F(MeasureParallelTest, LoadedLatencySweepParallelIsBitIdentical)
{
    LoadedLatencySetup serial;
    serial.cores = 4;
    serial.delayCycles = {0, 32, 128, 512, 2048};
    serial.warmup = nsToPicos(60'000.0);
    serial.measure = nsToPicos(120'000.0);
    LoadedLatencySetup parallel = serial;
    parallel.jobs = 3;

    LoadedLatencyCurve a = sweepLoadedLatency(serial);
    LoadedLatencyCurve b = sweepLoadedLatency(parallel);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].delayCycles, b.points[i].delayCycles);
        EXPECT_EQ(a.points[i].bandwidthGBps, b.points[i].bandwidthGBps);
        EXPECT_EQ(a.points[i].latencyNs, b.points[i].latencyNs);
    }
    EXPECT_EQ(a.unloadedNs, b.unloadedNs);
    EXPECT_EQ(a.maxBandwidthGBps, b.maxBandwidthGBps);
}

TEST_F(MeasureParallelTest, TimeSeriesBatchMatchesSerialCapture)
{
    std::vector<TimeSeriesConfig> cfgs;
    for (const char *id : {"column_store", "spark"}) {
        TimeSeriesConfig cfg;
        cfg.run.workloadId = id;
        cfg.run.cores = 2;
        cfg.run.warmup = nsToPicos(300'000.0);
        cfg.run.adaptiveWarmup = false;
        cfg.interval = nsToPicos(50'000.0);
        cfg.samples = 6;
        cfgs.push_back(cfg);
    }

    std::vector<TimeSeries> parallel = captureTimeSeriesBatch(cfgs, 2);
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        TimeSeries serial = captureTimeSeries(cfgs[w]);
        EXPECT_EQ(parallel[w].workloadId, serial.workloadId);
        ASSERT_EQ(parallel[w].samples.size(), serial.samples.size());
        for (std::size_t i = 0; i < serial.samples.size(); ++i) {
            EXPECT_EQ(parallel[w].samples[i].cpi,
                      serial.samples[i].cpi);
            EXPECT_EQ(parallel[w].samples[i].bandwidthGBps,
                      serial.samples[i].bandwidthGBps);
            EXPECT_EQ(parallel[w].samples[i].cpuUtilization,
                      serial.samples[i].cpuUtilization);
        }
    }
}

TEST_F(MeasureParallelTest, AdaptiveWarmupSurvivesSparseFetchRates)
{
    // Regression: a large probe window with few fetches used to drive
    // the estimated residence time past the integer range (UB on the
    // cast). The clamp caps it at maxWarmup instead.
    RunConfig rc;
    rc.workloadId = "proximity"; // lowest-MPKI catalog workload
    rc.cores = 1;
    rc.warmup = nsToPicos(400'000.0);
    rc.maxWarmup = nsToPicos(800'000.0);
    rc.measure = nsToPicos(200'000.0);
    rc.adaptiveWarmup = true;
    model::FitObservation o = runObservation(rc);
    EXPECT_GT(o.instructions, 0.0);
}

} // anonymous namespace
} // namespace memsense::measure
