/**
 * @file
 * Unit tests for time/frequency/bandwidth unit helpers.
 */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/units.hh"

namespace memsense
{
namespace
{

TEST(Units, NsToPicosRoundTrips)
{
    EXPECT_EQ(nsToPicos(1.0), 1000u);
    EXPECT_EQ(nsToPicos(0.0), 0u);
    EXPECT_EQ(nsToPicos(13.9), 13900u);
    EXPECT_DOUBLE_EQ(picosToNs(nsToPicos(75.0)), 75.0);
}

TEST(Units, NsToPicosRoundsToNearest)
{
    EXPECT_EQ(nsToPicos(0.0004), 0u);
    EXPECT_EQ(nsToPicos(0.0006), 1u);
}

TEST(Units, NegativeTimeRejected)
{
    EXPECT_THROW(nsToPicos(-1.0), ConfigError);
}

TEST(Clock, PeriodMatchesFrequency)
{
    Clock c(2.0);
    EXPECT_EQ(c.periodPs(), 500u);
    EXPECT_DOUBLE_EQ(c.ghz(), 2.0);
    EXPECT_DOUBLE_EQ(c.hz(), 2e9);
}

TEST(Clock, PeriodRoundsForNonIntegerFrequencies)
{
    Clock c(2.7);
    EXPECT_EQ(c.periodPs(), 370u); // 370.37 ps rounds to 370
}

TEST(Clock, CycleConversionIsConsistent)
{
    Clock c(1.0); // 1000 ps period
    EXPECT_EQ(c.toPicos(100), 100'000u);
    EXPECT_EQ(c.toCycles(100'000), 100u);
    EXPECT_EQ(c.toCycles(100'999), 100u); // floor
    EXPECT_DOUBLE_EQ(c.toCyclesExact(1500), 1.5);
}

TEST(Clock, RejectsOutOfRangeFrequencies)
{
    EXPECT_THROW(Clock(0.0), ConfigError);
    EXPECT_THROW(Clock(-1.0), ConfigError);
    EXPECT_THROW(Clock(500.0), ConfigError);
}

TEST(Units, FormatBytesPicksSuffix)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(1500), "1.50 KB");
    EXPECT_EQ(formatBytes(2.5e9), "2.50 GB");
}

TEST(Units, FormatBandwidthInGBps)
{
    EXPECT_EQ(formatBandwidth(42.0e9), "42.00 GB/s");
}

TEST(Units, FormatNs)
{
    EXPECT_EQ(formatNs(nsToPicos(75.0)), "75.0 ns");
}

} // anonymous namespace
} // namespace memsense
