/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hh"
#include "util/error.hh"

namespace memsense
{
namespace
{

/** argv builder for tests. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        ptrs.push_back(const_cast<char *>("prog"));
        for (auto &s : storage)
            ptrs.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> ptrs;
};

CliParser
makeParser()
{
    CliParser cli("test", "test parser");
    cli.addString("name", "default", "a string");
    cli.addDouble("ratio", 0.5, "a double");
    cli.addInt("count", 3, "an int");
    cli.addBool("verbose", "a bool");
    return cli;
}

TEST(Cli, DefaultsApply)
{
    CliParser cli = makeParser();
    Argv a({});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.getString("name"), "default");
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 0.5);
    EXPECT_EQ(cli.getInt("count"), 3);
    EXPECT_FALSE(cli.getBool("verbose"));
    EXPECT_FALSE(cli.isSet("name"));
}

TEST(Cli, SpaceSeparatedValues)
{
    CliParser cli = makeParser();
    Argv a({"--name", "abc", "--ratio", "1.25", "--count", "9"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.getString("name"), "abc");
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 1.25);
    EXPECT_EQ(cli.getInt("count"), 9);
    EXPECT_TRUE(cli.isSet("name"));
}

TEST(Cli, EqualsSyntaxAndBool)
{
    CliParser cli = makeParser();
    Argv a({"--name=xyz", "--verbose", "--ratio=2.5"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_EQ(cli.getString("name"), "xyz");
    EXPECT_TRUE(cli.getBool("verbose"));
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 2.5);
}

TEST(Cli, PositionalArgumentsCollected)
{
    CliParser cli = makeParser();
    Argv a({"first", "--count", "2", "second"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "first");
    EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, UnknownFlagFails)
{
    CliParser cli = makeParser();
    Argv a({"--nope", "1"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, MissingValueFails)
{
    CliParser cli = makeParser();
    Argv a({"--count"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, HelpShortCircuits)
{
    CliParser cli = makeParser();
    Argv a({"--help"});
    EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, WrongTypeAccessThrows)
{
    CliParser cli = makeParser();
    Argv a({});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_THROW(cli.getDouble("name"), LogicError);
    EXPECT_THROW(cli.getString("missing"), LogicError);
}

} // anonymous namespace
} // namespace memsense
