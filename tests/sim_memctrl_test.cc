/**
 * @file
 * Tests for the memory controller: address decoding, channel
 * interleaving, bank hashing, uncore latency, and write buffering.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/memctrl.hh"
#include "util/error.hh"

namespace memsense::sim
{
namespace
{

DramConfig
fourChannel()
{
    DramConfig cfg;
    cfg.channels = 4;
    return cfg;
}

TEST(MemCtrl, LinesInterleaveAcrossChannels)
{
    MemoryController mc(fourChannel());
    for (Addr line = 0; line < 16; ++line) {
        DramCoord c = mc.decode(line);
        EXPECT_EQ(c.channel, line % 4) << line;
    }
}

TEST(MemCtrl, RowLocalityPreservedWithinRow)
{
    // 8 KB row = 128 lines within a channel; consecutive channel-lines
    // share bank and row.
    MemoryController mc(fourChannel());
    DramCoord first = mc.decode(0);
    DramCoord second = mc.decode(4);   // next line on channel 0
    DramCoord last = mc.decode(4 * 127);
    EXPECT_EQ(first.bank, second.bank);
    EXPECT_EQ(first.row, second.row);
    EXPECT_EQ(first.bank, last.bank);
    EXPECT_EQ(first.row, last.row);
}

TEST(MemCtrl, BankHashingSpreadsAlignedStreams)
{
    // Streams at 512 MB-aligned offsets previously camped on the same
    // bank; the hashed mapping must spread them.
    MemoryController mc(fourChannel());
    std::set<std::uint32_t> banks;
    for (Addr k = 0; k < 8; ++k) {
        Addr line = k * (Addr{512} << 20) / kLineBytes;
        banks.insert(mc.decode(line).bank);
    }
    EXPECT_GE(banks.size(), 4u);
}

TEST(MemCtrl, UnloadedLatencyIncludesUncore)
{
    MemoryController mc(fourChannel());
    // First access to a closed bank: the page-empty latency.
    Picos done = mc.read(0, 0);
    EXPECT_NEAR(picosToNs(done), fourChannel().unloadedLatencyNs(), 0.1);
    EXPECT_NEAR(picosToNs(done), 60.6, 2.0);
    // Steady-state random access hits open-wrong-row banks and pays
    // the precharge too: ~75 ns, the paper's compulsory latency.
    DramCoord c0 = mc.decode(0);
    Addr conflict = 0;
    for (Addr line = 4; line < 1'000'000; line += 4) {
        DramCoord c = mc.decode(line);
        if (c.channel == c0.channel && c.bank == c0.bank &&
            c.row != c0.row) {
            conflict = line;
            break;
        }
    }
    ASSERT_NE(conflict, 0u);
    Picos issue = done + nsToPicos(1000.0);
    Picos done2 = mc.read(conflict, issue);
    EXPECT_NEAR(picosToNs(done2 - issue), 74.5, 2.0);
}

TEST(MemCtrl, ReadStatsAccumulate)
{
    MemoryController mc(fourChannel());
    mc.read(0, 0);
    mc.read(1, 0);
    EXPECT_EQ(mc.stats().reads, 2u);
    EXPECT_DOUBLE_EQ(mc.stats().bytesRead(), 128.0);
    EXPECT_GT(mc.stats().avgReadLatencyNs(), 50.0);
}

TEST(MemCtrl, PostedWritesDeferred)
{
    MemoryController mc(fourChannel());
    // A single posted write sits in the buffer until drained (the
    // channel bus is idle, so the opportunistic drain fires at once).
    mc.write(0, 0);
    EXPECT_EQ(mc.stats().writes, 1u);
    // Channel write counter reflects the drain.
    EXPECT_EQ(mc.channelStats(0).writes, 1u);
}

TEST(MemCtrl, DrainWritesFlushesEverything)
{
    DramConfig cfg = fourChannel();
    cfg.writeBufferEntries = 64;
    MemoryController mc(cfg);
    // Saturate the bus with reads so writes buffer up.
    for (int i = 0; i < 32; ++i)
        mc.read(static_cast<Addr>(i * 4), 0);
    for (int i = 0; i < 8; ++i)
        mc.write(static_cast<Addr>(i * 4), 0);
    mc.drainWrites(1'000'000'000);
    std::uint64_t drained = 0;
    for (std::uint32_t ch = 0; ch < mc.channels(); ++ch)
        drained += mc.channelStats(ch).writes;
    EXPECT_EQ(drained, 8u);
}

TEST(MemCtrl, BusUtilizationReflectsTraffic)
{
    MemoryController mc(fourChannel());
    EXPECT_DOUBLE_EQ(mc.busUtilization(1000), 0.0);
    for (Addr line = 0; line < 64; ++line)
        mc.read(line, 0);
    double util = mc.busUtilization(nsToPicos(200.0));
    EXPECT_GT(util, 0.1);
    EXPECT_LE(util, 1.0);
}

TEST(MemCtrl, ClearStatsResetsEverything)
{
    MemoryController mc(fourChannel());
    mc.read(0, 0);
    mc.write(4, 0);
    mc.clearStats();
    EXPECT_EQ(mc.stats().reads, 0u);
    EXPECT_EQ(mc.stats().writes, 0u);
    for (std::uint32_t ch = 0; ch < mc.channels(); ++ch) {
        EXPECT_EQ(mc.channelStats(ch).reads, 0u);
        EXPECT_EQ(mc.channelStats(ch).writes, 0u);
    }
}

TEST(MemCtrl, ChannelIndexValidated)
{
    MemoryController mc(fourChannel());
    EXPECT_THROW(mc.channelStats(4), LogicError);
}

} // anonymous namespace
} // namespace memsense::sim
