/**
 * @file
 * Tests for the deterministic retry policy: the exception taxonomy,
 * the seeded backoff schedule, and retryCall()'s budget accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hh"
#include "util/retry.hh"

namespace memsense
{
namespace
{

template <typename E>
std::exception_ptr
capture(const E &e)
{
    // Templated on the concrete type: taking `const std::exception &`
    // would slice and capture only the base.
    return std::make_exception_ptr(e);
}

TEST(RetryClassifyTest, TransientErrorsAreRetryable)
{
    EXPECT_EQ(classifyException(capture(TransientError("hiccup"))),
              ErrorClass::Retryable);
}

TEST(RetryClassifyTest, ConfigAndLogicErrorsAreFatal)
{
    EXPECT_EQ(classifyException(capture(ConfigError("bad input"))),
              ErrorClass::Fatal);
    EXPECT_EQ(classifyException(capture(LogicError("library bug"))),
              ErrorClass::Fatal);
}

TEST(RetryClassifyTest, UnknownExceptionsAreFatal)
{
    EXPECT_EQ(classifyException(capture(std::runtime_error("???"))),
              ErrorClass::Fatal);
    EXPECT_EQ(classifyException(std::make_exception_ptr(42)),
              ErrorClass::Fatal);
}

TEST(RetryDescribeTest, UsesTransientKindTag)
{
    class Custom : public TransientError
    {
      public:
        Custom() : TransientError("custom says hi") {}
        const char *kind() const override { return "CustomTransient"; }
    };
    const ExceptionInfo info = describeException(capture(Custom()));
    EXPECT_EQ(info.type, "CustomTransient");
    EXPECT_NE(info.message.find("custom says hi"), std::string::npos)
        << info.message;
}

TEST(RetryDescribeTest, NamesTheFatalFamilies)
{
    EXPECT_EQ(describeException(capture(ConfigError("x"))).type,
              "ConfigError");
    EXPECT_EQ(describeException(capture(LogicError("x"))).type,
              "LogicError");
    EXPECT_EQ(describeException(capture(std::runtime_error("x"))).type,
              "std::exception");
}

TEST(RetryPolicyTest, ValidateRejectsNonsense)
{
    RetryPolicy p;
    p.maxAttempts = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.baseDelayMs = -1.0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.jitterFrac = 1.5;
    EXPECT_THROW(p.validate(), ConfigError);
    EXPECT_NO_THROW(RetryPolicy{}.validate());
}

TEST(RetryPolicyTest, DelayIsDeterministicPerStream)
{
    RetryPolicy p;
    p.seed = 7;
    for (int attempt = 2; attempt <= 5; ++attempt) {
        EXPECT_EQ(p.delayMs(attempt, 3), p.delayMs(attempt, 3));
    }
    // Different streams decorrelate (jitter differs somewhere).
    bool any_diff = false;
    for (int attempt = 2; attempt <= 5; ++attempt)
        any_diff |= p.delayMs(attempt, 0) != p.delayMs(attempt, 1);
    EXPECT_TRUE(any_diff);
}

TEST(RetryPolicyTest, DelayGrowsExponentiallyWithinJitterBounds)
{
    RetryPolicy p;
    p.baseDelayMs = 10.0;
    p.multiplier = 2.0;
    p.maxDelayMs = 2000.0;
    p.jitterFrac = 0.25;
    for (int attempt = 2; attempt <= 8; ++attempt) {
        const double nominal =
            std::min(10.0 * std::pow(2.0, attempt - 2), 2000.0);
        const double d = p.delayMs(attempt, 11);
        EXPECT_GE(d, nominal * 0.75) << "attempt " << attempt;
        EXPECT_LE(d, nominal * 1.25) << "attempt " << attempt;
    }
}

TEST(RetryPolicyTest, DelayRespectsCeiling)
{
    RetryPolicy p;
    p.baseDelayMs = 100.0;
    p.multiplier = 10.0;
    p.maxDelayMs = 500.0;
    p.jitterFrac = 0.0;
    EXPECT_EQ(p.delayMs(5, 0), 500.0);
}

TEST(RetryCallTest, RetriesTransientThenSucceeds)
{
    RetryPolicy p;
    p.maxAttempts = 4;
    int calls = 0;
    std::vector<double> waits;
    RetryDiagnostics diag;
    const int got = retryCall(
        p, 0,
        [&calls]() {
            if (++calls < 3)
                throw TransientError("not yet");
            return 99;
        },
        [&waits](double ms) { waits.push_back(ms); }, &diag);
    EXPECT_EQ(got, 99);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(diag.attempts, 3);
    EXPECT_EQ(waits.size(), 2u);
    EXPECT_GT(diag.totalBackoffMs, 0.0);
}

TEST(RetryCallTest, FatalErrorsPropagateImmediately)
{
    RetryPolicy p;
    p.maxAttempts = 5;
    int calls = 0;
    EXPECT_THROW(retryCall(p, 0,
                           [&calls]() -> int {
                               ++calls;
                               throw ConfigError("wrong input");
                           }),
                 ConfigError);
    EXPECT_EQ(calls, 1);
}

TEST(RetryCallTest, ExhaustedBudgetRethrowsLastError)
{
    RetryPolicy p;
    p.maxAttempts = 3;
    int calls = 0;
    RetryDiagnostics diag;
    std::vector<double> waits;
    EXPECT_THROW(retryCall(
                     p, 5,
                     [&calls]() -> int {
                         ++calls;
                         throw TransientError("always");
                     },
                     [&waits](double ms) { waits.push_back(ms); }, &diag),
                 TransientError);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(diag.attempts, 3);
    EXPECT_EQ(waits.size(), 2u); // no wait after the final attempt
}

TEST(RetryCallTest, BackoffSequenceMatchesPolicySchedule)
{
    RetryPolicy p;
    p.maxAttempts = 4;
    p.seed = 21;
    std::vector<double> waits;
    EXPECT_THROW(retryCall(
                     p, 9,
                     []() -> int { throw TransientError("x"); },
                     [&waits](double ms) { waits.push_back(ms); }),
                 TransientError);
    ASSERT_EQ(waits.size(), 3u);
    EXPECT_EQ(waits[0], p.delayMs(2, 9));
    EXPECT_EQ(waits[1], p.delayMs(3, 9));
    EXPECT_EQ(waits[2], p.delayMs(4, 9));
}

} // anonymous namespace
} // namespace memsense
