/**
 * @file
 * Tests for the DMA I/O injector and parameterized address-decode
 * properties of the memory controller.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/io.hh"
#include "sim/memctrl.hh"
#include "util/error.hh"

namespace memsense::sim
{
namespace
{

IoConfig
ioAt(double bytes_per_sec)
{
    IoConfig cfg;
    cfg.bytesPerSecond = bytes_per_sec;
    cfg.rangeBytes = 64ULL << 20;
    return cfg;
}

TEST(IoInjector, DisabledAdvancesTimeOnly)
{
    MemoryController mem(DramConfig{});
    IoInjector io(ioAt(0.0), mem);
    EXPECT_FALSE(io.enabled());
    io.runUntil(nsToPicos(1000.0));
    EXPECT_EQ(io.now(), nsToPicos(1000.0));
    EXPECT_EQ(io.counters().bursts, 0u);
    EXPECT_EQ(mem.stats().reads, 0u);
}

TEST(IoInjector, HitsTheConfiguredRate)
{
    MemoryController mem(DramConfig{});
    IoInjector io(ioAt(2.0e9), mem);
    io.runUntil(nsToPicos(1'000'000.0)); // 1 ms at 2 GB/s = 2 MB
    double moved =
        io.counters().bytesRead + io.counters().bytesWritten;
    EXPECT_NEAR(moved, 2.0e6, 2.0e5);
}

TEST(IoInjector, RespectsReadWriteMix)
{
    MemoryController mem(DramConfig{});
    IoConfig cfg = ioAt(4.0e9);
    cfg.readFraction = 0.8;
    IoInjector io(cfg, mem);
    io.runUntil(nsToPicos(2'000'000.0));
    double total =
        io.counters().bytesRead + io.counters().bytesWritten;
    EXPECT_NEAR(io.counters().bytesRead / total, 0.8, 0.07);
}

TEST(IoInjector, TrafficReachesTheChannels)
{
    MemoryController mem(DramConfig{});
    IoInjector io(ioAt(2.0e9), mem);
    io.runUntil(nsToPicos(500'000.0));
    mem.drainWrites(io.now());
    std::uint64_t channel_ops = 0;
    for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
        channel_ops += mem.channelStats(ch).reads +
                       mem.channelStats(ch).writes;
    }
    EXPECT_GT(channel_ops, 1000u);
}

TEST(IoInjector, BurstsAreLineAligned)
{
    IoConfig bad = ioAt(1e9);
    bad.burstBytes = 100; // not a multiple of the line size
    MemoryController mem(DramConfig{});
    EXPECT_THROW(IoInjector(bad, mem), ConfigError);

    bad = ioAt(1e9);
    bad.rangeBytes = 1024; // smaller than a burst
    EXPECT_THROW(IoInjector(bad, mem), ConfigError);

    bad = ioAt(1e9);
    bad.readFraction = 1.5;
    EXPECT_THROW(IoInjector(bad, mem), ConfigError);
}

TEST(IoInjector, DeterministicBySeed)
{
    auto run = [](std::uint64_t seed) {
        MemoryController mem(DramConfig{});
        IoConfig cfg = ioAt(2.0e9);
        cfg.seed = seed;
        IoInjector io(cfg, mem);
        io.runUntil(nsToPicos(300'000.0));
        return std::make_pair(io.counters().bytesRead,
                              mem.stats().reads);
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5).second, 0u);
}

/** Parameterized decode properties across channel counts. */
class DecodeProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(DecodeProperties, EveryChannelAndManyBanksUsed)
{
    DramConfig cfg;
    cfg.channels = GetParam();
    MemoryController mc(cfg);
    std::set<std::uint32_t> channels;
    std::set<std::uint32_t> banks;
    for (Addr line = 0; line < 100'000; line += 7)
        channels.insert(mc.decode(line).channel);
    for (Addr line = 0; line < 1'000'000; line += 997)
        banks.insert(mc.decode(line).bank);
    EXPECT_EQ(channels.size(), static_cast<std::size_t>(GetParam()));
    EXPECT_GE(banks.size(), cfg.banksPerChannel / 2);
}

TEST_P(DecodeProperties, DecodeIsAFunction)
{
    DramConfig cfg;
    cfg.channels = GetParam();
    MemoryController mc(cfg);
    for (Addr line : {Addr{0}, Addr{12345}, Addr{1} << 30}) {
        DramCoord a = mc.decode(line);
        DramCoord b = mc.decode(line);
        EXPECT_EQ(a.channel, b.channel);
        EXPECT_EQ(a.bank, b.bank);
        EXPECT_EQ(a.row, b.row);
    }
}

TEST_P(DecodeProperties, BankSpreadIsBalanced)
{
    // The golden-ratio bank hash must not leave hot banks: over many
    // random-ish lines, no bank should carry more than 3x its share.
    DramConfig cfg;
    cfg.channels = GetParam();
    MemoryController mc(cfg);
    std::map<std::uint32_t, int> histogram;
    const int n = 64'000;
    for (int i = 0; i < n; ++i) {
        Addr line = static_cast<Addr>(i) * 131; // co-prime stride
        ++histogram[mc.decode(line).bank];
    }
    const double share =
        static_cast<double>(n) / cfg.banksPerChannel;
    for (const auto &[bank, count] : histogram)
        EXPECT_LT(count, share * 3.0) << "hot bank " << bank;
}

INSTANTIATE_TEST_SUITE_P(ChannelCounts, DecodeProperties,
                         ::testing::Values(1, 2, 3, 4, 8));

} // anonymous namespace
} // namespace memsense::sim
