/**
 * @file
 * Boundary-value tests for stats::Histogram: the exact edges of the
 * [lo, hi) contract, the rounding cap at the top bin, and non-finite
 * inputs (NaN used to fall through both range checks into an
 * undefined double->index cast).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/histogram.hh"

namespace
{

using memsense::stats::Histogram;

TEST(HistogramBoundary, LowerBoundIsInclusive)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(HistogramBoundary, JustBelowLowerBoundUnderflows)
{
    Histogram h(0.0, 10.0, 10);
    h.add(std::nextafter(0.0, -1.0));
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 0u);
}

TEST(HistogramBoundary, UpperBoundIsExclusive)
{
    // x == hi is documented as overflow ([lo, hi)), never bin N-1.
    Histogram h(0.0, 10.0, 10);
    h.add(10.0);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(9), 0u);
}

TEST(HistogramBoundary, JustBelowUpperBoundLandsInLastBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(std::nextafter(10.0, 0.0));
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramBoundary, RoundingNearTopEdgeNeverEscapesLastBin)
{
    // Widths that are not exactly representable make
    // (x - lo) / width round to bin_count for x just under hi; the
    // cap must keep the index in range instead of invoking UB.
    Histogram h(0.0, 0.3, 3);
    double x = 0.3;
    for (int i = 0; i < 100; ++i) {
        x = std::nextafter(x, 0.0);
        h.add(x);
    }
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.total(),
              h.binCount(0) + h.binCount(1) + h.binCount(2));
}

TEST(HistogramBoundary, ExactBinEdgesGoToUpperBin)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(HistogramBoundary, PositiveInfinityOverflows)
{
    Histogram h(0.0, 10.0, 10);
    h.add(std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(HistogramBoundary, NegativeInfinityUnderflows)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(HistogramBoundary, NanIsCountedWithoutTouchingAnyBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.nanCount(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.total(), 1u);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_EQ(h.binCount(i), 0u) << "bin " << i;
}

TEST(HistogramBoundary, MixedStreamKeepsTotalConsistent)
{
    Histogram h(0.0, 1.0, 2);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(-1.0);
    h.add(0.25);
    h.add(0.75);
    h.add(1.0);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.nanCount() + h.underflow() + h.overflow() +
                  h.binCount(0) + h.binCount(1),
              h.total());
}

TEST(HistogramBoundary, QuantileSpansTheBinRange)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.0), 0.5, 1e-12);
    EXPECT_NEAR(h.quantile(0.5), 50.5, 1e-12);
    EXPECT_NEAR(h.quantile(0.99), 99.5, 1e-12);
}

TEST(HistogramBoundary, SingleBinDegenerateRange)
{
    Histogram h(5.0, std::nextafter(5.0, 6.0), 1);
    h.add(5.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

} // anonymous namespace
