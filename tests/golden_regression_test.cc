/**
 * @file
 * Golden-regression tests for the figure pipelines.
 *
 * The property suite (model_property_test) checks invariants; this
 * suite checks *values*: it runs the fig03 and fig07 drivers end to
 * end (--fast --quiet --jobs 2) and compares every emitted CSV cell
 * against a checked-in golden produced by the same configuration. The
 * sweeps are deterministic by contract (identical output for any
 * worker count), so the tolerances below are drift guards for
 * compiler/libm variation, not slack for nondeterminism — a real
 * model or simulator change moves these numbers far beyond them and
 * must regenerate the goldens (see docs/observability.md).
 *
 * Driver and golden locations arrive as compile definitions from
 * tests/CMakeLists.txt: MEMSENSE_FIG03_BIN, MEMSENSE_FIG07_BIN,
 * MEMSENSE_GOLDEN_DIR.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/** One parsed CSV: a header row plus numeric data rows. */
struct Csv
{
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;
};

/** Per-column match rule: |a - b| <= abs + rel * max(|a|, |b|). */
struct Tolerance
{
    double rel = 0.0;
    double abs = 0.0;
};

Csv
readCsv(const std::string &path)
{
    Csv out;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::string line;
    bool header = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::stringstream row(line);
        std::string cell;
        while (std::getline(row, cell, ','))
            cells.push_back(cell);
        if (header) {
            out.columns = cells;
            header = false;
            continue;
        }
        std::vector<double> vals;
        vals.reserve(cells.size());
        for (const std::string &c : cells) {
            std::size_t used = 0;
            vals.push_back(std::stod(c, &used));
            EXPECT_EQ(used, c.size()) << "non-numeric cell '" << c
                                      << "' in " << path;
        }
        out.rows.push_back(std::move(vals));
    }
    return out;
}

/**
 * Compare @p actual against @p golden cell by cell. Grid-input
 * columns (the sweep coordinates) must match exactly; measured
 * columns match under @p measured. A shape mismatch (columns, row
 * count) fails immediately — it means the sweep grid itself changed.
 */
void
expectCsvNear(const std::string &name, const Csv &golden,
              const Csv &actual,
              const std::vector<std::string> &exact_columns,
              Tolerance measured)
{
    ASSERT_EQ(golden.columns, actual.columns) << name;
    ASSERT_EQ(golden.rows.size(), actual.rows.size()) << name;
    for (std::size_t r = 0; r < golden.rows.size(); ++r) {
        ASSERT_EQ(golden.rows[r].size(), golden.columns.size()) << name;
        ASSERT_EQ(actual.rows[r].size(), golden.columns.size()) << name;
        for (std::size_t c = 0; c < golden.columns.size(); ++c) {
            const double g = golden.rows[r][c];
            const double a = actual.rows[r][c];
            const bool exact =
                std::find(exact_columns.begin(), exact_columns.end(),
                          golden.columns[c]) != exact_columns.end();
            const Tolerance tol = exact ? Tolerance{} : measured;
            const double scale =
                std::max(std::fabs(g), std::fabs(a));
            EXPECT_LE(std::fabs(a - g), tol.abs + tol.rel * scale)
                << name << " row " << r << " column '"
                << golden.columns[c] << "': golden " << g << " vs "
                << a;
        }
    }
}

/** Run @p bin with the golden configuration, outputs into @p dir. */
void
runDriver(const std::string &bin, const std::string &dir)
{
    const std::string cmd = bin + " --fast --quiet --jobs 2 --out-dir " +
                            dir + " > " + dir + "/stdout.log 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << "driver failed: " << cmd;
}

void
compareAgainstGolden(const std::string &dir, const std::string &file,
                     const std::vector<std::string> &exact_columns,
                     Tolerance measured)
{
    SCOPED_TRACE(file);
    const Csv golden =
        readCsv(std::string(MEMSENSE_GOLDEN_DIR) + "/" + file);
    const Csv actual = readCsv(dir + "/" + file);
    expectCsvNear(file, golden, actual, exact_columns, measured);
}

TEST(GoldenRegression, Fig03CpiFitsMatchGolden)
{
    const std::string dir = ::testing::TempDir() + "golden_fig03";
    const std::string mk = "mkdir -p " + dir;
    ASSERT_EQ(std::system(mk.c_str()), 0);
    runDriver(MEMSENSE_FIG03_BIN, dir);

    // The frequency/memory grid is exact input data; the measured and
    // fitted CPI columns get the drift tolerance.
    const std::vector<std::string> exact = {"ghz", "mt"};
    const Tolerance tol{1e-4, 1e-6};
    for (const char *w :
         {"fig03_column_store.csv", "fig03_nits.csv",
          "fig03_proximity.csv", "fig03_spark.csv"})
        compareAgainstGolden(dir, w, exact, tol);
}

TEST(GoldenRegression, Fig07QueuingDelayMatchesGolden)
{
    const std::string dir = ::testing::TempDir() + "golden_fig07";
    const std::string mk = "mkdir -p " + dir;
    ASSERT_EQ(std::system(mk.c_str()), 0);
    runDriver(MEMSENSE_FIG07_BIN, dir);

    // delay_cyc is the injected-delay grid; bandwidth, utilization and
    // latency are measured on the simulator. The latency columns sit
    // in the hundreds of ns, so the absolute term covers rounding of
    // near-zero queuing delays.
    const std::vector<std::string> exact = {"delay_cyc"};
    const Tolerance tol{1e-4, 1e-3};
    for (const char *f :
         {"fig07_ddr1333_r100.csv", "fig07_ddr1333_r67.csv",
          "fig07_ddr1867_r100.csv", "fig07_ddr1867_r67.csv"})
        compareAgainstGolden(dir, f, exact, tol);
}

} // anonymous namespace
