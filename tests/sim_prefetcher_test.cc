/**
 * @file
 * Tests for the stride prefetcher: training, firing, stream tracking,
 * and throttling behavior.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/prefetcher.hh"

namespace memsense::sim
{
namespace
{

PrefetcherConfig
cfgWith(std::uint32_t degree = 2, std::uint32_t distance = 4,
        std::uint32_t threshold = 2)
{
    PrefetcherConfig cfg;
    cfg.degree = degree;
    cfg.distance = distance;
    cfg.trainThreshold = threshold;
    cfg.tableEntries = 4;
    return cfg;
}

TEST(Prefetcher, FiresAfterTrainingThreshold)
{
    StridePrefetcher pf(cfgWith());
    std::vector<Addr> out;
    pf.observeMiss(1, 100, out); // allocate
    EXPECT_TRUE(out.empty());
    pf.observeMiss(1, 101, out); // stride 1, confidence 1
    EXPECT_TRUE(out.empty());
    pf.observeMiss(1, 102, out); // confidence 2 >= threshold: fire
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 106u); // 102 + distance(4)
    EXPECT_EQ(out[1], 107u);
}

TEST(Prefetcher, DetectsLargerStrides)
{
    StridePrefetcher pf(cfgWith(1, 2));
    std::vector<Addr> out;
    pf.observeMiss(1, 0, out);
    pf.observeMiss(1, 8, out);
    pf.observeMiss(1, 16, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 16u + 2u * 8u);
}

TEST(Prefetcher, DetectsNegativeStrides)
{
    StridePrefetcher pf(cfgWith(1, 2));
    std::vector<Addr> out;
    pf.observeMiss(1, 100, out);
    pf.observeMiss(1, 99, out);
    pf.observeMiss(1, 98, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 96u);
}

TEST(Prefetcher, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(cfgWith());
    std::vector<Addr> out;
    pf.observeMiss(1, 0, out);
    pf.observeMiss(1, 1, out);
    pf.observeMiss(1, 2, out); // fires
    out.clear();
    pf.observeMiss(1, 10, out); // stride jumps to 8: retrain, no fire
    EXPECT_TRUE(out.empty());
    pf.observeMiss(1, 18, out); // second matching stride: fires again
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 18u + 4u * 8u);
}

TEST(Prefetcher, StreamsAreIndependent)
{
    StridePrefetcher pf(cfgWith(1, 1));
    std::vector<Addr> out;
    // Interleave two streams; each must train on its own stride.
    pf.observeMiss(1, 0, out);
    pf.observeMiss(2, 1000, out);
    pf.observeMiss(1, 1, out);
    pf.observeMiss(2, 1002, out);
    pf.observeMiss(1, 2, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 3u);
    out.clear();
    pf.observeMiss(2, 1004, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1006u);
}

TEST(Prefetcher, RandomStreamNeverFires)
{
    StridePrefetcher pf(cfgWith());
    std::vector<Addr> out;
    const Addr addrs[] = {5, 93, 12, 77, 4, 1001, 3};
    for (Addr a : addrs)
        pf.observeMiss(1, a, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().issued, 0u);
    EXPECT_EQ(pf.stats().trainings, 7u);
}

TEST(Prefetcher, DisabledDoesNothing)
{
    PrefetcherConfig cfg = cfgWith();
    cfg.enabled = false;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    for (Addr a = 0; a < 10; ++a)
        pf.observeMiss(1, a, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().trainings, 0u);
}

TEST(Prefetcher, TableEvictsLeastRecentStream)
{
    PrefetcherConfig cfg = cfgWith(1, 1);
    cfg.tableEntries = 2;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    // Train streams 1 and 2, then stream 3 evicts stream 1.
    pf.observeMiss(1, 0, out);
    pf.observeMiss(2, 100, out);
    pf.observeMiss(3, 200, out); // evicts stream 1
    pf.observeMiss(1, 1, out);   // stream 1 re-allocated, no stride yet
    pf.observeMiss(1, 2, out);   // confidence 1
    pf.observeMiss(1, 3, out);   // confidence 2: fires
    EXPECT_FALSE(out.empty());
}

TEST(Prefetcher, ResetDropsTraining)
{
    StridePrefetcher pf(cfgWith());
    std::vector<Addr> out;
    pf.observeMiss(1, 0, out);
    pf.observeMiss(1, 1, out);
    pf.reset();
    pf.observeMiss(1, 2, out); // would have fired without reset
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, ZeroStrideIgnored)
{
    StridePrefetcher pf(cfgWith(1, 1, 1));
    std::vector<Addr> out;
    pf.observeMiss(1, 5, out);
    pf.observeMiss(1, 5, out);
    pf.observeMiss(1, 5, out);
    EXPECT_TRUE(out.empty());
}

} // anonymous namespace
} // namespace memsense::sim
