/**
 * @file
 * Tests for Eq. 1-3: the CPI model and its relation to Chou's MLP
 * formulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/cpi_model.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

WorkloadParams
structured()
{
    WorkloadParams p;
    p.name = "Structured Data";
    p.cpiCache = 0.89;
    p.bf = 0.20;
    p.mpki = 5.6;
    p.wbr = 0.32;
    return p;
}

TEST(Eq1, MatchesPaperTable3)
{
    // Paper Table 3, first column: MPI 0.0056, MP 402 cycles,
    // computed CPI 1.33.
    WorkloadParams p = structured();
    p.mpki = 5.6;
    EXPECT_NEAR(effectiveCpi(p, 402), 1.34, 0.02);
    // 2.7 GHz column: MPI 0.0059, MP 543 -> 1.52.
    p.mpki = 5.9;
    EXPECT_NEAR(effectiveCpi(p, 543), 1.53, 0.02);
}

TEST(Eq1, ZeroPenaltyGivesCpiCache)
{
    WorkloadParams p = structured();
    EXPECT_DOUBLE_EQ(effectiveCpi(p, 0.0), p.cpiCache);
}

TEST(Eq1, LinearInPenalty)
{
    WorkloadParams p = structured();
    double a = effectiveCpi(p, 100);
    double b = effectiveCpi(p, 200);
    double c = effectiveCpi(p, 300);
    EXPECT_NEAR(b - a, c - b, 1e-12);
}

TEST(Eq1, ZeroBlockingFactorIgnoresLatency)
{
    WorkloadParams p = structured();
    p.bf = 0.0; // core bound
    EXPECT_DOUBLE_EQ(effectiveCpi(p, 1000), p.cpiCache);
}

TEST(Eq1, RejectsNegativePenalty)
{
    EXPECT_THROW(effectiveCpi(structured(), -1.0), ConfigError);
}

TEST(Eq1Inverse, RoundTrips)
{
    WorkloadParams p = structured();
    double cpi = effectiveCpi(p, 450);
    EXPECT_NEAR(missPenaltyForCpi(p, cpi), 450, 1e-9);
}

TEST(Eq1Inverse, Validation)
{
    WorkloadParams p = structured();
    EXPECT_THROW(missPenaltyForCpi(p, 0.5), ConfigError); // < CPI_cache
    p.bf = 0.0;
    EXPECT_THROW(missPenaltyForCpi(p, 1.5), ConfigError);
}

TEST(Eq2, ChouMatchesEq1ViaEq3)
{
    // Setting Eq. 1 == Eq. 2 and solving for BF (Eq. 3) must make the
    // two models agree exactly.
    ChouInputs in;
    in.cpiCache = 0.9;
    in.overlapCm = 0.3;
    in.mlp = 4.0;
    in.mpi = 0.006;
    in.mpCycles = 400;

    double bf = blockingFactorFromChou(in);
    WorkloadParams p;
    p.cpiCache = in.cpiCache;
    p.bf = bf;
    p.mpki = in.mpi * 1000.0;
    EXPECT_NEAR(effectiveCpi(p, in.mpCycles), chouEffectiveCpi(in), 1e-12);
}

TEST(Eq3, TendsToInverseMlpForLargePenalty)
{
    // The second term vanishes as MP grows (paper Sec. IV.B).
    ChouInputs in;
    in.cpiCache = 1.0;
    in.overlapCm = 0.5;
    in.mlp = 5.0;
    in.mpi = 0.005;
    in.mpCycles = 1e9;
    EXPECT_NEAR(blockingFactorFromChou(in), 1.0 / in.mlp, 1e-6);
}

TEST(Eq3, OffsetReducesBlockingFactor)
{
    ChouInputs in;
    in.mlp = 4.0;
    in.overlapCm = 0.0;
    double no_overlap = blockingFactorFromChou(in);
    in.overlapCm = 0.5;
    double with_overlap = blockingFactorFromChou(in);
    EXPECT_LT(with_overlap, no_overlap);
    EXPECT_NEAR(no_overlap, 0.25, 1e-12);
}

TEST(Eq2, Validation)
{
    ChouInputs in;
    in.mlp = 0.5;
    EXPECT_THROW(chouEffectiveCpi(in), ConfigError);
    in.mlp = 2.0;
    in.overlapCm = 1.5;
    EXPECT_THROW(chouEffectiveCpi(in), ConfigError);
}

TEST(ImpliedMlp, InverseOfBf)
{
    EXPECT_DOUBLE_EQ(impliedMlp(0.25), 4.0);
    EXPECT_TRUE(std::isinf(impliedMlp(0.0)));
    EXPECT_THROW(impliedMlp(-0.1), ConfigError);
}

TEST(Params, RefsPerCycleMatchesFig6Definition)
{
    // y-axis of Fig. 6: MPI*(1+WBR)/CPI_cache.
    WorkloadParams p = structured();
    EXPECT_NEAR(p.refsPerCycle(), 0.0056 * 1.32 / 0.89, 1e-12);
}

TEST(Params, BytesPerInstructionIncludesIo)
{
    WorkloadParams p = structured();
    double without_io = p.bytesPerInstruction();
    p.iopi = 1e-4;
    p.ioBytes = 4096;
    EXPECT_NEAR(p.bytesPerInstruction() - without_io, 0.4096, 1e-12);
}

TEST(Params, ValidationCatchesBadRanges)
{
    WorkloadParams p = structured();
    p.cpiCache = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = structured();
    p.bf = 1.5;
    EXPECT_THROW(p.validate(), ConfigError);
    p = structured();
    p.wbr = 2.5;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Params, ClassMeanAverages)
{
    WorkloadParams a = structured();
    WorkloadParams b = structured();
    b.cpiCache = 1.09;
    b.bf = 0.30;
    WorkloadParams m = classMean("Big Data", WorkloadClass::BigData, {a, b});
    EXPECT_NEAR(m.cpiCache, 0.99, 1e-12);
    EXPECT_NEAR(m.bf, 0.25, 1e-12);
    EXPECT_THROW(classMean("x", WorkloadClass::Hpc, {}), ConfigError);
}

TEST(Params, ClassNames)
{
    EXPECT_EQ(className(WorkloadClass::BigData), "Big Data");
    EXPECT_EQ(className(WorkloadClass::Enterprise), "Enterprise");
    EXPECT_EQ(className(WorkloadClass::Hpc), "HPC");
    EXPECT_EQ(className(WorkloadClass::CoreBound), "Core Bound");
}

} // anonymous namespace
} // namespace memsense::model
