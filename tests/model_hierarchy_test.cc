/**
 * @file
 * Tests for the tiered-memory extension (Eq. 5, Sec. VII).
 */

#include <gtest/gtest.h>

#include "model/hierarchy.hh"
#include "model/paper_data.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

TEST(Eq5, DegeneratesToEq1WithOneTier)
{
    // One tier carrying all misses must reproduce Eq. 1 exactly.
    double cpi = hierarchicalCpi(0.91, 0.21, {{"DRAM", 0.0055, 210.0}});
    EXPECT_NEAR(cpi, 0.91 + 0.0055 * 210.0 * 0.21, 1e-12);
}

TEST(Eq5, SplitsTrafficAcrossTiers)
{
    // 70% near at 200 cycles, 30% far at 900 cycles.
    double near_mpi = 0.0055 * 0.7;
    double far_mpi = 0.0055 * 0.3;
    double cpi = hierarchicalCpi(0.91, 0.21,
                                 {{"DRAM", near_mpi, 200.0},
                                  {"NVM", far_mpi, 900.0}});
    double expected =
        0.91 + (near_mpi * 200.0 + far_mpi * 900.0) * 0.21;
    EXPECT_NEAR(cpi, expected, 1e-12);
}

TEST(Eq5, EmptyTiersGiveCpiCache)
{
    EXPECT_DOUBLE_EQ(hierarchicalCpi(1.2, 0.4, {}), 1.2);
}

TEST(Eq5, Validation)
{
    EXPECT_THROW(hierarchicalCpi(0.0, 0.2, {}), ConfigError);
    EXPECT_THROW(hierarchicalCpi(1.0, 1.5, {}), ConfigError);
    EXPECT_THROW(hierarchicalCpi(1.0, 0.2, {{"x", -0.1, 100.0}}),
                 ConfigError);
}

namespace
{

TieredMemoryModel
makeTiered(double near_cap_gb)
{
    MemoryTier near{"DRAM-cache", 75.0, 40.0, near_cap_gb};
    MemoryTier far{"NVM", 300.0, 12.0, 512.0};
    return TieredMemoryModel(near, far, /*footprintGB=*/64.0,
                             /*theta=*/0.5);
}

} // anonymous namespace

TEST(TieredModel, HitFractionFollowsWorkingSetCurve)
{
    EXPECT_DOUBLE_EQ(makeTiered(64.0).hitFraction(), 1.0);
    EXPECT_DOUBLE_EQ(makeTiered(128.0).hitFraction(), 1.0);
    EXPECT_NEAR(makeTiered(16.0).hitFraction(), 0.5, 1e-12);
    EXPECT_NEAR(makeTiered(4.0).hitFraction(), 0.25, 1e-12);
}

TEST(TieredModel, MoreNearCapacityNeverHurts)
{
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    double prev = 1e300;
    for (double cap : {1.0, 4.0, 16.0, 32.0, 64.0}) {
        TieredResult r = makeTiered(cap).evaluate(bd, 2.7, 8);
        ASSERT_LE(r.cpiEff, prev + 1e-9) << cap << " GB";
        prev = r.cpiEff;
    }
}

TEST(TieredModel, FullHitMatchesAllNearLatency)
{
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    TieredResult r = makeTiered(64.0).evaluate(bd, 2.7, 1);
    // Single core, hit=1: far tier unused, CPI near the Eq. 1 value
    // at the near tier's latency.
    EXPECT_NEAR(r.hitFraction, 1.0, 1e-12);
    EXPECT_NEAR(r.farUtilization, 0.0, 1e-9);
    double eq1 = bd.cpiCache + bd.mpi() * (75.0 * 2.7) * bd.bf;
    EXPECT_NEAR(r.cpiEff, eq1, eq1 * 0.05);
}

TEST(TieredModel, FarTierCanBecomeBandwidthBound)
{
    // A thin far tier with a miss-heavy workload saturates.
    MemoryTier near{"DRAM", 75.0, 40.0, 1.0};
    MemoryTier far{"NVM", 300.0, 2.0, 512.0};
    TieredMemoryModel m(near, far, 64.0, 0.5);
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    TieredResult r = m.evaluate(hpc, 2.7, 8);
    EXPECT_TRUE(r.farBandwidthBound);
    EXPECT_GT(r.cpiEff, 5.0);
}

TEST(TieredModel, CapacitySweepIsOrdered)
{
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    TieredMemoryModel m = makeTiered(8.0);
    auto sweep = m.capacitySweep(bd, 2.7, 8, {2.0, 8.0, 32.0});
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_GT(sweep[0].cpiEff, sweep[2].cpiEff);
    EXPECT_LT(sweep[0].hitFraction, sweep[2].hitFraction);
}

TEST(TieredModel, Validation)
{
    MemoryTier near{"DRAM", 75.0, 40.0, 16.0};
    MemoryTier far{"NVM", 300.0, 12.0, 512.0};
    EXPECT_THROW(TieredMemoryModel(near, far, 0.0, 0.5), ConfigError);
    EXPECT_THROW(TieredMemoryModel(near, far, 64.0, 0.0), ConfigError);
    EXPECT_THROW(TieredMemoryModel(near, far, 64.0, 1.5), ConfigError);
    MemoryTier bad_far{"NVM", 0.0, 12.0, 512.0};
    EXPECT_THROW(TieredMemoryModel(near, bad_far, 64.0, 0.5), ConfigError);
    TieredMemoryModel m(near, far, 64.0, 0.5);
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    EXPECT_THROW(m.evaluate(bd, 0.0, 8), ConfigError);
    EXPECT_THROW(m.evaluate(bd, 2.7, 0), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
