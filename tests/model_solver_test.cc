/**
 * @file
 * Tests for the fixed-point performance solver, including
 * parameterized property sweeps (monotonicity of CPI in latency and
 * bandwidth across the model's parameter space).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "model/cpi_model.hh"
#include "model/paper_data.hh"
#include "model/solver.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

TEST(Solver, ConvergesOnBaseline)
{
    Solver solver;
    Platform base = Platform::paperBaseline();
    for (const auto &p : paper::classParams()) {
        OperatingPoint op = solver.solve(p, base);
        EXPECT_GT(op.cpiEff, 0.0) << p.name;
        EXPECT_GE(op.missPenaltyNs, base.memory.compulsoryNs) << p.name;
        EXPECT_LT(op.iterations, 200) << p.name;
    }
}

TEST(Solver, EnterpriseAndBigDataAreLatencyLimitedOnBaseline)
{
    // Paper Sec. VI.C.3: baseline utilization is low for these
    // classes; the loaded latency stays near compulsory.
    Solver solver;
    Platform base = Platform::paperBaseline();
    for (WorkloadClass cls :
         {WorkloadClass::Enterprise, WorkloadClass::BigData}) {
        OperatingPoint op = solver.solve(paper::classParams(cls), base);
        EXPECT_FALSE(op.bandwidthBound) << className(cls);
        EXPECT_LT(op.utilization, 0.75) << className(cls);
        EXPECT_LT(op.queuingDelayNs, 60.0) << className(cls);
    }
}

TEST(Solver, HpcIsBandwidthBoundOnBaseline)
{
    // Paper Sec. VI.C.3: "the workload class model for HPC is
    // bandwidth bound even with four DDR3-1867 channels."
    Solver solver;
    OperatingPoint op = solver.solve(paper::classParams(WorkloadClass::Hpc),
                                     Platform::paperBaseline());
    EXPECT_TRUE(op.bandwidthBound);
    EXPECT_NEAR(op.utilization, 1.0, 1e-9);
}

TEST(Solver, BandwidthBoundCpiMatchesEq4)
{
    Solver solver;
    Platform base = Platform::paperBaseline();
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    OperatingPoint op = solver.solve(hpc, base);
    double bw_per_thread =
        base.memory.effectiveBandwidth() / base.hardwareThreads();
    double expected = hpc.bytesPerInstruction() *
                      base.cyclesPerSecond() / bw_per_thread;
    EXPECT_NEAR(op.cpiEff, expected, expected * 0.02);
}

TEST(Solver, ZeroTrafficWorkloadIsPureCpiCache)
{
    WorkloadParams p;
    p.name = "pure-compute";
    p.cpiCache = 0.8;
    p.bf = 0.0;
    p.mpki = 0.0;
    p.wbr = 0.0;
    Solver solver;
    OperatingPoint op = solver.solve(p, Platform::paperBaseline());
    EXPECT_DOUBLE_EQ(op.cpiEff, 0.8);
    EXPECT_DOUBLE_EQ(op.bandwidthTotalBps, 0.0);
    EXPECT_FALSE(op.bandwidthBound);
}

TEST(Solver, ZeroTrafficSetsEveryOperatingPointField)
{
    // Regression: the zero-traffic short-circuit must define the full
    // OperatingPoint — it is cached and journaled by the serving
    // layer, so no field may be left at a struct default by accident.
    WorkloadParams p;
    p.name = "pure-compute";
    p.cpiCache = 1.7;
    p.bf = 0.5; // irrelevant without misses
    p.mpki = 0.0;
    p.wbr = 0.0;
    Solver solver;
    Platform base = Platform::paperBaseline();
    OperatingPoint op = solver.solve(p, base);
    EXPECT_DOUBLE_EQ(op.cpiEff, 1.7);
    EXPECT_DOUBLE_EQ(op.missPenaltyNs, base.memory.compulsoryNs);
    EXPECT_DOUBLE_EQ(op.queuingDelayNs, 0.0);
    EXPECT_DOUBLE_EQ(op.bandwidthPerCoreBps, 0.0);
    EXPECT_DOUBLE_EQ(op.bandwidthTotalBps, 0.0);
    EXPECT_DOUBLE_EQ(op.utilization, 0.0);
    EXPECT_FALSE(op.bandwidthBound);
    EXPECT_EQ(op.iterations, 0);
}

TEST(Solver, BandwidthRegimeReportsSaturatedQueuingState)
{
    // Regression: in the bandwidth-limited regime the reported
    // queuing delay / miss penalty used to be the raw bisection
    // iterate — off from the saturation point by O(tolerance), and
    // inconsistent with the Eq. 4 CPI actually reported. They must be
    // pinned at compulsory + saturated queuing delay exactly.
    Solver solver;
    Platform base = Platform::paperBaseline();
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    OperatingPoint op = solver.solve(hpc, base);
    ASSERT_TRUE(op.bandwidthBound);
    double sat_delay_ns = solver.queuing().maxStableDelayNs();
    EXPECT_DOUBLE_EQ(op.queuingDelayNs, sat_delay_ns);
    EXPECT_DOUBLE_EQ(op.missPenaltyNs,
                     base.memory.compulsoryNs + sat_delay_ns);
}

TEST(Solver, LatencyRegimePenaltyReproducesReportedCpi)
{
    // The latency-regime contract: plugging the reported miss penalty
    // back into Eq. 1 must reproduce the reported CPI (loose
    // tolerance — pre-fix the two disagreed by the bisection width).
    Solver solver;
    Platform base = Platform::paperBaseline();
    for (WorkloadClass cls :
         {WorkloadClass::Enterprise, WorkloadClass::BigData}) {
        WorkloadParams p = paper::classParams(cls);
        OperatingPoint op = solver.solve(p, base);
        ASSERT_FALSE(op.bandwidthBound) << p.name;
        double cpi_from_penalty =
            effectiveCpi(p, base.nsToCycles(op.missPenaltyNs));
        EXPECT_NEAR(cpi_from_penalty, op.cpiEff, 1e-3 * op.cpiEff)
            << p.name;
        EXPECT_NEAR(cpi_from_penalty, op.cpiEff, 1e-12 * op.cpiEff)
            << p.name << ": reported penalty must match exactly";
    }
}

TEST(Solver, RelativeCpiHelper)
{
    Solver solver;
    Platform base = Platform::paperBaseline();
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    double cpi = solver.solve(bd, base).cpiEff;
    EXPECT_NEAR(solver.relativeCpi(bd, base, cpi), 1.0, 1e-12);
    EXPECT_THROW(solver.relativeCpi(bd, base, 0.0), ConfigError);
}

TEST(Solver, IpsScalesWithCpi)
{
    OperatingPoint op;
    op.cpiEff = 2.0;
    EXPECT_DOUBLE_EQ(op.ipsPerCore(2.7e9), 1.35e9);
}

TEST(Solver, CustomOptionsValidated)
{
    SolverOptions opts;
    opts.maxIterations = 0;
    EXPECT_THROW(Solver(QueuingModel::analyticDefault(), opts),
                 ConfigError);
    opts = SolverOptions{};
    opts.damping = 0.0;
    EXPECT_THROW(Solver(QueuingModel::analyticDefault(), opts),
                 ConfigError);
}

TEST(Solver, MeasuredQueuingModelAccepted)
{
    stats::PiecewiseCurve curve({{0.0, 0.0}, {0.95, 200.0}});
    Solver solver(QueuingModel::fromCurve(curve, 0.95));
    OperatingPoint op = solver.solve(
        paper::classParams(WorkloadClass::BigData),
        Platform::paperBaseline());
    EXPECT_GT(op.cpiEff, 0.9);
}

/**
 * Property sweep: across a grid of workload parameters, increasing
 * compulsory latency must never decrease CPI, and adding bandwidth
 * must never increase it.
 */
class SolverMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(SolverMonotonicity, CpiNonDecreasingInLatency)
{
    auto [cpi_cache, bf, mpki] = GetParam();
    WorkloadParams p;
    p.name = "sweep";
    p.cpiCache = cpi_cache;
    p.bf = bf;
    p.mpki = mpki;
    p.wbr = 0.3;

    Solver solver;
    Platform plat = Platform::paperBaseline();
    double prev = 0.0;
    for (double ns : {55.0, 75.0, 95.0, 115.0, 135.0}) {
        plat.memory = plat.memory.withCompulsoryNs(ns);
        double cpi = solver.solve(p, plat).cpiEff;
        ASSERT_GE(cpi, prev - 1e-9)
            << "CPI decreased with latency at " << ns << " ns";
        prev = cpi;
    }
}

TEST_P(SolverMonotonicity, CpiNonIncreasingInBandwidth)
{
    auto [cpi_cache, bf, mpki] = GetParam();
    WorkloadParams p;
    p.name = "sweep";
    p.cpiCache = cpi_cache;
    p.bf = bf;
    p.mpki = mpki;
    p.wbr = 0.3;

    Solver solver;
    Platform plat = Platform::paperBaseline();
    double prev = 1e300;
    for (int channels : {1, 2, 3, 4, 6, 8}) {
        plat.memory = plat.memory.withChannels(channels);
        double cpi = solver.solve(p, plat).cpiEff;
        ASSERT_LE(cpi, prev + 1e-9)
            << "CPI increased with bandwidth at " << channels
            << " channels";
        prev = cpi;
    }
}

TEST_P(SolverMonotonicity, CpiNeverBelowCpiCache)
{
    auto [cpi_cache, bf, mpki] = GetParam();
    WorkloadParams p;
    p.name = "sweep";
    p.cpiCache = cpi_cache;
    p.bf = bf;
    p.mpki = mpki;
    p.wbr = 0.3;
    Solver solver;
    OperatingPoint op = solver.solve(p, Platform::paperBaseline());
    EXPECT_GE(op.cpiEff, cpi_cache - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, SolverMonotonicity,
    ::testing::Combine(::testing::Values(0.6, 1.0, 1.5),   // CPI_cache
                       ::testing::Values(0.05, 0.2, 0.45), // BF
                       ::testing::Values(0.5, 6.0, 27.0)));// MPKI

} // anonymous namespace
} // namespace memsense::model
