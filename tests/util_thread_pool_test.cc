/**
 * @file
 * Unit tests for the worker pool behind the parallel experiment
 * engine: result delivery through futures, exception propagation,
 * queue drain on shutdown, and oversubscription (more jobs than
 * workers).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hh"
#include "util/thread_pool.hh"

namespace memsense
{
namespace
{

TEST(ThreadPoolTest, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1);
}

TEST(ThreadPoolTest, DefaultConstructionUsesHardwareWorkers)
{
    ThreadPool pool;
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
}

TEST(ThreadPoolTest, SubmitDeliversResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, ManyMoreJobsThanWorkersAllComplete)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&ran]() { ++ran; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 200);
    EXPECT_EQ(pool.queuedTasks(), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("job failed");
    });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing job.
    EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i) {
            pool.submit([&ran]() {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++ran;
            });
        }
        // Destructor must finish all accepted work, not drop it.
    }
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSafe)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &ran]() {
            std::vector<std::future<void>> futures;
            for (int i = 0; i < 50; ++i)
                futures.push_back(pool.submit([&ran]() { ++ran; }));
            for (auto &f : futures)
                f.get();
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(ran.load(), 200);
}

} // anonymous namespace
} // namespace memsense
