/**
 * @file
 * Tests for the phase-weighted model application (paper Sec. IV.D).
 */

#include <gtest/gtest.h>

#include "model/paper_data.hh"
#include "model/phases.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

Phase
makePhase(const std::string &name, double weight, double cpi_cache,
          double bf, double mpki)
{
    Phase ph;
    ph.name = name;
    ph.weight = weight;
    ph.params.name = name;
    ph.params.cpiCache = cpi_cache;
    ph.params.bf = bf;
    ph.params.mpki = mpki;
    ph.params.wbr = 0.3;
    return ph;
}

TEST(Phases, SinglePhaseMatchesPlainSolve)
{
    Phase ph = makePhase("only", 1.0, 0.9, 0.2, 6.0);
    PhasedWorkload w({ph});
    Solver solver;
    Platform plat = Platform::paperBaseline();
    PhasedPoint pt = w.evaluate(solver, plat);
    OperatingPoint ref = solver.solve(ph.params, plat);
    EXPECT_DOUBLE_EQ(pt.cpiEff, ref.cpiEff);
    EXPECT_DOUBLE_EQ(pt.bandwidthTotalBps, ref.bandwidthTotalBps);
    ASSERT_EQ(pt.perPhase.size(), 1u);
}

TEST(Phases, WeightedMeanOfPhases)
{
    Phase light = makePhase("compute", 3.0, 0.8, 0.05, 0.5);
    Phase heavy = makePhase("scan", 1.0, 0.9, 0.25, 8.0);
    PhasedWorkload w({light, heavy});
    Solver solver;
    Platform plat = Platform::paperBaseline();
    PhasedPoint pt = w.evaluate(solver, plat);
    double cl = solver.solve(light.params, plat).cpiEff;
    double ch = solver.solve(heavy.params, plat).cpiEff;
    EXPECT_NEAR(pt.cpiEff, 0.75 * cl + 0.25 * ch, 1e-9);
    EXPECT_GT(pt.cpiEff, cl);
    EXPECT_LT(pt.cpiEff, ch);
}

TEST(Phases, AveragedParamsWeighting)
{
    Phase a = makePhase("a", 1.0, 1.0, 0.1, 2.0);
    a.params.wbr = 0.1;
    Phase b = makePhase("b", 1.0, 2.0, 0.3, 8.0);
    b.params.wbr = 0.5;
    PhasedWorkload w({a, b});
    WorkloadParams avg = w.averagedParams("avg");
    EXPECT_DOUBLE_EQ(avg.cpiCache, 1.5);
    EXPECT_DOUBLE_EQ(avg.bf, 0.2);
    EXPECT_DOUBLE_EQ(avg.mpki, 5.0);
    // WBR is weighted by misses: (2*0.1 + 8*0.5) / 10 = 0.42.
    EXPECT_NEAR(avg.wbr, 0.42, 1e-12);
}

TEST(Phases, PhaseAwareDiffersFromAveragedAcrossTheKnee)
{
    // One phase bandwidth-hungry, one idle-ish: the averaged-parameter
    // single-phase model sails under the bandwidth knee that the
    // hungry phase actually hits — the Sec. IV.D reason to model
    // phases separately when demand "reaches capacity".
    Phase hungry = makePhase("burst", 1.0, 0.7, 0.07, 30.0);
    Phase calm = makePhase("calm", 1.0, 1.2, 0.2, 1.0);
    PhasedWorkload w({hungry, calm});
    Solver solver;
    Platform plat = Platform::paperBaseline();

    PhasedPoint phased = w.evaluate(solver, plat);
    double averaged =
        solver.solve(w.averagedParams("avg"), plat).cpiEff;
    EXPECT_GT(phased.cpiEff, averaged * 1.03);
    // The burst phase is individually bandwidth bound.
    EXPECT_TRUE(phased.perPhase[0].bandwidthBound);
}

TEST(Phases, Validation)
{
    EXPECT_THROW(PhasedWorkload({}), ConfigError);
    Phase bad = makePhase("x", 0.0, 1.0, 0.1, 1.0);
    EXPECT_THROW(PhasedWorkload({bad}), ConfigError);
    Phase invalid = makePhase("y", 1.0, -1.0, 0.1, 1.0);
    EXPECT_THROW(PhasedWorkload({invalid}), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
