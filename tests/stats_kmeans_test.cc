/**
 * @file
 * Tests for k-means clustering (used by the Fig. 6 classifier).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/kmeans.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace memsense::stats
{
namespace
{

TEST(KMeans, SquaredDistance)
{
    EXPECT_DOUBLE_EQ(squaredDistance({0, 0}, {3, 4}), 25.0);
    EXPECT_DOUBLE_EQ(squaredDistance({1}, {1}), 0.0);
}

TEST(KMeans, SeparatesObviousClusters)
{
    std::vector<Point> pts;
    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
        pts.push_back({0.0 + rng.nextGaussian() * 0.05,
                       0.0 + rng.nextGaussian() * 0.05});
        pts.push_back({1.0 + rng.nextGaussian() * 0.05,
                       1.0 + rng.nextGaussian() * 0.05});
    }
    KMeansConfig cfg;
    cfg.k = 2;
    KMeansResult res = kMeans(pts, cfg);
    EXPECT_TRUE(res.converged);

    // All even-index points (cluster A) share an assignment distinct
    // from odd-index points (cluster B).
    std::size_t a = res.assignment[0];
    std::size_t b = res.assignment[1];
    EXPECT_NE(a, b);
    for (std::size_t i = 0; i < pts.size(); ++i)
        ASSERT_EQ(res.assignment[i], i % 2 ? b : a);
}

TEST(KMeans, KEqualsOneGivesCentroidAtMean)
{
    std::vector<Point> pts{{0.0}, {2.0}, {4.0}};
    KMeansConfig cfg;
    cfg.k = 1;
    KMeansResult res = kMeans(pts, cfg);
    ASSERT_EQ(res.centroids.size(), 1u);
    EXPECT_NEAR(res.centroids[0][0], 2.0, 1e-12);
    EXPECT_NEAR(res.inertia, 8.0, 1e-12);
}

TEST(KMeans, KEqualsNGivesZeroInertia)
{
    std::vector<Point> pts{{0.0}, {5.0}, {9.0}};
    KMeansConfig cfg;
    cfg.k = 3;
    KMeansResult res = kMeans(pts, cfg);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicForFixedSeed)
{
    std::vector<Point> pts;
    Rng rng(8);
    for (int i = 0; i < 40; ++i)
        pts.push_back({rng.nextDouble(), rng.nextDouble()});
    KMeansConfig cfg;
    cfg.k = 3;
    cfg.seed = 123;
    KMeansResult a = kMeans(pts, cfg);
    KMeansResult b = kMeans(pts, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, HandlesDuplicatePoints)
{
    std::vector<Point> pts(10, Point{1.0, 1.0});
    KMeansConfig cfg;
    cfg.k = 2;
    KMeansResult res = kMeans(pts, cfg);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, Validation)
{
    EXPECT_THROW(kMeans({}, {}), ConfigError);
    KMeansConfig cfg;
    cfg.k = 5;
    EXPECT_THROW(kMeans({{1.0}, {2.0}}, cfg), ConfigError);
    cfg.k = 1;
    EXPECT_THROW(kMeans({{1.0}, {2.0, 3.0}}, cfg), ConfigError);
}

} // anonymous namespace
} // namespace memsense::stats
