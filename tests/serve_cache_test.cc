/**
 * @file
 * Tests for the serving layer's sharded verifying LRU cache: recency
 * and eviction order, fingerprint-collision safety, counter
 * accounting, and a seeded fuzz pass over the request fingerprint
 * scheme the cache is keyed on.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "model/fingerprint.hh"
#include "model/solver.hh"
#include "property_test_support.hh"
#include "serve/cache.hh"
#include "util/rng.hh"

namespace memsense::serve
{
namespace
{

/** A recognizable operating point (only cpiEff matters here). */
model::OperatingPoint
opWithCpi(double cpi)
{
    model::OperatingPoint op;
    op.cpiEff = cpi;
    return op;
}

TEST(ServeCache, LruEvictionOrderWithRecencyRefresh)
{
    // One shard so the LRU order is global and fully predictable.
    ShardedLruCache cache({.capacity = 4, .shards = 1});
    for (std::uint64_t fp = 1; fp <= 4; ++fp)
        cache.insert(fp, "k" + std::to_string(fp),
                     opWithCpi(static_cast<double>(fp)));

    // Refresh entry 1: recency order becomes [1, 4, 3, 2].
    ASSERT_TRUE(cache.lookup(1, "k1").has_value());

    // A fifth insert must evict the least recent entry — 2, not 1.
    cache.insert(5, "k5", opWithCpi(5.0));
    EXPECT_FALSE(cache.lookup(2, "k2").has_value());
    EXPECT_TRUE(cache.lookup(1, "k1").has_value());
    EXPECT_TRUE(cache.lookup(3, "k3").has_value());
    EXPECT_TRUE(cache.lookup(4, "k4").has_value());
    EXPECT_TRUE(cache.lookup(5, "k5").has_value());

    CacheStats s = cache.stats();
    EXPECT_EQ(s.inserts, 5u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.size, 4u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 5u);
}

TEST(ServeCache, FingerprintCollisionNeverReturnsWrongEntry)
{
    ShardedLruCache cache({.capacity = 8, .shards = 1});
    cache.insert(42, "key-a", opWithCpi(1.0));

    // Same fingerprint, different canonical key: the hit must be
    // rejected (counted as a collision), never served.
    EXPECT_FALSE(cache.lookup(42, "key-b").has_value());
    EXPECT_EQ(cache.stats().collisions, 1u);

    // A colliding insert keeps the incumbent and drops the new entry.
    cache.insert(42, "key-b", opWithCpi(2.0));
    auto hit = cache.lookup(42, "key-a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->cpiEff, 1.0);
    EXPECT_FALSE(cache.lookup(42, "key-b").has_value());
    EXPECT_EQ(cache.stats().inserts, 1u);
    EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ServeCache, CapacityIsEnforcedAcrossShards)
{
    // 3 shards rounds up to 4; capacity splits across them.
    ShardedLruCache cache({.capacity = 8, .shards = 3});
    EXPECT_EQ(cache.capacity(), 8u);
    for (std::uint64_t fp = 0; fp < 100; ++fp)
        cache.insert(fp, "k" + std::to_string(fp), opWithCpi(1.0));
    CacheStats s = cache.stats();
    EXPECT_LE(s.size, 8u);
    EXPECT_EQ(s.inserts, 100u);
    EXPECT_EQ(s.evictions, 100u - s.size);
}

TEST(ServeCache, ClearDropsEntriesButKeepsCounters)
{
    ShardedLruCache cache({.capacity = 8, .shards = 2});
    cache.insert(7, "k7", opWithCpi(1.0));
    ASSERT_TRUE(cache.lookup(7, "k7").has_value());
    cache.clear();
    EXPECT_FALSE(cache.lookup(7, "k7").has_value());
    CacheStats s = cache.stats();
    EXPECT_EQ(s.size, 0u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

/**
 * Seeded fuzz over the fingerprint scheme: across many random
 * requests, two requests share a fingerprint iff they share the
 * canonical key text, and both encodings are recomputation-stable.
 * (FNV-1a collisions are possible in principle; a sample this size
 * colliding would indicate a mixing bug, not bad luck.)
 */
TEST(ServeCache, FingerprintFuzzMatchesCanonicalKeys)
{
    Rng rng(20150614);
    std::unordered_map<std::uint64_t, std::string> seen;
    for (int i = 0; i < 500; ++i) {
        model::WorkloadParams p = proptest::genWorkloadParams(rng);
        model::Platform plat = proptest::genPlatform(rng);
        std::string key = model::canonicalRequestKey(p, plat);
        std::uint64_t fp = model::requestFingerprint(p, plat);
        EXPECT_EQ(key, model::canonicalRequestKey(p, plat));
        EXPECT_EQ(fp, model::requestFingerprint(p, plat));
        auto [it, inserted] = seen.emplace(fp, key);
        if (!inserted) {
            EXPECT_EQ(it->second, key)
                << "fingerprint collision between distinct requests";
        }
    }
}

} // anonymous namespace
} // namespace memsense::serve
