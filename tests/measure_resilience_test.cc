/**
 * @file
 * Tests for the fault-tolerant experiment engine: retry-then-succeed,
 * quarantine on exhausted retries, fatal classification, cooperative
 * per-job deadlines on a virtual clock, checkpoint/resume bit-identity
 * at several worker counts, torn-journal tolerance, and no-abort
 * behaviour under injected faults — including the full
 * characterization sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "measure/checkpoint.hh"
#include "measure/freq_scaling.hh"
#include "measure/parallel.hh"
#include "measure/resilience.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/log.hh"

namespace memsense::measure
{
namespace
{

/** Deterministic, irrational-ish job value (bit-exactness matters). */
double
jobValue(std::size_t i)
{
    return std::sin(static_cast<double>(i) + 0.25) * 1e3 +
           std::sqrt(static_cast<double>(i) + 0.5);
}

/** Retry options that never really sleep. */
ResilienceOptions
fastOptions(int max_attempts)
{
    ResilienceOptions opts;
    opts.retry.maxAttempts = max_attempts;
    opts.sleepMs = [](double) {};
    return opts;
}

CheckpointCodec<double>
doubleCodec()
{
    CheckpointCodec<double> codec;
    codec.encode = [](const double &v) { return encodeDoubles({v}); };
    codec.decode = [](const std::string &payload) -> std::optional<double> {
        auto v = decodeDoubles(payload);
        if (!v || v->size() != 1)
            return std::nullopt;
        return (*v)[0];
    };
    return codec;
}

std::string
tempJournal(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

class MeasureResilienceTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setLogLevel(LogLevel::Warn); }

    void SetUp() override { fault::reset(); }

    void
    TearDown() override
    {
        fault::setSleepHandler(nullptr);
        fault::reset();
    }
};

TEST_F(MeasureResilienceTest, CleanSweepMatchesMapOrdered)
{
    std::vector<int> inputs = {1, 2, 3, 4, 5, 6, 7};
    auto fn = [](const int &x) { return jobValue(static_cast<std::size_t>(x)); };
    ParallelExecutor exec(4);
    auto plain = exec.mapOrdered(inputs, fn);
    auto resilient = exec.mapOrderedResilient(inputs, fn, fastOptions(3));
    ASSERT_EQ(resilient.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_TRUE(resilient[i].ok()) << "job " << i;
        EXPECT_EQ(*resilient[i].value, plain[i]) << "job " << i;
        EXPECT_EQ(resilient[i].attempts, 1);
    }
    EXPECT_TRUE(FailureManifest::collect(resilient).empty());
}

TEST_F(MeasureResilienceTest, TransientFailuresRetryToSuccess)
{
    const std::size_t n = 8;
    std::vector<std::size_t> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = i;
    // Job i fails its first (i % 3) calls, then succeeds — independent
    // of scheduling, so the test is exact at any worker count.
    std::vector<std::atomic<int>> calls(n);
    auto fn = [&calls](const std::size_t &i) {
        if (calls[i].fetch_add(1) < static_cast<int>(i % 3))
            throw TransientError("transient");
        return jobValue(i);
    };
    for (int jobs : {1, 8}) {
        for (auto &c : calls)
            c.store(0);
        ParallelExecutor exec(jobs);
        auto results = exec.mapOrderedResilient(inputs, fn, fastOptions(3));
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(results[i].ok()) << "jobs=" << jobs << " job " << i;
            EXPECT_EQ(*results[i].value, jobValue(i));
            EXPECT_EQ(results[i].attempts, static_cast<int>(i % 3) + 1);
        }
    }
}

TEST_F(MeasureResilienceTest, ExhaustedRetriesQuarantine)
{
    std::vector<std::size_t> inputs = {0, 1, 2};
    auto fn = [](const std::size_t &i) {
        if (i == 1)
            throw TransientError("always failing");
        return jobValue(i);
    };
    ParallelExecutor exec(1);
    auto results = exec.mapOrderedResilient(inputs, fn, fastOptions(3));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[2].ok());
    ASSERT_FALSE(results[1].ok());
    const FailureRecord &rec = *results[1].failure;
    EXPECT_EQ(rec.jobIndex, 1u);
    EXPECT_EQ(rec.errorType, "TransientError");
    EXPECT_NE(rec.message.find("always failing"), std::string::npos)
        << rec.message;
    EXPECT_EQ(rec.attempts, 3);
    EXPECT_FALSE(rec.fatal);
    EXPECT_FALSE(rec.timedOut);

    FailureManifest m = FailureManifest::collect(results);
    ASSERT_EQ(m.failures.size(), 1u);
    const std::string summary = m.summary(results.size());
    EXPECT_NE(summary.find("1 of 3"), std::string::npos) << summary;
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"quarantined\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("TransientError"), std::string::npos) << json;
}

TEST_F(MeasureResilienceTest, FatalErrorsAreNeverRetried)
{
    std::vector<std::size_t> inputs = {0, 1};
    std::atomic<int> calls{0};
    auto fn = [&calls](const std::size_t &i) {
        if (i == 0) {
            ++calls;
            throw ConfigError("bad job");
        }
        return jobValue(i);
    };
    ParallelExecutor exec(1);
    auto results = exec.mapOrderedResilient(inputs, fn, fastOptions(5));
    ASSERT_FALSE(results[0].ok());
    EXPECT_EQ(calls.load(), 1) << "fatal errors must not be retried";
    EXPECT_TRUE(results[0].failure->fatal);
    EXPECT_EQ(results[0].failure->errorType, "ConfigError");
    EXPECT_TRUE(results[1].ok());
}

TEST_F(MeasureResilienceTest, DeadlineCutsRetriesOnVirtualClock)
{
    // Virtual clock: injected delay faults advance it inside the job,
    // backoff sleeps advance it between attempts. Nothing real-sleeps.
    double clock_ms = 0.0;
    fault::setSleepHandler([&clock_ms](double ms) { clock_ms += ms; });
    fault::configure("resilience.slow:delay=100");

    ResilienceOptions opts;
    opts.retry.maxAttempts = 10;
    opts.jobTimeoutMs = 150.0;
    opts.nowMs = [&clock_ms]() { return clock_ms; };
    opts.sleepMs = [&clock_ms](double ms) { clock_ms += ms; };

    std::vector<std::size_t> inputs = {0};
    auto fn = [](const std::size_t &) -> double {
        MS_FAULT_POINT("resilience.slow"); // +100 virtual ms
        throw TransientError("slow and failing");
    };
    ParallelExecutor exec(1);
    auto results = exec.mapOrderedResilient(inputs, fn, opts);
    ASSERT_FALSE(results[0].ok());
    const FailureRecord &rec = *results[0].failure;
    EXPECT_TRUE(rec.timedOut);
    EXPECT_FALSE(rec.fatal);
    EXPECT_EQ(rec.attempts, 2) << "deadline must cut the retry budget";
    EXPECT_GE(rec.elapsedMs, 150.0);
}

TEST_F(MeasureResilienceTest, TimeoutNeverDiscardsASuccess)
{
    // A job that finishes over budget still keeps its value: the
    // deadline only stops further retries, it never tears results.
    double clock_ms = 0.0;
    fault::setSleepHandler([&clock_ms](double ms) { clock_ms += ms; });
    fault::configure("resilience.slowok:delay=500");

    ResilienceOptions opts = fastOptions(3);
    opts.jobTimeoutMs = 100.0;
    opts.nowMs = [&clock_ms]() { return clock_ms; };

    std::vector<std::size_t> inputs = {4};
    auto fn = [](const std::size_t &i) {
        MS_FAULT_POINT("resilience.slowok"); // +500 virtual ms
        return jobValue(i);
    };
    ParallelExecutor exec(1);
    auto results = exec.mapOrderedResilient(inputs, fn, opts);
    ASSERT_TRUE(results[0].ok());
    EXPECT_EQ(*results[0].value, jobValue(4));
}

TEST_F(MeasureResilienceTest, CheckpointResumeIsBitIdentical)
{
    const std::size_t n = 12;
    std::vector<std::size_t> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = i;
    std::atomic<bool> failing{true};
    auto fn = [&failing](const std::size_t &i) {
        if (failing.load() && i % 3 == 1)
            throw TransientError("injected outage");
        return jobValue(i);
    };

    for (int jobs : {1, 8}) {
        ParallelExecutor exec(jobs);
        // Reference: uninterrupted, no failures, no checkpoint.
        failing = false;
        auto reference =
            exec.mapOrderedResilient(inputs, fn, fastOptions(2));

        const std::string path =
            tempJournal("ckpt_jobs" + std::to_string(jobs) + ".journal");

        // Pass 1: a third of the jobs fail out of their retry budget
        // and are quarantined; the successes land in the journal.
        failing = true;
        auto pass1 = mapOrderedResilientCheckpointed(
            exec, inputs, fn, fastOptions(2), path, "ckpt-test-v1",
            doubleCodec());
        std::size_t quarantined = 0;
        for (const auto &r : pass1)
            quarantined += r.ok() ? 0 : 1;
        EXPECT_EQ(quarantined, 4u) << "jobs=" << jobs;

        // Pass 2 ("resume after the outage"): only the failed jobs
        // re-run; restored jobs report attempts == 0.
        failing = false;
        auto pass2 = mapOrderedResilientCheckpointed(
            exec, inputs, fn, fastOptions(2), path, "ckpt-test-v1",
            doubleCodec());
        ASSERT_EQ(pass2.size(), reference.size());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(pass2[i].ok()) << "jobs=" << jobs << " job " << i;
            EXPECT_EQ(*pass2[i].value, *reference[i].value)
                << "jobs=" << jobs << " job " << i;
            if (i % 3 == 1)
                EXPECT_GE(pass2[i].attempts, 1) << "job " << i
                                                << " should have re-run";
            else
                EXPECT_EQ(pass2[i].attempts, 0)
                    << "job " << i << " should restore from the journal";
        }

        // Pass 3: everything restores; nothing re-runs.
        auto pass3 = mapOrderedResilientCheckpointed(
            exec, inputs, fn, fastOptions(2), path, "ckpt-test-v1",
            doubleCodec());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(pass3[i].ok());
            EXPECT_EQ(pass3[i].attempts, 0);
            EXPECT_EQ(*pass3[i].value, *reference[i].value);
        }
        std::remove(path.c_str());
    }
}

TEST_F(MeasureResilienceTest, JournalKeyMismatchIsAConfigError)
{
    const std::string path = tempJournal("ckpt_key.journal");
    {
        CheckpointJournal journal(path, "sweep-A");
        journal.append(0, true, "payload");
    }
    EXPECT_THROW(CheckpointJournal(path, "sweep-B"), ConfigError);
    // The matching key still opens and restores.
    CheckpointJournal again(path, "sweep-A");
    ASSERT_EQ(again.restored().size(), 1u);
    EXPECT_EQ(again.restored().at(0).payload, "payload");
    std::remove(path.c_str());
}

TEST_F(MeasureResilienceTest, TornAndCorruptJournalLinesAreSkipped)
{
    const std::string path = tempJournal("ckpt_torn.journal");
    {
        CheckpointJournal journal(path, "torn-test");
        journal.append(0, true, encodeDoubles({jobValue(0)}));
        journal.append(1, false, "TransientError");
        journal.append(1, true, encodeDoubles({jobValue(1)}));
    }
    {
        // Simulate a crash mid-append: a checksum-less record, a
        // corrupted checksum, and a torn tail with no newline.
        std::ofstream raw(path, std::ios::binary | std::ios::app);
        raw << "R 2 ok deadbeef\n";
        raw << "R 3 ok cafe #0000000000000000\n";
        raw << "R 4 o";
    }
    CheckpointJournal journal(path, "torn-test");
    ASSERT_EQ(journal.restored().size(), 2u);
    EXPECT_TRUE(journal.restored().at(0).ok);
    EXPECT_TRUE(journal.restored().at(1).ok)
        << "the later ok record must supersede the quarantine record";
    EXPECT_EQ(journal.restored().count(2), 0u);
    EXPECT_EQ(journal.restored().count(3), 0u);
    EXPECT_EQ(journal.restored().count(4), 0u);
    std::remove(path.c_str());
}

TEST_F(MeasureResilienceTest, AppendRejectsUnjournalablePayloads)
{
    const std::string path = tempJournal("ckpt_payload.journal");
    CheckpointJournal journal(path, "payload-test");
    EXPECT_THROW(journal.append(0, true, "two\nlines"), ConfigError);
    EXPECT_THROW(journal.append(0, true, "has # hash"), ConfigError);
    std::remove(path.c_str());
}

TEST_F(MeasureResilienceTest, InjectedFaultsNeverAbortTheSweep)
{
    // The acceptance property: under probabilistic injected faults,
    // every job either retries to success or lands in the failure
    // manifest — the sweep itself always completes.
    fault::configure("seed=11;resilience.random:throw:p=0.4");
    const std::size_t n = 32;
    std::vector<std::size_t> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = i;
    auto fn = [](const std::size_t &i) {
        MS_FAULT_POINT("resilience.random");
        return jobValue(i);
    };
    for (int jobs : {1, 8}) {
        fault::configure("seed=11;resilience.random:throw:p=0.4");
        ParallelExecutor exec(jobs);
        std::vector<JobResult<double>> results;
        ASSERT_NO_THROW(results = exec.mapOrderedResilient(
                            inputs, fn, fastOptions(4)))
            << "jobs=" << jobs;
        ASSERT_EQ(results.size(), n);
        std::size_t ok = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (results[i].ok()) {
                ++ok;
                EXPECT_EQ(*results[i].value, jobValue(i));
            } else {
                EXPECT_EQ(results[i].failure->errorType, "FaultInjected");
                EXPECT_EQ(results[i].failure->attempts, 4);
            }
        }
        // p=0.4 with 4 attempts: most jobs must make it through.
        EXPECT_GT(ok, n / 2) << "jobs=" << jobs;
    }
}

TEST_F(MeasureResilienceTest, ResolveJobsNeverReturnsZero)
{
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-4), 1);
    EXPECT_EQ(resolveJobs(3), 3);
}

/** End-to-end: the real characterization sweep under injected faults. */
TEST_F(MeasureResilienceTest, CharacterizationSurvivesInjectedFaults)
{
    FreqScalingConfig cfg;
    cfg.coreGhz = {2.1, 3.1};
    cfg.memMtPerSec = {1866.7};
    cfg.warmup = nsToPicos(300'000.0);
    cfg.measure = nsToPicos(300'000.0);
    cfg.adaptiveWarmup = false;
    cfg.coresOverride = 2;
    cfg.jobs = 2;

    const std::vector<std::string> ids = {"column_store"};
    auto clean = characterizeMany(ids, cfg);

    // Every third hit of the grid-point runner throws a retryable
    // fault; with two extra attempts every point must still succeed,
    // and the retried re-runs must be bit-identical to the clean run.
    fault::configure("runner.observe:throw:nth=3");
    cfg.resilience.maxRetries = 2;
    ResilientCharacterizations r = characterizeManyResilient(ids, cfg);
    fault::reset();

    EXPECT_TRUE(r.manifest.empty())
        << "nth=3 faults with 2 retries must all recover: "
        << r.manifest.summary(r.totalJobs);
    ASSERT_EQ(r.results.size(), clean.size());
    ASSERT_EQ(r.results[0].observations.size(),
              clean[0].observations.size());
    for (std::size_t i = 0; i < clean[0].observations.size(); ++i) {
        EXPECT_EQ(r.results[0].observations[i].cpiEff,
                  clean[0].observations[i].cpiEff)
            << "observation " << i;
        EXPECT_EQ(r.results[0].observations[i].mpCycles,
                  clean[0].observations[i].mpCycles);
    }
    EXPECT_EQ(r.results[0].model.params.cpiCache,
              clean[0].model.params.cpiCache);
}

} // anonymous namespace
} // namespace memsense::measure
