/**
 * @file
 * Tests for the deterministic fault-injection harness: spec parsing,
 * site arming, firing schedules (nth/after/count/p=), determinism of
 * the probabilistic stream, and the disabled fast path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hh"
#include "util/fault_injection.hh"

namespace memsense::fault
{
namespace
{

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }

    void
    TearDown() override
    {
        setSleepHandler(nullptr);
        reset();
    }

    /** Hit @p site @p n times, counting how many hits threw. */
    static int
    countThrows(const char *site, int n)
    {
        int thrown = 0;
        for (int i = 0; i < n; ++i) {
            try {
                detail::hitSite(site);
            } catch (const TransientError &) {
                ++thrown;
            }
        }
        return thrown;
    }
};

TEST_F(FaultInjectionTest, DisabledByDefault)
{
    EXPECT_FALSE(enabled());
    // MS_FAULT_POINT is the enabled() check + hitSite; with no spec it
    // must never throw.
    EXPECT_NO_THROW(MS_FAULT_POINT("test.nowhere"));
}

TEST_F(FaultInjectionTest, ThrowKindFiresOnEveryHit)
{
    configure("test.site:throw");
    EXPECT_TRUE(enabled());
    EXPECT_THROW(detail::hitSite("test.site"), FaultInjected);
    EXPECT_THROW(detail::hitSite("test.site"), FaultInjected);
    EXPECT_EQ(hitCount("test.site"), 2u);
    EXPECT_EQ(fireCount("test.site"), 2u);
}

TEST_F(FaultInjectionTest, FatalKindThrowsNonRetryable)
{
    configure("test.site:fatal");
    EXPECT_THROW(detail::hitSite("test.site"), FaultInjectedFatal);
    EXPECT_THROW(detail::hitSite("test.site"), LogicError);
}

TEST_F(FaultInjectionTest, UnarmedSitesOnlyCountHits)
{
    configure("test.other:throw");
    EXPECT_NO_THROW(detail::hitSite("test.site"));
    EXPECT_EQ(hitCount("test.site"), 1u);
    EXPECT_EQ(fireCount("test.site"), 0u);
}

TEST_F(FaultInjectionTest, NthFiresEveryKthHit)
{
    configure("test.site:throw:nth=3");
    EXPECT_EQ(countThrows("test.site", 9), 3);
    EXPECT_EQ(fireCount("test.site"), 3u);
}

TEST_F(FaultInjectionTest, AfterSkipsLeadingHits)
{
    configure("test.site:throw:after=4");
    EXPECT_EQ(countThrows("test.site", 4), 0);
    EXPECT_EQ(countThrows("test.site", 3), 3);
}

TEST_F(FaultInjectionTest, CountBoundsTotalFires)
{
    configure("test.site:throw:count=2");
    EXPECT_EQ(countThrows("test.site", 10), 2);
    EXPECT_EQ(fireCount("test.site"), 2u);
    EXPECT_EQ(hitCount("test.site"), 10u);
}

TEST_F(FaultInjectionTest, OptionsCompose)
{
    // Skip 2, then every 2nd eligible hit, at most 2 fires: hits
    // 4, 6 fire; 8, 10, ... do not.
    configure("test.site:throw:after=2:nth=2:count=2");
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i) {
        try {
            detail::hitSite("test.site");
            fired.push_back(false);
        } catch (const TransientError &) {
            fired.push_back(true);
        }
    }
    const std::vector<bool> expect = {false, false, false, true, false,
                                      true,  false, false, false, false};
    EXPECT_EQ(fired, expect);
}

TEST_F(FaultInjectionTest, ProbabilityStreamIsDeterministic)
{
    auto run = [this]() {
        configure("seed=42;test.site:throw:p=0.5");
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            try {
                detail::hitSite("test.site");
                fired.push_back(false);
            } catch (const TransientError &) {
                fired.push_back(true);
            }
        }
        return fired;
    };
    const std::vector<bool> a = run();
    const std::vector<bool> b = run();
    EXPECT_EQ(a, b);
    int fires = 0;
    for (bool f : a)
        fires += f ? 1 : 0;
    // p=0.5 over 64 draws: not all, not none (deterministic stream,
    // so this is a fixed fact, not a flaky expectation).
    EXPECT_GT(fires, 0);
    EXPECT_LT(fires, 64);

    configure("seed=43;test.site:throw:p=0.5");
    std::vector<bool> c;
    for (int i = 0; i < 64; ++i) {
        try {
            detail::hitSite("test.site");
            c.push_back(false);
        } catch (const TransientError &) {
            c.push_back(true);
        }
    }
    EXPECT_NE(a, c) << "different seeds should change the decisions";
}

TEST_F(FaultInjectionTest, DelayKindUsesSleepHandler)
{
    std::vector<double> slept;
    setSleepHandler([&slept](double ms) { slept.push_back(ms); });
    configure("test.site:delay=25");
    EXPECT_NO_THROW(detail::hitSite("test.site"));
    EXPECT_NO_THROW(detail::hitSite("test.site"));
    ASSERT_EQ(slept.size(), 2u);
    EXPECT_EQ(slept[0], 25.0);
    EXPECT_EQ(slept[1], 25.0);
}

TEST_F(FaultInjectionTest, MalformedSpecThrowsAndKeepsOldConfig)
{
    configure("test.site:throw");
    EXPECT_THROW(configure("test.site:explode"), ConfigError);
    EXPECT_THROW(configure("test.site"), ConfigError);
    EXPECT_THROW(configure("test.site:throw:p=1.5"), ConfigError);
    EXPECT_THROW(configure("test.site:throw:nth=0"), ConfigError);
    EXPECT_THROW(configure("test.site:delay=-5"), ConfigError);
    // The original spec must still be armed.
    EXPECT_TRUE(enabled());
    EXPECT_THROW(detail::hitSite("test.site"), FaultInjected);
}

TEST_F(FaultInjectionTest, EmptySpecDisables)
{
    configure("test.site:throw");
    EXPECT_TRUE(enabled());
    configure("");
    EXPECT_FALSE(enabled());
    EXPECT_NO_THROW(detail::hitSite("test.site"));
}

TEST_F(FaultInjectionTest, MultiSiteSpecsAreIndependent)
{
    configure("seed=7;a.site:throw:nth=2;b.site:delay=5");
    std::vector<double> slept;
    setSleepHandler([&slept](double ms) { slept.push_back(ms); });
    EXPECT_NO_THROW(detail::hitSite("a.site")); // hit 1: not nth
    EXPECT_THROW(detail::hitSite("a.site"), FaultInjected);
    EXPECT_NO_THROW(detail::hitSite("b.site"));
    EXPECT_EQ(slept.size(), 1u);
    EXPECT_EQ(fireCount("a.site"), 1u);
    EXPECT_EQ(fireCount("b.site"), 1u);
}

} // anonymous namespace
} // namespace memsense::fault
