/**
 * @file
 * Statistical-distribution tests on the workload generators: the
 * access-pattern properties that give each workload its paper
 * signature (skewed probe popularity, phase structure, GC cadence,
 * record/scan geometry), verified directly on the op streams.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workloads/factory.hh"

namespace memsense::workloads
{
namespace
{

/** Collect the dependent-load addresses of the first N ops. */
std::vector<sim::Addr>
dependentLoadAddrs(sim::OpStream &s, std::size_t n_ops)
{
    std::vector<sim::Addr> out;
    sim::MicroOp op;
    for (std::size_t i = 0; i < n_ops; ++i) {
        if (!s.next(op))
            break;
        if (op.kind == sim::OpKind::Load && op.dependent)
            out.push_back(op.addr);
    }
    return out;
}

TEST(Distribution, ColumnStoreDictionaryProbesAreSkewed)
{
    // The dictionary is accessed with zipf skew so hot entries stay
    // LLC resident (that is what keeps MPKI near the paper's 5.6):
    // the most popular line must be hit far more than the median.
    auto w = makeWorkload("column_store", 0, 11);
    auto addrs = dependentLoadAddrs(*w, 400'000);
    ASSERT_GT(addrs.size(), 500u);
    std::map<sim::Addr, int> counts;
    for (auto a : addrs)
        ++counts[a >> 6];
    int max_count = 0;
    for (const auto &[line, c] : counts)
        max_count = std::max(max_count, c);
    double mean_count =
        static_cast<double>(addrs.size()) /
        static_cast<double>(counts.size());
    // Uniform sampling over the 1.5M-line dictionary would almost
    // never repeat a line (max ~2); the zipf head is hit many times.
    EXPECT_GE(max_count, 5);
    EXPECT_GT(max_count, 4.0 * mean_count);
}

TEST(Distribution, WebCacheObjectsAreUniform)
{
    // Paper setup: "64B sized objects randomly distributed across the
    // database" — object reads must NOT be skewed.
    auto w = makeWorkload("web_caching", 0, 13);
    sim::MicroOp op;
    std::map<sim::Addr, int> counts;
    int samples = 0;
    for (int i = 0; i < 600'000 && samples < 4000; ++i) {
        if (!w->next(op))
            break;
        // Object reads live in the (large) slab region, above buckets.
        if (op.kind == sim::OpKind::Load && op.dependent) {
            ++counts[op.addr >> 6];
            ++samples;
        }
    }
    ASSERT_GT(samples, 1000);
    int max_count = 0;
    for (const auto &[line, c] : counts)
        max_count = std::max(max_count, c);
    // Uniform over a multi-GB region: essentially no repeats. (The
    // bucket chain probes are zipf but they are a minority.)
    EXPECT_LT(max_count, 40);
}

TEST(Distribution, SparkAlternatesMapAndShufflePhases)
{
    // Shuffle phases are store-heavy; map phases are load-heavy. Over
    // windows of ops the store share must visibly oscillate.
    auto w = makeWorkload("spark", 0, 17);
    sim::MicroOp op;
    std::vector<double> store_share;
    int loads = 0;
    int stores = 0;
    int seen = 0;
    for (int i = 0; i < 2'000'000; ++i) {
        if (!w->next(op))
            break;
        if (op.kind == sim::OpKind::Load)
            ++loads;
        else if (op.kind == sim::OpKind::Store)
            ++stores;
        else
            continue;
        if (++seen == 150) {
            store_share.push_back(
                static_cast<double>(stores) /
                static_cast<double>(loads + stores));
            loads = stores = seen = 0;
        }
    }
    ASSERT_GT(store_share.size(), 30u);
    double lo = 1.0;
    double hi = 0.0;
    for (double s : store_share) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    // Map windows are mostly loads; shuffle windows mostly stores.
    EXPECT_LT(lo, 0.35);
    EXPECT_GT(hi, 0.60);
}

TEST(Distribution, JvmGcFiresPeriodically)
{
    // GC phases emit runs of stream-tagged copy traffic; between GCs
    // the nursery allocation stream dominates the tagged stores. The
    // observable: store bursts into the heap (random addresses) recur
    // with a long period.
    // Heap stores (stream 0) only happen during GC evacuation; the
    // request path allocates into the nursery (stream-tagged).
    auto w = makeWorkload("jvm", 0, 19);
    sim::MicroOp op;
    int heap_stores = 0;
    int heap_stores_in_first_window = 0;
    for (int i = 0; i < 500'000; ++i) {
        if (!w->next(op))
            break;
        if (op.kind == sim::OpKind::Store && op.stream == 0) {
            ++heap_stores;
            if (i < 4000)
                ++heap_stores_in_first_window;
        }
    }
    // Several GC cycles happened (each copies ~380 lines)...
    EXPECT_GE(heap_stores, 2 * 380);
    // ...but none before the first GC trigger.
    EXPECT_EQ(heap_stores_in_first_window, 0);
}

TEST(Distribution, NitsScansSequentially)
{
    // The dataset scan walks line-by-line (that is what the stride
    // prefetcher covers): consecutive stream-tagged loads must be
    // adjacent lines.
    auto w = makeWorkload("nits", 0, 23);
    sim::MicroOp op;
    sim::Addr prev = 0;
    int sequential = 0;
    int tagged = 0;
    for (int i = 0; i < 200'000; ++i) {
        if (!w->next(op))
            break;
        if (op.kind == sim::OpKind::Load && op.stream != 0) {
            if (prev != 0 && (op.addr >> 6) == (prev >> 6) + 1)
                ++sequential;
            prev = op.addr;
            ++tagged;
        }
    }
    ASSERT_GT(tagged, 1000);
    EXPECT_GT(sequential, tagged * 9 / 10);
}

TEST(Distribution, VirtualizationRotatesGuests)
{
    // Slices rotate round-robin across disjoint guest footprints: the
    // stream of memory ops must visit several distinct 768 MB regions
    // in order.
    auto w = makeWorkload("virtualization", 0, 29);
    sim::MicroOp op;
    std::vector<sim::Addr> region_sequence;
    sim::Addr current = ~sim::Addr{0};
    for (int i = 0; i < 400'000; ++i) {
        if (!w->next(op))
            break;
        if (op.kind != sim::OpKind::Load &&
            op.kind != sim::OpKind::Store)
            continue;
        sim::Addr region = op.addr / (768ULL << 20);
        if (region != current) {
            region_sequence.push_back(region);
            current = region;
        }
    }
    // Many slice switches across >= 4 distinct guests.
    ASSERT_GT(region_sequence.size(), 8u);
    std::map<sim::Addr, int> distinct;
    for (auto r : region_sequence)
        ++distinct[r];
    EXPECT_GE(distinct.size(), 4u);
}

} // anonymous namespace
} // namespace memsense::workloads
