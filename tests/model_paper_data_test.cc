/**
 * @file
 * Consistency tests for the transcribed paper data and the trend
 * generator (Fig. 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/paper_data.hh"
#include "model/trends.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

TEST(PaperData, TwelveWorkloadsInThreeClasses)
{
    auto all = paper::allWorkloadParams();
    ASSERT_EQ(all.size(), 12u);
    int counts[3] = {0, 0, 0};
    for (const auto &p : all) {
        if (p.cls == WorkloadClass::BigData)
            ++counts[0];
        else if (p.cls == WorkloadClass::Enterprise)
            ++counts[1];
        else if (p.cls == WorkloadClass::Hpc)
            ++counts[2];
    }
    EXPECT_EQ(counts[0], 4);
    EXPECT_EQ(counts[1], 4);
    EXPECT_EQ(counts[2], 4);
}

TEST(PaperData, AllParamsValidate)
{
    for (const auto &p : paper::allWorkloadParams())
        EXPECT_NO_THROW(p.validate()) << p.name;
    for (const auto &p : paper::classParams())
        EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(PaperData, Table2ValuesAsPublished)
{
    auto bd = paper::bigDataParams();
    ASSERT_EQ(bd.size(), 4u);
    EXPECT_EQ(bd[0].name, "Structured Data");
    EXPECT_DOUBLE_EQ(bd[0].cpiCache, 0.89);
    EXPECT_DOUBLE_EQ(bd[0].bf, 0.20);
    EXPECT_DOUBLE_EQ(bd[0].mpki, 5.6);
    EXPECT_DOUBLE_EQ(bd[0].wbr, 0.32);
    // NITS WBR exceeds 100% (non-temporal writes, Sec. V.G).
    EXPECT_GT(bd[1].wbr, 1.0);
    // Proximity is the core-bound outlier.
    EXPECT_DOUBLE_EQ(bd[3].bf, 0.03);
    EXPECT_DOUBLE_EQ(bd[3].mpki, 0.5);
}

TEST(PaperData, Table6ClassValues)
{
    WorkloadParams ent = paper::classParams(WorkloadClass::Enterprise);
    EXPECT_DOUBLE_EQ(ent.cpiCache, 1.47);
    EXPECT_DOUBLE_EQ(ent.bf, 0.41);
    EXPECT_DOUBLE_EQ(ent.mpki, 6.7);
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    EXPECT_DOUBLE_EQ(hpc.cpiCache, 0.75);
    EXPECT_DOUBLE_EQ(hpc.bf, 0.07);
    EXPECT_DOUBLE_EQ(hpc.mpki, 26.7);
    EXPECT_THROW(paper::classParams(WorkloadClass::CoreBound),
                 ConfigError);
}

TEST(PaperData, InferredTablesMatchPublishedClassMeans)
{
    // The per-workload Table 4/5 values are inferred; their means must
    // reproduce the published Table 6 means they were derived from.
    auto check = [](const std::vector<WorkloadParams> &ps,
                    WorkloadClass cls) {
        WorkloadParams mean = classMean("mean", cls, ps);
        WorkloadParams published = paper::classParams(cls);
        EXPECT_NEAR(mean.cpiCache, published.cpiCache, 0.01);
        EXPECT_NEAR(mean.bf, published.bf, 0.005);
        EXPECT_NEAR(mean.mpki, published.mpki, 0.2);
        EXPECT_NEAR(mean.wbr, published.wbr, 0.01);
    };
    check(paper::enterpriseParams(), WorkloadClass::Enterprise);
    check(paper::hpcParams(), WorkloadClass::Hpc);
}

TEST(PaperData, Table3GridShape)
{
    auto runs = paper::table3StructuredDataRuns();
    ASSERT_EQ(runs.size(), 8u);
    // Two runs at each of four core speeds.
    int at_27 = 0;
    for (const auto &o : runs) {
        EXPECT_GT(o.cpiEff, 1.0);
        EXPECT_GT(o.mpCycles, 300.0);
        // memsense-lint: allow(float-equal): exact sweep grid point
        if (o.coreGhz == 2.7)
            ++at_27;
    }
    EXPECT_EQ(at_27, 2);
}

TEST(PaperData, Table7Shape)
{
    auto rows = paper::table7();
    ASSERT_EQ(rows.size(), 3u);
    for (const auto &r : rows) {
        if (r.cls == WorkloadClass::Hpc) {
            EXPECT_GT(r.perfGainBandwidthPct, 10.0);
            EXPECT_TRUE(std::isinf(r.latencyEquivalentNs));
        } else {
            EXPECT_LT(r.perfGainBandwidthPct, 1.0);
            EXPECT_GT(r.bandwidthEquivalentGBps, 10.0);
        }
    }
}

TEST(Trends, Fig1GapWidens)
{
    auto series = scalingTrends(2012, 9);
    ASSERT_EQ(series.size(), 9u);
    EXPECT_EQ(series.front().year, 2012);
    EXPECT_DOUBLE_EQ(series.front().computeToCapacityGap, 1.0);
    // The compute/capacity gap strictly widens (the paper's Fig. 1).
    for (std::size_t i = 1; i < series.size(); ++i) {
        ASSERT_GT(series[i].computeToCapacityGap,
                  series[i - 1].computeToCapacityGap);
        ASSERT_GT(series[i].relativeCores, series[i].relativeChannelBw);
    }
    // Latency is nearly flat.
    EXPECT_GT(series.back().relativeLatency, 0.9);
}

TEST(Trends, Validation)
{
    EXPECT_THROW(scalingTrends(2012, 0), ConfigError);
    TrendRates bad;
    bad.latencyImprovementFrac = 1.5;
    EXPECT_THROW(scalingTrends(2012, 5, bad), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
