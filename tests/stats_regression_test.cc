/**
 * @file
 * Tests for ordinary least squares — the core of the paper's Sec. V
 * fitting methodology.
 */

#include <gtest/gtest.h>

#include "stats/regression.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace memsense::stats
{
namespace
{

TEST(LinearFit, ExactLineRecovered)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(0.89 + 0.20 * x); // the paper's structured data

    LinearFit fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.intercept, 0.89, 1e-12);
    EXPECT_NEAR(fit.slope, 0.20, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.residualStddev, 0.0, 1e-9);
}

TEST(LinearFit, PredictsThroughAt)
{
    LinearFit fit = linearFit({0, 1}, {1, 3});
    EXPECT_DOUBLE_EQ(fit.at(2.0), 5.0);
}

TEST(LinearFit, NoisyDataGivesReasonableR2)
{
    Rng rng(99);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i) {
        double x = i * 0.1;
        xs.push_back(x);
        ys.push_back(2.0 + 0.5 * x + rng.nextGaussian() * 0.2);
    }
    LinearFit fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.intercept, 2.0, 0.1);
    EXPECT_NEAR(fit.slope, 0.5, 0.02);
    EXPECT_GT(fit.r2, 0.9);
    EXPECT_GT(fit.slopeStderr, 0.0);
    EXPECT_GT(fit.interceptStderr, 0.0);
}

TEST(LinearFit, Validation)
{
    EXPECT_THROW(linearFit({1}, {1}), ConfigError);
    EXPECT_THROW(linearFit({1, 2}, {1}), ConfigError);
    // Degenerate x spread: the paper's methodology explicitly varies
    // core/memory speed to avoid this.
    EXPECT_THROW(linearFit({2, 2, 2}, {1, 2, 3}), ConfigError);
}

TEST(WeightedFit, WeightsShiftTheFit)
{
    std::vector<double> xs{0, 1, 2};
    std::vector<double> ys{0, 1, 10}; // outlier at x=2
    LinearFit plain = linearFit(xs, ys);
    LinearFit down = weightedLinearFit(xs, ys, {1.0, 1.0, 0.01});
    EXPECT_LT(down.slope, plain.slope);
    EXPECT_NEAR(down.slope, 1.0, 0.3);
}

TEST(WeightedFit, UniformWeightsMatchPlain)
{
    std::vector<double> xs{1, 2, 3, 5};
    std::vector<double> ys{2, 2.5, 4, 5};
    LinearFit a = linearFit(xs, ys);
    LinearFit b = weightedLinearFit(xs, ys, {2, 2, 2, 2});
    EXPECT_NEAR(a.slope, b.slope, 1e-12);
    EXPECT_NEAR(a.intercept, b.intercept, 1e-12);
    EXPECT_NEAR(a.r2, b.r2, 1e-12);
}

TEST(WeightedFit, RejectsNegativeWeights)
{
    EXPECT_THROW(weightedLinearFit({1, 2}, {1, 2}, {1, -1}), ConfigError);
    EXPECT_THROW(weightedLinearFit({1, 2}, {1, 2}, {0, 0}), ConfigError);
}

TEST(NonNegativeSlopeFit, PassesThroughPositiveSlopes)
{
    LinearFit fit = nonNegativeSlopeFit({1, 2, 3}, {1, 2, 3});
    EXPECT_NEAR(fit.slope, 1.0, 1e-12);
}

TEST(NonNegativeSlopeFit, ClampsNegativeSlopeToMeanLine)
{
    // Core-bound workload: CPI does not rise with miss penalty; noise
    // can make the raw slope slightly negative (paper's Proximity).
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{0.95, 0.93, 0.94, 0.92};
    LinearFit fit = nonNegativeSlopeFit(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_NEAR(fit.intercept, 0.935, 1e-12);
    EXPECT_LE(fit.r2, 0.0 + 1e-12); // no explanatory power, as expected
}

} // anonymous namespace
} // namespace memsense::stats
