/**
 * @file
 * Tests for the multi-socket extension (paper Sec. VIII).
 */

#include <gtest/gtest.h>

#include "model/multisocket.hh"
#include "model/paper_data.hh"
#include "model/solver.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

MultiSocketPlatform
twoSocket(double remote_fraction = 0.25)
{
    MultiSocketPlatform plat;
    plat.socket = Platform::paperBaseline();
    plat.sockets = 2;
    plat.remoteFraction = remote_fraction;
    return plat;
}

TEST(MultiSocket, ZeroRemoteMatchesSingleSocket)
{
    // Perfect NUMA pinning degenerates to the single-socket solver.
    MultiSocketSolver ms;
    Solver single;
    for (const auto &p : paper::classParams()) {
        MultiSocketPoint a = ms.solve(p, twoSocket(0.0));
        OperatingPoint b = single.solve(p, Platform::paperBaseline());
        EXPECT_NEAR(a.cpiEff, b.cpiEff, b.cpiEff * 0.02) << p.name;
    }
}

TEST(MultiSocket, RemoteAccessesCostPerformance)
{
    MultiSocketSolver ms;
    WorkloadParams ent = paper::classParams(WorkloadClass::Enterprise);
    double pinned = ms.solve(ent, twoSocket(0.0)).cpiEff;
    double interleaved = ms.solve(ent, twoSocket(0.5)).cpiEff;
    EXPECT_GT(interleaved, pinned * 1.03);
}

TEST(MultiSocket, CpiMonotoneInRemoteFraction)
{
    MultiSocketSolver ms;
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    auto sweep = ms.remoteFractionSweep(
        bd, twoSocket(), {0.0, 0.1, 0.25, 0.5, 0.75, 1.0});
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GE(sweep[i].cpiEff, sweep[i - 1].cpiEff - 1e-9);
}

TEST(MultiSocket, RemoteLatencyVisibleInMissPenalty)
{
    MultiSocketSolver ms;
    MultiSocketPlatform plat = twoSocket(0.3);
    plat.remoteExtraNs = 80.0;
    MultiSocketPoint pt =
        ms.solve(paper::classParams(WorkloadClass::Enterprise), plat);
    EXPECT_GE(pt.remoteMpNs, pt.localMpNs + 80.0);
}

TEST(MultiSocket, ThinInterconnectBecomesTheBottleneck)
{
    MultiSocketPlatform plat = twoSocket(0.5);
    plat.interconnectGBps = 2.0; // strangled link
    MultiSocketSolver ms;
    MultiSocketPoint pt =
        ms.solve(paper::classParams(WorkloadClass::Hpc), plat);
    EXPECT_TRUE(pt.interconnectBound);
    // CPI far above the wide-link case.
    plat.interconnectGBps = 64.0;
    MultiSocketPoint wide =
        ms.solve(paper::classParams(WorkloadClass::Hpc), plat);
    EXPECT_GT(pt.cpiEff, 1.5 * wide.cpiEff);
}

TEST(MultiSocket, HpcStaysBandwidthBound)
{
    MultiSocketSolver ms;
    MultiSocketPoint pt =
        ms.solve(paper::classParams(WorkloadClass::Hpc), twoSocket(0.2));
    EXPECT_TRUE(pt.bandwidthBound);
}

TEST(MultiSocket, InterleavedFractionHelper)
{
    MultiSocketPlatform plat = twoSocket();
    EXPECT_DOUBLE_EQ(plat.interleavedRemoteFraction(), 0.5);
    plat.sockets = 4;
    EXPECT_DOUBLE_EQ(plat.interleavedRemoteFraction(), 0.75);
}

TEST(MultiSocket, Validation)
{
    MultiSocketPlatform plat = twoSocket();
    plat.sockets = 0;
    EXPECT_THROW(plat.validate(), ConfigError);
    plat = twoSocket();
    plat.remoteFraction = 1.5;
    EXPECT_THROW(plat.validate(), ConfigError);
    plat = twoSocket();
    plat.interconnectGBps = 0.0;
    EXPECT_THROW(plat.validate(), ConfigError);
}

} // anonymous namespace
} // namespace memsense::model
