/**
 * @file
 * Tests for piecewise curves (queuing model substrate) and the
 * histogram.
 */

#include <gtest/gtest.h>

#include "stats/curve.hh"
#include "stats/histogram.hh"
#include "util/error.hh"

namespace memsense::stats
{
namespace
{

TEST(PiecewiseCurve, InterpolatesBetweenKnots)
{
    PiecewiseCurve c({{0.0, 0.0}, {1.0, 10.0}});
    EXPECT_DOUBLE_EQ(c.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(c.at(0.25), 2.5);
}

TEST(PiecewiseCurve, ClampsBelowDomain)
{
    PiecewiseCurve c({{0.2, 3.0}, {1.0, 10.0}});
    EXPECT_DOUBLE_EQ(c.at(0.0), 3.0);
    EXPECT_DOUBLE_EQ(c.at(0.2), 3.0);
}

TEST(PiecewiseCurve, ExtrapolatesAboveDomain)
{
    // Queuing delay keeps growing past the last measured point.
    PiecewiseCurve c({{0.0, 0.0}, {1.0, 10.0}});
    EXPECT_DOUBLE_EQ(c.at(1.5), 15.0);
}

TEST(PiecewiseCurve, SortsAndAveragesDuplicates)
{
    PiecewiseCurve c({{2.0, 4.0}, {1.0, 1.0}, {2.0, 6.0}});
    EXPECT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.at(2.0), 5.0);
    EXPECT_DOUBLE_EQ(c.minX(), 1.0);
    EXPECT_DOUBLE_EQ(c.maxX(), 2.0);
}

TEST(PiecewiseCurve, SingleKnotIsConstant)
{
    PiecewiseCurve c({{0.5, 7.0}});
    EXPECT_DOUBLE_EQ(c.at(0.0), 7.0);
    EXPECT_DOUBLE_EQ(c.at(10.0), 7.0);
}

TEST(PiecewiseCurve, MonotonicityCheck)
{
    PiecewiseCurve up({{0, 0}, {1, 1}, {2, 1}, {3, 4}});
    PiecewiseCurve down({{0, 0}, {1, 2}, {2, 1}});
    EXPECT_TRUE(up.isMonotoneNonDecreasing());
    EXPECT_FALSE(down.isMonotoneNonDecreasing());
}

TEST(PiecewiseCurve, MonotoneEnvelopeFixesDips)
{
    PiecewiseCurve noisy({{0, 0}, {1, 5}, {2, 3}, {3, 8}});
    PiecewiseCurve fixed = noisy.monotoneEnvelope();
    EXPECT_TRUE(fixed.isMonotoneNonDecreasing());
    EXPECT_DOUBLE_EQ(fixed.at(2.0), 5.0);
    EXPECT_DOUBLE_EQ(fixed.at(3.0), 8.0);
}

TEST(PiecewiseCurve, FromSamplesBinsAndAverages)
{
    std::vector<CurvePoint> samples;
    for (int i = 0; i < 100; ++i) {
        double x = i / 100.0;
        samples.push_back({x, 2.0 * x});
    }
    PiecewiseCurve c = PiecewiseCurve::fromSamples(samples, 10);
    EXPECT_LE(c.size(), 10u);
    EXPECT_NEAR(c.at(0.5), 1.0, 0.1);
}

TEST(PiecewiseCurve, CompositeAveragesCurves)
{
    PiecewiseCurve a({{0.0, 0.0}, {1.0, 10.0}});
    PiecewiseCurve b({{0.0, 0.0}, {1.0, 20.0}});
    PiecewiseCurve comp = PiecewiseCurve::composite({a, b}, 11);
    EXPECT_NEAR(comp.at(1.0), 15.0, 1e-9);
    EXPECT_NEAR(comp.at(0.5), 7.5, 1e-9);
}

TEST(PiecewiseCurve, CompositeUsesDomainIntersection)
{
    PiecewiseCurve a({{0.0, 1.0}, {0.8, 1.0}});
    PiecewiseCurve b({{0.2, 3.0}, {1.0, 3.0}});
    PiecewiseCurve comp = PiecewiseCurve::composite({a, b}, 5);
    EXPECT_DOUBLE_EQ(comp.minX(), 0.2);
    EXPECT_DOUBLE_EQ(comp.maxX(), 0.8);
    EXPECT_NEAR(comp.at(0.5), 2.0, 1e-9);
}

TEST(PiecewiseCurve, CompositeValidation)
{
    PiecewiseCurve a({{0.0, 0.0}, {0.3, 1.0}});
    PiecewiseCurve b({{0.7, 0.0}, {1.0, 1.0}});
    EXPECT_THROW(PiecewiseCurve::composite({a, b}, 5), ConfigError);
    EXPECT_THROW(PiecewiseCurve::composite({}, 5), ConfigError);
}

TEST(Histogram, CountsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(5.6);
    h.add(-1.0);
    h.add(11.0);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 2u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
}

TEST(Histogram, Validation)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
    Histogram h(0, 1, 2);
    EXPECT_THROW(h.quantile(0.5), ConfigError); // empty
    h.add(0.5);
    EXPECT_THROW(h.quantile(1.5), ConfigError);
}

TEST(Histogram, SketchShowsNonEmptyBins)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(2.5);
    h.add(2.6);
    std::string sketch = h.sketch(10);
    EXPECT_NE(sketch.find('#'), std::string::npos);
}

} // anonymous namespace
} // namespace memsense::stats
