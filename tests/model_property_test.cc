/**
 * @file
 * Property-based tests of the paper's model invariants (Eq. 1, Eq. 4,
 * the queuing curve, and the solver fixed point) over randomly
 * generated workloads and platforms. Each property encodes a claim
 * the paper's methodology depends on; see docs/observability.md for
 * how these pair with the golden-regression suite.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/bandwidth_model.hh"
#include "model/cpi_model.hh"
#include "model/queuing.hh"
#include "model/solver.hh"
#include "property_test_support.hh"

namespace
{

using namespace memsense;
using namespace memsense::proptest;

constexpr std::uint64_t kSeed = 20150614; // IISWC'15 submission era

/**
 * Eq. 1: CPI_eff = CPI_cache + MPI * MP * BF must be non-decreasing
 * in the miss penalty — more memory latency can never speed a
 * workload up.
 */
TEST(ModelProperty, EffectiveCpiMonotoneInLatency)
{
    forAll(kSeed, 300, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        double a = uniform(rng, 0.0, 2000.0);
        double b = uniform(rng, 0.0, 2000.0);
        double mp_lo = std::min(a, b);
        double mp_hi = std::max(a, b);
        EXPECT_LE(model::effectiveCpi(p, mp_lo),
                  model::effectiveCpi(p, mp_hi) + 1e-12)
            << "mp_lo=" << mp_lo << " mp_hi=" << mp_hi;
    });
}

/**
 * Eq. 1: CPI_eff is non-decreasing in the miss rate at a fixed miss
 * penalty — a workload that misses more can never run faster.
 */
TEST(ModelProperty, EffectiveCpiMonotoneInMpi)
{
    forAll(kSeed + 1, 300, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        model::WorkloadParams denser = p;
        denser.mpki = p.mpki + uniform(rng, 0.0, 50.0);
        double mp = uniform(rng, 0.0, 2000.0);
        EXPECT_LE(model::effectiveCpi(p, mp),
                  model::effectiveCpi(denser, mp) + 1e-12)
            << "mpki " << p.mpki << " -> " << denser.mpki;
    });
}

/**
 * Eq. 4: bandwidth demand = traffic * CPS / CPI_eff is inverse-
 * monotone in CPI_eff — a slower-running workload demands less
 * bandwidth per unit time, which is what makes the Eq. 1 / Eq. 4
 * fixed point well-behaved.
 */
TEST(ModelProperty, BandwidthDemandInverseMonotoneInCpi)
{
    forAll(kSeed + 2, 300, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        double cps = uniform(rng, 1.0e9, 4.0e9);
        double a = uniform(rng, 0.3, 50.0);
        double b = uniform(rng, 0.3, 50.0);
        double cpi_lo = std::min(a, b);
        double cpi_hi = std::max(a, b);
        EXPECT_GE(model::bandwidthDemandPerCore(p, cpi_lo, cps),
                  model::bandwidthDemandPerCore(p, cpi_hi, cps) - 1e-12)
            << "cpi_lo=" << cpi_lo << " cpi_hi=" << cpi_hi;
    });
}

/**
 * The queuing curve the solver consumes must be non-decreasing in
 * utilization, including at and beyond the stable cap (where delayNs
 * clamps), for any analytic parameterization.
 */
TEST(ModelProperty, QueuingDelayMonotoneInUtilization)
{
    forAll(kSeed + 3, 200, [](Rng &rng) {
        model::QueuingModel qm = model::QueuingModel::analyticDefault(
            uniform(rng, 0.0, 200.0), uniform(rng, 1.0, 20.0),
            uniform(rng, 0.80, 0.98));
        double a = uniform(rng, 0.0, 1.2);
        double b = uniform(rng, 0.0, 1.2);
        double u_lo = std::min(a, b);
        double u_hi = std::max(a, b);
        EXPECT_LE(qm.delayNs(u_lo), qm.delayNs(u_hi) + 1e-12)
            << "u_lo=" << u_lo << " u_hi=" << u_hi;
    });
}

/**
 * Solver postconditions over the whole generated input space: CPI is
 * bounded below by CPI_cache, utilization lands in [0, 1], and the
 * miss penalty never undercuts the compulsory latency.
 */
TEST(ModelProperty, SolverOperatingPointSatisfiesInvariants)
{
    forAll(kSeed + 4, 150, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        model::Platform plat = genPlatform(rng);
        model::Solver solver;
        model::OperatingPoint op;
        try {
            op = solver.solve(p, plat);
        } catch (const model::SolverConvergenceError &) {
            return; // quarantined in production; not this property
        }
        EXPECT_GE(op.cpiEff, p.cpiCache);
        EXPECT_GE(op.utilization, 0.0);
        EXPECT_LE(op.utilization, 1.0);
        EXPECT_GE(op.missPenaltyNs, plat.memory.compulsoryNs);
    });
}

/**
 * The Eq. 1 / Eq. 4 fixed point is stable: perturbing an input by a
 * single ulp moves the solved operating point by a commensurately
 * tiny amount, never to a different solution branch. Guards against
 * bisection bracket logic that would make the solver chaotic at
 * bracket boundaries.
 */
TEST(ModelProperty, SolverFixedPointStableUnderUlpPerturbation)
{
    forAll(kSeed + 5, 100, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        model::Platform plat = genPlatform(rng);
        model::Solver solver;

        model::WorkloadParams p2 = p;
        p2.cpiCache = std::nextafter(
            p.cpiCache, rng.chance(0.5) ? 0.0 : 10.0);
        model::Platform plat2 = plat;
        plat2.memory.compulsoryNs = std::nextafter(
            plat.memory.compulsoryNs, rng.chance(0.5) ? 0.0 : 1000.0);

        model::OperatingPoint base, perturbed;
        try {
            base = solver.solve(p, plat);
            perturbed = solver.solve(p2, plat2);
        } catch (const model::SolverConvergenceError &) {
            return;
        }
        const double rel =
            std::fabs(perturbed.cpiEff - base.cpiEff) / base.cpiEff;
        EXPECT_LT(rel, 1e-5)
            << "cpiEff " << base.cpiEff << " -> " << perturbed.cpiEff;
        EXPECT_NEAR(perturbed.utilization, base.utilization, 1e-5);
        EXPECT_NEAR(perturbed.missPenaltyNs, base.missPenaltyNs,
                    1e-5 * base.missPenaltyNs + 1e-9);
    });
}

/**
 * The zero-traffic short-circuit: any workload with zero bytes per
 * instruction solves to exactly CPI_cache on every platform, with the
 * full operating point pinned (no queuing, no bandwidth, no
 * iterations) — the limiting case of Eq. 1/Eq. 4 as traffic -> 0.
 */
TEST(ModelProperty, ZeroTrafficSolvesToExactCacheCpiEverywhere)
{
    forAll(kSeed + 6, 200, [](Rng &rng) {
        model::WorkloadParams p = genWorkloadParams(rng);
        p.mpki = 0.0;
        p.iopi = 0.0;
        p.ioBytes = 0.0;
        model::Platform plat = genPlatform(rng);
        model::Solver solver;
        model::OperatingPoint op = solver.solve(p, plat);
        EXPECT_DOUBLE_EQ(op.cpiEff, p.cpiCache);
        EXPECT_DOUBLE_EQ(op.missPenaltyNs, plat.memory.compulsoryNs);
        EXPECT_DOUBLE_EQ(op.queuingDelayNs, 0.0);
        EXPECT_DOUBLE_EQ(op.bandwidthPerCoreBps, 0.0);
        EXPECT_DOUBLE_EQ(op.bandwidthTotalBps, 0.0);
        EXPECT_DOUBLE_EQ(op.utilization, 0.0);
        EXPECT_FALSE(op.bandwidthBound);
        EXPECT_EQ(op.iterations, 0);
    });
}

} // anonymous namespace
