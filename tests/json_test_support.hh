/**
 * @file
 * Minimal recursive-descent JSON parser for schema tests.
 *
 * The repo is zero-dependency by design, so the tests that validate
 * emitted JSON artifacts (trace files, metrics documents, failure
 * manifests) parse them with this ~150-line subset parser instead of
 * a library. Supports the full JSON grammar the emitters use:
 * objects, arrays, strings with escapes, numbers, true/false/null.
 * Throws std::runtime_error with an offset on malformed input — a
 * test that feeds it a torn document fails loudly, not silently.
 */

#ifndef MEMSENSE_TESTS_JSON_TEST_SUPPORT_HH
#define MEMSENSE_TESTS_JSON_TEST_SUPPORT_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace memsense::testjson
{

/** One parsed JSON value (tagged union over the JSON types). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    bool has(const std::string &key) const
    {
        return type == Type::Object && object.count(key) > 0;
    }

    /** Member access; throws when absent or not an object. */
    const JsonValue &at(const std::string &key) const
    {
        if (type != Type::Object)
            throw std::runtime_error("JSON: not an object");
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("JSON: missing key '" + key + "'");
        return it->second;
    }
};

namespace detail
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos) + ": " + what);
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    fail("short \\u escape");
                unsigned long cp =
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr,
                                 16);
                pos += 4;
                // The emitters only escape control chars; represent
                // the code point as a raw byte (enough for the tests).
                out += static_cast<char>(cp & 0xffu);
                break;
            }
            default:
                fail(std::string("bad escape '\\") + e + "'");
            }
        }
    }

    JsonValue parseValue()
    {
        skipWs();
        char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return v;
            for (;;) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.object[key] = parseValue();
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return v;
            for (;;) {
                v.array.push_back(parseValue());
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.str = parseString();
            return v;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            v.type = JsonValue::Type::Bool;
            return v;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return v;
        }
        // Number: delegate to strtod and verify progress.
        char *end = nullptr;
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos)
            fail("not a JSON value");
        pos = static_cast<std::size_t>(end - text.c_str());
        return v;
    }
};

} // namespace detail

/** Parse @p text as one JSON document (throws on any error). */
inline JsonValue
parseJson(const std::string &text)
{
    detail::Parser p{text};
    JsonValue v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing garbage after document");
    return v;
}

} // namespace memsense::testjson

#endif // MEMSENSE_TESTS_JSON_TEST_SUPPORT_HH
