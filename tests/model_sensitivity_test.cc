/**
 * @file
 * Tests for the sensitivity sweeps behind Figs 8-11.
 */

#include <gtest/gtest.h>

#include "model/paper_data.hh"
#include "model/sensitivity.hh"
#include "util/contract.hh"
#include "util/error.hh"

namespace memsense::model
{
namespace
{

SensitivityAnalyzer
makeAnalyzer()
{
    return SensitivityAnalyzer(Solver(), Platform::paperBaseline());
}

TEST(BandwidthSweep, StandardVariantsSpanTheFig8Range)
{
    auto variants = SensitivityAnalyzer::standardBandwidthVariants(
        Platform::paperBaseline().memory);
    EXPECT_GE(variants.size(), 12u);
    // Per-core availability spans roughly 0 to -4.3 GB/s/core
    // (paper Fig. 8 x-axis).
    double base_per_core =
        Platform::paperBaseline().bandwidthPerCoreBps() / 1e9;
    double min_per_core = base_per_core;
    for (const auto &m : variants) {
        min_per_core =
            std::min(min_per_core, m.effectiveBandwidth() / 8.0 / 1e9);
    }
    EXPECT_LT(min_per_core, 1.1);
}

TEST(BandwidthSweep, BaselineFirstAndCpiIncreasesDownward)
{
    SensitivityAnalyzer an = makeAnalyzer();
    auto variants = SensitivityAnalyzer::standardBandwidthVariants(
        Platform::paperBaseline().memory);
    auto sweep = an.bandwidthSweep(
        paper::classParams(WorkloadClass::Hpc), variants);
    ASSERT_FALSE(sweep.empty());
    EXPECT_NEAR(sweep.front().bwDeltaPerCoreGBps, 0.0, 1e-9);
    EXPECT_NEAR(sweep.front().cpiIncreaseFrac, 0.0, 1e-9);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        ASSERT_LE(sweep[i].bwPerCoreGBps, sweep[i - 1].bwPerCoreGBps);
        ASSERT_GE(sweep[i].cpiIncreaseFrac, sweep[i - 1].cpiIncreaseFrac - 1e-9);
    }
}

TEST(BandwidthSweep, HpcHurtsMostEnterpriseLeast)
{
    // Paper Fig. 8: "the HPC class shows the most impact, while the
    // enterprise class shows the least."
    SensitivityAnalyzer an = makeAnalyzer();
    auto variants = SensitivityAnalyzer::standardBandwidthVariants(
        Platform::paperBaseline().memory);

    auto worst_increase = [&](WorkloadClass cls) {
        auto sweep = an.bandwidthSweep(paper::classParams(cls), variants);
        return sweep.back().cpiIncreaseFrac;
    };
    double hpc = worst_increase(WorkloadClass::Hpc);
    double bd = worst_increase(WorkloadClass::BigData);
    double ent = worst_increase(WorkloadClass::Enterprise);
    EXPECT_GT(hpc, bd);
    EXPECT_GT(bd, ent);
    EXPECT_GT(hpc, 1.0); // HPC suffers > 100% CPI increase at 1 channel
    // Enterprise degrades far less than HPC even at the extreme end
    // of the sweep (where even its small demand saturates 1 channel).
    EXPECT_LT(ent, hpc / 2.0);
}

TEST(BandwidthSweep, BigDataToleratesModestReduction)
{
    // Paper: big data "can tolerate some bandwidth reduction" but
    // degrades sharply past ~-2.5 GB/s/core.
    SensitivityAnalyzer an = makeAnalyzer();
    auto variants = SensitivityAnalyzer::standardBandwidthVariants(
        Platform::paperBaseline().memory);
    auto sweep =
        an.bandwidthSweep(paper::classParams(WorkloadClass::BigData),
                          variants);
    for (const auto &pt : sweep) {
        if (pt.bwDeltaPerCoreGBps > -1.5) {
            EXPECT_LT(pt.cpiIncreaseFrac, 0.10) << pt.memory.describe();
        }
        if (pt.bwDeltaPerCoreGBps < -4.0) {
            EXPECT_GT(pt.cpiIncreaseFrac, 0.30) << pt.memory.describe();
        }
    }
}

TEST(LatencySweep, StepsAndNormalization)
{
    SensitivityAnalyzer an = makeAnalyzer();
    auto sweep = an.latencySweep(
        paper::classParams(WorkloadClass::Enterprise), 60.0, 10.0);
    ASSERT_EQ(sweep.size(), 7u);
    EXPECT_DOUBLE_EQ(sweep.front().compulsoryNs, 75.0);
    EXPECT_DOUBLE_EQ(sweep.back().compulsoryNs, 135.0);
    EXPECT_NEAR(sweep.front().cpiIncreaseFrac, 0.0, 1e-12);
}

TEST(LatencySweep, ClassSensitivitiesMatchPaperFig10)
{
    // Enterprise ~3.5%/10ns, big data ~2.5%/10ns, HPC ~0 (Sec. VI.C.3).
    SensitivityAnalyzer an = makeAnalyzer();

    auto per_10ns = [&](WorkloadClass cls) {
        auto sweep = an.latencySweep(paper::classParams(cls), 10.0, 10.0);
        return sweep.back().cpiIncreaseFrac * 100.0;
    };
    EXPECT_NEAR(per_10ns(WorkloadClass::Enterprise), 3.5, 1.0);
    EXPECT_NEAR(per_10ns(WorkloadClass::BigData), 2.5, 1.0);
    EXPECT_NEAR(per_10ns(WorkloadClass::Hpc), 0.0, 0.3);
}

TEST(LatencyDerivative, NearlyConstantForLatencyLimitedClasses)
{
    // Paper Fig. 11: the per-10ns impact is nearly constant.
    SensitivityAnalyzer an = makeAnalyzer();
    auto sweep = an.latencySweep(
        paper::classParams(WorkloadClass::Enterprise), 60.0, 10.0);
    auto deriv = SensitivityAnalyzer::latencyDerivative(sweep);
    ASSERT_EQ(deriv.size(), 6u);
    for (const auto &d : deriv)
        EXPECT_NEAR(d.dCpiPct, deriv.front().dCpiPct, 0.7);
}

TEST(BandwidthDerivative, ImpactDependsOnStartingPoint)
{
    // Paper Fig. 9: the %/GB/s impact grows as available bandwidth
    // shrinks — no single rule of thumb exists.
    SensitivityAnalyzer an = makeAnalyzer();
    auto variants = SensitivityAnalyzer::standardBandwidthVariants(
        Platform::paperBaseline().memory);
    auto sweep = an.bandwidthSweep(
        paper::classParams(WorkloadClass::Hpc), variants);
    auto deriv = SensitivityAnalyzer::bandwidthDerivative(sweep);
    ASSERT_GE(deriv.size(), 3u);
    // Impact at the lowest-bandwidth end far exceeds the high end.
    EXPECT_GT(deriv.back().dCpiPct, deriv.front().dCpiPct * 2.0);
}

TEST(Sensitivity, SweepValidation)
{
    SensitivityAnalyzer an = makeAnalyzer();
    WorkloadParams bd = paper::classParams(WorkloadClass::BigData);
    EXPECT_THROW(an.bandwidthSweep(bd, {}), ConfigError);
    EXPECT_THROW(an.latencySweep(bd, 60.0, 0.0), ConfigError);
    EXPECT_THROW(an.latencySweep(bd, -5.0, 10.0), ConfigError);
}

TEST(Derivatives, RejectDegenerateSweepPoints)
{
    // Regression for the division-guard sweep: a sweep point with a
    // zero CPI would silently produce inf/nan derivatives; the
    // contract now rejects it loudly instead.
    // Sweeps run most-bandwidth-first / lowest-latency-first; the
    // divisor of each ratio is the earlier point's CPI.
    std::vector<BandwidthSweepPoint> bw_sweep(2);
    bw_sweep[0].bwPerCoreGBps = 2.0;
    bw_sweep[0].op.cpiEff = 0.0; // degenerate divisor
    bw_sweep[1].bwPerCoreGBps = 1.0;
    bw_sweep[1].op.cpiEff = 1.0;
    EXPECT_THROW(SensitivityAnalyzer::bandwidthDerivative(bw_sweep),
                 ContractViolation);

    std::vector<LatencySweepPoint> lat_sweep(2);
    lat_sweep[0].compulsoryNs = 60.0;
    lat_sweep[0].op.cpiEff = 0.0; // degenerate divisor
    lat_sweep[1].compulsoryNs = 70.0;
    lat_sweep[1].op.cpiEff = 1.0;
    EXPECT_THROW(SensitivityAnalyzer::latencyDerivative(lat_sweep),
                 ContractViolation);
}

} // anonymous namespace
} // namespace memsense::model
