/**
 * @file
 * Tests for the set-associative cache: hit/miss semantics, write-back
 * state, replacement policies, prefill, and in-flight fill times.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "util/error.hh"

namespace memsense::sim
{
namespace
{

CacheConfig
tinyCache(std::uint32_t ways = 2, std::uint64_t sets = 4,
          ReplacementKind repl = ReplacementKind::Lru)
{
    CacheConfig cfg;
    cfg.ways = ways;
    cfg.sizeBytes = static_cast<std::uint64_t>(ways) * sets * kLineBytes;
    cfg.replacement = repl;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c("t", tinyCache());
    EXPECT_FALSE(c.lookup(100, false, 0).hit);
    c.insert(100, false, 0);
    EXPECT_TRUE(c.lookup(100, false, 0).hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().fills, 1u);
}

TEST(Cache, ContainsDoesNotTouchStats)
{
    SetAssocCache c("t", tinyCache());
    c.insert(7, false, 0);
    EXPECT_TRUE(c.contains(7));
    EXPECT_FALSE(c.contains(8));
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, SetConflictEvicts)
{
    // 2 ways, 4 sets: lines 0, 4, 8 map to set 0.
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 0);
    c.insert(4, false, 0);
    Victim v = c.insert(8, false, 0);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u); // LRU victim
    EXPECT_FALSE(v.dirty);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(8));
}

TEST(Cache, LruPrefersRecentlyUsed)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 0);
    c.insert(4, false, 0);
    c.lookup(0, false, 0); // touch 0: now 4 is LRU
    Victim v = c.insert(8, false, 0);
    EXPECT_EQ(v.lineAddr, 4u);
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, true, 0); // dirty install (write allocate)
    c.insert(4, false, 0);
    c.insert(8, false, 0); // evicts 0
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 0);
    c.lookup(0, true, 0); // store hit
    c.insert(4, false, 0);
    Victim v = c.insert(8, false, 0);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, MarkDirtyIfPresent)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 0);
    EXPECT_TRUE(c.markDirtyIfPresent(0));
    EXPECT_FALSE(c.markDirtyIfPresent(99));
    // No stats perturbation.
    EXPECT_EQ(c.stats().hits, 0u);
    c.insert(4, false, 0);
    Victim v = c.insert(8, false, 0);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, true, 0);
    c.insert(1, false, 0);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.invalidate(1));
    EXPECT_FALSE(c.invalidate(12345));
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, ReinsertRefreshesWithoutEviction)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 0);
    Victim v = c.insert(0, true, 0); // racing fill
    EXPECT_FALSE(v.valid);
    // Dirtiness is retained (ORed).
    c.insert(4, false, 0);
    Victim v2 = c.insert(8, false, 0);
    EXPECT_TRUE(v2.dirty);
}

TEST(Cache, FillTimeVisibleOnHit)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 5000); // in flight until t=5000
    LookupResult r = c.lookup(0, false, 1000);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.fillTime, 5000u);
}

TEST(Cache, FirstPrefetchTouchReportedOnce)
{
    SetAssocCache c("t", tinyCache());
    c.insert(0, false, 100, /*prefetched=*/true);
    LookupResult first = c.lookup(0, false, 200);
    LookupResult second = c.lookup(0, false, 300);
    EXPECT_TRUE(first.firstPrefetchTouch);
    EXPECT_FALSE(second.firstPrefetchTouch);
}

TEST(Cache, PrefillFillsEveryWay)
{
    CacheConfig cfg = tinyCache(4, 8);
    SetAssocCache c("t", cfg);
    c.prefill();
    EXPECT_EQ(c.validLineCount(), 32u);
    // Any real insert immediately evicts (a clean dummy).
    Victim v = c.insert(0, false, 0);
    EXPECT_TRUE(v.valid);
    EXPECT_FALSE(v.dirty);
}

TEST(Cache, PrefillEvictedBeforeRealLines)
{
    SetAssocCache c("t", tinyCache());
    c.prefill();
    c.insert(0, false, 0); // evicts a dummy
    Victim v = c.insert(4, false, 0); // evicts the other dummy, not 0
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(4));
}

TEST(Cache, RandomReplacementStaysInSet)
{
    SetAssocCache c("t", tinyCache(2, 4, ReplacementKind::Random));
    c.insert(0, false, 0);
    c.insert(4, false, 0);
    Victim v = c.insert(8, false, 0);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.lineAddr == 0u || v.lineAddr == 4u);
}

TEST(Cache, SrripEvictsNonReferencedFirst)
{
    SetAssocCache c("t", tinyCache(2, 4, ReplacementKind::Srrip));
    c.insert(0, false, 0);
    c.insert(4, false, 0);
    c.lookup(0, false, 0); // rrpv(0) = 0, rrpv(4) stays at 2
    Victim v = c.insert(8, false, 0);
    EXPECT_EQ(v.lineAddr, 4u);
}

TEST(Cache, NonPowerOfTwoSetCountWorks)
{
    // 3 sets (modulo indexing): lines 0,3,6 share set 0.
    CacheConfig cfg;
    cfg.ways = 2;
    cfg.sizeBytes = 2 * 3 * kLineBytes;
    SetAssocCache c("t", cfg);
    c.insert(0, false, 0);
    c.insert(3, false, 0);
    Victim v = c.insert(6, false, 0);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
    EXPECT_TRUE(c.contains(3));
}

TEST(Cache, MissRatio)
{
    SetAssocCache c("t", tinyCache());
    c.lookup(0, false, 0);
    c.insert(0, false, 0);
    c.lookup(0, false, 0);
    c.lookup(0, false, 0);
    EXPECT_NEAR(c.stats().missRatio(), 1.0 / 3.0, 1e-12);
    c.clearStats();
    EXPECT_EQ(c.stats().accesses(), 0u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.0);
}

TEST(Cache, GeometryValidation)
{
    CacheConfig bad;
    bad.ways = 0;
    EXPECT_THROW(SetAssocCache("t", bad), ConfigError);
    bad = CacheConfig{};
    bad.sizeBytes = 100; // not a multiple of ways * line
    EXPECT_THROW(SetAssocCache("t", bad), ConfigError);
}

} // anonymous namespace
} // namespace memsense::sim
